#!/usr/bin/env python
"""CI checker for exported Chrome traces.

Usage::

    python scripts/check_trace.py trace.json [breakdown.json]

Validates the trace-event schema (`repro.obs.export.validate_chrome_trace`)
and then asserts the structural properties the observability layer
promises: at least one collective root span, nested phase spans parented
under a root, per-node process metadata, and no unclosed or dropped spans.
With a second argument (the ``bench trace <artifact> --json`` output) it
also asserts phase attribution: every op's phase buckets sum to its wall
sim-time and its fractions sum to one.  Exits non-zero with a diagnostic
on any violation.
"""

from __future__ import annotations

import json
import sys

from repro.obs.export import PHASE_PRIORITY, validate_chrome_trace


def check(path: str) -> int:
    with open(path) as fh:
        doc = json.load(fh)

    problems = validate_chrome_trace(doc)
    for p in problems:
        print(f"schema: {p}")

    events = doc.get("traceEvents", [])
    xs = [e for e in events if e.get("ph") == "X"]
    roots = [e for e in xs if e.get("cat") == "collective"]
    phased = [e for e in xs if e.get("cat") in PHASE_PRIORITY]
    nested = [e for e in phased if "parent" in e.get("args", {})]
    process_names = [e for e in events
                     if e.get("ph") == "M" and e.get("name") == "process_name"]

    if not roots:
        problems.append("no collective root spans")
    if not phased:
        problems.append("no phase spans (uc/dmp/poe/wire)")
    if phased and not nested:
        problems.append("phase spans exist but none is parented to a root")
    if not process_names:
        problems.append("no process_name metadata (Perfetto tracks unlabeled)")
    root_ops = {e["args"].get("op") for e in roots}
    orphan_ops = {e["args"].get("op") for e in nested} - root_ops
    if orphan_ops:
        problems.append(f"phase spans for ops without roots: {orphan_ops}")

    other = doc.get("otherData", {})
    for key in ("unclosed", "spans_dropped", "events_dropped"):
        if other.get(key, 0):
            problems.append(f"otherData.{key} = {other[key]} (truncated trace)")

    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    print(f"trace ok: {len(roots)} collectives, {len(phased)} phase spans "
          f"({len(nested)} nested), {len(process_names)} node tracks")
    return 0


def check_breakdown(path: str) -> int:
    """Assert phase attribution sums in a ``bench trace --json`` document."""
    with open(path) as fh:
        doc = json.load(fh)

    problems = []
    ops = doc.get("ops", [])
    if not ops:
        problems.append("breakdown has no ops")
    for op in ops:
        wall = op.get("wall_s", 0.0)
        tol = 1e-9 * max(abs(wall), 1e-12)
        phase_sum = sum(op.get("phases", {}).values())
        if abs(phase_sum - wall) > tol:
            problems.append(
                f"op {op.get('op_id')}: phases sum to {phase_sum!r}, "
                f"wall is {wall!r}")
        frac_sum = sum(op.get("fractions", {}).values())
        if wall > 0 and abs(frac_sum - 1.0) > 1e-9:
            problems.append(
                f"op {op.get('op_id')}: fractions sum to {frac_sum!r}")

    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    print(f"breakdown ok: {len(ops)} ops, phase sums match wall sim-time")
    return 0


if __name__ == "__main__":
    if len(sys.argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        raise SystemExit(2)
    rc = check(sys.argv[1])
    if rc == 0 and len(sys.argv) == 3:
        rc = check_breakdown(sys.argv[2])
    raise SystemExit(rc)
