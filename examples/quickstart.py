#!/usr/bin/env python
"""Quickstart: an 8-node ACCL+ cluster running MPI-like collectives.

Builds the paper's main configuration — Alveo-class FPGAs with RDMA POEs on
the Coyote platform, 100 Gb/s fabric — and runs broadcast, allreduce and a
barrier through the host CCL driver, with real numpy payloads verified
against local references.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import units
from repro.cluster import build_fpga_cluster
from repro.driver import attach_drivers
from repro.sim import all_of


def wait_all(cluster, requests):
    cluster.env.run(until=all_of(cluster.env, [r.event for r in requests]))


def main():
    n_nodes = 8
    cluster = build_fpga_cluster(n_nodes, protocol="rdma", platform="coyote")
    drivers = attach_drivers(cluster)
    print(f"cluster up: {n_nodes} FPGAs, RDMA POE, Coyote platform")

    # --- broadcast -------------------------------------------------------
    payload = np.arange(4096, dtype=np.float32)
    bufs = [
        drv.wrap(payload.copy() if drv.rank == 0 else np.zeros(4096,
                                                               np.float32))
        for drv in drivers
    ]
    start = cluster.env.now
    wait_all(cluster, [
        drv.bcast(bufs[i], payload.nbytes, root=0)
        for i, drv in enumerate(drivers)
    ])
    elapsed = cluster.env.now - start
    assert all(np.array_equal(bufs[i].array, payload) for i in range(n_nodes))
    print(f"bcast   16 KiB to {n_nodes} ranks: {units.to_us(elapsed):8.1f} us")

    # --- allreduce --------------------------------------------------------
    contributions = [np.full(4096, float(i + 1), np.float32)
                     for i in range(n_nodes)]
    rbufs = [drv.wrap(np.zeros(4096, np.float32)) for drv in drivers]
    start = cluster.env.now
    wait_all(cluster, [
        drv.allreduce(drv.wrap(contributions[i]), rbufs[i],
                      contributions[i].nbytes)
        for i, drv in enumerate(drivers)
    ])
    elapsed = cluster.env.now - start
    expected = np.sum(contributions, axis=0)
    assert all(np.allclose(rbufs[i].array, expected) for i in range(n_nodes))
    print(f"allreduce 16 KiB over {n_nodes} ranks: {units.to_us(elapsed):6.1f} us")

    # --- barrier ------------------------------------------------------------
    start = cluster.env.now
    wait_all(cluster, [drv.barrier(sync=False) for drv in drivers])
    elapsed = cluster.env.now - start
    print(f"barrier over {n_nodes} ranks: {units.to_us(elapsed):17.1f} us")

    print("all results verified against numpy references")


if __name__ == "__main__":
    main()
