#!/usr/bin/env python
"""Streaming collectives between FPGA kernels (the Listing 2 flow).

Two simulated FPGA kernels communicate through ACCL+'s streaming API: a
producer kernel pushes data into its CCLO while issuing a streaming send
(no memory buffering on the way out), and a consumer kernel receives the
stream directly.  A third scenario runs a streaming reduction: four
producer kernels contribute vectors that are summed in-flight by the root
CCLO's arithmetic plugin.

Run:  python examples/streaming_kernels.py
"""

import numpy as np

from repro import units
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import build_fpga_cluster
from repro.driver import KernelInterface
from repro.platform.base import BufferLocation


def streaming_send_recv():
    cluster = build_fpga_cluster(2, protocol="rdma", platform="coyote")
    env = cluster.env
    payload = np.linspace(0.0, 1.0, 2048, dtype=np.float32)
    received = {}

    def producer():
        ki = KernelInterface(cluster.engine(0))
        # Listing 2: issue the command, push data, wait for completion.
        yield from ki.send(payload.nbytes, dst_rank=1)
        for chunk in np.split(payload, 8):
            yield from ki.push(chunk)
        yield from ki.finalize()

    def consumer():
        ki = KernelInterface(cluster.engine(1))
        yield from ki.recv(payload.nbytes, src_rank=0)
        nbytes, data = yield from ki.pull()
        yield from ki.finalize()
        received["data"] = np.asarray(data).reshape(-1)
        received["time"] = env.now

    env.process(producer())
    env.process(consumer())
    env.run()
    assert np.allclose(received["data"], payload)
    print(f"streaming send/recv of {payload.nbytes} B: "
          f"{units.to_us(received['time']):.1f} us, data verified")


def streaming_reduction():
    n_producers = 4
    cluster = build_fpga_cluster(n_producers + 1, protocol="rdma",
                                 platform="coyote")
    env = cluster.env
    root = n_producers
    contributions = [np.full(2048, float(rank + 1), np.float32)
                     for rank in range(n_producers)]
    nbytes = contributions[0].nbytes
    result = cluster.nodes[root].platform.wrap(
        np.zeros(2048, np.float32), BufferLocation.DEVICE)

    def producer(rank):
        engine = cluster.engine(rank)
        done = engine.call(CollectiveArgs(
            opcode="reduce", nbytes=nbytes, root=root, tag=1 << 20,
            func="sum", from_stream=True, algorithm="all_to_one",
        ))
        yield engine.kernel_data_in.put((nbytes, contributions[rank]))
        yield done

    # The root contributes nothing; the four streams are the whole sum.
    root_done = cluster.engine(root).call(CollectiveArgs(
        opcode="reduce", nbytes=nbytes, root=root, tag=1 << 20,
        func="sum", rbuf=result.view(), algorithm="all_to_one",
    ))
    for rank in range(n_producers):
        env.process(producer(rank))
    env.run(until=root_done)
    expected = np.sum(contributions, axis=0)
    assert np.allclose(result.array, expected)
    print(f"streaming reduction of {n_producers} kernel streams: "
          f"{units.to_us(env.now):.1f} us, sum verified "
          f"(value {result.array[0]:.0f})")


if __name__ == "__main__":
    streaming_send_recv()
    streaming_reduction()
