#!/usr/bin/env python
"""Deploying a user-defined collective at runtime — no re-synthesis.

ACCL+'s headline flexibility claim: "It is user-extensible, allowing new
collectives to be implemented and deployed without having to re-synthesize
the FPGA circuit."  Collectives are uC firmware; this example writes a new
one — *reduce_scatter* (each rank ends up with one fully-reduced block) —
registers it on already-built engines, and runs it.

Run:  python examples/custom_collective.py
"""

import numpy as np

from repro import units
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import build_fpga_cluster
from repro.collectives.util import block_ranges
from repro.platform.base import BufferLocation
from repro.sim import all_of


def fw_reduce_scatter_ring(ctx, args):
    """Ring reduce-scatter: after size-1 steps, rank r owns the reduced
    block (r + 1) % size in its rbuf.  ``nbytes`` is the full vector size.

    This is new firmware written *after* the engines were built — the
    software analogue of a firmware update on deployed hardware.
    """
    yield ctx.cost()
    size = ctx.size
    rank = ctx.rank
    blocks = block_ranges(args.nbytes, size)
    next_rank = (rank + 1) % size
    prev_rank = (rank - 1) % size

    acc = ctx.engine.scratch_alloc(args.nbytes)
    try:
        yield ctx.copy(args.sbuf, acc.view(), args.nbytes)
        for step in range(size - 1):
            s_off, s_len = blocks[(rank - step) % size]
            r_off, r_len = blocks[(rank - step - 1) % size]
            pending = []
            if s_len:
                pending.append(ctx.send(
                    next_rank, acc.view(s_off, s_len), s_len, ctx.tag(step)))
            if r_len:
                pending.append(ctx.recv_reduce(
                    prev_rank, acc.view(r_off, r_len), r_len, ctx.tag(step),
                    args.func))
            if pending:
                yield ctx.wait_all(pending)
        own_off, own_len = blocks[(rank + 1) % size]
        yield ctx.copy(acc.view(own_off, own_len), args.rbuf, own_len)
    finally:
        ctx.engine.scratch_free(acc)


def main():
    size = 4
    n = 1024  # elements, divisible by size
    cluster = build_fpga_cluster(size, protocol="rdma", platform="coyote")

    # "Firmware update": register the new collective on the live engines.
    for node in cluster.nodes:
        node.engine.uc.registry.register(
            "reduce_scatter", "ring", fw_reduce_scatter_ring)
    print("registered opcode 'reduce_scatter' on", size, "running engines")

    rng = np.random.default_rng(11)
    contributions = [rng.standard_normal(n).astype(np.float32)
                     for _ in range(size)]
    block = n // size
    sviews = [
        cluster.nodes[r].platform.wrap(
            contributions[r], BufferLocation.DEVICE).view()
        for r in range(size)
    ]
    rviews = [
        cluster.nodes[r].platform.wrap(
            np.zeros(block, np.float32), BufferLocation.DEVICE).view()
        for r in range(size)
    ]

    events = [
        cluster.engine(r).call(CollectiveArgs(
            opcode="reduce_scatter", nbytes=contributions[0].nbytes,
            tag=1 << 20, func="sum", sbuf=sviews[r], rbuf=rviews[r],
            algorithm="ring",
        ))
        for r in range(size)
    ]
    cluster.env.run(until=all_of(cluster.env, events))

    total = np.sum(contributions, axis=0)
    for r in range(size):
        owned = (r + 1) % size
        expected = total[owned * block:(owned + 1) * block]
        assert np.allclose(rviews[r].array, expected, rtol=1e-4, atol=1e-5)
    print(f"reduce_scatter over {size} ranks completed in "
          f"{units.to_us(cluster.env.now):.1f} us; every rank's block "
          "verified against numpy")


if __name__ == "__main__":
    main()
