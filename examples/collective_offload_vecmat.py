#!/usr/bin/env python
"""Use case 1 (§6.2): distributing an FC layer across CPUs with ACCL+ as a
collective offload engine.

The weight matrix is partitioned column-wise over R CPU ranks; each rank
computes a partial product; partials are reduced with ACCL+ (FPGA-side
reduction over Coyote RDMA) or software MPI.  Prints the Figure 16 grid:
speedup over single-node execution plus the compute/reduction breakdown.

Run:  python examples/collective_offload_vecmat.py
"""

from repro import units
from repro.apps.vecmat import run_distributed_vecmat, run_single_node


def main():
    print("distributed vector-matrix multiplication "
          "(CPU GEMV + offloaded reduce)\n")
    header = (f"{'FC size':>10} {'ranks':>5} {'backend':>7} "
              f"{'compute':>10} {'reduce':>9} {'speedup':>8}")
    print(header)
    print("-" * len(header))
    for size in (2048, 4096, 8192):
        single = run_single_node(size, size)
        for ranks in (2, 4, 8):
            for backend in ("accl", "mpi"):
                r = run_distributed_vecmat(size, size, ranks, backend)
                assert r.result_ok, "distributed result diverged from W @ x"
                marker = " <-- super-linear" if r.speedup > ranks else ""
                print(f"{size:>6}x{size:<4}{ranks:>4} {backend:>8} "
                      f"{units.to_us(r.compute_time):>9.1f}u "
                      f"{units.to_us(r.reduction_time):>8.1f}u "
                      f"{r.speedup:>7.2f}x{marker}")
        print(f"{'':>10} single-node: {units.to_ms(single):.3f} ms\n")

    print("note the two paper findings: ACCL+ lowers *compute* time (its\n"
          "reduction state lives in FPGA memory, easing CPU-cache pressure)\n"
          "while its *reduction* time carries an extra staging copy.")


if __name__ == "__main__":
    main()
