#!/usr/bin/env python
"""Use case 2 (§6): distributed DLRM inference on 10 simulated FPGAs.

Builds the Figure 15 pipeline — embedding lookup + checkerboard-decomposed
FC1 over eight nodes, FC2 and FC3 on dedicated nodes, every transfer over
ACCL+ streaming collectives — streams queries through it, validates each
CTR against the single-node reference model, and compares latency and
throughput with the CPU serving baseline (Figure 17).

Run:  python examples/distributed_dlrm.py
"""

import numpy as np

from repro import units
from repro.apps.dlrm import CpuDlrmBaseline, DistributedDlrm, DlrmModel


def main():
    model = DlrmModel()
    config = model.config
    print("target model (Table 2): "
          f"{config.num_tables} tables, concat {config.concat_len}, "
          f"FC {config.fc_dims}, embeddings "
          f"{config.embed_bytes / 1e9:.0f} GB (procedural)\n")

    dlrm = DistributedDlrm(model)
    queries = model.make_queries(64)
    stats = dlrm.run(queries)
    reference = model.forward_batch(queries)
    assert np.allclose(stats.outputs, reference, rtol=1e-3, atol=1e-4)
    print("ACCL+ pipeline on 10 FPGAs (TCP/XRT @ 115 MHz, streaming, "
          "no batching):")
    print(f"  mean latency  {units.to_us(stats.mean_latency):8.1f} us")
    print(f"  p99 latency   {units.to_us(stats.p99_latency):8.1f} us")
    print(f"  throughput    {stats.throughput:10,.0f} inferences/s")
    print(f"  all {len(queries)} CTRs match the single-node reference\n")

    cpu = CpuDlrmBaseline()
    print("CPU baseline (Xeon 8259CL + TF-Serving, batched):")
    for batch, latency, throughput in cpu.sweep():
        print(f"  batch {batch:5d}: latency {units.to_ms(latency):8.2f} ms, "
              f"throughput {throughput:10,.0f}/s")

    best_cpu = cpu.best_throughput()
    print(f"\nthroughput advantage: {stats.throughput / best_cpu:.1f}x "
          f"over the best CPU batch size")
    print(f"latency advantage:   {cpu.latency(256) / stats.mean_latency:.0f}x "
          f"vs the CPU at its serving batch (256)")


if __name__ == "__main__":
    main()
