#!/usr/bin/env python
"""Debugging a collective with the execution tracer.

The paper motivates the simulation platform with shortened hardware
debugging cycles; the tracer is how that looks in practice here.  This
example runs one rendezvous reduce with tracing enabled, prints an event
summary per engine, the DMP occupancy, and the first control-plane events
of the root — the view a developer uses to see *why* a collective is slow.

Run:  python examples/trace_debugging.py
"""

import numpy as np

from repro import units
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import build_fpga_cluster
from repro.platform.base import BufferLocation
from repro.sim import all_of
from repro.trace import Tracer


def main():
    size = 4
    nbytes = 64 * units.KIB
    cluster = build_fpga_cluster(size, protocol="rdma", platform="coyote")
    tracer = Tracer()
    for node in cluster.nodes:
        node.engine.attach_tracer(tracer)

    views = [
        cluster.nodes[r].platform.wrap(
            np.full(nbytes // 4, float(r + 1), np.float32),
            BufferLocation.DEVICE).view()
        for r in range(size)
    ]
    result = cluster.nodes[0].platform.wrap(
        np.zeros(nbytes // 4, np.float32), BufferLocation.DEVICE)

    events = [
        cluster.engine(r).call(CollectiveArgs(
            opcode="reduce", nbytes=nbytes, root=0, tag=1 << 20,
            func="sum", sbuf=views[r],
            rbuf=result.view() if r == 0 else None, protocol="rndz",
        ))
        for r in range(size)
    ]
    cluster.env.run(until=all_of(cluster.env, events))
    expected = sum(range(1, size + 1))
    assert np.allclose(result.array, expected)
    print(f"reduce of {units.pretty_size(nbytes)} over {size} ranks done in "
          f"{units.to_us(cluster.env.now):.1f} us "
          f"(result verified: {result.array[0]:.0f})\n")

    print("event summary:")
    for key, count in tracer.summary().items():
        print(f"  {key:28s} {count}")

    spans = tracer.spans("cclo0.dmp", "issue", "retire")
    print(f"\nroot DMP: {len(spans)} instructions, "
          f"mean {np.mean(spans) * 1e6:.2f} us, "
          f"max {np.max(spans) * 1e6:.2f} us")

    print("\nfirst control-plane events at the root:")
    for ev in tracer.filter(component="cclo0.uc")[:4]:
        print(f"  {ev}")


if __name__ == "__main__":
    main()
