"""Unit tests for the protocol offload engines (UDP, TCP, RDMA)."""

import numpy as np
import pytest

from repro import units
from repro.errors import ProtocolError
from repro.memory import Memory
from repro.network import StarTopology
from repro.protocols import RdmaPoe, TcpPoe, UdpPoe
from repro.sim import Environment


def make_pair(poe_cls, env=None, **kwargs):
    env = env or Environment()
    topo = StarTopology(env)
    a = poe_cls(env, topo.add_endpoint(0, "a"), **kwargs)
    b = poe_cls(env, topo.add_endpoint(1, "b"), **kwargs)
    return env, a, b


class TestUdp:
    def test_datagram_delivery(self):
        env, a, b = make_pair(UdpPoe)
        got = []
        b.on_message(lambda hdr, data: got.append((env.now, hdr, data)))
        a.send_message(1, 4096, meta="tag-7")
        env.run()
        assert len(got) == 1
        _, hdr, _ = got[0]
        assert hdr.nbytes == 4096
        assert hdr.meta == "tag-7"
        assert hdr.src_addr == 0

    def test_payload_data_carried(self):
        env, a, b = make_pair(UdpPoe)
        got = []
        b.on_message(lambda hdr, data: got.append(data))
        payload = np.arange(16)
        a.send_message(1, payload.nbytes, data=payload)
        env.run()
        assert np.array_equal(got[0], payload)

    def test_zero_byte_message_delivered(self):
        env, a, b = make_pair(UdpPoe)
        got = []
        b.on_message(lambda hdr, data: got.append(hdr))
        a.send_message(1, 0, meta="barrier")
        env.run()
        assert got[0].meta == "barrier"

    def test_large_message_segmented(self):
        env, a, b = make_pair(UdpPoe)
        got = []
        b.on_message(lambda hdr, data: got.append(hdr))
        a.send_message(1, 1 * units.MIB)
        env.run()
        assert len(got) == 1
        assert b.endpoint.segments_received > 1

    def test_drop_filter_loses_datagram(self):
        env, a, b = make_pair(UdpPoe)
        got = []
        b.on_message(lambda hdr, data: got.append(hdr))
        b.set_drop_filter(lambda seg: seg.seqno == 0)
        a.send_message(1, 1024)
        env.run()
        assert got == []
        assert b.segments_dropped == 1

    def test_message_ordering_between_peers(self):
        env, a, b = make_pair(UdpPoe)
        got = []
        b.on_message(lambda hdr, data: got.append(hdr.meta))
        for i in range(5):
            a.send_message(1, 512, meta=i)
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_no_handler_is_error(self):
        env, a, b = make_pair(UdpPoe)
        a.send_message(1, 64)
        with pytest.raises(ProtocolError, match="no handler"):
            env.run()


class TestTcp:
    def test_connect_then_send(self):
        env, a, b = make_pair(TcpPoe)
        got = []
        b.on_message(lambda hdr, data: got.append(hdr))

        def client():
            sid = yield a.connect(1)
            b.accept(0)
            assert sid >= 1
            yield a.send_message(1, 8192, meta="hello")

        env.process(client())
        env.run()
        assert len(got) == 1
        assert got[0].meta == "hello"

    def test_send_without_session_rejected(self):
        env, a, b = make_pair(TcpPoe)
        b.on_message(lambda hdr, data: None)
        with pytest.raises(ProtocolError, match="session"):
            a.send_message(1, 100)

    def test_connect_to_self_rejected(self):
        env, a, _ = make_pair(TcpPoe)
        with pytest.raises(ProtocolError):
            a.connect(0)

    def test_session_reuse(self):
        env, a, b = make_pair(TcpPoe)

        def client():
            yield a.connect(1)
            yield a.connect(1)

        env.process(client())
        env.run()
        assert a.session_count == 1

    def test_window_limits_inflight_but_acks_restore(self):
        """A multi-window message must still complete (acks recycle window)."""
        env, a, b = make_pair(TcpPoe, window_bytes=64 * units.KIB)
        got = []
        b.on_message(lambda hdr, data: got.append(env.now))
        b.accept(0)

        def client():
            yield a.connect(1)
            yield a.send_message(1, 1 * units.MIB)

        env.process(client())
        env.run()
        assert len(got) == 1
        assert b.messages_received == 1
        assert a.acks_sent == 0 and b.acks_sent > 0

    def test_retx_memory_charged(self):
        env = Environment()
        topo = StarTopology(env)
        mem_a = Memory(env, capacity=units.GIB, bandwidth=460e9, name="hbm-a")
        a = TcpPoe(env, topo.add_endpoint(0), retx_memory=mem_a)
        b = TcpPoe(env, topo.add_endpoint(1))
        b.on_message(lambda hdr, data: None)
        b.accept(0)

        def client():
            yield a.connect(1)
            yield a.send_message(1, 128 * units.KIB)

        env.process(client())
        env.run()
        assert mem_a.bytes_accessed == 128 * units.KIB

    def test_throughput_reaches_line_rate(self):
        env, a, b = make_pair(TcpPoe)
        done = {}
        b.on_message(lambda hdr, data: done.setdefault("t", env.now))
        b.accept(0)
        size = 16 * units.MIB

        def client():
            yield a.connect(1)
            start = env.now
            yield a.send_message(1, size)
            done["tx"] = env.now - start

        env.process(client())
        env.run()
        goodput = units.to_gbps(size / done["t"])
        assert goodput > 85  # TCP headers at 1460 MSS cost a few percent


class TestRdma:
    def test_two_sided_send(self):
        env, a, b = make_pair(RdmaPoe)
        got = []
        b.on_message(lambda hdr, data: got.append(hdr))
        a.create_qp(1)
        b.create_qp(0)
        a.post_send(1, 4096, meta="rndz-init")
        env.run()
        assert got[0].meta == "rndz-init"
        assert got[0].kind == "send"

    def test_send_without_qp_rejected(self):
        env, a, b = make_pair(RdmaPoe)
        with pytest.raises(ProtocolError, match="queue pair"):
            a.post_send(1, 100)

    def test_qp_to_self_rejected(self):
        env, a, _ = make_pair(RdmaPoe)
        with pytest.raises(ProtocolError):
            a.create_qp(0)

    def test_one_sided_write_bypasses_handler(self):
        env, a, b = make_pair(RdmaPoe)
        handler_msgs = []
        writes = []
        b.on_message(lambda hdr, data: handler_msgs.append(hdr))
        b.set_memory_writer(
            lambda hdr, data: writes.append((hdr.meta, hdr.nbytes, data))
        )
        a.create_qp(1)
        b.create_qp(0)
        payload = np.ones(1024)
        a.post_write(1, payload.nbytes, remote_descriptor="vaddr:0x1000",
                     data=payload)
        env.run()
        assert handler_msgs == []
        assert len(writes) == 1
        desc, nbytes, data = writes[0]
        assert desc == "vaddr:0x1000"
        assert nbytes == payload.nbytes
        assert np.array_equal(data, payload)
        assert b.writes_completed == 1

    def test_write_without_memory_writer_is_error(self):
        env, a, b = make_pair(RdmaPoe)
        b.on_message(lambda hdr, data: None)
        a.create_qp(1)
        b.create_qp(0)
        a.post_write(1, 64, remote_descriptor=None)
        with pytest.raises(ProtocolError, match="memory writer"):
            env.run()

    def test_credits_throttle_and_recover(self):
        env, a, b = make_pair(RdmaPoe, credit_bytes=128 * units.KIB)
        got = []
        b.on_message(lambda hdr, data: got.append(env.now))
        a.create_qp(1)
        b.create_qp(0)
        a.post_send(1, 2 * units.MIB)
        env.run()
        assert len(got) == 1

    def test_write_then_send_ordering(self):
        """RNDZ_DONE (SEND) issued after WRITE must arrive after the data."""
        env, a, b = make_pair(RdmaPoe)
        order = []
        b.on_message(lambda hdr, data: order.append(("send", hdr.meta)))
        b.set_memory_writer(lambda hdr, data: order.append(("write", None)))
        a.create_qp(1)
        b.create_qp(0)

        def sender():
            yield a.post_write(1, 256 * units.KIB, remote_descriptor="buf")
            yield a.post_send(1, 64, meta="RNDZ_DONE")

        env.process(sender())
        env.run()
        assert order[0][0] == "write"
        assert order[-1] == ("send", "RNDZ_DONE")

    def test_qp_reuse(self):
        env, a, b = make_pair(RdmaPoe)
        qp1 = a.create_qp(1)
        qp2 = a.create_qp(1)
        assert qp1 is qp2
        assert a.qp_count == 1

    def test_throughput_near_line_rate(self):
        env, a, b = make_pair(RdmaPoe)
        done = {}
        b.on_message(lambda hdr, data: done.setdefault("t", env.now))
        a.create_qp(1)
        b.create_qp(0)
        size = 16 * units.MIB
        a.post_send(1, size)
        env.run()
        goodput = units.to_gbps(size / done["t"])
        assert goodput > 90  # 4 KiB MTU: tiny header tax
