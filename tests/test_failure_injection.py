"""Failure-injection tests: loss, exhaustion, deadlocks, misuse."""

import numpy as np
import pytest

from repro import units
from repro.cclo.config_mem import CcloConfig
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import build_fpga_cluster
from repro.errors import CcloError, CollectiveError, ConfigurationError
from repro.platform.base import BufferLocation
from repro.sim import Environment, SimulationError, all_of
from repro.sim.kernel import Interrupt
from tests.helpers import dev_buffer, empty_dev_buffer, make_cluster

N = 128


def data(seed):
    return np.random.default_rng(seed).standard_normal(N).astype(np.float32)


class TestUdpLoss:
    def test_lost_datagram_stalls_receiver_detectably(self):
        """UDP provides no recovery: a dropped message leaves the receive
        pending forever, surfaced as a deadlock by the kernel."""
        cluster = make_cluster(2, protocol="udp")
        cluster.nodes[1].poe.set_drop_filter(lambda seg: True)
        payload = data(1)
        sview = dev_buffer(cluster, 0, payload)
        rview = empty_dev_buffer(cluster, 1, N)
        recv_ev = cluster.engine(1).call(CollectiveArgs(
            opcode="recv", peer=0, nbytes=payload.nbytes, rbuf=rview))
        cluster.engine(0).call(CollectiveArgs(
            opcode="send", peer=1, nbytes=payload.nbytes, sbuf=sview))
        with pytest.raises(SimulationError, match="deadlock"):
            cluster.env.run(until=recv_ev)
        assert cluster.nodes[1].poe.segments_dropped > 0

    def test_selective_loss_spares_other_messages(self):
        cluster = make_cluster(2, protocol="udp")
        # Drop only tag-0 traffic; tag-1 must still arrive.
        cluster.nodes[1].poe.set_drop_filter(
            lambda seg: seg.meta.meta.tag == 0)
        good = data(2)
        sview = dev_buffer(cluster, 0, good)
        rview = empty_dev_buffer(cluster, 1, N)
        recv_ev = cluster.engine(1).call(CollectiveArgs(
            opcode="recv", peer=0, nbytes=good.nbytes, tag=1, rbuf=rview))
        cluster.engine(0).call(CollectiveArgs(
            opcode="send", peer=1, nbytes=good.nbytes, tag=0,
            sbuf=dev_buffer(cluster, 0, data(3))))
        cluster.engine(0).call(CollectiveArgs(
            opcode="send", peer=1, nbytes=good.nbytes, tag=1, sbuf=sview))
        cluster.env.run(until=recv_ev)
        np.testing.assert_allclose(rview.array, good)


class TestResourceExhaustion:
    def test_oversized_eager_message_rejected_with_guidance(self):
        config = CcloConfig(rx_pool_bytes=64 * units.KIB)
        cluster = build_fpga_cluster(2, platform="sim",
                                     cclo_config=config)
        big = 128 * units.KIB
        sview = cluster.nodes[0].platform.allocate(
            big, BufferLocation.DEVICE).view()
        rview = cluster.nodes[1].platform.allocate(
            big, BufferLocation.DEVICE).view()
        events = [
            cluster.engine(1).call(CollectiveArgs(
                opcode="recv", peer=0, nbytes=big, rbuf=rview,
                protocol="eager")),
            cluster.engine(0).call(CollectiveArgs(
                opcode="send", peer=1, nbytes=big, sbuf=sview,
                protocol="eager")),
        ]
        with pytest.raises(CcloError, match="rendezvous"):
            cluster.env.run(until=all_of(cluster.env, events))

    def test_device_memory_exhaustion_is_loud(self):
        cluster = make_cluster(2, platform="coyote")
        plat = cluster.nodes[0].platform
        from repro.errors import PlatformError
        with pytest.raises(PlatformError, match="out of memory"):
            plat.allocate(32 * units.GIB, BufferLocation.DEVICE)

    def test_disabled_plugin_rejected(self):
        """A CCLO compiled without the reduction plugin cannot reduce."""
        config = CcloConfig(plugins=())
        cluster = build_fpga_cluster(4, platform="sim", cclo_config=config)
        contribs = [data(40 + r) for r in range(4)]
        svs = [dev_buffer(cluster, r, contribs[r]) for r in range(4)]
        rview = empty_dev_buffer(cluster, 0, N)
        events = cluster.call_on_all(lambda r: CollectiveArgs(
            opcode="reduce", nbytes=contribs[0].nbytes, root=0,
            tag=1 << 20, sbuf=svs[r], rbuf=rview if r == 0 else None))
        with pytest.raises(CcloError, match="not compiled"):
            cluster.env.run(until=all_of(cluster.env, events))


class TestMisuse:
    def test_send_to_self_rejected(self):
        cluster = make_cluster(2)
        ev = cluster.engine(0).call(CollectiveArgs(
            opcode="send", peer=0, nbytes=64,
            sbuf=empty_dev_buffer(cluster, 0, 16)))
        with pytest.raises(CollectiveError, match="self"):
            cluster.env.run(until=ev)

    def test_rank_out_of_communicator_rejected(self):
        cluster = make_cluster(2)
        ev = cluster.engine(0).call(CollectiveArgs(
            opcode="send", peer=5, nbytes=64,
            sbuf=empty_dev_buffer(cluster, 0, 16)))
        with pytest.raises(ConfigurationError, match="rank 5"):
            cluster.env.run(until=ev)

    def test_unknown_opcode_rejected(self):
        cluster = make_cluster(2)
        ev = cluster.engine(0).call(CollectiveArgs(opcode="alltoallv"))
        with pytest.raises(CollectiveError, match="alltoallv"):
            cluster.env.run(until=ev)

    def test_unknown_communicator_rejected(self):
        cluster = make_cluster(2)
        ev = cluster.engine(0).call(CollectiveArgs(
            opcode="barrier", comm_id=9))
        with pytest.raises(ConfigurationError, match="communicator 9"):
            cluster.env.run(until=ev)

    def test_firmware_fault_fails_the_command_not_the_engine(self):
        """A faulting firmware surfaces on its own completion event; the
        engine keeps serving subsequent commands."""
        cluster = make_cluster(2)

        def broken(ctx, args):
            yield ctx.cost()
            raise RuntimeError("firmware bug")

        cluster.engine(0).uc.registry.register("explode", "direct", broken)
        bad = cluster.engine(0).call(CollectiveArgs(
            opcode="explode", algorithm="direct"))
        with pytest.raises(RuntimeError, match="firmware bug"):
            cluster.env.run(until=bad)
        # Engine still alive: a NOP completes afterwards.
        ok = cluster.engine(0).call(CollectiveArgs(opcode="nop"))
        cluster.env.run(until=ok)
        assert ok.ok


class TestInterruptPaths:
    def test_process_interrupt_models_timer_cancellation(self):
        env = Environment()
        outcomes = []

        def retransmit_timer():
            try:
                yield env.timeout(1.0)
                outcomes.append("fired")
            except Interrupt:
                outcomes.append("cancelled")

        timer = env.process(retransmit_timer())

        def ack_arrives():
            yield env.timeout(0.2)
            timer.interrupt("ack")

        env.process(ack_arrives())
        env.run()
        assert outcomes == ["cancelled"]
