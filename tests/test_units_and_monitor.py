"""Unit tests for unit helpers and the Monitor."""

import pytest

from repro import units
from repro.sim import Monitor


class TestUnits:
    def test_time_conversions(self):
        assert units.ns(1) == pytest.approx(1e-9)
        assert units.us(2.5) == pytest.approx(2.5e-6)
        assert units.ms(3) == pytest.approx(3e-3)
        assert units.to_us(1e-6) == pytest.approx(1.0)
        assert units.to_ms(1e-3) == pytest.approx(1.0)

    def test_bandwidth_conversions(self):
        assert units.gbps(100) == pytest.approx(12.5e9)
        assert units.to_gbps(12.5e9) == pytest.approx(100.0)
        assert units.gibps(1) == pytest.approx(1024**3)

    def test_gbps_roundtrip(self):
        assert units.to_gbps(units.gbps(42.0)) == pytest.approx(42.0)

    def test_cycles(self):
        assert units.cycles(250, 250e6) == pytest.approx(1e-6)
        with pytest.raises(ValueError):
            units.cycles(1, 0)

    def test_pretty_size(self):
        assert units.pretty_size(512) == "512B"
        assert units.pretty_size(1024) == "1KiB"
        assert units.pretty_size(3 * 1024**2) == "3MiB"
        assert units.pretty_size(2 * 1024**3) == "2GiB"
        with pytest.raises(ValueError):
            units.pretty_size(-1)

    def test_size_constants(self):
        assert units.KIB == 1024
        assert units.MIB == 1024**2
        assert units.GIB == 1024**3


class TestMonitor:
    def test_record_and_stats(self):
        mon = Monitor("lat")
        for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            mon.record(float(i), v)
        assert len(mon) == 4
        assert mon.mean() == pytest.approx(2.5)
        assert mon.minimum() == 1.0
        assert mon.maximum() == 4.0
        assert mon.percentile(50) == pytest.approx(2.5)
        assert mon.percentile(0) == 1.0
        assert mon.percentile(100) == 4.0

    def test_stddev(self):
        mon = Monitor()
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            mon.record(0.0, v)
        assert mon.stddev() == pytest.approx(2.138, abs=1e-3)

    def test_single_sample_stddev_zero(self):
        mon = Monitor()
        mon.record(0.0, 1.0)
        assert mon.stddev() == 0.0

    def test_empty_monitor_raises(self):
        mon = Monitor()
        with pytest.raises(ValueError):
            mon.mean()
        with pytest.raises(ValueError):
            mon.percentile(50)

    def test_bad_percentile_rejected(self):
        mon = Monitor()
        mon.record(0.0, 1.0)
        with pytest.raises(ValueError):
            mon.percentile(101)

    def test_summary_keys(self):
        mon = Monitor("x")
        mon.record(0.0, 1.0)
        mon.record(1.0, 3.0)
        s = mon.summary()
        assert s["count"] == 2
        assert s["mean"] == pytest.approx(2.0)
        assert set(s) == {"name", "count", "mean", "min", "max", "p50", "p99"}

    def test_clear(self):
        mon = Monitor()
        mon.record(0.0, 1.0)
        mon.clear()
        assert len(mon) == 0
