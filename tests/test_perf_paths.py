"""Tests pinning the PR-2 performance fast paths to baseline behavior.

Every optimization here has a slower, simpler twin (uncoalesced link
delivery, ``payload_mode="functional"``, event-object sleeps); these tests
assert the fast paths are *observationally identical* to the twins —
same delivery order, same timestamps, same simulated totals.
"""

import random

import pytest

from repro import units
from repro.bench.harness import accl_collective_time
from repro.cclo.config_mem import CcloConfig
from repro.errors import ConfigurationError, NetworkError
from repro.network import Link, Segment
from repro.sim import Environment, Interrupt
from repro.sim.kernel import SimulationError


def _run_segment_train(coalesce: bool, train):
    """Drive one link with a (payload, gap) train; returns the arrival
    log ``[(time, payload), ...]`` and the final simulation time."""
    env = Environment()
    link = Link(env, rate=units.gbps(10), latency=units.us(1),
                coalesce=coalesce)
    arrivals = []
    link.connect(lambda seg: arrivals.append((env.now, seg.payload_bytes)))

    def sender():
        for payload, gap in train:
            link.send(Segment(0, 1, payload_bytes=payload))
            if gap > 0.0:
                yield gap

    env.process(sender())
    env.run()
    return arrivals, env.now


class TestLinkCoalescing:
    """The coalesced delivery pump must be indistinguishable from one
    heap entry per segment."""

    @pytest.mark.parametrize("seed", [1, 7, 42, 1234])
    def test_randomized_trains_identical(self, seed):
        rng = random.Random(seed)
        train = []
        for _ in range(rng.randint(40, 120)):
            payload = rng.choice([
                0, 1, 64, rng.randint(1, Link.MAX_SEGMENT_BYTES),
                Link.MAX_SEGMENT_BYTES,
            ])
            # Mix back-to-back bursts (gap 0: the case coalescing targets)
            # with idle gaps long enough to drain the pump in between.
            gap = rng.choice([0.0, 0.0, 0.0, units.us(rng.uniform(0.1, 50))])
            train.append((payload, gap))

        coalesced, end_c = _run_segment_train(True, train)
        uncoalesced, end_u = _run_segment_train(False, train)
        assert coalesced == uncoalesced
        assert end_c == end_u

    def test_back_to_back_burst_single_heap_entry_timing(self):
        # Worked example: 3 segments at 1000 B/s, zero gap.  Wire size is
        # payload + Ethernet header; each serializes after the previous.
        env = Environment()
        link = Link(env, rate=1000.0, latency=0.5, coalesce=True)
        arrivals = []
        link.connect(lambda seg: arrivals.append(env.now))
        from repro.network.packet import ETHERNET_HEADER_BYTES
        payload = 1000 - ETHERNET_HEADER_BYTES
        for _ in range(3):
            link.send(Segment(0, 1, payload_bytes=payload, mtu=4000))
        env.run()
        assert arrivals == [pytest.approx(1.5), pytest.approx(2.5),
                            pytest.approx(3.5)]

    def test_pump_reschedules_after_idle_gap(self):
        train = [(1000, units.us(500)), (1000, 0.0)]
        coalesced, end_c = _run_segment_train(True, train)
        uncoalesced, end_u = _run_segment_train(False, train)
        assert coalesced == uncoalesced
        assert end_c == end_u


class TestMaxSegmentBoundary:
    def _link(self):
        env = Environment()
        link = Link(env, rate=units.gbps(100), latency=0.0)
        arrivals = []
        link.connect(arrivals.append)
        return env, link, arrivals

    def test_exactly_max_segment_is_legal(self):
        env, link, arrivals = self._link()
        link.send(Segment(0, 1, payload_bytes=Link.MAX_SEGMENT_BYTES))
        env.run()
        assert len(arrivals) == 1
        assert arrivals[0].payload_bytes == Link.MAX_SEGMENT_BYTES

    def test_one_byte_over_max_raises_with_size_and_limit(self):
        env, link, arrivals = self._link()
        oversized = Link.MAX_SEGMENT_BYTES + 1
        with pytest.raises(NetworkError) as exc:
            link.send(Segment(0, 1, payload_bytes=oversized))
        message = str(exc.value)
        assert str(oversized) in message
        assert str(Link.MAX_SEGMENT_BYTES) in message
        assert arrivals == []


class TestRunUntilNow:
    def test_run_until_current_time_returns_immediately(self):
        env = Environment()
        fired = []
        env.schedule_callback(1.0, lambda: fired.append(env.now))
        assert env.run(until=env.now) is None
        assert env.now == 0.0
        assert fired == []  # nothing strictly in the future may run

    def test_run_until_now_after_advancing(self):
        env = Environment()
        env.schedule_callback(2.0, lambda: None)
        env.run(until=2.0)
        assert env.now == 2.0
        env.schedule_callback(1.0, lambda: None)
        assert env.run(until=env.now) is None
        assert env.now == 2.0

    def test_run_until_past_time_still_raises(self):
        env = Environment()
        env.schedule_callback(1.0, lambda: None)
        env.run(until=1.0)
        with pytest.raises(SimulationError):
            env.run(until=0.5)


class TestSleepFastPath:
    """``yield <float>`` sleeps: same semantics as ``yield env.timeout()``."""

    def test_float_yield_advances_time(self):
        env = Environment()
        log = []

        def proc():
            yield 1.5
            log.append(env.now)
            yield 0.25
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [1.5, 1.75]

    def test_negative_sleep_rejected(self):
        env = Environment()

        def proc():
            yield -1.0

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_interrupt_during_float_sleep(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield 10.0
                log.append("overslept")
            except Interrupt as exc:
                log.append(("interrupted", env.now, exc.cause))
                yield 1.0
                log.append(("resumed", env.now))

        def interrupter(victim):
            yield 2.0
            victim.interrupt("wake")

        victim = env.process(sleeper())
        env.process(interrupter(victim))
        env.run()
        # The stale wakeup at t=10 must not resume the process a second
        # time: it re-slept for 1s after the interrupt, not 8s.
        assert log == [("interrupted", 2.0, "wake"), ("resumed", 3.0)]
        assert env.now == pytest.approx(10.0)  # stale token still pops

    def test_mixed_float_and_event_yields(self):
        env = Environment()
        log = []

        def proc():
            yield 1.0
            yield env.timeout(1.0)
            yield 1.0
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [3.0]


class TestPayloadModeCounted:
    """``payload_mode="counted"`` elides data materialization but must be
    cycle-identical to the default on the timing side."""

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            CcloConfig(payload_mode="bogus")

    def test_default_is_functional(self):
        assert CcloConfig().payload_mode == "functional"

    @pytest.mark.parametrize("size", [64 * units.KIB, 256 * units.MIB],
                             ids=["fig07-smallest", "fig07-largest"])
    def test_timing_identical_on_fig07_p2p_points(self, size):
        elapsed = {}
        events = {}
        for mode in ("functional", "counted"):
            config = CcloConfig(payload_mode=mode)
            before = Environment.total_events_processed
            elapsed[mode] = _p2p_elapsed(size, n_msgs=2, cclo_config=config)
            events[mode] = Environment.total_events_processed - before
        assert elapsed["counted"] == elapsed["functional"]  # bit-exact
        assert events["counted"] == events["functional"]

    def test_timing_identical_on_collective(self):
        times = {
            mode: accl_collective_time(
                "allreduce", 16 * units.KIB, n_nodes=4,
                cclo_config=CcloConfig(payload_mode=mode))
            for mode in ("functional", "counted")
        }
        assert times["counted"] == times["functional"]


def _p2p_elapsed(size, n_msgs, cclo_config):
    """The fig07 point kernel, parameterized by CCLO config."""
    from repro.cclo.microcontroller import CollectiveArgs
    from repro.cluster import build_fpga_cluster
    from repro.sim import all_of

    cluster = build_fpga_cluster(2, protocol="rdma", platform="coyote",
                                 cclo_config=cclo_config)
    p0, p1 = (cluster.nodes[0].platform, cluster.nodes[1].platform)
    events = []
    for i in range(n_msgs):
        rbuf = p1.allocate(size).view()
        sbuf = p0.allocate(size).view()
        events.append(cluster.engine(1).call(CollectiveArgs(
            opcode="recv", nbytes=size, peer=0, tag=i, rbuf=rbuf)))
        events.append(cluster.engine(0).call(CollectiveArgs(
            opcode="send", nbytes=size, peer=1, tag=i, sbuf=sbuf)))
    start = cluster.env.now
    cluster.env.run(until=all_of(cluster.env, events))
    return cluster.env.now - start
