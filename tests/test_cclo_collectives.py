"""End-to-end functional tests of CCLO collectives on simulated clusters.

Every test moves real numpy payloads through the full stack (uC firmware ->
DMP microcode -> Tx/Rx -> POE -> fabric) and checks values against numpy
references, per algorithm and per synchronization protocol.
"""

import numpy as np
import pytest

from repro.cclo.microcontroller import CollectiveArgs
from tests.helpers import dev_buffer, empty_dev_buffer, make_cluster

N = 256  # elements per rank block
DTYPE = np.float32


def rank_data(rank, n=N, seed_shift=0):
    rng = np.random.default_rng(1234 + rank + seed_shift)
    return rng.standard_normal(n).astype(DTYPE)


class TestSendRecv:
    @pytest.mark.parametrize("protocol", ["eager", "rndz"])
    def test_point_to_point_payload(self, protocol):
        cluster = make_cluster(2)
        payload = rank_data(0)
        sview = dev_buffer(cluster, 0, payload)
        rview = empty_dev_buffer(cluster, 1, N)

        def args(rank):
            if rank == 0:
                return CollectiveArgs(opcode="send", peer=1, nbytes=payload.nbytes,
                                      sbuf=sview, protocol=protocol)
            return CollectiveArgs(opcode="recv", peer=0, nbytes=payload.nbytes,
                                  rbuf=rview, protocol=protocol)

        elapsed = cluster.run_collective(args)
        assert elapsed > 0
        np.testing.assert_allclose(rview.array, payload)

    def test_sendrecv_tcp(self):
        cluster = make_cluster(2, protocol="tcp")
        payload = rank_data(0)
        sview = dev_buffer(cluster, 0, payload)
        rview = empty_dev_buffer(cluster, 1, N)

        def args(rank):
            if rank == 0:
                return CollectiveArgs(opcode="send", peer=1,
                                      nbytes=payload.nbytes, sbuf=sview)
            return CollectiveArgs(opcode="recv", peer=0,
                                  nbytes=payload.nbytes, rbuf=rview)

        cluster.run_collective(args)
        np.testing.assert_allclose(rview.array, payload)

    def test_sendrecv_udp(self):
        cluster = make_cluster(2, protocol="udp")
        payload = rank_data(0)
        sview = dev_buffer(cluster, 0, payload)
        rview = empty_dev_buffer(cluster, 1, N)

        def args(rank):
            if rank == 0:
                return CollectiveArgs(opcode="send", peer=1,
                                      nbytes=payload.nbytes, sbuf=sview)
            return CollectiveArgs(opcode="recv", peer=0,
                                  nbytes=payload.nbytes, rbuf=rview)

        cluster.run_collective(args)
        np.testing.assert_allclose(rview.array, payload)

    def test_nop_completes(self):
        cluster = make_cluster(2)
        elapsed = cluster.run_collective(
            lambda rank: CollectiveArgs(opcode="nop") if rank == 0 else None
        )
        assert elapsed >= 0


class TestBcast:
    @pytest.mark.parametrize("algorithm", ["one_to_all", "recursive_doubling",
                                           "scatter_allgather"])
    @pytest.mark.parametrize("size,root", [(4, 0), (8, 0), (8, 3), (5, 2)])
    def test_bcast_values(self, algorithm, size, root):
        cluster = make_cluster(size)
        payload = rank_data(root)
        views = []
        for rank in range(size):
            if rank == root:
                views.append(dev_buffer(cluster, rank, payload.copy()))
            else:
                views.append(empty_dev_buffer(cluster, rank, N))

        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="bcast", root=root, nbytes=payload.nbytes, rbuf=views[r],
            algorithm=algorithm,
        ))
        for rank in range(size):
            np.testing.assert_allclose(views[rank].array, payload,
                                       err_msg=f"rank {rank}")


class TestReduce:
    @pytest.mark.parametrize("algorithm", ["ring", "all_to_one", "binary_tree"])
    @pytest.mark.parametrize("size,root", [(4, 0), (8, 0), (8, 5), (3, 1)])
    def test_reduce_sum(self, algorithm, size, root):
        cluster = make_cluster(size)
        contributions = [rank_data(r) for r in range(size)]
        svs = [dev_buffer(cluster, r, contributions[r]) for r in range(size)]
        rview = empty_dev_buffer(cluster, root, N)

        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="reduce", root=root, nbytes=contributions[0].nbytes,
            sbuf=svs[r], rbuf=rview if r == root else None,
            func="sum", algorithm=algorithm,
        ))
        expected = np.sum(contributions, axis=0)
        np.testing.assert_allclose(rview.array, expected, rtol=1e-3, atol=1e-5)

    @pytest.mark.parametrize("func,npfunc", [
        ("max", np.max), ("min", np.min), ("prod", np.prod),
    ])
    def test_reduce_other_ops(self, func, npfunc):
        size = 4
        cluster = make_cluster(size)
        contributions = [rank_data(r) * 0.5 for r in range(size)]
        svs = [dev_buffer(cluster, r, contributions[r]) for r in range(size)]
        rview = empty_dev_buffer(cluster, 0, N)

        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="reduce", root=0, nbytes=contributions[0].nbytes,
            sbuf=svs[r], rbuf=rview if r == 0 else None, func=func,
        ))
        expected = npfunc(np.stack(contributions), axis=0)
        np.testing.assert_allclose(rview.array, expected, rtol=1e-3, atol=1e-5)

    def test_reduce_does_not_clobber_contributions(self):
        size = 4
        cluster = make_cluster(size)
        contributions = [rank_data(r) for r in range(size)]
        svs = [dev_buffer(cluster, r, contributions[r].copy())
               for r in range(size)]
        rview = empty_dev_buffer(cluster, 0, N)
        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="reduce", root=0, nbytes=contributions[0].nbytes,
            sbuf=svs[r], rbuf=rview if r == 0 else None, algorithm="ring",
        ))
        for r in range(1, size):
            np.testing.assert_allclose(svs[r].array, contributions[r])


class TestGatherScatter:
    @pytest.mark.parametrize("algorithm", ["ring", "all_to_one", "binary_tree"])
    @pytest.mark.parametrize("size,root", [(4, 0), (8, 0), (8, 2), (5, 4)])
    def test_gather_values(self, algorithm, size, root):
        cluster = make_cluster(size)
        blocks = [rank_data(r) for r in range(size)]
        svs = [dev_buffer(cluster, r, blocks[r]) for r in range(size)]
        rview = empty_dev_buffer(cluster, root, N * size)

        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="gather", root=root, nbytes=blocks[0].nbytes, sbuf=svs[r],
            rbuf=rview if r == root else None, algorithm=algorithm,
        ))
        expected = np.concatenate(blocks)
        np.testing.assert_allclose(rview.array, expected)

    @pytest.mark.parametrize("algorithm", ["linear", "binary_tree"])
    @pytest.mark.parametrize("size,root", [(4, 0), (8, 0), (8, 6)])
    def test_scatter_values(self, algorithm, size, root):
        cluster = make_cluster(size)
        blocks = [rank_data(r, seed_shift=99) for r in range(size)]
        sview = dev_buffer(cluster, root, np.concatenate(blocks))
        rvs = [empty_dev_buffer(cluster, r, N) for r in range(size)]

        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="scatter", root=root, nbytes=blocks[0].nbytes,
            sbuf=sview if r == root else None, rbuf=rvs[r],
            algorithm=algorithm,
        ))
        for rank in range(size):
            np.testing.assert_allclose(rvs[rank].array, blocks[rank],
                                       err_msg=f"rank {rank}")


class TestAllCollectives:
    @pytest.mark.parametrize("size", [2, 4, 8, 5])
    def test_allgather_values(self, size):
        cluster = make_cluster(size)
        blocks = [rank_data(r) for r in range(size)]
        svs = [dev_buffer(cluster, r, blocks[r]) for r in range(size)]
        rvs = [empty_dev_buffer(cluster, r, N * size) for r in range(size)]

        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="allgather", nbytes=blocks[0].nbytes, sbuf=svs[r],
            rbuf=rvs[r],
        ))
        expected = np.concatenate(blocks)
        for rank in range(size):
            np.testing.assert_allclose(rvs[rank].array, expected,
                                       err_msg=f"rank {rank}")

    @pytest.mark.parametrize("algorithm", ["ring", "reduce_bcast"])
    @pytest.mark.parametrize("size", [2, 4, 8, 6])
    def test_allreduce_values(self, algorithm, size):
        cluster = make_cluster(size)
        contributions = [rank_data(r) for r in range(size)]
        svs = [dev_buffer(cluster, r, contributions[r]) for r in range(size)]
        rvs = [empty_dev_buffer(cluster, r, N) for r in range(size)]

        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="allreduce", nbytes=contributions[0].nbytes, sbuf=svs[r],
            rbuf=rvs[r], func="sum", algorithm=algorithm,
        ))
        expected = np.sum(contributions, axis=0)
        for rank in range(size):
            np.testing.assert_allclose(rvs[rank].array, expected, rtol=1e-3, atol=1e-5,
                                       err_msg=f"rank {rank}")

    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_alltoall_values(self, size):
        cluster = make_cluster(size)
        # sbuf of rank r block d = data(r, d)
        svs, rvs = [], []
        for r in range(size):
            blocks = [rank_data(r * size + d, seed_shift=7) for d in range(size)]
            svs.append(dev_buffer(cluster, r, np.concatenate(blocks)))
            rvs.append(empty_dev_buffer(cluster, r, N * size))

        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="alltoall", nbytes=rank_data(0).nbytes, sbuf=svs[r],
            rbuf=rvs[r],
        ))
        for d in range(size):
            expected = np.concatenate(
                [rank_data(s * size + d, seed_shift=7) for s in range(size)]
            )
            np.testing.assert_allclose(rvs[d].array, expected,
                                       err_msg=f"dst rank {d}")

    @pytest.mark.parametrize("size", [1, 2, 4, 8, 5])
    def test_barrier_completes(self, size):
        cluster = make_cluster(size)
        elapsed = cluster.run_collective(
            lambda r: CollectiveArgs(opcode="barrier")
        )
        assert elapsed >= 0

    def test_barrier_synchronizes(self):
        """No rank may exit the barrier before the last rank has entered."""
        cluster = make_cluster(4)
        env = cluster.env
        enter_times = {}
        exit_times = {}

        def staggered(rank):
            yield env.timeout(rank * 1e-3)  # rank k enters at k ms
            enter_times[rank] = env.now
            yield cluster.engine(rank).call(CollectiveArgs(opcode="barrier"))
            exit_times[rank] = env.now

        for rank in range(4):
            env.process(staggered(rank))
        env.run()
        assert min(exit_times.values()) >= max(enter_times.values())


class TestStreaming:
    def test_streaming_send_to_memory_recv(self):
        """Kernel pushes a stream; remote receives into memory."""
        cluster = make_cluster(2)
        env = cluster.env
        payload = rank_data(3)
        rview = empty_dev_buffer(cluster, 1, N)
        engine0 = cluster.engine(0)

        def kernel():
            # Issue the streaming send command, then push data (Listing 2).
            done = engine0.call(CollectiveArgs(
                opcode="send", peer=1, nbytes=payload.nbytes, from_stream=True,
            ))
            for chunk in np.split(payload, 4):
                yield engine0.kernel_data_in.put((chunk.nbytes, chunk))
            yield done

        recv_done = cluster.engine(1).call(CollectiveArgs(
            opcode="recv", peer=0, nbytes=payload.nbytes, rbuf=rview,
        ))
        env.process(kernel())
        env.run()
        assert recv_done.ok
        np.testing.assert_allclose(rview.array, payload)

    def test_memory_send_to_streaming_recv(self):
        cluster = make_cluster(2)
        env = cluster.env
        payload = rank_data(5)
        sview = dev_buffer(cluster, 0, payload)
        engine1 = cluster.engine(1)
        got = {}

        def kernel():
            done = engine1.call(CollectiveArgs(
                opcode="recv", peer=0, nbytes=payload.nbytes, to_stream=True,
            ))
            nbytes, data = yield engine1.kernel_data_out.get()
            got["nbytes"] = nbytes
            got["data"] = data
            yield done

        cluster.engine(0).call(CollectiveArgs(
            opcode="send", peer=1, nbytes=payload.nbytes, sbuf=sview,
        ))
        env.process(kernel())
        env.run()
        assert got["nbytes"] == payload.nbytes
        np.testing.assert_allclose(np.asarray(got["data"]).reshape(-1), payload)

    def test_streaming_reduce_contributions(self):
        """Non-root ranks stream contributions; root reduces into memory."""
        size = 4
        cluster = make_cluster(size)
        env = cluster.env
        contributions = [rank_data(r) for r in range(size)]
        rview = empty_dev_buffer(cluster, 0, N)
        events = []

        for rank in range(size):
            engine = cluster.engine(rank)
            args = CollectiveArgs(
                opcode="reduce", root=0, nbytes=contributions[rank].nbytes,
                from_stream=True, rbuf=rview if rank == 0 else None,
                func="sum", algorithm="all_to_one",
            )
            events.append(engine.call(args))

            def pusher(engine=engine, data=contributions[rank]):
                yield engine.kernel_data_in.put((data.nbytes, data))

            env.process(pusher())
        env.run()
        assert all(ev.ok for ev in events)
        np.testing.assert_allclose(
            rview.array, np.sum(contributions, axis=0), rtol=1e-3, atol=1e-5
        )
