"""Coverage for smaller surfaces: requests, communicators, endpoints,
kernel edge cases, DLRM stats."""

import numpy as np
import pytest

from repro import units
from repro.apps.dlrm.pipeline import DlrmRunStats
from repro.driver.communicator import (
    COLLECTIVE_TAG_BASE,
    PEER_SETUP_COST,
    TAG_STRIDE,
    Communicator,
)
from repro.driver.request import CclRequest
from repro.cclo.config_mem import CommunicatorConfig
from repro.errors import NetworkError
from repro.network import StarTopology
from repro.sim import Environment, Event, any_of
from repro.sim.kernel import SimulationError


class TestCclRequest:
    def test_wait_on_already_completed(self):
        env = Environment()
        ev = env.event()
        ev.succeed("value")
        env.run()
        req = CclRequest(env, ev, "op")
        assert req.wait() == "value"
        assert req.done and req.ok

    def test_wait_raises_stored_failure(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("bad"))
        ev.defuse()
        env.run()
        req = CclRequest(env, ev, "op")
        with pytest.raises(RuntimeError, match="bad"):
            req.wait()

    def test_duration_tracks_completion_time(self):
        env = Environment()
        req = CclRequest(env, env.timeout(2.5), "op")
        req.wait()
        assert req.duration == pytest.approx(2.5)

    def test_duration_before_completion_rejected(self):
        env = Environment()
        never = env.event()
        req = CclRequest(env, never, "op")
        with pytest.raises(RuntimeError, match="in flight"):
            req.duration

    def test_repr_shows_state(self):
        env = Environment()
        req = CclRequest(env, env.event(), "bcast")
        assert "pending" in repr(req)


class TestCommunicatorHandle:
    def make(self, size=4, rank=1):
        return Communicator(CommunicatorConfig(0, rank, list(range(size))))

    def test_identity(self):
        comm = self.make()
        assert comm.rank == 1 and comm.size == 4 and comm.comm_id == 0

    def test_tag_windows_disjoint(self):
        comm = self.make()
        a, b = comm.next_tag(), comm.next_tag()
        assert a == COLLECTIVE_TAG_BASE
        assert b - a == TAG_STRIDE

    def test_setup_cost_scales_with_peers(self):
        assert self.make(size=8).setup_cost() == pytest.approx(
            7 * PEER_SETUP_COST)
        assert self.make(size=1, rank=0).setup_cost() == 0


class TestEndpointEdges:
    def test_double_receive_handler_rejected(self):
        env = Environment()
        topo = StarTopology(env)
        ep = topo.add_endpoint(0)
        ep.on_receive(lambda seg: None)
        with pytest.raises(NetworkError, match="handler"):
            ep.on_receive(lambda seg: None)

    def test_double_uplink_rejected(self):
        from repro.network import Link
        env = Environment()
        topo = StarTopology(env)
        ep = topo.add_endpoint(0)
        with pytest.raises(NetworkError, match="uplink"):
            ep.attach_uplink(Link(env))

    def test_delivery_without_handler_rejected(self):
        from repro.network import Segment
        env = Environment()
        topo = StarTopology(env)
        topo.add_endpoint(0)
        ep1 = topo.add_endpoint(1)
        topo.endpoint(0).send(Segment(0, 1, payload_bytes=8))
        with pytest.raises(NetworkError, match="no handler"):
            env.run()


class TestKernelEdges:
    def test_any_of_propagates_failure(self):
        env = Environment()
        good = env.timeout(5)
        bad = env.event()
        caught = {}

        def waiter():
            try:
                yield any_of(env, [good, bad])
            except ValueError as exc:
                caught["exc"] = exc

        env.process(waiter())
        bad.fail(ValueError("poisoned"))
        env.run()
        assert str(caught["exc"]) == "poisoned"

    def test_event_value_before_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            ev.value
        with pytest.raises(SimulationError):
            ev.ok

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_step_on_empty_heap_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()

    def test_callback_after_processed_rejected(self):
        env = Environment()
        ev = env.timeout(0)
        env.run()
        with pytest.raises(SimulationError):
            ev.add_callback(lambda e: None)


class TestDlrmStats:
    def test_stats_aggregation(self):
        stats = DlrmRunStats(
            outputs=np.array([0.5, 0.6]),
            latencies=[units.us(10), units.us(30)],
            elapsed=units.us(40),
            n_inferences=2,
        )
        assert stats.mean_latency == pytest.approx(units.us(20))
        assert stats.p99_latency <= units.us(30)
        assert stats.throughput == pytest.approx(2 / units.us(40))
