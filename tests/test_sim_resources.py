"""Unit tests for Resource, BandwidthResource and TokenBucket."""

import pytest

from repro.sim import BandwidthResource, Environment, Resource
from repro.sim.resources import TokenBucket


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def worker(tag, hold):
        yield res.acquire()
        granted.append((tag, env.now))
        yield env.timeout(hold)
        res.release()

    env.process(worker("a", 5))
    env.process(worker("b", 5))
    env.process(worker("c", 1))
    env.run()
    by_tag = dict(granted)
    assert by_tag["a"] == 0
    assert by_tag["b"] == 0
    assert by_tag["c"] == pytest.approx(5)


def test_resource_release_idle_rejected():
    env = Environment()
    res = Resource(env)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)
    res.acquire()
    res.acquire()
    res.acquire()
    assert res.in_use == 1
    assert res.queue_length == 2


def test_bandwidth_transfer_duration():
    env = Environment()
    pipe = BandwidthResource(env, rate_bytes_per_s=100.0)
    finished = {}

    def proc():
        yield pipe.transfer(200)
        finished["t"] = env.now

    env.process(proc())
    env.run()
    assert finished["t"] == pytest.approx(2.0)


def test_bandwidth_serializes_fifo():
    env = Environment()
    pipe = BandwidthResource(env, rate_bytes_per_s=100.0)
    finish = {}

    def proc(tag, size):
        yield pipe.transfer(size)
        finish[tag] = env.now

    env.process(proc("a", 100))
    env.process(proc("b", 100))
    env.run()
    assert finish["a"] == pytest.approx(1.0)
    assert finish["b"] == pytest.approx(2.0)  # queued behind "a"


def test_bandwidth_overhead_charged_per_transfer():
    env = Environment()
    pipe = BandwidthResource(env, rate_bytes_per_s=100.0, per_transfer_overhead_s=0.5)
    finish = {}

    def proc():
        yield pipe.transfer(100)
        yield pipe.transfer(100)
        finish["t"] = env.now

    env.process(proc())
    env.run()
    assert finish["t"] == pytest.approx(3.0)  # 2 * (0.5 + 1.0)


def test_bandwidth_idle_gap_not_charged():
    env = Environment()
    pipe = BandwidthResource(env, rate_bytes_per_s=100.0)
    finish = {}

    def proc():
        yield pipe.transfer(100)
        yield env.timeout(10)
        yield pipe.transfer(100)
        finish["t"] = env.now

    env.process(proc())
    env.run()
    assert finish["t"] == pytest.approx(12.0)


def test_bandwidth_utilization_and_counters():
    env = Environment()
    pipe = BandwidthResource(env, rate_bytes_per_s=100.0)

    def proc():
        yield pipe.transfer(100)
        yield env.timeout(1)

    env.process(proc())
    env.run()
    assert pipe.bytes_moved == 100
    assert pipe.utilization() == pytest.approx(0.5)


def test_bandwidth_reserve_matches_transfer_math():
    env = Environment()
    pipe = BandwidthResource(env, rate_bytes_per_s=50.0)
    t1 = pipe.reserve(100)
    t2 = pipe.reserve(50)
    assert t1 == pytest.approx(2.0)
    assert t2 == pytest.approx(3.0)


def test_bandwidth_rejects_bad_args():
    env = Environment()
    with pytest.raises(ValueError):
        BandwidthResource(env, rate_bytes_per_s=0)
    pipe = BandwidthResource(env, rate_bytes_per_s=10)
    with pytest.raises(ValueError):
        pipe.transfer(-1)


def test_token_bucket_blocks_when_empty():
    env = Environment()
    bucket = TokenBucket(env, tokens=2)
    times = []

    def taker(tag):
        yield bucket.take()
        times.append((tag, env.now))

    env.process(taker("a"))
    env.process(taker("b"))
    env.process(taker("c"))

    def giver():
        yield env.timeout(5)
        bucket.give()

    env.process(giver())
    env.run()
    by_tag = dict(times)
    assert by_tag["a"] == 0
    assert by_tag["b"] == 0
    assert by_tag["c"] == pytest.approx(5)


def test_token_bucket_never_exceeds_capacity():
    env = Environment()
    bucket = TokenBucket(env, tokens=3)
    bucket.give(10)
    assert bucket.available == 3


def test_token_bucket_fifo_fairness():
    env = Environment()
    bucket = TokenBucket(env, tokens=1)
    bucket.take()
    order = []

    def taker(tag, amount):
        yield bucket.take(amount)
        order.append(tag)

    env.process(taker("wants-one", 1))

    def giver():
        yield env.timeout(1)
        bucket.give(1)

    env.process(giver())
    env.run()
    assert order == ["wants-one"]


def test_token_bucket_oversized_request_rejected():
    env = Environment()
    bucket = TokenBucket(env, tokens=2)
    with pytest.raises(ValueError):
        bucket.take(3)


def test_bandwidth_utilization_windowed_since():
    """Regression: busy time before ``since`` must not inflate the window."""
    env = Environment()
    pipe = BandwidthResource(env, rate_bytes_per_s=100.0)

    def proc():
        yield pipe.transfer(100)   # busy [0, 1]
        yield env.timeout(2)       # idle [1, 3]

    env.process(proc())
    env.run()
    assert pipe.utilization() == pytest.approx(1.0 / 3.0)
    assert pipe.utilization(since=1.0) == 0.0            # fully idle window
    assert pipe.utilization(since=0.5) == pytest.approx(0.5 / 2.5)


def test_bandwidth_utilization_window_spanning_gaps():
    env = Environment()
    pipe = BandwidthResource(env, rate_bytes_per_s=100.0)

    def proc():
        yield pipe.transfer(100)   # busy [0, 1]
        yield env.timeout(1)       # idle [1, 2]
        yield pipe.transfer(100)   # busy [2, 3]
        yield env.timeout(1)       # idle [3, 4]

    env.process(proc())
    env.run()
    assert pipe.utilization() == pytest.approx(0.5)
    assert pipe.utilization(since=2.0) == pytest.approx(0.5)
    assert pipe.utilization(since=2.5) == pytest.approx(0.5 / 1.5)
    assert pipe.utilization(since=3.0) == 0.0


def test_bandwidth_utilization_clips_in_flight_transfer():
    """A transfer scheduled beyond *now* only counts up to *now*."""
    env = Environment()
    pipe = BandwidthResource(env, rate_bytes_per_s=100.0)
    measured = {}

    def proc():
        pipe.transfer(200)         # busy [0, 2], still in flight at t=1
        yield env.timeout(1)
        measured["u"] = pipe.utilization()

    env.process(proc())
    env.run()
    assert measured["u"] == pytest.approx(1.0)


def test_bandwidth_back_to_back_transfers_merge_busy_intervals():
    env = Environment()
    pipe = BandwidthResource(env, rate_bytes_per_s=100.0)

    def proc():
        for _ in range(4):
            yield pipe.transfer(100)

    env.process(proc())
    env.run()
    assert len(pipe._busy_intervals) == 1
    assert pipe.utilization() == pytest.approx(1.0)


def test_token_bucket_large_head_request_blocks_later_small_ones():
    """FIFO fairness: a small request must not overtake a big queued one."""
    env = Environment()
    bucket = TokenBucket(env, tokens=4, initial=0)
    order = []

    def taker(tag, amount):
        yield bucket.take(amount)
        order.append((tag, env.now))

    env.process(taker("big", 4))
    env.process(taker("small", 1))

    def giver():
        yield env.timeout(1)
        bucket.give(2)   # enough for "small", but "big" heads the queue
        yield env.timeout(1)
        bucket.give(2)   # big (4) proceeds; small still short
        yield env.timeout(1)
        bucket.give(1)   # now small proceeds

    env.process(giver())
    env.run()
    assert order == [("big", pytest.approx(2.0)),
                     ("small", pytest.approx(3.0))]
    assert bucket.available == 0


def test_token_bucket_take_queues_behind_existing_waiters():
    env = Environment()
    bucket = TokenBucket(env, tokens=2, initial=0)
    order = []

    def taker(tag):
        yield bucket.take(2)
        order.append(tag)

    env.process(taker("first"))
    env.process(taker("second"))

    def giver():
        yield env.timeout(1)
        bucket.give(2)
        yield env.timeout(1)
        bucket.give(2)

    env.process(giver())
    env.run()
    assert order == ["first", "second"]
