"""Large-fabric topologies and 1000-node-class cluster scale.

Covers the tentpole of the scale PR: fat-tree and dragonfly builders
(structure, routing correctness, oversubscription), memory-lean
construction at 1024 nodes, and the flow-fidelity allreduce that the
``bench profile scale`` report commits to ``BENCH_results.json``.
"""

import time
import tracemalloc

import numpy as np
import pytest

from repro import units
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import build_fpga_cluster
from repro.cluster.builder import LAZY_PEERING_THRESHOLD
from repro.errors import NetworkError
from repro.network import Segment
from repro.network.fidelity import fidelity_override
from repro.network.topology import DragonflyTopology, FatTreeTopology
from repro.sim import Environment
from tests.helpers import dev_buffer, empty_dev_buffer


class TestFatTree:
    def test_geometry(self):
        env = Environment()
        topo = FatTreeTopology(env, k=4)
        assert topo.capacity == 16
        assert topo.pod_of(0) == 0 and topo.pod_of(4) == 1
        assert topo.edge_of(0) == 0 and topo.edge_of(2) == 1

    def test_odd_arity_rejected(self):
        with pytest.raises(NetworkError):
            FatTreeTopology(Environment(), k=3)

    def test_capacity_enforced(self):
        env = Environment()
        topo = FatTreeTopology(env, k=2)  # 2 hosts
        topo.add_endpoint(0)
        topo.add_endpoint(1)
        with pytest.raises(NetworkError):
            topo.add_endpoint(2)

    def test_lazy_pod_growth(self):
        env = Environment()
        topo = FatTreeTopology(env, k=4)
        topo.add_endpoint(0)
        assert len(topo._pods) == 1
        topo.add_endpoint(12)  # pod 3: intermediate pods materialize too
        assert len(topo._pods) == 4

    def test_all_pair_reachability(self):
        """Every (src, dst) pair routes: same-edge, same-pod, cross-pod."""
        env = Environment()
        topo = FatTreeTopology(env, k=4)
        eps = [topo.add_endpoint(a) for a in range(16)]
        got = []
        for ep in eps:
            ep.on_receive(lambda seg: got.append((seg.src, seg.dst)))
        expected = []
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    eps[src].send(Segment(src, dst, payload_bytes=64))
                    expected.append((src, dst))
        env.run()
        assert sorted(got) == sorted(expected)

    def test_path_latency_ordering(self):
        """Cross-pod > same-pod > same-edge delivery latency."""
        def latency(dst):
            env = Environment()
            topo = FatTreeTopology(env, k=4)
            src = topo.add_endpoint(0)
            ep = topo.add_endpoint(dst)
            got = []
            ep.on_receive(lambda seg: got.append(env.now))
            src.send(Segment(0, dst, payload_bytes=64))
            env.run()
            return got[0]

        same_edge, same_pod, cross_pod = latency(1), latency(2), latency(4)
        assert same_edge < same_pod < cross_pod
        env = Environment()
        topo = FatTreeTopology(env, k=4)
        assert (topo.one_way_base_latency("edge")
                < topo.one_way_base_latency("agg")
                < topo.one_way_base_latency("core"))

    def test_ecmp_is_deterministic(self):
        """Same flows on a rebuilt fabric hit the same core switches."""
        def core_loads():
            env = Environment()
            topo = FatTreeTopology(env, k=4)
            eps = [topo.add_endpoint(a) for a in range(16)]
            for ep in eps:
                ep.on_receive(lambda seg: None)
            for src in range(8):
                for dst in range(8, 16):
                    eps[src].send(Segment(src, dst, payload_bytes=1024))
            env.run()
            return [core.segments_forwarded for core in topo._cores]

        first = core_loads()
        assert sum(first) > 0
        assert first == core_loads()

    def test_oversubscription_slows_cross_pod_transfers(self):
        def cross_pod_time(factor):
            env = Environment()
            topo = FatTreeTopology(env, k=4, oversubscription=factor)
            a = topo.add_endpoint(0)
            b = topo.add_endpoint(4)
            got = []
            b.on_receive(lambda seg: got.append(env.now))
            a.send(Segment(0, 4, payload_bytes=256 * units.KIB))
            env.run()
            return got[0]

        assert cross_pod_time(4.0) > cross_pod_time(1.0)

    def test_allreduce_on_fat_tree(self):
        """Numeric correctness of a CCLO collective across pods."""
        size = 8
        cluster = build_fpga_cluster(
            size, protocol="rdma", platform="sim",
            topology_factory=lambda env: FatTreeTopology(env, k=4))
        n = 128
        contribs = [np.full(n, float(r + 1), np.float32)
                    for r in range(size)]
        svs = [dev_buffer(cluster, r, contribs[r]) for r in range(size)]
        rvs = [empty_dev_buffer(cluster, r, n) for r in range(size)]
        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="allreduce", nbytes=contribs[0].nbytes, sbuf=svs[r],
            rbuf=rvs[r]))
        expected = np.sum(contribs, axis=0)
        for r in range(size):
            np.testing.assert_allclose(rvs[r].array, expected)


class TestDragonfly:
    def test_geometry(self):
        env = Environment()
        topo = DragonflyTopology(env, routers_per_group=4, hosts_per_router=4,
                                 global_links_per_router=2)
        assert topo.max_groups == 9
        assert topo.capacity == 9 * 16
        assert topo.group_of(0) == 0 and topo.group_of(16) == 1
        assert topo.router_of(5) == 1

    def test_gateway_assignment_is_symmetric_channel(self):
        env = Environment()
        topo = DragonflyTopology(env, routers_per_group=4, hosts_per_router=4,
                                 global_links_per_router=2)
        seen = set()
        for g in range(topo.max_groups):
            for other in range(topo.max_groups):
                if other == g:
                    continue
                router, port = topo._gateway(g, other)
                assert 0 <= router < 4 and 0 <= port < 2
                seen.add((g, router, port))
        # palmtree assignment: every (group, router, port) used exactly once
        assert len(seen) == topo.max_groups * (topo.max_groups - 1)

    def test_all_pair_reachability(self):
        """Local, intra-group, and global minimal routes all deliver."""
        env = Environment()
        topo = DragonflyTopology(env, routers_per_group=2, hosts_per_router=2,
                                 global_links_per_router=1)  # 3 groups, 12
        n = topo.capacity
        eps = [topo.add_endpoint(a) for a in range(n)]
        got = []
        for ep in eps:
            ep.on_receive(lambda seg: got.append((seg.src, seg.dst)))
        expected = []
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    eps[src].send(Segment(src, dst, payload_bytes=64))
                    expected.append((src, dst))
        env.run()
        assert sorted(got) == sorted(expected)

    def test_capacity_enforced(self):
        env = Environment()
        topo = DragonflyTopology(env, routers_per_group=2, hosts_per_router=2,
                                 global_links_per_router=1)
        with pytest.raises(NetworkError):
            topo.add_endpoint(topo.capacity)

    def test_scope_latency_ordering(self):
        env = Environment()
        topo = DragonflyTopology(env)
        assert (topo.one_way_base_latency("router")
                < topo.one_way_base_latency("group")
                < topo.one_way_base_latency("global"))

    def test_allreduce_on_dragonfly(self):
        size = 8
        cluster = build_fpga_cluster(
            size, protocol="rdma", platform="sim",
            topology_factory=lambda env: DragonflyTopology(
                env, routers_per_group=2, hosts_per_router=2,
                global_links_per_router=1))
        n = 128
        contribs = [np.full(n, float(r + 1), np.float32)
                    for r in range(size)]
        svs = [dev_buffer(cluster, r, contribs[r]) for r in range(size)]
        rvs = [empty_dev_buffer(cluster, r, n) for r in range(size)]
        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="allreduce", nbytes=contribs[0].nbytes, sbuf=svs[r],
            rbuf=rvs[r]))
        expected = np.sum(contribs, axis=0)
        for r in range(size):
            np.testing.assert_allclose(rvs[r].array, expected)


class TestThousandNodeScale:
    """The headline acceptance numbers: 1024 hosts, lean and fast."""

    def test_1024_node_fattree_builds_fast_and_lean(self):
        tracemalloc.start()
        base, _ = tracemalloc.get_traced_memory()
        t0 = time.perf_counter()
        cluster = build_fpga_cluster(
            1024, protocol="rdma", platform="coyote",
            topology_factory=lambda env: FatTreeTopology(env, k=16))
        build_s = time.perf_counter() - t0
        built, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        bytes_per_node = (built - base) / 1024
        assert cluster.size == 1024
        assert build_s < 10.0, f"1024-node build took {build_s:.1f}s"
        # pre-refactor footprint was ~300 KiB/node at only 256 nodes
        assert bytes_per_node < 100 * 1024, \
            f"{bytes_per_node / 1024:.0f} KiB/node"

    def test_1024_node_allreduce_completes_in_flow_fidelity(self):
        from repro.bench.harness import accl_collective_time

        with fidelity_override("flow"):
            factory = lambda env: FatTreeTopology(env, k=16)  # noqa: E731
            elapsed = accl_collective_time(
                "allreduce", 256 * units.KIB, n_nodes=1024,
                sync_protocol="rndz", algorithm="reduce_bcast",
                cluster_builder=lambda n, **kw: build_fpga_cluster(
                    n, topology_factory=factory, peering="lazy", **kw))
        assert elapsed > 0

    def test_auto_peering_goes_lazy_at_threshold(self):
        small = build_fpga_cluster(4, protocol="rdma", platform="sim")
        assert not small.nodes[0].poe._lazy_qp
        big = build_fpga_cluster(
            LAZY_PEERING_THRESHOLD, protocol="rdma", platform="sim",
            topology_factory=lambda env: FatTreeTopology(env, k=8))
        assert big.nodes[0].poe._lazy_qp
        # lazy POEs materialize queue pairs on first use
        assert not big.nodes[0].poe._qps
        qp = big.nodes[0].poe.qp_to(1)
        assert qp is big.nodes[0].poe.qp_to(1)
