"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import units
from repro.cclo.match import MatchTable
from repro.collectives.util import block_ranges
from repro.network.packet import ETHERNET_HEADER_BYTES, Segment
from repro.sim import BandwidthResource, Environment, Monitor
from repro.sim.resources import TokenBucket

fast = settings(max_examples=60, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class TestBlockRanges:
    @fast
    @given(total=st.integers(0, 10**8), parts=st.integers(1, 64))
    def test_blocks_cover_exactly(self, total, parts):
        ranges = block_ranges(total, parts)
        assert len(ranges) == parts
        assert ranges[0][0] == 0
        end = 0
        for offset, length in ranges:
            assert offset == end
            assert length >= 0
            end = offset + length
        assert end == total

    @fast
    @given(total=st.integers(0, 10**8), parts=st.integers(1, 64))
    def test_all_but_last_aligned(self, total, parts):
        for offset, length in block_ranges(total, parts)[:-1]:
            assert offset % 64 == 0
            assert length % 64 == 0

    @fast
    @given(total=st.integers(64, 10**8), parts=st.integers(1, 16))
    def test_blocks_balanced(self, total, parts):
        """No block exceeds its fair share by more than parts alignments."""
        lengths = [ln for _, ln in block_ranges(total, parts)]
        fair = total / parts
        assert max(lengths) <= fair + parts * 64


class TestSegmentInvariants:
    @fast
    @given(payload=st.integers(0, 10**7), mtu=st.integers(64, 9000))
    def test_wire_bytes_bound_payload(self, payload, mtu):
        seg = Segment(0, 1, payload_bytes=payload, mtu=mtu)
        assert seg.wire_bytes >= payload
        assert seg.n_frames >= 1
        # Header overhead never exceeds one header per MTU plus one frame.
        max_overhead = (payload // mtu + 1) * ETHERNET_HEADER_BYTES
        assert seg.wire_bytes - payload <= max_overhead

    @fast
    @given(payload=st.integers(1, 10**7), mtu=st.integers(64, 9000))
    def test_frame_count_exact(self, payload, mtu):
        seg = Segment(0, 1, payload_bytes=payload, mtu=mtu)
        assert (seg.n_frames - 1) * mtu < payload <= seg.n_frames * mtu


class TestMatchTableProperties:
    @fast
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)),
                    min_size=1, max_size=40))
    def test_fifo_per_key_any_interleaving(self, ops):
        """Any interleaving of posts and waits matches values per key FIFO."""
        env = Environment()
        table = MatchTable(env)
        posted = {}
        received = {}
        waits = []
        for is_post, key in ops:
            if is_post:
                seq = posted.setdefault(key, [])
                value = (key, len(seq))
                seq.append(value)
                table.post(key, value)
            else:
                ev = table.wait(key)
                waits.append((key, ev))
        env.run()
        for key, ev in waits:
            if ev.triggered:
                received.setdefault(key, []).append(ev.value)
        for key, values in received.items():
            assert values == posted.get(key, [])[:len(values)]

    @fast
    @given(st.integers(1, 20))
    def test_conservation(self, n):
        """pending + consumed == posted, always."""
        env = Environment()
        table = MatchTable(env)
        for i in range(n):
            table.post("k", i)
        consumed = 0
        for _ in range(n // 2):
            ev = table.wait("k")
            assert ev.triggered
            consumed += 1
        assert table.pending("k") + consumed == n


class TestTokenBucketProperties:
    @fast
    @given(capacity=st.integers(1, 1000),
           ops=st.lists(st.integers(-100, 100), max_size=50))
    def test_never_exceeds_capacity_or_goes_negative(self, capacity, ops):
        env = Environment()
        bucket = TokenBucket(env, capacity)
        for amount in ops:
            if amount >= 0:
                bucket.give(amount)
            else:
                take = min(-amount, capacity)
                bucket.take(take)  # may queue; available never negative
            assert 0 <= bucket.available <= capacity


class TestBandwidthProperties:
    @fast
    @given(st.lists(st.integers(1, 10**6), min_size=1, max_size=20),
           st.floats(1e3, 1e9))
    def test_serialization_conserves_time(self, sizes, rate):
        """Busy time equals total bytes / rate, regardless of issue order."""
        env = Environment()
        pipe = BandwidthResource(env, rate)
        for nbytes in sizes:
            pipe.transfer(nbytes)
        env.run()
        assert pipe.bytes_moved == sum(sizes)
        assert pipe._busy_time == pytest.approx(sum(sizes) / rate, rel=1e-9)

    @fast
    @given(st.lists(st.integers(1, 10**6), min_size=2, max_size=20))
    def test_fifo_completion_order(self, sizes):
        env = Environment()
        pipe = BandwidthResource(env, 1e6)
        finishes = [pipe.reserve(n) for n in sizes]
        assert finishes == sorted(finishes)


class TestMonitorProperties:
    @fast
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    def test_percentiles_bounded_and_monotone(self, values):
        mon = Monitor()
        for i, v in enumerate(values):
            mon.record(float(i), v)
        p0, p50, p100 = (mon.percentile(p) for p in (0, 50, 100))
        assert p0 == min(values)
        assert p100 == max(values)
        assert p0 <= p50 <= p100
        # The mean may fall a rounding ulp outside [min, max] (summation
        # error); assert containment up to float tolerance.
        eps = 1e-9 * max(1.0, abs(p100), abs(p0))
        assert min(values) - eps <= mon.mean() <= max(values) + eps


class TestUnitsProperties:
    @fast
    @given(st.floats(1e-3, 1e12))
    def test_gbps_roundtrip(self, value):
        assert units.to_gbps(units.gbps(value)) == pytest.approx(value)

    @fast
    @given(st.integers(0, 2**50))
    def test_pretty_size_parses_back(self, nbytes):
        text = units.pretty_size(nbytes)
        mult = {"GiB": units.GIB, "MiB": units.MIB, "KiB": units.KIB, "B": 1}
        for suffix, factor in mult.items():
            if text.endswith(suffix):
                assert int(text[:-len(suffix)]) * factor == nbytes
                break
        else:
            pytest.fail(f"unparseable: {text}")


class TestProtocolProperties:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(sizes=st.lists(st.integers(0, 300_000), min_size=1, max_size=8))
    def test_udp_reassembly_delivers_every_message_once(self, sizes):
        """Any mix of message sizes (including zero-byte and multi-segment)
        arrives exactly once and intact.  Completion *order* is not part of
        the contract: a short datagram may overtake a long one mid-flight,
        which is why the CCLO matches receives on (src, tag), never on
        arrival order."""
        from repro.network import StarTopology
        from repro.protocols import UdpPoe

        env = Environment()
        topo = StarTopology(env)
        a = UdpPoe(env, topo.add_endpoint(0))
        b = UdpPoe(env, topo.add_endpoint(1))
        got = []
        b.on_message(lambda hdr, data: got.append((hdr.meta, hdr.nbytes)))
        for i, nbytes in enumerate(sizes):
            a.send_message(1, nbytes, meta=i)
        env.run()
        assert sorted(got) == list(enumerate(sizes))

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(nbytes=st.integers(1, 500_000))
    def test_rdma_write_lands_full_payload(self, nbytes):
        from repro.network import StarTopology
        from repro.protocols import RdmaPoe

        env = Environment()
        topo = StarTopology(env)
        a = RdmaPoe(env, topo.add_endpoint(0))
        b = RdmaPoe(env, topo.add_endpoint(1))
        b.on_message(lambda hdr, data: None)
        landed = []
        b.set_memory_writer(lambda hdr, data: landed.append(hdr.nbytes))
        a.create_qp(1)
        b.create_qp(0)
        a.post_write(1, nbytes, remote_descriptor="d")
        env.run()
        assert landed == [nbytes]


class TestCollectiveProperties:
    """End-to-end functional invariants under randomized shapes."""

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(size=st.integers(2, 6), root=st.integers(0, 5),
           n=st.sampled_from([64, 192, 256]),
           data=st.randoms())
    def test_bcast_any_root_any_size(self, size, root, n, data):
        from repro.cclo.microcontroller import CollectiveArgs
        from tests.helpers import dev_buffer, empty_dev_buffer, make_cluster

        root = root % size
        cluster = make_cluster(size)
        rng = np.random.default_rng(data.randint(0, 2**31))
        payload = rng.standard_normal(n).astype(np.float32)
        views = [
            dev_buffer(cluster, r, payload.copy()) if r == root
            else empty_dev_buffer(cluster, r, n)
            for r in range(size)
        ]
        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="bcast", root=root, nbytes=payload.nbytes, rbuf=views[r]))
        for r in range(size):
            np.testing.assert_array_equal(views[r].array, payload)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(size=st.integers(2, 6), n=st.sampled_from([64, 128]),
           data=st.randoms())
    def test_allreduce_equals_numpy_sum(self, size, n, data):
        from repro.cclo.microcontroller import CollectiveArgs
        from tests.helpers import dev_buffer, empty_dev_buffer, make_cluster

        cluster = make_cluster(size)
        rng = np.random.default_rng(data.randint(0, 2**31))
        contribs = [rng.standard_normal(n).astype(np.float32)
                    for _ in range(size)]
        svs = [dev_buffer(cluster, r, contribs[r]) for r in range(size)]
        rvs = [empty_dev_buffer(cluster, r, n) for r in range(size)]
        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="allreduce", nbytes=contribs[0].nbytes, sbuf=svs[r],
            rbuf=rvs[r], func="sum"))
        expected = np.sum(contribs, axis=0)
        for r in range(size):
            np.testing.assert_allclose(rvs[r].array, expected,
                                       rtol=1e-3, atol=1e-5)
