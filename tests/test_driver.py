"""Tests of the host CCL driver: staging, invocation, MPI-like semantics."""

import numpy as np
import pytest

from repro import units
from repro.driver import Accl, KernelInterface, attach_drivers
from repro.platform.base import BufferLocation
from repro.sim import all_of
from tests.helpers import make_cluster

N = 128


def data(rank, n=N):
    rng = np.random.default_rng(42 + rank)
    return rng.standard_normal(n).astype(np.float32)


class TestDriverBasics:
    def test_attach_one_driver_per_node(self):
        cluster = make_cluster(4)
        drivers = attach_drivers(cluster)
        assert [d.rank for d in drivers] == [0, 1, 2, 3]
        assert all(d.size == 4 for d in drivers)

    def test_wrap_defaults_to_host_memory(self):
        cluster = make_cluster(2, platform="coyote")
        drv = attach_drivers(cluster)[0]
        buf = drv.wrap(data(0))
        assert buf.location is BufferLocation.HOST

    def test_sendrecv_via_driver(self):
        cluster = make_cluster(2, platform="coyote")
        d0, d1 = attach_drivers(cluster)
        payload = data(0)
        sbuf = d0.wrap(payload)
        rbuf = d1.wrap(np.zeros(N, dtype=np.float32))
        req_r = d1.recv(rbuf, payload.nbytes, src=0)
        req_s = d0.send(sbuf, payload.nbytes, dst=1)
        cluster.env.run(until=all_of(cluster.env, [req_r.event, req_s.event]))
        np.testing.assert_allclose(rbuf.array, payload)

    def test_sync_flag_blocks(self):
        cluster = make_cluster(2, platform="coyote")
        d0, d1 = attach_drivers(cluster)
        payload = data(0)
        rbuf = d1.wrap(np.zeros(N, dtype=np.float32))
        req_r = d1.recv(rbuf, payload.nbytes, src=0)
        result = d0.send(d0.wrap(payload), payload.nbytes, dst=1, sync=True)
        assert result == "send"
        req_r.wait()  # sync send is local completion; drain the recv too
        np.testing.assert_allclose(rbuf.array, payload)

    def test_request_duration_positive(self):
        cluster = make_cluster(2, platform="coyote")
        d0, _ = attach_drivers(cluster)
        req = d0.nop()
        req.wait()
        assert req.done and req.ok
        assert req.duration > 0

    def test_collective_tags_advance_in_lockstep(self):
        cluster = make_cluster(2)
        d0, d1 = attach_drivers(cluster)
        tags0 = [d0.communicator(0).next_tag() for _ in range(3)]
        tags1 = [d1.communicator(0).next_tag() for _ in range(3)]
        assert tags0 == tags1
        assert len(set(tags0)) == 3


class TestCollectivesViaDriver:
    def test_allreduce_host_arrays(self):
        size = 4
        cluster = make_cluster(size, platform="coyote")
        drivers = attach_drivers(cluster)
        contributions = [data(r) for r in range(size)]
        rbufs = [d.wrap(np.zeros(N, dtype=np.float32)) for d in drivers]
        reqs = [
            d.allreduce(d.wrap(contributions[r]), rbufs[r],
                        contributions[r].nbytes)
            for r, d in enumerate(drivers)
        ]
        cluster.env.run(until=all_of(cluster.env, [r.event for r in reqs]))
        expected = np.sum(contributions, axis=0)
        for r in range(size):
            np.testing.assert_allclose(rbufs[r].array, expected, rtol=1e-3,
                                       atol=1e-5)

    def test_bcast_numpy_autowrap(self):
        size = 4
        cluster = make_cluster(size, platform="coyote")
        drivers = attach_drivers(cluster)
        payload = data(9)
        bufs = [d.wrap(payload.copy() if r == 0 else np.zeros(N, np.float32))
                for r, d in enumerate(drivers)]
        reqs = [d.bcast(bufs[r], payload.nbytes, root=0)
                for r, d in enumerate(drivers)]
        cluster.env.run(until=all_of(cluster.env, [r.event for r in reqs]))
        for r in range(size):
            np.testing.assert_allclose(bufs[r].array, payload)

    def test_barrier_sync(self):
        size = 4
        cluster = make_cluster(size, platform="coyote")
        drivers = attach_drivers(cluster)
        reqs = [d.barrier(sync=False) for d in drivers]
        cluster.env.run(until=all_of(cluster.env, [r.event for r in reqs]))
        assert all(r.ok for r in reqs)


class TestStagingAndInvocation:
    def test_vitis_host_buffers_staged(self):
        """H2H collectives on XRT must bounce through device memory."""
        cluster = make_cluster(2, platform="vitis", protocol="tcp")
        d0, d1 = attach_drivers(cluster)
        payload = data(0)
        sbuf = d0.wrap(payload)                       # host-located
        rbuf = d1.wrap(np.zeros(N, dtype=np.float32))  # host-located
        req_r = d1.recv(rbuf, payload.nbytes, src=0)
        req_s = d0.send(sbuf, payload.nbytes, dst=1)
        cluster.env.run(until=all_of(cluster.env, [req_r.event, req_s.event]))
        assert cluster.nodes[0].platform.stagings == 1   # stage-in at sender
        assert cluster.nodes[1].platform.stagings == 1   # stage-out at recv
        np.testing.assert_allclose(rbuf.array, payload)

    def test_coyote_host_buffers_not_staged(self):
        cluster = make_cluster(2, platform="coyote")
        d0, d1 = attach_drivers(cluster)
        payload = data(0)
        rbuf = d1.wrap(np.zeros(N, dtype=np.float32))
        req_r = d1.recv(rbuf, payload.nbytes, src=0)
        req_s = d0.send(d0.wrap(payload), payload.nbytes, dst=1)
        cluster.env.run(until=all_of(cluster.env, [req_r.event, req_s.event]))
        # Unified memory: the CCLO reached the host pages over PCIe directly.
        assert cluster.nodes[1].platform.pcie.bytes_d2h >= payload.nbytes

    def test_invocation_latency_ordering_fig8(self):
        """kernel << Coyote host << XRT host (the Figure 8 shape)."""
        coyote = make_cluster(2, platform="coyote")
        vitis = make_cluster(2, platform="vitis", protocol="tcp")
        d_cyt = attach_drivers(coyote)[0]
        d_xrt = attach_drivers(vitis)[0]

        req = d_cyt.nop()
        req.wait()
        t_cyt = req.duration

        req = d_xrt.nop()
        req.wait()
        t_xrt = req.duration

        # Kernel-side invocation on the Coyote cluster.
        engine = coyote.engine(0)
        ki = KernelInterface(engine)
        env = coyote.env
        t = {}

        def kernel():
            start = env.now
            yield env.process(ki._issue(
                __import__("repro.cclo.microcontroller",
                           fromlist=["CollectiveArgs"]).CollectiveArgs(
                    opcode="nop")
            ))
            yield from ki.finalize()
            t["kernel"] = env.now - start

        env.process(kernel())
        env.run()

        assert t["kernel"] < t_cyt < t_xrt
        assert t_xrt > 10 * t_cyt


class TestKernelInterface:
    def test_listing2_streaming_send(self):
        """The Listing 2 flow: command, pushes, finalize."""
        cluster = make_cluster(2)
        env = cluster.env
        payload = data(1)
        ki = KernelInterface(cluster.engine(0))
        drv = attach_drivers(cluster)[1]
        rbuf = drv.wrap(np.zeros(N, dtype=np.float32))
        req = drv.recv(rbuf, payload.nbytes, src=0)

        def kernel():
            yield from ki.send(payload.nbytes, dst_rank=1)
            for chunk in np.split(payload, 4):
                yield from ki.push(chunk)
            yield from ki.finalize()

        env.process(kernel())
        req.wait()
        np.testing.assert_allclose(rbuf.array, payload)

    def test_streaming_pull(self):
        cluster = make_cluster(2)
        env = cluster.env
        payload = data(2)
        drv = attach_drivers(cluster)[0]
        drv.send(drv.wrap(payload), payload.nbytes, dst=1)
        ki = KernelInterface(cluster.engine(1))
        got = {}

        def kernel():
            yield from ki.recv(payload.nbytes, src_rank=0)
            nbytes, chunk = yield from ki.pull()
            got["nbytes"] = nbytes
            got["data"] = chunk
            yield from ki.finalize()

        env.process(kernel())
        env.run()
        assert got["nbytes"] == payload.nbytes
        np.testing.assert_allclose(np.asarray(got["data"]).reshape(-1),
                                   payload)

    def test_push_requires_size(self):
        cluster = make_cluster(2)
        ki = KernelInterface(cluster.engine(0))
        from repro.errors import CcloError
        with pytest.raises(CcloError):
            list(ki.push(object()))
