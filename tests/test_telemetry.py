"""Fidelity-aware telemetry: flow-mode reconciliation, decision counters,
continuous time-series sessions, and the self-contained HTML dashboard."""

import json

import numpy as np
import pytest

from repro import units
from repro.network.fidelity import fidelity_override
from repro.obs import TelemetrySession, attribute_op, render_dashboard
from repro.obs.capture import trace_artifact
from repro.obs.metrics import MetricsRegistry
from repro.sim import all_of
from repro.sim.kernel import Environment


@pytest.fixture(scope="module")
def fig07_flow():
    with fidelity_override("flow"):
        return trace_artifact("fig07")


@pytest.fixture(scope="module")
def fig12_flow():
    with fidelity_override("flow"):
        return trace_artifact("fig12")


def _reltol(wall):
    return 1e-9 * max(abs(wall), 1e-12)


def _decision_totals(cap, metric):
    """Sum a ``*_flow_decisions`` gauge family by its ``reason`` label."""
    totals = {}
    for key, value in cap.obs.registry.snapshot()["gauges"].items():
        if not key.startswith(metric + "{"):
            continue
        labels = dict(pair.split("=", 1)
                      for pair in key[len(metric) + 1:-1].split(","))
        reason = labels["reason"]
        totals[reason] = totals.get(reason, 0.0) + value
    return totals


class TestFlowReconciliation:
    """ISSUE acceptance: flow-mode traces account for every sim-second.

    The burst fast path elides per-segment wire events, so the synthetic
    ``wire:burst`` spans must tile exactly what the packet pump would have
    recorded — phase and wait-cause totals still sum to wall sim-time."""

    @pytest.mark.parametrize("fixture", ["fig07_flow", "fig12_flow"])
    def test_totals_reconcile_exactly_with_wall(self, fixture, request):
        cap = request.getfixturevalue(fixture)
        assert cap.op_ids
        for op in cap.op_ids:
            report = attribute_op(cap.tracer, op)
            wall = report["wall_s"]
            assert wall > 0
            assert abs(sum(report["totals"].values()) - wall) \
                <= _reltol(wall)
            assert abs(sum(report["phases"].values()) - wall) \
                <= _reltol(wall)

    def test_fig07_flow_sees_wire_time(self, fig07_flow):
        """The 16 MiB op rides the burst path; without synthetic wire spans
        its wire phase would be invisible."""
        wire = sum(attribute_op(fig07_flow.tracer, op)["phases"].get(
            "wire", 0.0) for op in fig07_flow.op_ids)
        assert wire > 0

    def test_fig07_flow_decision_counters(self, fig07_flow):
        poe = _decision_totals(fig07_flow, "poe_flow_decisions")
        link = _decision_totals(fig07_flow, "link_flow_decisions")
        # 16 KiB + 1 MiB stay packet (below the admission floor); the
        # 16 MiB send is admitted and re-admitted window by window.
        assert poe.get("admit") == 1.0
        assert poe.get("reject:below_floor", 0.0) >= 1.0
        assert poe.get("window:readmit", 0.0) >= 1.0
        assert link.get("burst:carry", 0.0) >= 1.0

    def test_fig12_flow_decision_counters(self, fig12_flow):
        poe = _decision_totals(fig12_flow, "poe_flow_decisions")
        link = _decision_totals(fig12_flow, "link_flow_decisions")
        assert poe.get("admit", 0.0) >= 1.0
        assert poe.get("window:readmit", 0.0) >= 1.0
        assert link.get("burst:carry", 0.0) >= 1.0

    def test_decision_spans_are_zero_duration_markers(self, fig07_flow):
        marks = [s for s in fig07_flow.tracer.completed_spans
                 if s.phase == "fidelity"]
        assert marks
        for span in marks:
            assert span.t0 == span.t1  # record-only: no simulated time

    def test_packet_mode_records_no_flow_decisions(self):
        with fidelity_override("packet"):
            cap = trace_artifact("fig07")
        assert sum(_decision_totals(cap, "poe_flow_decisions").values()) == 0
        assert sum(_decision_totals(cap, "link_flow_decisions").values()) == 0
        assert not any(s.phase == "fidelity"
                       for s in cap.tracer.completed_spans)


class TestTimingInvarianceFlow:
    """Satellite: observability on == off must be sim-time identical in
    flow fidelity too — including the uncoalesced link pump."""

    @staticmethod
    def _run_sendrecv(with_obs: bool, coalesce: bool = True) -> float:
        from repro.cluster.builder import build_fpga_cluster
        from repro.driver.api import attach_drivers
        from repro.obs.runtime import attach

        cluster = build_fpga_cluster(2, protocol="rdma", platform="coyote")
        if not coalesce:
            for link in cluster.topology.iter_links():
                link.coalesce = False
        if with_obs:
            attach(cluster)
        drivers = attach_drivers(cluster)
        # 16 MiB crosses the flow-admission floor, so the burst path (and
        # its traced sink) actually runs; 16 KiB covers packet fallback.
        for tag, nbytes in ((7, 16 * units.KIB), (8, 16 * units.MIB)):
            data = np.ones(nbytes // 4, dtype=np.float32)
            reqs = [
                drivers[0].send(drivers[0].wrap(data), nbytes, dst=1,
                                tag=tag),
                drivers[1].recv(drivers[1].alloc(nbytes), nbytes, src=0,
                                tag=tag),
            ]
            cluster.env.run(
                until=all_of(cluster.env, [r.event for r in reqs]))
        return cluster.env.now

    def test_flow_instrumentation_is_record_only(self):
        with fidelity_override("flow"):
            assert self._run_sendrecv(True) == self._run_sendrecv(False)

    def test_flow_coalesce_off_is_record_only(self):
        with fidelity_override("flow"):
            on = self._run_sendrecv(True, coalesce=False)
            off = self._run_sendrecv(False, coalesce=False)
        assert on == off


class TestTelemetrySession:
    def _registry(self):
        reg = MetricsRegistry()
        return reg, reg.counter("ticks_done")

    def test_rejects_bad_cadence_and_capacity(self):
        reg, _ = self._registry()
        with pytest.raises(ValueError):
            TelemetrySession(reg, cadence=0.0)
        with pytest.raises(ValueError):
            TelemetrySession(reg, cadence=1.0, capacity=0)

    def test_sampler_self_stops_and_pokes(self):
        reg, c = self._registry()
        env = Environment()
        ts = TelemetrySession(reg, cadence=units.us(1))
        ts.attach(env)
        env.schedule_callback(units.us(3.5), c.inc)
        env.run()
        first = ts.samples_taken
        assert first >= 4  # t = 0, 1, 2, 3 us at least
        # Heap drained -> sampler disarmed: a new run() phase without a
        # poke() takes no samples and never keeps the sim alive.
        env.schedule_callback(units.us(1), c.inc)
        env.run()
        assert ts.samples_taken == first
        env.schedule_callback(units.us(1), c.inc)
        ts.poke()
        env.run()
        assert ts.samples_taken > first
        last = ts.snapshot()["samples"][-1]
        assert last["values"]["ticks_done"] == 3.0

    def test_ring_capacity_counts_drops(self):
        reg, c = self._registry()
        ts = TelemetrySession(reg, cadence=1.0, capacity=4)
        for i in range(10):
            c.inc()
            ts.sample(float(i))
        assert ts.samples_taken == 10
        assert ts.dropped == 6
        snap = ts.snapshot()
        assert [s["t"] for s in snap["samples"]] == [6.0, 7.0, 8.0, 9.0]
        assert snap["taken"] == 10 and snap["dropped"] == 6

    def test_merge_keeps_series_time_ordered(self):
        reg, _ = self._registry()
        a = TelemetrySession(reg, cadence=1.0, source="main")
        b = TelemetrySession(reg, cadence=1.0, source="fig07/w1")
        for t in (0.0, 2.0):
            a.sample(t)
        for t in (1.0, 3.0):
            b.sample(t)
        a.merge(b.snapshot())
        assert [(s["t"], s["source"]) for s in a.samples] == [
            (0.0, "main"), (1.0, "fig07/w1"),
            (2.0, "main"), (3.0, "fig07/w1")]
        assert a.samples_taken == 4

    def test_merge_overflow_counts_dropped(self):
        reg, _ = self._registry()
        a = TelemetrySession(reg, cadence=1.0, capacity=3, source="main")
        b = TelemetrySession(reg, cadence=1.0, capacity=3, source="w")
        for t in (0.0, 1.0, 2.0):
            a.sample(t)
            b.sample(t + 0.5)
        a.merge(b.snapshot())
        assert len(a.samples) == 3
        assert a.dropped == 3  # six rows into a three-row ring
        assert [s["t"] for s in a.samples] == [1.5, 2.0, 2.5]

    def test_jsonl_round_trips(self):
        reg, c = self._registry()
        ts = TelemetrySession(reg, cadence=1.0)
        c.inc(2)
        ts.sample(1e-6)
        rows = [json.loads(line) for line in ts.to_jsonl().splitlines()]
        assert rows == [{"t": 1e-6, "source": "main",
                         "values": {"ticks_done": 2.0}}]

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs_done", link="l0.up")
        h = reg.histogram("lat_us")
        ts = TelemetrySession(reg, cadence=1.0)
        c.inc(3)
        h.observe(5.0)
        h.observe(7.0)
        ts.sample(2e-3)  # exposition timestamps are sim-time ms
        text = ts.to_prometheus()
        assert 'repro_reqs_done{link="l0.up",source="main"} 3 2\n' in text
        assert 'repro_lat_us_count{source="main"} 2 2' in text
        assert 'repro_lat_us_sum{source="main"} 12 2' in text

    def test_chrome_counter_events(self):
        reg, c = self._registry()
        ts = TelemetrySession(reg, cadence=1.0, source="fig07/p0")
        c.inc()
        ts.sample(3e-6)
        events = ts.to_chrome_counters(pid=9)
        assert events == [{
            "ph": "C", "name": "ticks_done@fig07/p0", "pid": 9, "tid": 0,
            "ts": pytest.approx(3.0), "args": {"value": 1.0},
        }]

    def test_capture_scenarios_take_samples(self):
        cap = trace_artifact("fig08", telemetry=units.us(5))
        assert cap.obs.telemetry is not None
        assert cap.obs.telemetry.samples_taken > 0
        summary = cap.obs.summary()
        assert summary["telemetry_samples"] == \
            cap.obs.telemetry.samples_taken
        assert summary["telemetry_dropped"] == 0


class TestDashboard:
    @pytest.fixture(scope="class")
    def html(self):
        cap = trace_artifact("fig07", telemetry=units.us(10))
        return render_dashboard(cap, fidelity="packet")

    def test_is_self_contained(self, html):
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "http://" not in html and "https://" not in html
        assert "<script src" not in html and "<link" not in html

    def test_has_three_or_more_timeseries_charts(self, html):
        assert html.count("<svg") >= 3

    def test_has_breakdowns_decisions_and_flamegraph(self, html):
        assert "Phase breakdown" in html
        assert "Critical-path wait causes" in html
        assert "Fidelity decision log" in html
        assert "Flamegraph" in html

    def test_flow_dashboard_lists_decisions(self, fig07_flow):
        html = render_dashboard(fig07_flow, fidelity="flow")
        assert "window:readmit" in html
        assert "burst:carry" in html


class TestCli:
    def test_dashboard_writes_self_contained_html(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "dash.html"
        assert main(["dashboard", "fig08", "--out", str(out)]) == 0
        html = out.read_text()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "http://" not in html and "https://" not in html
        assert "self-contained" in capsys.readouterr().out

    def test_dashboard_unknown_lists_available(self, capsys):
        from repro.bench.__main__ import main

        assert main(["dashboard", "nope"]) == 2
        assert "fig07" in capsys.readouterr().err

    def test_validate_explain_names_top_contributor(self, capsys):
        from repro.bench.__main__ import main

        assert main(["validate-fidelity", "fig08", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "divergence attribution: fig08" in out
        assert "top contributor" in out

    def test_validate_explain_requires_artifact(self, capsys):
        from repro.bench.__main__ import main

        assert main(["validate-fidelity", "--explain"]) == 2
        assert "fig07" in capsys.readouterr().err
