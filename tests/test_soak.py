"""Soak test: randomized collective workloads, verified end to end.

A communication library's classic failure mode is state leaking between
operations (stale Rx buffers, tag collisions, scratch leaks).  This test
drives long randomized sequences of mixed collectives over one cluster and
checks every result against numpy, then inspects the engines for leaks.
"""

import numpy as np
import pytest

from repro.driver import attach_drivers
from repro.sim import all_of
from tests.helpers import make_cluster

N = 64  # elements per block


def random_workload(rng, size):
    ops = ["bcast", "allreduce", "gather", "scatter", "allgather",
           "alltoall", "barrier", "reduce"]
    return [rng.choice(ops) for _ in range(24)]


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("protocol", ["rdma", "tcp"])
def test_soak_random_collective_sequences(seed, protocol):
    rng = np.random.default_rng(seed)
    size = int(rng.integers(3, 7))
    cluster = make_cluster(size, protocol=protocol, platform="sim")
    drivers = attach_drivers(cluster)
    env = cluster.env

    def fresh(n=N):
        return rng.standard_normal(n).astype(np.float32)

    for step, op in enumerate(random_workload(rng, size)):
        root = int(rng.integers(0, size))
        requests = []
        check = None

        if op == "barrier":
            requests = [d.barrier(sync=False) for d in drivers]
        elif op == "bcast":
            payload = fresh()
            bufs = [d.wrap(payload.copy() if r == root
                           else np.zeros(N, np.float32))
                    for r, d in enumerate(drivers)]
            requests = [d.bcast(bufs[r], payload.nbytes, root)
                        for r, d in enumerate(drivers)]
            check = lambda: all(
                np.array_equal(bufs[r].array, payload) for r in range(size))
        elif op in ("reduce", "allreduce"):
            contribs = [fresh() for _ in range(size)]
            outs = [d.wrap(np.zeros(N, np.float32)) for d in drivers]
            if op == "reduce":
                requests = [
                    d.reduce(d.wrap(contribs[r]),
                             outs[r] if r == root else None,
                             contribs[r].nbytes, root)
                    for r, d in enumerate(drivers)
                ]
                check = lambda: np.allclose(
                    outs[root].array, np.sum(contribs, axis=0),
                    rtol=1e-3, atol=1e-4)
            else:
                requests = [
                    d.allreduce(d.wrap(contribs[r]), outs[r],
                                contribs[r].nbytes)
                    for r, d in enumerate(drivers)
                ]
                check = lambda: all(
                    np.allclose(outs[r].array, np.sum(contribs, axis=0),
                                rtol=1e-3, atol=1e-4)
                    for r in range(size))
        elif op == "gather":
            blocks = [fresh() for _ in range(size)]
            out = drivers[root].wrap(np.zeros(N * size, np.float32))
            requests = [
                d.gather(d.wrap(blocks[r]), out if r == root else None,
                         blocks[r].nbytes, root)
                for r, d in enumerate(drivers)
            ]
            check = lambda: np.allclose(out.array, np.concatenate(blocks))
        elif op == "scatter":
            blocks = [fresh() for _ in range(size)]
            sbuf = drivers[root].wrap(np.concatenate(blocks))
            outs = [d.wrap(np.zeros(N, np.float32)) for d in drivers]
            requests = [
                d.scatter(sbuf if r == root else None, outs[r],
                          blocks[0].nbytes, root)
                for r, d in enumerate(drivers)
            ]
            check = lambda: all(
                np.allclose(outs[r].array, blocks[r]) for r in range(size))
        elif op == "allgather":
            blocks = [fresh() for _ in range(size)]
            outs = [d.wrap(np.zeros(N * size, np.float32)) for d in drivers]
            requests = [
                d.allgather(d.wrap(blocks[r]), outs[r], blocks[r].nbytes)
                for r, d in enumerate(drivers)
            ]
            check = lambda: all(
                np.allclose(outs[r].array, np.concatenate(blocks))
                for r in range(size))
        elif op == "alltoall":
            sblocks = [[fresh() for _ in range(size)] for _ in range(size)]
            outs = [d.wrap(np.zeros(N * size, np.float32)) for d in drivers]
            requests = [
                d.alltoall(d.wrap(np.concatenate(sblocks[r])), outs[r], N * 4)
                for r, d in enumerate(drivers)
            ]
            check = lambda: all(
                np.allclose(outs[dst].array,
                            np.concatenate([sblocks[s][dst]
                                            for s in range(size)]))
                for dst in range(size))

        env.run(until=all_of(env, [req.event for req in requests]))
        if check is not None:
            assert check(), f"step {step}: {op} produced a wrong result"

    # No state left behind anywhere in the cluster.
    for node in cluster.nodes:
        engine = node.engine
        assert engine.rbm.free_bytes == engine.config.rx_pool_bytes, \
            "leaked Rx buffers"
        assert not engine._rndz_targets, "leaked rendezvous targets"
        assert len(engine.kernel_data_in) == 0
        assert len(engine.kernel_data_out) == 0
