"""Tests of the fine-grained auto-tuner (the paper's future-work feature)."""

import pytest

from repro import units
from repro.cclo.config_mem import AlgorithmParams, CommunicatorConfig
from repro.cclo.microcontroller import CollectiveArgs
from repro.collectives.autotune import (
    CollectiveAutoTuner,
    TunedSelector,
    TuningPoint,
)
from repro.errors import CollectiveError


def synthetic_measure(opcode, algorithm, nbytes, nranks):
    """A deterministic cost model with a clear best per regime:
    all_to_one wins small, binary_tree wins large, ring never."""
    base = {"all_to_one": 5e-6 + nbytes * nranks / 12.5e9,
            "binary_tree": 12e-6 + nbytes * 2.2 / 12.5e9,
            "ring": 4e-6 * nranks + nbytes * 1.1 / 12.5e9}[algorithm]
    return base


ALGOS = {"reduce": ("ring", "all_to_one", "binary_tree")}


class TestTuningPoint:
    def test_best_and_regret(self):
        point = TuningPoint(1024, 4, {"a": 2.0, "b": 1.0})
        assert point.best == "b"
        assert point.regret_of("a") == pytest.approx(1.0)
        assert point.regret_of("b") == 0.0

    def test_empty_point_rejected(self):
        with pytest.raises(CollectiveError):
            TuningPoint(1, 1).best


class TestAutoTuner:
    def make_tuner(self):
        tuner = CollectiveAutoTuner(synthetic_measure, ALGOS)
        tuner.tune("reduce",
                   sizes=[4 * units.KIB, 64 * units.KIB, units.MIB],
                   rank_counts=[4, 8])
        return tuner

    def test_grid_fully_measured(self):
        tuner = self.make_tuner()
        points = tuner.tables["reduce"]
        assert len(points) == 6
        assert all(len(p.timings) == 3 for p in points)

    def test_tuned_selector_picks_grid_best(self):
        tuner = self.make_tuner()
        selector = tuner.build_selector()
        params = AlgorithmParams()
        for point in tuner.tables["reduce"]:
            comm = CommunicatorConfig(0, 0, list(range(point.nranks)),
                                      protocol="rdma")
            pick = selector.choose(
                CollectiveArgs(opcode="reduce", nbytes=point.nbytes),
                comm, params)
            assert pick == point.best, (point.nbytes, point.nranks)

    def test_off_grid_snaps_to_nearest(self):
        tuner = self.make_tuner()
        selector = tuner.build_selector()
        params = AlgorithmParams()
        comm = CommunicatorConfig(0, 0, list(range(6)), protocol="rdma")
        pick = selector.choose(
            CollectiveArgs(opcode="reduce", nbytes=48 * units.KIB),
            comm, params)
        assert pick in ALGOS["reduce"]

    def test_untuned_opcode_falls_back_to_table1(self):
        tuner = self.make_tuner()
        selector = tuner.build_selector()
        params = AlgorithmParams()
        comm = CommunicatorConfig(0, 0, list(range(8)), protocol="rdma")
        pick = selector.choose(
            CollectiveArgs(opcode="bcast", nbytes=units.MIB), comm, params)
        assert pick == "recursive_doubling"  # stock policy

    def test_stock_regret_reported(self):
        tuner = self.make_tuner()
        regret = tuner.max_stock_regret("reduce")
        assert regret >= 0.0

    def test_unknown_opcode_rejected(self):
        tuner = CollectiveAutoTuner(synthetic_measure, ALGOS)
        with pytest.raises(CollectiveError):
            tuner.tune("bcast", [1024], [4])

    def test_selector_requires_measurements(self):
        tuner = CollectiveAutoTuner(synthetic_measure, ALGOS)
        with pytest.raises(CollectiveError):
            tuner.build_selector()


class TestEndToEndTuning:
    def test_tuning_on_real_simulated_measurements(self):
        """Tune against the actual engine and deploy at runtime."""
        from repro.bench.harness import accl_collective_time
        from repro.platform.base import BufferLocation

        def measure(opcode, algorithm, nbytes, nranks):
            return accl_collective_time(
                opcode, nbytes, n_nodes=nranks, algorithm=algorithm,
                location=BufferLocation.DEVICE)

        tuner = CollectiveAutoTuner(measure, ALGOS)
        tuner.tune("reduce", sizes=[8 * units.KIB, 128 * units.KIB],
                   rank_counts=[8])
        selector = tuner.build_selector()
        params = AlgorithmParams()
        comm = CommunicatorConfig(0, 0, list(range(8)), protocol="rdma")
        small_pick = selector.choose(
            CollectiveArgs(opcode="reduce", nbytes=8 * units.KIB),
            comm, params)
        large_pick = selector.choose(
            CollectiveArgs(opcode="reduce", nbytes=128 * units.KIB),
            comm, params)
        # The empirically-best choices match the Fig 12 narrative.
        assert small_pick == "all_to_one"
        assert large_pick == "binary_tree"
        # The tuned table can be installed on a live engine's selector slot.
        from tests.helpers import make_cluster
        cluster = make_cluster(2)
        cluster.engine(0).selector = selector
        ev = cluster.engine(0).call(CollectiveArgs(opcode="nop"))
        cluster.env.run(until=ev)
        assert ev.ok
