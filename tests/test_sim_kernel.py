"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
    all_of,
    any_of,
)


def test_time_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_time():
    env = Environment()
    done = {}

    def proc():
        yield env.timeout(1.5)
        done["t"] = env.now

    env.process(proc())
    env.run()
    assert done["t"] == pytest.approx(1.5)


def test_timeout_carries_value():
    env = Environment()
    result = {}

    def proc():
        result["v"] = yield env.timeout(1.0, value="payload")

    env.process(proc())
    env.run()
    assert result["v"] == "payload"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(3, "c"))
    env.process(proc(1, "a"))
    env.process(proc(2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in ("x", "y", "z"):
        env.process(proc(tag))
    env.run()
    assert order == ["x", "y", "z"]


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 42

    p = env.process(proc())
    assert env.run(until=p) == 42


def test_process_waits_on_process():
    env = Environment()

    def child():
        yield env.timeout(2)
        return "child-result"

    def parent():
        value = yield env.process(child())
        return value, env.now

    p = env.process(parent())
    value, t = env.run(until=p)
    assert value == "child-result"
    assert t == pytest.approx(2)


def test_event_manual_trigger():
    env = Environment()
    gate = env.event()
    seen = {}

    def waiter():
        seen["v"] = yield gate

    def opener():
        yield env.timeout(5)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert seen["v"] == "open"


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = {}

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught["exc"] = exc

    env.process(waiter())
    gate.fail(RuntimeError("boom"))
    env.run()
    assert str(caught["exc"]) == "boom"


def test_unhandled_process_exception_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("firmware fault")

    env.process(bad())
    with pytest.raises(ValueError, match="firmware fault"):
        env.run()


def test_run_until_time():
    env = Environment()
    ticks = []

    def ticker():
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(ticker())
    env.run(until=3.5)
    assert ticks == [1, 2, 3]
    assert env.now == pytest.approx(3.5)


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_run_until_event_deadlock_detected():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=never)


def test_yield_non_event_rejected():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_interrupt_wakes_process():
    env = Environment()
    seen = {}

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            seen["cause"] = intr.cause
            seen["time"] = env.now

    p = env.process(sleeper())

    def interrupter():
        yield env.timeout(2)
        p.interrupt(cause="retransmit-timer")

    env.process(interrupter())
    env.run()
    assert seen["cause"] == "retransmit-timer"
    assert seen["time"] == pytest.approx(2)


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_all_of_waits_for_every_event():
    env = Environment()
    times = {}

    def waiter():
        evs = [env.timeout(1), env.timeout(5), env.timeout(3)]
        yield all_of(env, evs)
        times["done"] = env.now

    env.process(waiter())
    env.run()
    assert times["done"] == pytest.approx(5)


def test_any_of_returns_at_first_event():
    env = Environment()
    times = {}

    def waiter():
        evs = [env.timeout(4), env.timeout(2)]
        yield any_of(env, evs)
        times["done"] = env.now

    env.process(waiter())
    env.run()
    assert times["done"] == pytest.approx(2)


def test_all_of_empty_is_immediate():
    env = Environment()
    times = {}

    def waiter():
        yield all_of(env, [])
        times["done"] = env.now

    env.process(waiter())
    env.run()
    assert times["done"] == 0.0


def test_schedule_callback():
    env = Environment()
    fired = []
    env.schedule_callback(2.0, lambda: fired.append(env.now))
    env.run()
    assert fired == [2.0]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == pytest.approx(7)


def test_peek_empty_heap_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_yielding_already_processed_event_resumes_immediately():
    env = Environment()
    trace = []

    def proc():
        t = env.timeout(1)
        yield env.timeout(2)  # t is processed by the time we yield it
        yield t
        trace.append(env.now)

    env.process(proc())
    env.run()
    assert trace == [2]


def test_many_processes_scale():
    env = Environment()
    counter = []

    def proc(i):
        yield env.timeout(i % 10)
        counter.append(i)

    for i in range(1000):
        env.process(proc(i))
    env.run()
    assert len(counter) == 1000


# ---------------------------------------------------------------------------
# edge cases: interrupt timing, failed condition children, instrumentation
# ---------------------------------------------------------------------------

def test_interrupt_process_whose_target_triggered_but_not_processed():
    """Interrupt racing the target event at the same timestamp.

    The interrupter's timeout pops first, so at interrupt time the waiter's
    own timeout has *triggered* (it sits in the heap) but its callbacks
    have not run.  The interrupt must still win: the waiter sees the
    Interrupt, never the timeout completion.
    """
    env = Environment()
    log = []
    holder = {}

    def interrupter():
        yield env.timeout(1.0)
        target = holder["p"]._target
        assert target.triggered and not target.processed
        holder["p"].interrupt("late")

    env.process(interrupter())  # started first => pops first at t=1.0

    def waiter():
        try:
            yield env.timeout(1.0)
            log.append("completed")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause))

    holder["p"] = env.process(waiter())
    env.run()
    assert log == [("interrupted", "late")]


def test_interrupted_process_can_keep_running():
    env = Environment()
    log = []

    def waiter():
        try:
            yield env.timeout(10.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)  # life goes on after the interrupt
        log.append(env.now)

    p = env.process(waiter())

    def interrupter():
        yield env.timeout(2.0)
        p.interrupt()

    env.process(interrupter())
    env.run()
    assert log == [pytest.approx(3.0)]


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


@pytest.mark.parametrize("combinator", [any_of, all_of])
def test_condition_with_already_failed_child_raises_in_waiter(combinator):
    env = Environment()
    bad = Event(env)
    bad.fail(RuntimeError("boom"))
    bad.defuse()
    good = env.timeout(1.0)
    outcome = []

    def watcher():
        try:
            yield combinator(env, [bad, good])
            outcome.append("ok")
        except RuntimeError as exc:
            outcome.append(str(exc))

    env.process(watcher())
    env.run()
    assert outcome == ["boom"]


def test_all_of_failed_child_does_not_wait_for_siblings():
    env = Environment()
    bad = Event(env)
    bad.fail(RuntimeError("early"))
    bad.defuse()
    slow = env.timeout(100.0)
    seen = {}

    def watcher():
        try:
            yield all_of(env, [slow, bad])
        except RuntimeError:
            seen["at"] = env.now

    env.process(watcher())
    env.run()
    assert seen["at"] == pytest.approx(0.0)


def test_environment_instrumentation_counters_advance():
    events0 = Environment.total_events_processed
    sim0 = Environment.total_sim_time
    env = Environment()

    def proc():
        yield env.timeout(2.5)
        yield env.timeout(1.5)

    env.process(proc())
    env.run()
    assert Environment.total_events_processed - events0 >= 3
    assert Environment.total_sim_time - sim0 == pytest.approx(4.0)
