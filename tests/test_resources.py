"""Tests of the resource-utilization model (Table 3)."""

import pytest

from repro.errors import ConfigurationError
from repro.resources import (
    U55C_TOTALS,
    ResourceVector,
    cclo_utilization,
    dlrm_fc_utilization,
    poe_utilization,
    utilization_table,
)
from repro.resources.model import fc_layer_resources


class TestVectors:
    def test_u55c_totals_match_table3(self):
        assert U55C_TOTALS.klut == 1303
        assert U55C_TOTALS.dsp == 9024
        assert U55C_TOTALS.bram == 2016
        assert U55C_TOTALS.uram == 960

    def test_addition_and_scale(self):
        a = ResourceVector(1, 2, 3, 4)
        b = ResourceVector(10, 20, 30, 40)
        s = a + b
        assert (s.klut, s.dsp, s.bram, s.uram) == (11, 22, 33, 44)
        half = b.scale(0.5)
        assert half.dsp == 10

    def test_percent_conversion(self):
        vec = ResourceVector(1303 / 2, 9024 / 4, 2016 / 8, 0)
        pct = vec.as_percent_of(U55C_TOTALS)
        assert pct["CLB kLUT"] == pytest.approx(50)
        assert pct["DSP"] == pytest.approx(25)
        assert pct["BRAM"] == pytest.approx(12.5)


class TestTable3Rows:
    def test_cclo_row(self):
        pct = cclo_utilization().as_percent_of(U55C_TOTALS)
        assert pct["CLB kLUT"] == pytest.approx(12.1, abs=0.2)
        assert pct["DSP"] == pytest.approx(1.6, abs=0.1)
        assert pct["BRAM"] == pytest.approx(5.7, abs=0.2)
        assert pct["URAM"] == 0

    def test_poe_rows(self):
        tcp = poe_utilization("tcp").as_percent_of(U55C_TOTALS)
        rdma = poe_utilization("rdma").as_percent_of(U55C_TOTALS)
        assert tcp["CLB kLUT"] == pytest.approx(19.8, abs=0.2)
        assert tcp["BRAM"] == pytest.approx(10.6, abs=0.2)
        assert rdma["CLB kLUT"] == pytest.approx(13.0, abs=0.2)
        assert rdma["BRAM"] == pytest.approx(5.3, abs=0.2)

    def test_tcp_poe_is_most_expensive(self):
        """Paper: "the TCP POE being the most resource-intensive"."""
        assert (poe_utilization("tcp").klut
                > poe_utilization("rdma").klut
                > poe_utilization("udp").klut)

    def test_dlrm_rows(self):
        fc1 = dlrm_fc_utilization("fc1").as_percent_of(U55C_TOTALS)
        assert fc1["CLB kLUT"] == pytest.approx(278.1, abs=1.0)
        assert fc1["DSP"] == pytest.approx(580.1, abs=1.0)
        assert fc1["URAM"] == pytest.approx(798.3, abs=1.0)
        fc3 = dlrm_fc_utilization("fc3").as_percent_of(U55C_TOTALS)
        assert fc3["DSP"] == pytest.approx(16.1, abs=0.5)

    def test_fc1_exceeds_single_fpga_but_fits_eight(self):
        fc1 = dlrm_fc_utilization("fc1").as_percent_of(U55C_TOTALS)
        assert fc1["DSP"] > 100       # does not fit one U55C
        assert fc1["URAM"] < 800      # fits the 8-FPGA decomposition budget

    def test_plugin_stripping_saves_resources(self):
        """§6.1: non-reducing nodes remove the streaming reduction plugins."""
        full = cclo_utilization(plugins_enabled=True)
        stripped = cclo_utilization(plugins_enabled=False)
        assert stripped.klut < full.klut
        assert stripped.dsp < full.dsp

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigurationError):
            poe_utilization("quic")
        with pytest.raises(ConfigurationError):
            dlrm_fc_utilization("fc9")


class TestEstimator:
    def test_fc_estimator_monotone_in_lanes(self):
        small = fc_layer_resources(1024, 1024, lanes=256)
        large = fc_layer_resources(1024, 1024, lanes=1024)
        assert large.dsp > small.dsp
        assert large.klut > small.klut

    def test_fc_estimator_weights_drive_uram(self):
        narrow = fc_layer_resources(256, 256, lanes=128)
        wide = fc_layer_resources(4096, 4096, lanes=128)
        assert wide.uram > narrow.uram

    def test_bad_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            fc_layer_resources(0, 10, 1)


class TestTable:
    def test_full_table_structure(self):
        rows = utilization_table()
        names = [name for name, _ in rows]
        assert names[0] == "U55C(100%)"
        assert "CCLO" in names
        assert "TCP POE" in names and "RDMA POE" in names
        assert "DLRM FC1" in names and "DLRM FC3" in names
        for _, pct in rows:
            assert set(pct) == {"CLB kLUT", "DSP", "BRAM", "URAM"}

    def test_table_without_dlrm(self):
        rows = utilization_table(include_dlrm=False)
        assert all(not name.startswith("DLRM") for name, _ in rows)
