"""Tests of the two-tier leaf-spine fabric."""

import numpy as np
import pytest

from repro import units
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import build_fpga_cluster
from repro.errors import NetworkError
from repro.network import Segment
from repro.network.topology import LeafSpineTopology
from repro.sim import Environment, all_of
from tests.helpers import dev_buffer, empty_dev_buffer


def make_topo(env=None, **kwargs):
    env = env or Environment()
    return env, LeafSpineTopology(env, **kwargs)


class TestFabric:
    def test_intra_leaf_delivery(self):
        env, topo = make_topo(ports_per_leaf=4)
        a = topo.add_endpoint(0)
        b = topo.add_endpoint(1)
        got = []
        b.on_receive(lambda seg: got.append(env.now))
        a.send(Segment(0, 1, payload_bytes=1024))
        env.run()
        assert len(got) == 1

    def test_cross_leaf_delivery(self):
        env, topo = make_topo(ports_per_leaf=2)
        a = topo.add_endpoint(0)   # leaf 0
        b = topo.add_endpoint(2)   # leaf 1
        got = []
        b.on_receive(lambda seg: got.append(env.now))
        a.send(Segment(0, 2, payload_bytes=1024))
        env.run()
        assert len(got) == 1

    def test_cross_leaf_slower_than_intra_leaf(self):
        def latency(dst):
            env, topo = make_topo(ports_per_leaf=2)
            a = topo.add_endpoint(0)
            topo.add_endpoint(1)
            topo.add_endpoint(2)
            got = []
            topo.endpoint(dst).on_receive(lambda seg: got.append(env.now))
            a.send(Segment(0, dst, payload_bytes=64))
            env.run()
            return got[0]

        assert latency(2) > latency(1)  # two extra hops + two switches

    def test_base_latency_accounting(self):
        env, topo = make_topo()
        assert (topo.one_way_base_latency(cross_leaf=True)
                > topo.one_way_base_latency(cross_leaf=False))

    def test_leaf_mapping(self):
        _, topo = make_topo(ports_per_leaf=4)
        assert topo.leaf_of(0) == 0
        assert topo.leaf_of(3) == 0
        assert topo.leaf_of(4) == 1

    def test_flow_hash_keeps_one_flow_ordered(self):
        env, topo = make_topo(ports_per_leaf=1, n_spines=4)
        a = topo.add_endpoint(0)
        b = topo.add_endpoint(1)
        got = []
        b.on_receive(lambda seg: got.append(seg.seqno))
        for i in range(16):
            a.send(Segment(0, 1, payload_bytes=8 * units.KIB, seqno=i))
        env.run()
        assert got == list(range(16))

    def test_duplicate_address_rejected(self):
        _, topo = make_topo()
        topo.add_endpoint(0)
        with pytest.raises(NetworkError):
            topo.add_endpoint(0)

    def test_bad_geometry_rejected(self):
        env = Environment()
        with pytest.raises(NetworkError):
            LeafSpineTopology(env, ports_per_leaf=0)

    def test_spines_share_cross_leaf_load(self):
        """With several flows, more than one spine carries traffic."""
        env, topo = make_topo(ports_per_leaf=4, n_spines=2)
        for addr in range(8):
            ep = topo.add_endpoint(addr)
            ep.on_receive(lambda seg: None)
        for src in range(4):
            for dst in range(4, 8):
                topo.endpoint(src).send(
                    Segment(src, dst, payload_bytes=4096))
        env.run()
        loads = [sp.segments_forwarded for sp in topo._spines]
        assert all(load > 0 for load in loads)


class TestEdgeCases:
    def test_lazy_leaf_growth_beyond_initial_leaf(self):
        """Leaves materialize on demand, including skipped intermediates."""
        env, topo = make_topo(ports_per_leaf=4)
        topo.add_endpoint(0)
        assert len(topo._leaves) == 1
        far = topo.add_endpoint(9)       # leaf 2: leaf 1 materializes too
        assert len(topo._leaves) == 3
        got = []
        far.on_receive(lambda seg: got.append(seg.src))
        topo.endpoint(0).send(Segment(0, 9, payload_bytes=1024))
        env.run()
        assert got == [0]

    def test_single_spine_single_port_degenerate_fabric(self):
        """ports_per_leaf=1, n_spines=1: every hop is cross-leaf, one path."""
        env, topo = make_topo(ports_per_leaf=1, n_spines=1)
        a = topo.add_endpoint(0)
        b = topo.add_endpoint(1)
        got = []
        a.on_receive(lambda seg: got.append(("a", seg.src)))
        b.on_receive(lambda seg: got.append(("b", seg.src)))
        a.send(Segment(0, 1, payload_bytes=512))
        b.send(Segment(1, 0, payload_bytes=512))
        env.run()
        assert sorted(got) == [("a", 1), ("b", 0)]
        assert topo._spines[0].segments_forwarded == 2

    def test_single_endpoint_fabric(self):
        env, topo = make_topo(ports_per_leaf=1, n_spines=1)
        topo.add_endpoint(0)
        assert topo.endpoints[0].address == 0

    def test_ecmp_spine_choice_is_deterministic_across_builds(self):
        """The flow hash is address arithmetic, not id()/PYTHONHASHSEED:
        rebuilding the fabric reproduces the exact per-spine loads."""
        def spine_loads():
            env, topo = make_topo(ports_per_leaf=2, n_spines=4)
            eps = [topo.add_endpoint(a) for a in range(8)]
            for ep in eps:
                ep.on_receive(lambda seg: None)
            for src in range(4):
                for dst in range(4, 8):
                    eps[src].send(Segment(src, dst, payload_bytes=2048))
            env.run()
            return [sp.segments_forwarded for sp in topo._spines]

        first = spine_loads()
        assert sum(first) == 16
        assert first == spine_loads()

    def test_oversubscribed_uplinks_slow_cross_leaf_flows(self):
        def cross_leaf_time(factor):
            env, topo = make_topo(ports_per_leaf=2, n_spines=1,
                                  oversubscription=factor)
            a = topo.add_endpoint(0)
            b = topo.add_endpoint(2)
            got = []
            b.on_receive(lambda seg: got.append(env.now))
            a.send(Segment(0, 2, payload_bytes=256 * units.KIB))
            env.run()
            return got[0]

        assert cross_leaf_time(4.0) > cross_leaf_time(1.0)


class TestCollectivesOverClos:
    def test_allreduce_across_leaves(self):
        """A full CCLO collective over the two-tier fabric."""
        size = 8
        cluster = build_fpga_cluster(
            size, protocol="rdma", platform="sim",
            topology_factory=lambda env: LeafSpineTopology(
                env, ports_per_leaf=4, n_spines=2),
        )
        n = 256
        contribs = [np.full(n, float(r + 1), np.float32)
                    for r in range(size)]
        svs = [dev_buffer(cluster, r, contribs[r]) for r in range(size)]
        rvs = [empty_dev_buffer(cluster, r, n) for r in range(size)]
        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="allreduce", nbytes=contribs[0].nbytes, sbuf=svs[r],
            rbuf=rvs[r]))
        expected = np.sum(contribs, axis=0)
        for r in range(size):
            np.testing.assert_allclose(rvs[r].array, expected)

    def test_collective_slower_than_single_switch(self):
        """Cross-leaf hops cost latency relative to the flat star."""
        def bcast_time(topology_factory):
            cluster = build_fpga_cluster(
                8, protocol="rdma", platform="sim",
                topology_factory=topology_factory)
            from repro.platform.base import BufferLocation
            views = [
                cluster.nodes[r].platform.allocate(
                    4096, BufferLocation.DEVICE).view()
                for r in range(8)
            ]
            return cluster.run_collective(lambda r: CollectiveArgs(
                opcode="bcast", nbytes=4096, root=0, tag=1 << 20,
                rbuf=views[r]))

        star = bcast_time(None)
        clos = bcast_time(lambda env: LeafSpineTopology(
            env, ports_per_leaf=2, n_spines=2))
        assert clos > star
