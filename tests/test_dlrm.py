"""Tests of the distributed DLRM use case (§6, Figures 14-15, Table 2)."""

import numpy as np
import pytest

from repro import units
from repro.apps.dlrm import (
    CpuDlrmBaseline,
    DistributedDlrm,
    DlrmConfig,
    DlrmModel,
    DlrmPlan,
    PartitionedWeights,
    embedding_vectors,
)
from repro.errors import ConfigurationError


class TestModelAndConfig:
    def test_table2_configuration(self):
        config = DlrmConfig()
        assert config.num_tables == 100
        assert config.concat_len == 3200
        assert config.fc_dims == (2048, 512, 256)
        assert config.embed_bytes >= 50 * 10**9  # "Embed Size 50GB"

    def test_procedural_embeddings_deterministic(self):
        config = DlrmConfig()
        tables = np.array([0, 5, 99])
        rows = np.array([1, 2**20, 3])
        a = embedding_vectors(config, tables, rows)
        b = embedding_vectors(config, tables, rows)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (3, config.embed_dim)

    def test_embeddings_differ_across_rows(self):
        config = DlrmConfig()
        vecs = embedding_vectors(config, np.array([0, 0]), np.array([1, 2]))
        assert not np.allclose(vecs[0], vecs[1])

    def test_embeddings_bounded(self):
        config = DlrmConfig()
        vecs = embedding_vectors(config, np.arange(100),
                                 np.arange(100) * 1000)
        assert np.all(np.abs(vecs) <= 0.25 + 1e-6)

    def test_out_of_range_row_rejected(self):
        config = DlrmConfig()
        with pytest.raises(ConfigurationError):
            embedding_vectors(config, np.array([0]),
                              np.array([config.rows_per_table]))

    def test_reference_forward_is_probability(self):
        model = DlrmModel()
        queries = model.make_queries(4)
        out = model.forward_batch(queries)
        assert np.all((out > 0) & (out < 1))

    def test_flops_per_inference(self):
        model = DlrmModel()
        expected = 2 * (3200 * 2048 + 2048 * 512 + 512 * 256)
        assert model.flops_per_inference == expected


class TestPartitioning:
    def test_plan_roles(self):
        plan = DlrmPlan()
        assert plan.n_nodes == 10
        assert plan.embed_nodes == [0, 1, 2, 3]
        assert plan.fc1_partner_nodes == [4, 5, 6, 7]
        assert plan.fc2_node == 8
        assert plan.fc3_node == 9
        assert plan.reduce_group == [4, 5, 6, 7, 8]  # "nodes 5 to 9"

    def test_message_sizes_match_paper(self):
        """3.2 KB partial embedding vector, 4 KB partial result, 8 KB reduce."""
        plan, config = DlrmPlan(), DlrmConfig()
        assert plan.chunk_len(config) * 4 == 3200          # 3.2 KB
        assert plan.row_len(config) * 4 == 4096            # 4 KB
        assert config.fc_dims[0] * 4 == 8192               # 8 KB

    def test_tables_partition_evenly(self):
        plan, config = DlrmPlan(), DlrmConfig()
        seen = set()
        for node in plan.embed_nodes:
            seen.update(plan.tables_for(node, config))
        assert seen == set(range(config.num_tables))

    def test_checkerboard_decomposition_exact(self):
        """Figure 14: summed block partials equal the full W1 @ x."""
        model = DlrmModel()
        weights = PartitionedWeights(model)
        x = np.random.default_rng(3).standard_normal(
            model.config.concat_len).astype(np.float32)
        np.testing.assert_allclose(
            weights.check_decomposition(x), model.weights[0] @ x,
            rtol=1e-3, atol=1e-4,
        )


class TestDistributedPipeline:
    @pytest.fixture(scope="class")
    def run(self):
        model = DlrmModel()
        dlrm = DistributedDlrm(model)
        queries = model.make_queries(32)
        stats = dlrm.run(queries)
        return model, dlrm, queries, stats

    def test_outputs_match_reference(self, run):
        model, _, queries, stats = run
        np.testing.assert_allclose(stats.outputs,
                                   model.forward_batch(queries),
                                   rtol=1e-3, atol=1e-4)

    def test_latency_well_below_cpu(self, run):
        """Fig 17(a): two orders of magnitude vs CPU serving batches."""
        _, _, _, stats = run
        cpu = CpuDlrmBaseline()
        assert cpu.latency(256) / stats.mean_latency > 100

    def test_throughput_order_of_magnitude_above_cpu(self, run):
        """Fig 17(b): more than an order of magnitude vs best CPU batch."""
        _, _, _, stats = run
        cpu = CpuDlrmBaseline()
        assert stats.throughput / cpu.best_throughput() > 10

    def test_latencies_positive_and_bounded(self, run):
        _, _, _, stats = run
        assert all(lat > 0 for lat in stats.latencies)
        assert stats.p99_latency < units.ms(1)

    def test_empty_run_rejected(self):
        dlrm = DistributedDlrm(DlrmModel())
        with pytest.raises(ConfigurationError):
            dlrm.run(np.zeros((0, 100), dtype=int))


class TestCpuBaseline:
    def test_latency_grows_with_batch(self):
        cpu = CpuDlrmBaseline()
        lats = [cpu.latency(b) for b in (1, 16, 256, 1024)]
        assert lats == sorted(lats)

    def test_throughput_improves_with_batch(self):
        cpu = CpuDlrmBaseline()
        assert cpu.throughput(256) > cpu.throughput(1)

    def test_cpu_latency_is_milliseconds(self):
        cpu = CpuDlrmBaseline()
        assert cpu.latency(1) > units.ms(1)

    def test_best_throughput_covers_sweep(self):
        cpu = CpuDlrmBaseline()
        assert cpu.best_throughput() >= max(
            thr for _, _, thr in cpu.sweep())

    def test_bad_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuDlrmBaseline().latency(0)
