"""Tests of the benchmark harness plumbing and CLI (fast artifacts only)."""

import pytest

from repro.bench import format_rows, format_series
from repro.bench.harness import (
    accl_collective_time,
    mpi_collective_time,
    run_fig08_invocation_latency,
    run_tab01_algorithm_table,
    run_tab03_resources,
)
from repro.bench.__main__ import ARTIFACTS, main
from repro.platform.base import BufferLocation
from repro import units


class TestFormats:
    def test_format_rows_aligns_columns(self):
        text = format_rows(
            [{"a": 1, "b": "xx"}, {"a": 22.5, "b": "y"}],
            ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_rows_missing_cell(self):
        text = format_rows([{"a": 1}], ["a", "b"])
        assert "1" in text

    def test_format_series_merges_x_values(self):
        text = format_series(
            {"s1": {1: 10.0, 2: 20.0}, "s2": {2: 5.0, 3: 6.0}}, "x")
        lines = text.splitlines()
        assert len(lines) == 2 + 3  # header + rule + three x rows
        assert "-" in lines[2]  # s1 has no x=3... s2 has no x=1

    def test_float_rendering(self):
        text = format_rows([{"v": 1.23456789}], ["v"])
        assert "1.235" in text


class TestHarnessRunners:
    def test_tab01_rows_complete(self):
        rows = run_tab01_algorithm_table()
        assert {r["collective"] for r in rows} == {
            "bcast", "reduce", "gather", "alltoall"}

    def test_tab03_rows_complete(self):
        rows = run_tab03_resources()
        names = [r["component"] for r in rows]
        assert names[0] == "U55C(100%)"
        assert len(names) == 7

    def test_fig08_rows(self):
        rows = run_fig08_invocation_latency(repeats=2)
        assert [r["caller"] for r in rows] == [
            "FPGA kernel", "Coyote host", "XRT host"]
        assert all(r["latency_us"] > 0 for r in rows)

    def test_accl_collective_time_runner(self):
        t = accl_collective_time("bcast", 4 * units.KIB, n_nodes=4,
                                 location=BufferLocation.DEVICE)
        assert t > 0

    def test_accl_runner_via_driver(self):
        t = accl_collective_time("bcast", 4 * units.KIB, n_nodes=4,
                                 location=BufferLocation.HOST,
                                 via_driver=True)
        assert t > 0

    def test_mpi_collective_time_runner(self):
        t = mpi_collective_time("bcast", 4 * units.KIB, n_ranks=4)
        assert t > 0

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            accl_collective_time("scan", 1024)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "tab03" in out

    def test_unknown_artifact(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_regenerates_fast_artifacts(self, capsys):
        assert main(["tab01", "tab03"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out
        assert "recursive_doubling" in out
        assert "DLRM FC1" in out

    def test_artifact_registry_covers_all_figures(self):
        expected = {"fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
                    "fig13", "fig16", "fig17", "figX_scale",
                    "tab01", "tab02", "tab03"}
        assert set(ARTIFACTS) == expected

    def test_tab02_regenerates_dlrm_config(self, capsys):
        assert main(["tab02"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "3200" in out and "(2048, 512, 256)" in out

    def test_json_flag_writes_trajectory(self, tmp_path, capsys):
        out_path = tmp_path / "traj.json"
        assert main(["tab01", "--no-cache", "--json", str(out_path)]) == 0
        import json
        trajectory = json.loads(out_path.read_text())
        assert trajectory["schema"] == 1
        assert trajectory["totals"]["points"] == 1
        point = trajectory["artifacts"]["tab01"]["points"][0]
        assert point["kernel"] == "tab01"
        assert point["wall_s"] > 0
        assert point["cached"] is False

    def test_cache_flag_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["tab03", "--cache", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert main(["tab03", "--cache", cache_dir]) == 0
        warm = capsys.readouterr().out
        assert warm == cold  # cache hit renders identical rows
