"""Flow-level fast-forward fidelity: correctness against packet mode.

``fidelity="flow"`` replaces per-segment wire events on uncongested paths
with analytic :class:`~repro.network.packet.Burst` trains.  The contract is
that it stays *invisible* in results: packet mode is the calibrated truth,
and every deviation here must be either exactly zero (idle point-to-point
paths) or bounded by the documented approximations (sub-burst fallback
boundaries, control-segment slotting).  The full per-artifact check is
``python -m repro.bench validate-fidelity``; these tests pin the mechanism
at unit and kernel level so regressions localize.
"""

import random
from types import SimpleNamespace

import pytest

from repro import units
from repro.bench.harness import (
    _accl_p2p_time,
    _mpi_p2p_time,
    accl_collective_time,
)
from repro.errors import ConfigurationError
from repro.network import Link, Segment
from repro.network.fidelity import default_fidelity, fidelity_override
from repro.network.packet import Burst
from repro.obs.spans import SpanTracer
from repro.sim import Environment


def _rel(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b), 1e-300)


class TestDefaults:
    def test_default_fidelity_is_packet(self, monkeypatch):
        monkeypatch.delenv("REPRO_FIDELITY", raising=False)
        assert default_fidelity() == "packet"

    def test_override_restores_previous(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "packet")
        with fidelity_override("flow"):
            assert default_fidelity() == "flow"
        assert default_fidelity() == "packet"

    def test_unknown_fidelity_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "cycle")
        with pytest.raises(ConfigurationError):
            default_fidelity()

    def test_packet_mode_never_fast_forwards(self):
        with fidelity_override("packet"):
            before = Environment.total_events_fast_forwarded
            elapsed = _mpi_p2p_time(units.MIB, 1)
            assert elapsed > 0.0
            assert Environment.total_events_fast_forwarded == before


class TestKernelEquivalence:
    """Flow mode must reproduce packet-mode timings."""

    @pytest.mark.parametrize("size", [16 * units.MIB, 64 * units.MIB])
    def test_accl_p2p_exact(self, size):
        with fidelity_override("packet"):
            packet = _accl_p2p_time(size, n_msgs=1, location="device")
        with fidelity_override("flow"):
            ff0 = Environment.total_events_fast_forwarded
            flow = _accl_p2p_time(size, n_msgs=1, location="device")
            forwarded = Environment.total_events_fast_forwarded - ff0
        # Idle p2p path: the closed form is exact (float noise only).
        assert _rel(packet, flow) < 1e-9
        assert forwarded > 0

    @pytest.mark.parametrize("n_msgs", [2, 4])
    def test_accl_concurrent_convoy(self, n_msgs):
        # Concurrent equal senders interleave round-robin on the uplink;
        # the convoy grid reproduces that to within a constant ~10 ns
        # end effect (the completion notification queues behind the whole
        # convoy tail instead of slotting right after its own message).
        size = 16 * units.MIB
        with fidelity_override("packet"):
            packet = _accl_p2p_time(size, n_msgs=n_msgs, location="device")
        with fidelity_override("flow"):
            ff0 = Environment.total_events_fast_forwarded
            flow = _accl_p2p_time(size, n_msgs=n_msgs, location="device")
            forwarded = Environment.total_events_fast_forwarded - ff0
        assert _rel(packet, flow) < 1e-5
        # Every message must ride the convoy: nearly all of the
        # n_msgs * size/32KiB wire segments are elided, not just the
        # first sender's opening window.
        assert forwarded > n_msgs * (size // (32 * units.KIB)) // 2

    def test_mpi_rendezvous_p2p_exact_when_uncontended(self):
        with fidelity_override("packet"):
            packet = _mpi_p2p_time(16 * units.MIB, 1)
        with fidelity_override("flow"):
            flow = _mpi_p2p_time(16 * units.MIB, 1)
        assert _rel(packet, flow) < 1e-9

    def test_mpi_concurrent_bulk_falls_back_within_bound(self):
        # Four concurrent rendezvous messages share the uplink: admission
        # (and the per-sub-burst re-check) must drop to packet fidelity,
        # leaving at most a one-sub-burst boundary residue.
        with fidelity_override("packet"):
            packet = _mpi_p2p_time(16 * units.MIB, 4)
        with fidelity_override("flow"):
            flow = _mpi_p2p_time(16 * units.MIB, 4)
        assert _rel(packet, flow) < 1e-3

    def test_collective_within_tolerance(self):
        # 32 MiB over 4 ranks: ring chunks are 8 MiB, right at the flow
        # admission floor, so the collective actually exercises bursts.
        with fidelity_override("packet"):
            packet = accl_collective_time("allreduce", 32 * units.MIB,
                                          n_nodes=4)
        with fidelity_override("flow"):
            ff0 = Environment.total_events_fast_forwarded
            flow = accl_collective_time("allreduce", 32 * units.MIB,
                                        n_nodes=4)
            forwarded = Environment.total_events_fast_forwarded - ff0
        assert _rel(packet, flow) < 5e-3
        assert forwarded > 0

    def test_below_floor_message_stays_packet(self):
        # 1 MiB is under the admission floor: the residual one-window
        # skew would not be small relative to the message, so flow mode
        # must leave it untouched (bit-identical, nothing forwarded).
        with fidelity_override("packet"):
            packet = _mpi_p2p_time(units.MIB, 1)
        with fidelity_override("flow"):
            ff0 = Environment.total_events_fast_forwarded
            flow = _mpi_p2p_time(units.MIB, 1)
            forwarded = Environment.total_events_fast_forwarded - ff0
        assert packet == flow
        assert forwarded == 0

    def test_flow_reduces_heap_events(self):
        # One uncontended 16 MiB transfer: the segment train collapses to
        # a handful of burst events per hop (~30x fewer heap pops).  With
        # concurrent messages (n_msgs>1) no reduction is expected — packet
        # mode fair-shares the uplink, so flow mode must fall back.
        size = 16 * units.MIB
        with fidelity_override("packet"):
            e0 = Environment.total_events_processed
            _accl_p2p_time(size, n_msgs=1, location="device")
            packet_events = Environment.total_events_processed - e0
        with fidelity_override("flow"):
            e0 = Environment.total_events_processed
            _accl_p2p_time(size, n_msgs=1, location="device")
            flow_events = Environment.total_events_processed - e0
        assert flow_events < packet_events / 5


def _burst(env, n=8, seg=32 * units.KIB, meta=None, seq_base=0, share=1):
    return Burst(src=0, dst=1, payload_bytes=n * seg, n_segments=n,
                 segment_bytes=seg, last_bytes=seg, meta=meta,
                 head_at=env.now, spacing=0.0, last_at=env.now,
                 seq_base=seq_base, share=share)


class TestLinkBurstPath:
    def _flow_link(self):
        env = Environment()
        link = Link(env, rate=units.gbps(100), latency=units.us(1))
        segments, bursts = [], []
        link.connect(segments.append)
        link.connect_burst(bursts.append, at_tail=True)
        return env, link, segments, bursts

    def test_idle_link_carries_burst_analytically(self):
        env, link, segments, bursts = self._flow_link()
        link.send_burst(_burst(env))
        env.run()
        assert len(bursts) == 1 and not segments

    def test_busy_link_expands_foreign_burst(self):
        env, link, segments, bursts = self._flow_link()
        link.send(Segment(0, 1, payload_bytes=32 * units.KIB,
                          meta=object()))
        link.send_burst(_burst(env, meta=object()))
        env.run()
        # 1 plain segment + all 8 of the expanded train, zero bursts.
        assert len(segments) == 9 and not bursts

    def test_own_tail_continues_analytically(self):
        env, link, segments, bursts = self._flow_link()
        owner = object()
        link.send_burst(_burst(env, meta=owner))
        assert link.can_fast_forward(owner)        # own tail: continue
        assert not link.can_fast_forward(object())  # stranger: expand
        link.send_burst(_burst(env, meta=owner, seq_base=8))
        env.run()
        assert len(bursts) == 2 and not segments

    def test_sub_burst_continuation_matches_packet_timing(self):
        # One 16-segment message as 2 sub-bursts vs 16 paced segments:
        # the final delivery instant must agree to float precision.
        seg = 32 * units.KIB
        owner = object()

        env, link, segments, bursts = self._flow_link()
        link.send_burst(_burst(env, n=8, meta=owner))
        handoff = link.send_burst(_burst(env, n=8, meta=owner, seq_base=8))
        env.run()
        flow_done = bursts[-1].last_at
        assert handoff < flow_done

        env2 = Environment()
        link2 = Link(env2, rate=units.gbps(100), latency=units.us(1))
        arrivals = []
        link2.connect(lambda s: arrivals.append(env2.now))

        def sender():
            for _ in range(16):
                done = link2.send(Segment(0, 1, payload_bytes=seg))
                pause = done - env2.now
                if pause > 0.0:
                    yield pause

        env2.process(sender())
        env2.run()
        assert flow_done == pytest.approx(arrivals[-1], rel=1e-12)

    def test_single_frame_segment_interleaves_into_train(self):
        # A tiny control segment sent mid-train slots into the next
        # inter-segment gap (as packet FIFO would), not behind the whole
        # analytic reservation.
        env, link, segments, bursts = self._flow_link()
        train = _burst(env, n=64)
        link.send_burst(train)
        train_end = link._pipe._free_at
        egress = link.send(Segment(0, 1, payload_bytes=64, meta=object()))
        assert egress < train_end / 2
        env.run()
        assert len(segments) == 1 and len(bursts) == 1
        # The train keeps its analytic reservation for its own tail.
        assert link._pipe._free_at == train_end

    def test_multi_frame_segment_does_not_interleave(self):
        env, link, segments, bursts = self._flow_link()
        link.send_burst(_burst(env, n=64))
        train_end = link._pipe._free_at
        egress = link.send(
            Segment(0, 1, payload_bytes=32 * units.KIB, meta=object()))
        assert egress > train_end  # FIFO: queued behind the reservation

    def test_interleaved_controls_queue_fifo_between_themselves(self):
        env, link, segments, bursts = self._flow_link()
        link.send_burst(_burst(env, n=64))
        first = link.send(Segment(0, 1, payload_bytes=64, meta=object()))
        second = link.send(Segment(0, 1, payload_bytes=64, meta=object()))
        assert second > first

    def test_burst_seq_base_offsets_expanded_seqnos(self):
        env = Environment()
        burst = _burst(env, n=4, seq_base=12)
        seqnos = [s.seqno for _, s in burst.iter_segments()]
        assert seqnos == [12, 13, 14, 15]

    def test_convoy_simultaneous_formation(self):
        # Two share=2 bursts reaching an idle link at the same instant
        # form a round-robin convoy: both spaced at 2x the segment time,
        # the second's head exactly one slot behind the first's.
        env, link, segments, bursts = self._flow_link()
        ba = _burst(env, meta=object(), share=2)
        bb = _burst(env, meta=object(), share=2)
        assert link.try_send_burst(ba) is not None
        assert link.try_send_burst(bb) is not None
        env.run()
        assert len(bursts) == 2 and not segments
        dur = link._pipe.overhead + ba.wire_full / link._pipe.rate
        assert ba.spacing == pytest.approx(2 * dur)
        assert bb.spacing == pytest.approx(2 * dur)
        assert bb.head_at - ba.head_at == pytest.approx(dur)

    def test_convoy_respaces_staggered_founder(self):
        # A sender that started alone lays a solid train; a sibling
        # arriving within one segment time joins by re-spacing the
        # founder's committed train onto the shared grid — the FIFO
        # interleaving packet mode would have produced.
        env, link, segments, bursts = self._flow_link()
        probe = _burst(env)
        dur = link._pipe.overhead + probe.wire_full / link._pipe.rate
        res = {}

        def founder():
            res["f"] = link.try_send_burst(
                _burst(env, meta=object(), share=1))
            yield 0.0

        def joiner():
            yield dur / 2
            res["j"] = link.try_send_burst(
                _burst(env, meta=object(), share=2))

        env.process(founder())
        env.process(joiner())
        env.run()
        assert res["f"] is not None and res["j"] is not None
        assert len(bursts) == 2 and not segments
        first, second = bursts
        assert first.spacing == pytest.approx(2 * dur)
        assert second.spacing == pytest.approx(2 * dur)
        assert second.head_at - first.head_at == pytest.approx(dur)

    def test_convoy_declines_joiner_after_first_delivery(self):
        # Once any of the founder's train has been delivered downstream
        # (one serialization + one propagation) re-spacing would rewrite
        # history: the joiner must be declined, with no side effects on
        # the founder's committed solid train.
        env, link, segments, bursts = self._flow_link()
        probe = _burst(env)
        dur = link._pipe.overhead + probe.wire_full / link._pipe.rate
        res = {}

        def founder():
            link.try_send_burst(_burst(env, meta=object(), share=1))
            yield 0.0

        def joiner():
            yield 2 * dur + link.latency
            res["j"] = link.try_send_burst(
                _burst(env, meta=object(), share=2))

        env.process(founder())
        env.process(joiner())
        env.run()
        assert res["j"] is None
        assert len(bursts) == 1 and not segments
        assert bursts[0].spacing == pytest.approx(dur)  # still solid


class TestCoalesceOffUnderTracing:
    """``Link(coalesce=False)`` with a bound span tracer must be
    observationally identical to the coalesced pump — same arrival log,
    same recorded wait spans."""

    def _run(self, coalesce: bool, train):
        env = Environment()
        link = Link(env, rate=units.gbps(10), latency=units.us(1),
                    coalesce=coalesce)
        tracer = SpanTracer()
        link.bind_tracer(tracer)
        arrivals = []
        link.connect(lambda seg: arrivals.append((env.now,
                                                  seg.payload_bytes)))
        meta = SimpleNamespace(meta=SimpleNamespace(op_id=7))

        def sender():
            for payload, gap in train:
                link.send(Segment(0, 1, payload_bytes=payload, meta=meta))
                if gap > 0.0:
                    yield gap

        env.process(sender())
        env.run()
        spans = [(s.component, s.name, s.t0, s.t1)
                 for s in tracer.completed_spans]
        return arrivals, spans, env.now

    @pytest.mark.parametrize("seed", [3, 11])
    def test_arrivals_and_spans_identical(self, seed):
        rng = random.Random(seed)
        train = [(rng.randint(1, Link.MAX_SEGMENT_BYTES),
                  rng.choice([0.0, 0.0, units.us(rng.uniform(0.5, 20))]))
                 for _ in range(60)]
        a_on, s_on, end_on = self._run(True, train)
        a_off, s_off, end_off = self._run(False, train)
        assert a_on == a_off
        assert s_on == s_off
        assert end_on == end_off
        assert any(name == "wait:link_busy" for _, name, _, _ in s_on)
