"""Tests of the distributed vector-matrix multiplication use case (§6.2)."""

import numpy as np
import pytest

from repro import units
from repro.apps.vecmat import (
    CpuSpec,
    gemv_time,
    partial_gemv,
    partition_columns,
    run_distributed_vecmat,
    run_single_node,
)
from repro.apps.vecmat.compute import (
    make_problem,
    partition_vector,
    reference_gemv,
)
from repro.errors import ConfigurationError


class TestCpuModel:
    def test_levels_by_working_set(self):
        spec = CpuSpec()
        assert spec.residency(units.MIB) == "l2"
        assert spec.residency(32 * units.MIB) == "l3"
        assert spec.residency(512 * units.MIB) == "dram"

    def test_smaller_matrix_faster(self):
        spec = CpuSpec()
        assert gemv_time(spec, 1024, 1024) < gemv_time(spec, 4096, 4096)

    def test_cache_resident_is_superlinearly_faster(self):
        """Quartering a DRAM-resident matrix into L3 beats 4x."""
        spec = CpuSpec()
        full = gemv_time(spec, 8192, 8192)        # 256 MiB: DRAM
        quarter = gemv_time(spec, 8192, 2048)      # 64 MiB: fits L3
        assert full / quarter > 4.0

    def test_pollution_slows_gemv(self):
        spec = CpuSpec()
        clean = gemv_time(spec, 4096, 4096)
        polluted = gemv_time(spec, 4096, 4096, polluted_bytes=4 * units.MIB)
        assert polluted > clean

    def test_pollution_capped_at_matrix(self):
        spec = CpuSpec()
        a = gemv_time(spec, 512, 512, polluted_bytes=10**12)
        b = gemv_time(spec, 512, 512, polluted_bytes=512 * 512 * 4)
        assert a == pytest.approx(b)

    def test_bad_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            gemv_time(CpuSpec(), 0, 10)


class TestPartitioning:
    def test_partials_sum_to_reference(self):
        matrix, vector = make_problem(256, 512)
        blocks = partition_columns(matrix, 4)
        chunks = partition_vector(vector, 4)
        partials = [partial_gemv(b, c) for b, c in zip(blocks, chunks)]
        np.testing.assert_allclose(np.sum(partials, axis=0),
                                   reference_gemv(matrix, vector),
                                   rtol=1e-3, atol=1e-4)

    def test_uneven_partition(self):
        matrix, vector = make_problem(64, 100)
        blocks = partition_columns(matrix, 3)
        assert sum(b.shape[1] for b in blocks) == 100

    def test_bad_parts_rejected(self):
        matrix, _ = make_problem(8, 8)
        with pytest.raises(ConfigurationError):
            partition_columns(matrix, 9)

    def test_mismatched_chunk_rejected(self):
        matrix, vector = make_problem(8, 8)
        with pytest.raises(ConfigurationError):
            partial_gemv(matrix, vector[:4])


class TestDistributedVecMat:
    @pytest.mark.parametrize("backend", ["accl", "mpi"])
    def test_result_matches_reference(self, backend):
        result = run_distributed_vecmat(1024, 1024, 4, backend)
        assert result.result_ok

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            run_distributed_vecmat(64, 64, 2, "nccl")

    def test_speedup_positive_and_composed(self):
        r = run_distributed_vecmat(2048, 2048, 4, "accl")
        assert r.total_time == pytest.approx(r.compute_time
                                             + r.reduction_time)
        assert r.speedup > 1.0

    def test_fig16_shape_accl_lower_compute_higher_reduce(self):
        """The paper's §6.2 findings, in one assertion pair."""
        accl = run_distributed_vecmat(4096, 4096, 4, "accl")
        mpi = run_distributed_vecmat(4096, 4096, 4, "mpi")
        assert accl.compute_time < mpi.compute_time     # cache pressure
        # "The reduction time itself is higher in most cases due to an
        # additional copy" — clearest at small rank counts.
        accl2 = run_distributed_vecmat(2048, 2048, 2, "accl")
        mpi2 = run_distributed_vecmat(2048, 2048, 2, "mpi")
        assert accl2.reduction_time > mpi2.reduction_time  # extra copy
        # ...and the overall distributed latency still favours ACCL+.
        assert accl.total_time < mpi.total_time

    def test_fig16_superlinear_instance(self):
        """Partition drops from DRAM into cache: speedup beyond rank count."""
        r = run_distributed_vecmat(8192, 8192, 4, "accl")
        assert r.speedup > 4.0

    def test_single_node_monotonic(self):
        assert run_single_node(1024, 1024) < run_single_node(8192, 8192)
