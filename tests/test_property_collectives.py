"""Property-based tests over the full collective set: randomized shapes,
roots and operators, always checked against the numpy reference."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cclo.microcontroller import CollectiveArgs
from tests.helpers import dev_buffer, empty_dev_buffer, make_cluster

slow = settings(max_examples=8, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def _payloads(rng, count, n):
    return [rng.standard_normal(n).astype(np.float32) for _ in range(count)]


@slow
@given(size=st.integers(2, 6), root=st.integers(0, 5),
       n=st.sampled_from([64, 160]), data=st.randoms())
def test_gather_property(size, root, n, data):
    root = root % size
    cluster = make_cluster(size)
    rng = np.random.default_rng(data.randint(0, 2**31))
    blocks = _payloads(rng, size, n)
    svs = [dev_buffer(cluster, r, blocks[r]) for r in range(size)]
    rview = empty_dev_buffer(cluster, root, n * size)
    cluster.run_collective(lambda r: CollectiveArgs(
        opcode="gather", root=root, nbytes=blocks[0].nbytes, sbuf=svs[r],
        rbuf=rview if r == root else None))
    np.testing.assert_allclose(rview.array, np.concatenate(blocks))


@slow
@given(size=st.integers(2, 6), root=st.integers(0, 5),
       n=st.sampled_from([64, 160]), data=st.randoms())
def test_scatter_property(size, root, n, data):
    root = root % size
    cluster = make_cluster(size)
    rng = np.random.default_rng(data.randint(0, 2**31))
    blocks = _payloads(rng, size, n)
    sview = dev_buffer(cluster, root, np.concatenate(blocks))
    rvs = [empty_dev_buffer(cluster, r, n) for r in range(size)]
    cluster.run_collective(lambda r: CollectiveArgs(
        opcode="scatter", root=root, nbytes=blocks[0].nbytes,
        sbuf=sview if r == root else None, rbuf=rvs[r]))
    for r in range(size):
        np.testing.assert_allclose(rvs[r].array, blocks[r])


@slow
@given(size=st.integers(2, 5), n=st.sampled_from([64, 128]),
       data=st.randoms())
def test_alltoall_property(size, n, data):
    cluster = make_cluster(size)
    rng = np.random.default_rng(data.randint(0, 2**31))
    sblocks = [[rng.standard_normal(n).astype(np.float32)
                for _ in range(size)] for _ in range(size)]
    svs = [dev_buffer(cluster, r, np.concatenate(sblocks[r]))
           for r in range(size)]
    rvs = [empty_dev_buffer(cluster, r, n * size) for r in range(size)]
    cluster.run_collective(lambda r: CollectiveArgs(
        opcode="alltoall", nbytes=n * 4, sbuf=svs[r], rbuf=rvs[r]))
    for dst in range(size):
        expected = np.concatenate([sblocks[s][dst] for s in range(size)])
        np.testing.assert_allclose(rvs[dst].array, expected)


@slow
@given(size=st.integers(2, 6), root=st.integers(0, 5),
       func=st.sampled_from(["sum", "max", "min"]),
       protocol=st.sampled_from(["eager", "rndz"]),
       data=st.randoms())
def test_reduce_property_ops_and_protocols(size, root, func, protocol,
                                           data):
    root = root % size
    cluster = make_cluster(size)
    rng = np.random.default_rng(data.randint(0, 2**31))
    contribs = _payloads(rng, size, 96)
    svs = [dev_buffer(cluster, r, contribs[r]) for r in range(size)]
    rview = empty_dev_buffer(cluster, root, 96)
    cluster.run_collective(lambda r: CollectiveArgs(
        opcode="reduce", root=root, nbytes=contribs[0].nbytes, sbuf=svs[r],
        rbuf=rview if r == root else None, func=func, protocol=protocol))
    ref = {"sum": np.sum, "max": np.max, "min": np.min}[func](
        np.stack(contribs), axis=0)
    np.testing.assert_allclose(rview.array, ref, rtol=1e-3, atol=1e-5)


@slow
@given(size=st.integers(2, 5), n=st.sampled_from([64, 128]),
       data=st.randoms())
def test_allgather_property(size, n, data):
    cluster = make_cluster(size)
    rng = np.random.default_rng(data.randint(0, 2**31))
    blocks = _payloads(rng, size, n)
    svs = [dev_buffer(cluster, r, blocks[r]) for r in range(size)]
    rvs = [empty_dev_buffer(cluster, r, n * size) for r in range(size)]
    cluster.run_collective(lambda r: CollectiveArgs(
        opcode="allgather", nbytes=blocks[0].nbytes, sbuf=svs[r],
        rbuf=rvs[r]))
    expected = np.concatenate(blocks)
    for r in range(size):
        np.testing.assert_allclose(rvs[r].array, expected)
