"""Unit tests for the network fabric: segments, links, switch, topology."""

import pytest

from repro import units
from repro.errors import NetworkError
from repro.network import Link, Segment, StarTopology, Switch
from repro.network.packet import ETHERNET_HEADER_BYTES
from repro.sim import Environment


class TestSegment:
    def test_frame_count_rounds_up(self):
        seg = Segment(0, 1, payload_bytes=1501, mtu=1500)
        assert seg.n_frames == 2

    def test_zero_payload_is_one_frame(self):
        seg = Segment(0, 1, payload_bytes=0)
        assert seg.n_frames == 1

    def test_wire_bytes_include_headers(self):
        seg = Segment(0, 1, payload_bytes=3000, mtu=1500)
        assert seg.wire_bytes == 3000 + 2 * ETHERNET_HEADER_BYTES

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Segment(0, 1, payload_bytes=-1)

    def test_bad_mtu_rejected(self):
        with pytest.raises(ValueError):
            Segment(0, 1, payload_bytes=10, mtu=0)


class TestLink:
    def test_delivery_time_is_serialization_plus_latency(self):
        env = Environment()
        link = Link(env, rate=1000.0, latency=0.5)
        arrivals = []
        link.connect(lambda seg: arrivals.append((env.now, seg)))
        seg = Segment(0, 1, payload_bytes=1000 - ETHERNET_HEADER_BYTES, mtu=4000)
        link.send(seg)
        env.run()
        t, got = arrivals[0]
        assert got is seg
        assert t == pytest.approx(1.0 + 0.5)

    def test_back_to_back_segments_serialize(self):
        env = Environment()
        link = Link(env, rate=1000.0, latency=0.0)
        arrivals = []
        link.connect(lambda seg: arrivals.append(env.now))
        payload = 1000 - ETHERNET_HEADER_BYTES
        link.send(Segment(0, 1, payload_bytes=payload, mtu=4000))
        link.send(Segment(0, 1, payload_bytes=payload, mtu=4000))
        env.run()
        assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_send_without_sink_raises(self):
        env = Environment()
        link = Link(env)
        with pytest.raises(NetworkError):
            link.send(Segment(0, 1, payload_bytes=10))

    def test_double_connect_rejected(self):
        env = Environment()
        link = Link(env)
        link.connect(lambda s: None)
        with pytest.raises(NetworkError):
            link.connect(lambda s: None)

    def test_counters(self):
        env = Environment()
        link = Link(env, rate=1e9, latency=0.0)
        link.connect(lambda s: None)
        link.send(Segment(0, 1, payload_bytes=100, mtu=1500))
        env.run()
        assert link.segments_carried == 1
        assert link.bytes_carried == 100 + ETHERNET_HEADER_BYTES


class TestSwitchAndTopology:
    def test_star_routes_between_endpoints(self):
        env = Environment()
        topo = StarTopology(env)
        a = topo.add_endpoint(0, "a")
        b = topo.add_endpoint(1, "b")
        got = []
        b.on_receive(lambda seg: got.append((env.now, seg.payload_bytes)))
        a.send(Segment(0, 1, payload_bytes=1024))
        env.run()
        assert len(got) == 1
        assert got[0][1] == 1024

    def test_unknown_destination_raises(self):
        env = Environment()
        topo = StarTopology(env)
        a = topo.add_endpoint(0)
        a.send(Segment(0, 99, payload_bytes=10))
        with pytest.raises(NetworkError, match="no route"):
            env.run()

    def test_duplicate_address_rejected(self):
        env = Environment()
        topo = StarTopology(env)
        topo.add_endpoint(0)
        with pytest.raises(NetworkError):
            topo.add_endpoint(0)

    def test_wrong_source_address_rejected(self):
        env = Environment()
        topo = StarTopology(env)
        a = topo.add_endpoint(0)
        topo.add_endpoint(1)
        with pytest.raises(NetworkError, match="src"):
            a.send(Segment(5, 1, payload_bytes=10))

    def test_endpoint_lookup(self):
        env = Environment()
        topo = StarTopology(env)
        a = topo.add_endpoint(0)
        assert topo.endpoint(0) is a
        with pytest.raises(NetworkError):
            topo.endpoint(7)

    def test_incast_contention_serializes_on_egress(self):
        """Two senders to one receiver share the receiver's downlink."""
        env = Environment()
        topo = StarTopology(env, link_rate=1000.0, link_latency=0.0)
        a = topo.add_endpoint(0)
        b = topo.add_endpoint(1)
        c = topo.add_endpoint(2)
        arrivals = []
        c.on_receive(lambda seg: arrivals.append(env.now))
        payload = 1000 - ETHERNET_HEADER_BYTES
        a.send(Segment(0, 2, payload_bytes=payload, mtu=4000))
        b.send(Segment(1, 2, payload_bytes=payload, mtu=4000))
        env.run()
        assert len(arrivals) == 2
        # Uplinks run in parallel (both finish ~t=1) but the shared egress
        # serializes: second delivery lands ~1 s after the first.
        assert arrivals[1] - arrivals[0] == pytest.approx(1.0, rel=0.01)

    def test_base_latency_composition(self):
        env = Environment()
        topo = StarTopology(env, link_latency=units.ns(500))
        expected = 2 * units.ns(500) + topo.switch.forwarding_latency
        assert topo.one_way_base_latency() == pytest.approx(expected)

    def test_oversized_segment_rejected(self):
        env = Environment()
        topo = StarTopology(env)
        a = topo.add_endpoint(0)
        topo.add_endpoint(1)
        with pytest.raises(NetworkError, match="segment"):
            a.send(Segment(0, 1, payload_bytes=64 * units.MIB))

    def test_hundred_gbps_large_transfer_goodput(self):
        """A segmented 64 MiB transfer should land close to 100 Gb/s."""
        env = Environment()
        topo = StarTopology(env)
        a = topo.add_endpoint(0)
        b = topo.add_endpoint(1)
        size = 64 * units.MIB
        seg_bytes = 32 * units.KIB
        expected_segments = size // seg_bytes
        done = {}
        count = {"n": 0}

        def on_rx(seg):
            count["n"] += 1
            if count["n"] == expected_segments:
                done["t"] = env.now

        b.on_receive(on_rx)
        for i in range(expected_segments):
            a.send(Segment(0, 1, payload_bytes=seg_bytes, mtu=1500, seqno=i))
        env.run()
        goodput = units.to_gbps(size / done["t"])
        assert 90 < goodput < 100
