"""Tests of the tracing subsystem."""

import numpy as np
import pytest

from repro.cclo.microcontroller import CollectiveArgs
from repro.sim import all_of
from repro.trace import TraceEvent, Tracer
from tests.helpers import dev_buffer, empty_dev_buffer, make_cluster


def run_traced_sendrecv():
    cluster = make_cluster(2)
    tracer = Tracer()
    for node in cluster.nodes:
        node.engine.attach_tracer(tracer)
    payload = np.ones(128, np.float32)
    sview = dev_buffer(cluster, 0, payload)
    rview = empty_dev_buffer(cluster, 1, 128)
    events = [
        cluster.engine(1).call(CollectiveArgs(
            opcode="recv", peer=0, nbytes=payload.nbytes, rbuf=rview)),
        cluster.engine(0).call(CollectiveArgs(
            opcode="send", peer=1, nbytes=payload.nbytes, sbuf=sview)),
    ]
    cluster.env.run(until=all_of(cluster.env, events))
    return tracer


class TestTracerCore:
    def test_record_and_len(self):
        tracer = Tracer()
        tracer.record(1.0, "uc", "dispatch", opcode="send")
        tracer.record(2.0, "dmp", "issue")
        assert len(tracer) == 2

    def test_capacity_bound_drops_oldest(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(float(i), "x", "e")
        assert len(tracer) == 2
        assert tracer.dropped == 3
        # Ring-buffer semantics: the *tail* of the run is retained.
        assert [ev.time for ev in tracer] == [3.0, 4.0]

    def test_summary_surfaces_truncation(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(float(i), "x", "e")
        summary = tracer.summary()
        assert summary["x.e"] == 2
        assert summary["tracer.dropped"] == 3

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_filter_by_component_and_event(self):
        tracer = Tracer()
        tracer.record(0.0, "uc", "dispatch")
        tracer.record(1.0, "uc", "complete")
        tracer.record(2.0, "dmp", "dispatch")
        assert len(tracer.filter(component="uc")) == 2
        assert len(tracer.filter(event="dispatch")) == 2
        assert len(tracer.filter(component="uc", event="dispatch")) == 1

    def test_summary_counts(self):
        tracer = Tracer()
        for _ in range(3):
            tracer.record(0.0, "uc", "dispatch")
        tracer.record(0.0, "dmp", "issue")
        assert tracer.summary() == {"uc.dispatch": 3, "dmp.issue": 1}

    def test_spans_pairing(self):
        tracer = Tracer()
        tracer.record(1.0, "dmp", "issue")
        tracer.record(3.0, "dmp", "retire")
        tracer.record(4.0, "dmp", "issue")
        tracer.record(9.0, "dmp", "retire")
        assert tracer.spans("dmp", "issue", "retire") == [2.0, 5.0]

    def test_spans_nested_pairing_is_lifo(self):
        """Regression: nested spans must pair inner-first, not inverted.

        outer [1, 10] wraps inner [2, 3]: FIFO pairing would report
        [2.0, 8.0] — the inner duration credited to the outer start.
        """
        tracer = Tracer()
        tracer.record(1.0, "dmp", "issue")    # outer start
        tracer.record(2.0, "dmp", "issue")    # inner start
        tracer.record(3.0, "dmp", "retire")   # inner end
        tracer.record(10.0, "dmp", "retire")  # outer end
        assert tracer.spans("dmp", "issue", "retire") == [1.0, 9.0]

    def test_spans_overlapping_other_components_ignored(self):
        tracer = Tracer()
        tracer.record(1.0, "dmp", "issue")
        tracer.record(2.0, "uc", "issue")
        tracer.record(3.0, "uc", "retire")
        tracer.record(4.0, "dmp", "retire")
        assert tracer.spans("dmp", "issue", "retire") == [3.0]
        assert tracer.spans("uc", "issue", "retire") == [1.0]

    def test_event_rendering(self):
        ev = TraceEvent(1e-6, "cclo0.uc", "dispatch", (("opcode", "send"),))
        text = str(ev)
        assert "cclo0.uc.dispatch" in text and "opcode=send" in text

    def test_clear(self):
        tracer = Tracer(capacity=1)
        tracer.record(0.0, "a", "b")
        tracer.record(0.0, "a", "b")
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_to_csv(self, tmp_path):
        tracer = Tracer()
        tracer.record(1.5e-6, "uc", "dispatch", opcode="send")
        path = tmp_path / "trace.csv"
        assert tracer.to_csv(str(path)) == 1
        content = path.read_text()
        assert "uc" in content and '""opcode"": ""send""' in content

    def test_csv_round_trip_preserves_hostile_details(self, tmp_path):
        """Regression: detail values containing the old ';'/'=' field
        separators must survive to_csv -> read_csv unchanged."""
        tracer = Tracer()
        tracer.record(1e-6, "uc", "dispatch",
                      expr="a=b;c=d", note="x;y", n=3)
        path = tmp_path / "trace.csv"
        tracer.to_csv(str(path))
        (ev,) = Tracer.read_csv(str(path))
        detail = ev.detail_dict()
        assert detail["expr"] == "a=b;c=d"
        assert detail["note"] == "x;y"
        assert detail["n"] == 3
        assert ev.component == "uc" and ev.event == "dispatch"
        assert ev.time == pytest.approx(1e-6)

    def test_read_csv_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not_a_trace.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            Tracer.read_csv(str(path))

    def test_spans_with_counts_reports_truncation(self):
        tracer = Tracer()
        tracer.record(1.0, "dmp", "retire")   # start was evicted/not seen
        tracer.record(2.0, "dmp", "issue")
        tracer.record(3.0, "dmp", "retire")
        tracer.record(4.0, "dmp", "issue")    # never retires
        durations, counts = tracer.spans("dmp", "issue", "retire",
                                         with_counts=True)
        assert durations == [1.0]
        assert counts == {"unclosed": 1, "unmatched_ends": 1}
        # default return shape is unchanged for existing callers
        assert tracer.spans("dmp", "issue", "retire") == [1.0]


class TestEngineIntegration:
    def test_sendrecv_produces_expected_events(self):
        tracer = run_traced_sendrecv()
        summary = tracer.summary()
        uc_dispatches = [v for k, v in summary.items()
                         if k.endswith("uc.dispatch")]
        assert sum(uc_dispatches) == 2  # one send + one recv command
        assert any("dmp.issue" in k for k in summary)
        assert any("dmp.retire" in k for k in summary)

    def test_events_time_ordered(self):
        tracer = run_traced_sendrecv()
        times = [ev.time for ev in tracer]
        assert times == sorted(times)

    def test_dmp_spans_positive(self):
        tracer = run_traced_sendrecv()
        components = {ev.component for ev in tracer if "dmp" in ev.component}
        for comp in components:
            for span in tracer.spans(comp, "issue", "retire"):
                assert span > 0

    def test_untraced_engine_has_no_overhead_path(self):
        cluster = make_cluster(2)
        assert cluster.engine(0).tracer is None
        cluster.engine(0).trace("uc", "noop")  # must be a no-op, not crash
