"""The metrics-backed regression gate (``bench check``)."""

import json

import pytest

from repro.bench import check as check_mod
from repro.bench.__main__ import main


@pytest.fixture(scope="module")
def fig08_collection():
    return check_mod.collect(["fig08"])


class TestCollect:
    def test_collection_shape(self, fig08_collection):
        doc = fig08_collection
        assert doc["schema"] == 2
        assert doc["fidelity"] == "packet"
        metrics = doc["scenarios"]["fig08"]
        assert metrics["ops"] == 2.0
        assert metrics["spans"] > 0
        assert metrics["wall_us"] > 0
        assert metrics["uc_commands_executed"] == 2.0
        # Attributed phase time covers the whole wall window.
        phase_total = sum(v for k, v in metrics.items()
                          if k.startswith("phase_us."))
        assert phase_total == pytest.approx(metrics["wall_us"], rel=1e-9)
        # Class-global kernel counters must not leak into the gate.
        assert not any("kernel" in k for k in metrics)

    def test_collection_is_deterministic(self, fig08_collection):
        again = check_mod.collect(["fig08"])
        assert again["scenarios"] == fig08_collection["scenarios"]


class TestCompare:
    def test_self_compare_is_clean(self, fig08_collection):
        rows = check_mod.compare(fig08_collection, fig08_collection)
        assert rows and all(row["ok"] for row in rows)
        assert check_mod.violations(rows) == []

    def test_deviation_beyond_tolerance_fails(self, fig08_collection):
        import copy

        current = copy.deepcopy(fig08_collection)
        current["scenarios"]["fig08"]["wall_us"] *= 1.10
        rows = check_mod.compare(fig08_collection, current)
        bad = check_mod.violations(rows)
        assert [row["metric"] for row in bad] == ["wall_us"]
        # A generous tolerance lets the same deviation pass.
        rows = check_mod.compare(fig08_collection, current, default_tol=0.5)
        assert check_mod.violations(rows) == []

    def test_per_metric_tolerance_overrides(self, fig08_collection):
        import copy

        baseline = copy.deepcopy(fig08_collection)
        baseline["tolerances"] = {"fig08.wall_us": 0.5, "spans": 0.0}
        current = copy.deepcopy(fig08_collection)
        current["scenarios"]["fig08"]["wall_us"] *= 1.10
        rows = check_mod.compare(baseline, current)
        assert check_mod.violations(rows) == []

    def test_missing_scenario_and_metric_fail(self, fig08_collection):
        import copy

        baseline = copy.deepcopy(fig08_collection)
        baseline["scenarios"]["ghost"] = {"ops": 1.0}
        current = copy.deepcopy(fig08_collection)
        del current["scenarios"]["fig08"]["spans"]
        rows = check_mod.compare(baseline, current)
        notes = {(r["scenario"], r["metric"]): r["note"]
                 for r in check_mod.violations(rows)}
        assert notes[("ghost", "*")] == "scenario missing from current run"
        assert notes[("fig08", "spans")] == "missing"

    def test_render_table_flags_failures(self, fig08_collection):
        import copy

        current = copy.deepcopy(fig08_collection)
        current["scenarios"]["fig08"]["wall_us"] *= 2
        table = check_mod.render_check_table(
            check_mod.compare(fig08_collection, current))
        assert "FAIL" in table and "wall_us" in table


class TestBaselineSchema2:
    def test_schema1_baseline_migrates_to_packet_mode(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({
            "schema": 1, "default_tolerance": 0.05,
            "tolerances": {"spans": 0.0},
            "scenarios": {"fig08": {"ops": 2.0}},
        }))
        doc = check_mod.load_baseline(str(path))
        assert doc["schema"] == 2
        assert doc["modes"] == {"packet": {"fig08": {"ops": 2.0}}}
        assert doc["default_tolerance"] == 0.05
        assert doc["tolerances"] == {"spans": 0.0}

    def test_mode_view_shapes_for_compare(self):
        doc = {"schema": 2, "default_tolerance": 0.01,
               "tolerances": {"spans": 0.0},
               "modes": {"flow": {"fig08": {"ops": 2.0}}}}
        flow = check_mod.mode_view(doc, "flow")
        assert flow["scenarios"] == {"fig08": {"ops": 2.0}}
        assert flow["default_tolerance"] == 0.01
        assert check_mod.mode_view(doc, "packet")["scenarios"] == {}

    def test_write_baseline_folds_modes_independently(self, tmp_path):
        path = tmp_path / "baseline.json"
        packet = {"schema": 2, "fidelity": "packet",
                  "scenarios": {"fig08": {"ops": 2.0}}}
        check_mod.write_baseline(str(path), packet)
        flow = {"schema": 2, "fidelity": "flow",
                "scenarios": {"fig08": {"ops": 2.0}, "fig07": {"ops": 6.0}}}
        previous = check_mod.load_baseline(str(path))
        check_mod.write_baseline(str(path), flow, previous)
        doc = json.loads(path.read_text())
        assert doc["modes"]["packet"] == {"fig08": {"ops": 2.0}}
        assert sorted(doc["modes"]["flow"]) == ["fig07", "fig08"]


class TestCheckCli:
    def test_update_then_pass_then_regress(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["check", "fig08", "--update",
                     "--baseline", str(baseline)]) == 0
        assert main(["check", "fig08", "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        doc = json.loads(baseline.read_text())
        doc["modes"]["packet"]["fig08"]["wall_us"] *= 1.5
        baseline.write_text(json.dumps(doc))
        assert main(["check", "fig08", "--baseline", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_missing_baseline_hints_update(self, tmp_path, capsys):
        rc = main(["check", "fig08",
                   "--baseline", str(tmp_path / "none.json")])
        assert rc == 2
        assert "--update" in capsys.readouterr().err

    def test_missing_mode_section_hints_update(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["check", "fig08", "--update",
                     "--baseline", str(baseline)]) == 0
        rc = main(["check", "fig08", "--baseline", str(baseline),
                   "--fidelity", "flow"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no 'flow' section" in err and "--fidelity flow" in err

    def test_flow_mode_update_then_pass(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["check", "fig08", "--update",
                     "--baseline", str(baseline),
                     "--fidelity", "flow"]) == 0
        assert main(["check", "fig08", "--baseline", str(baseline),
                     "--fidelity", "flow"]) == 0
        assert "[flow]" in capsys.readouterr().out

    def test_update_merges_and_keeps_tolerances(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main(["check", "fig08", "--update",
                     "--baseline", str(baseline)]) == 0
        doc = json.loads(baseline.read_text())
        doc["tolerances"] = {"fig08.wall_us": 0.3}
        doc["modes"]["packet"]["keepme"] = {"ops": 1.0}
        baseline.write_text(json.dumps(doc))
        assert main(["check", "fig08", "--update",
                     "--baseline", str(baseline)]) == 0
        merged = json.loads(baseline.read_text())
        assert merged["tolerances"] == {"fig08.wall_us": 0.3}
        assert "keepme" in merged["modes"]["packet"]
        assert "fig08" in merged["modes"]["packet"]

    def test_committed_baseline_passes(self):
        """The repo baseline must stay green (the CI gate's clean run)."""
        assert main(["check"]) == 0

    def test_committed_baseline_passes_flow(self):
        assert main(["check", "--fidelity", "flow"]) == 0
