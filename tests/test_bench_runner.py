"""Tests for the sweep-execution engine (runner + cache)."""

import json

import pytest

from repro import units
from repro.bench import harness  # noqa: F401 — populates the kernel registry
from repro.bench.cache import (
    ResultCache,
    calibration_fingerprint,
    jsonable,
    point_key,
)
from repro.bench.runner import KERNELS, PointResult, SweepPoint, SweepRunner


class TestSweepPoint:
    def test_params_are_order_insensitive(self):
        a = SweepPoint.make("fig", "k", x=1, y=2)
        b = SweepPoint.make("fig", "k", y=2, x=1)
        assert a == b
        assert a.key() == b.key()

    def test_kwargs_round_trip(self):
        p = SweepPoint.make("fig", "k", size=4096, opcode="bcast")
        assert p.kwargs() == {"size": 4096, "opcode": "bcast"}

    def test_distinct_params_distinct_keys(self):
        a = SweepPoint.make("fig", "k", size=1024)
        b = SweepPoint.make("fig", "k", size=2048)
        c = SweepPoint.make("other", "k", size=1024)
        assert len({a.key(), b.key(), c.key()}) == 3


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = point_key("fig", "k", {"size": 1})
        assert cache.get(key) is None
        cache.put(key, {"value": 1.25, "wall_s": 0.1})
        record = cache.get(key)
        assert record["value"] == 1.25
        assert cache.hits == 1 and cache.misses == 1

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        for i in range(3):
            cache.put(point_key("fig", "k", {"i": i}), {"value": i})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = point_key("fig", "k", {})
        cache.put(key, {"value": 1})
        cache._path(key).write_text("{not json")
        assert cache.get(key) is None

    def test_fingerprint_is_stable_within_process(self):
        assert calibration_fingerprint() == calibration_fingerprint()
        assert len(calibration_fingerprint()) == 64

    def test_jsonable_handles_numpy_and_tuples(self):
        import numpy as np

        value = {"a": np.float64(1.5), "b": (1, 2), "c": np.bool_(True),
                 4: "x"}
        out = jsonable(value)
        assert out == {"a": 1.5, "b": [1, 2], "c": True, "4": "x"}
        json.dumps(out)  # must be serializable


class TestSweepRunner:
    def points(self, n=3):
        return [SweepPoint.make("fig12", "mpi_collective", opcode="reduce",
                                size=4 * units.KIB, n_ranks=r)
                for r in range(2, 2 + n)]

    def test_sequential_run_returns_values_in_order(self):
        runner = SweepRunner(jobs=1)
        values = runner.run(self.points())
        assert len(values) == 3
        assert all(v > 0 for v in values)
        assert len(runner.records) == 3
        assert all(isinstance(r, PointResult) and not r.cached
                   for r in runner.records)

    def test_parallel_matches_sequential(self):
        seq = SweepRunner(jobs=1).run(self.points())
        par = SweepRunner(jobs=3).run(self.points())
        assert par == seq

    def test_cache_reuses_results(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cold_runner = SweepRunner(jobs=1, cache=cache)
        cold = cold_runner.run(self.points())
        warm_runner = SweepRunner(jobs=1, cache=cache)
        warm = warm_runner.run(self.points())
        assert warm == cold
        assert all(r.cached for r in warm_runner.records)
        assert not any(r.cached for r in cold_runner.records)

    def test_point_metadata_recorded(self):
        runner = SweepRunner(jobs=1)
        runner.run(self.points(1))
        rec = runner.records[0]
        assert rec.wall_s > 0
        assert rec.sim_s > 0
        assert rec.events > 0

    def test_trajectory_shape(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        runner = SweepRunner(jobs=1, cache=cache)
        runner.run(self.points(2))
        trajectory = runner.trajectory()
        assert trajectory["schema"] == 1
        assert trajectory["totals"]["points"] == 2
        assert trajectory["totals"]["cached_points"] == 0
        art = trajectory["artifacts"]["fig12"]
        assert len(art["points"]) == 2
        assert art["events"] > 0
        json.dumps(trajectory)  # trajectory must serialize as-is

    def test_run_one(self):
        runner = SweepRunner()
        rows = runner.run_one(SweepPoint.make("tab01", "tab01"))
        assert {r["collective"] for r in rows} >= {"bcast", "reduce"}


class TestHarnessPointDecomposition:
    def test_kernel_registry_populated(self):
        expected = {"accl_collective", "accl_best_protocol", "mpi_collective",
                    "mpi_f2f_collective", "accl_p2p", "mpi_p2p",
                    "fig08_host_nop", "fig08_kernel_nop", "fig09_breakdown",
                    "vecmat", "dlrm", "tab01", "tab02", "tab03"}
        assert expected <= set(KERNELS)

    def test_fig08_with_explicit_runner_and_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        runner = SweepRunner(jobs=1, cache=cache)
        rows = harness.run_fig08_invocation_latency(repeats=2, runner=runner)
        assert [r["caller"] for r in rows] == [
            "FPGA kernel", "Coyote host", "XRT host"]
        warm = SweepRunner(jobs=1, cache=cache)
        rows2 = harness.run_fig08_invocation_latency(repeats=2, runner=warm)
        assert rows2 == rows
        assert all(r.cached for r in warm.records)

    def test_fig12_series_with_runner(self):
        runner = SweepRunner(jobs=1)
        series = harness.run_fig12_reduce_scalability(
            rank_range=range(2, 4), sizes=(8 * units.KIB,), runner=runner)
        assert set(series) == {"accl_8KiB", "mpi_8KiB"}
        assert set(series["accl_8KiB"]) == {2, 3}
        assert len(runner.records) == 4

    def test_tab02_rows(self):
        rows = harness.run_tab02_dlrm_config()
        assert rows[0]["Tables"] == 100
        assert rows[0]["Concat Vec Len"] == 3200

    def test_calibration_change_invalidates_key(self):
        base = point_key("fig", "k", {"size": 1})
        import repro.bench.cache as cache_mod

        original = cache_mod._FINGERPRINT
        try:
            cache_mod._FINGERPRINT = "0" * 64
            assert point_key("fig", "k", {"size": 1}) != base
        finally:
            cache_mod._FINGERPRINT = original
