"""Sharded sweeps, merge row-identity, and multi-job pool behavior."""

import time

import pytest

from repro import units
from repro.bench import harness
from repro.bench.cache import ResultCache
from repro.bench.runner import (ShardIncomplete, SweepPoint, SweepRunner,
                                shard_of)

KIB = units.KIB

#: tiny figX_scale slice: seconds of wall clock, several distinct points
TINY = dict(node_counts=(4, 8), size=256 * KIB)


def _import_shard(runner: SweepRunner, cache: ResultCache) -> int:
    """What ``bench merge`` does: executed trajectory points -> cache."""
    imported = 0
    trajectory = runner.trajectory(include_values=True)
    for art in trajectory["artifacts"].values():
        for point in art["points"]:
            if point["skipped"]:
                continue
            record = {"value": point["value"]}
            for field in ("wall_s", "sim_s", "events", "events_ff",
                          "dropped", "snapshots", "snap_dropped"):
                record[field] = point[field]
            cache.put(point["key"], record)
            imported += 1
    return imported


class TestShardPartition:
    def test_shard_of_is_total_and_deterministic(self):
        keys = [f"{i:02x}{'0' * 62}" for i in range(64)]
        owners = [shard_of(key, 4) for key in keys]
        assert set(owners) <= {0, 1, 2, 3}
        assert owners == [shard_of(key, 4) for key in keys]

    def test_invalid_shard_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(shard=(2, 2))

    def test_shards_partition_the_points(self, tmp_path):
        """Each point executes on exactly one of the shards."""
        executed: dict = {}
        for index in (0, 1):
            runner = SweepRunner(
                cache=ResultCache(tmp_path / f"c{index}"), shard=(index, 2))
            try:
                harness.run_figX_scale(runner=runner, **TINY)
            except ShardIncomplete:
                pass
            for rec in runner.records:
                if not rec.skipped:
                    assert rec.key not in executed, "point ran on 2 shards"
                    executed[rec.key] = index
        reference = SweepRunner()
        harness.run_figX_scale(runner=reference, **TINY)
        assert len(executed) == len(reference.records)

    def test_merge_reproduces_unsharded_rows(self, tmp_path):
        rows_ref = harness.run_figX_scale(runner=SweepRunner(), **TINY)
        merged = ResultCache(tmp_path / "merged")
        imported = 0
        for index in (0, 1, 2):
            runner = SweepRunner(
                cache=ResultCache(tmp_path / f"c{index}"), shard=(index, 3))
            try:
                harness.run_figX_scale(runner=runner, **TINY)
            except ShardIncomplete:
                pass
            imported += _import_shard(runner, merged)
        assert imported == 6
        final = SweepRunner(cache=merged)
        rows_merged = harness.run_figX_scale(runner=final, **TINY)
        assert rows_merged == rows_ref
        assert all(rec.cached for rec in final.records)

    def test_fully_cached_shard_run_completes(self, tmp_path):
        """With every point cached, a shard run raises nothing at all."""
        cache = ResultCache(tmp_path / "warm")
        harness.run_figX_scale(runner=SweepRunner(cache=cache), **TINY)
        runner = SweepRunner(cache=cache, shard=(0, 2))
        rows = harness.run_figX_scale(runner=runner, **TINY)
        assert len(rows) == 6

    def test_trajectory_records_values_and_skips(self, tmp_path):
        runner = SweepRunner(
            cache=ResultCache(tmp_path / "c"), shard=(0, 2))
        try:
            harness.run_figX_scale(runner=runner, **TINY)
        except ShardIncomplete:
            pass
        trajectory = runner.trajectory(include_values=True)
        assert trajectory["shard"] == [0, 2]
        points = trajectory["artifacts"]["figX_scale"]["points"]
        ran = [p for p in points if not p["skipped"]]
        left = [p for p in points if p["skipped"]]
        assert ran and left  # 6 points: hash split leaves work both sides
        assert all(p["value"] is not None for p in ran)
        assert all(p["value"] is None and p["events"] == 0 for p in left)
        totals = trajectory["totals"]
        assert totals["skipped_points"] == len(left)


class TestRowIdentityAcrossJobs:
    def test_figX_scale_rows_identical_at_jobs_2(self):
        rows_seq = harness.run_figX_scale(runner=SweepRunner(jobs=1), **TINY)
        with SweepRunner(jobs=2) as runner:
            rows_par = harness.run_figX_scale(runner=runner, **TINY)
        assert rows_par == rows_seq


class TestWarmPool:
    def test_pool_persists_across_runs_and_stays_competitive(self):
        """A warm multi-job pool must not multiply sweep wall time.

        BENCH history showed jobs=4 running 13x slower than jobs=1 because
        every ``run()`` built a fresh pool and every worker re-paid the
        import + calibration-fingerprint warm-up inside its first point.
        The pool now persists per runner with the warm-up hoisted into the
        initializer; once warm, a cache-miss mini sweep at jobs=4 stays
        within 2x of the sequential path even on a single-core box.
        """
        points = [
            SweepPoint.make("warmpool", "accl_collective",
                            opcode="allreduce", size=16 * KIB, n_nodes=4,
                            sync_protocol=sync, algorithm=algorithm)
            for sync in ("eager", "rndz")
            for algorithm in ("ring", "reduce_bcast")
        ]

        seq = SweepRunner(jobs=1, cache=None)
        t0 = time.perf_counter()
        seq.run(points)
        sequential_s = time.perf_counter() - t0

        with SweepRunner(jobs=4, cache=None) as pooled:
            pooled.run(points)  # pays pool spawn + per-worker warm-up once
            assert pooled._pool is not None
            pool_before = pooled._pool
            t0 = time.perf_counter()
            pooled.run(points)  # the measured, warm, cache-miss sweep
            warm_s = time.perf_counter() - t0
            assert pooled._pool is pool_before  # no pool-per-run() rebuild
        # generous absolute slack: points are sub-second, and a 1-core CI
        # box serializes the workers
        assert warm_s <= 2.0 * sequential_s + 1.0, \
            f"jobs=4 warm sweep {warm_s:.2f}s vs jobs=1 {sequential_s:.2f}s"


class TestShardedLedgerIdentity:
    """Shard -> merge -> rerun must reproduce the unsharded op ledger and
    telemetry totals exactly, the same way it reproduces rows."""

    def test_merged_cache_rerun_reproduces_ledger_and_totals(self, tmp_path):
        reference = SweepRunner()
        harness.run_figX_scale(runner=reference, **TINY)
        ref_ledger = reference.ledger()
        ref_totals = reference.trajectory()["totals"]

        merged = ResultCache(tmp_path / "merged")
        for index in (0, 1, 2):
            runner = SweepRunner(
                cache=ResultCache(tmp_path / f"c{index}"), shard=(index, 3))
            try:
                harness.run_figX_scale(runner=runner, **TINY)
            except ShardIncomplete:
                pass
            _import_shard(runner, merged)
        final = SweepRunner(cache=merged)
        harness.run_figX_scale(runner=final, **TINY)
        assert all(rec.cached for rec in final.records)

        ledger = final.ledger()
        assert ledger.snapshot() == ref_ledger.snapshot()
        for key, ent in ledger.entries.items():
            ref = ref_ledger.entries[key]
            assert sorted(ent.latency._values) == sorted(ref.latency._values)
            assert ent.crit_s == pytest.approx(ref.crit_s)

        # Telemetry carried through the cache matches the reference run;
        # wall_s is host time of the *producing* run and is excluded.
        totals = final.trajectory()["totals"]
        for field in ("points", "events", "events_ff",
                      "snapshots", "snap_dropped"):
            assert totals[field] == ref_totals[field], field
        assert totals["sim_s"] == pytest.approx(ref_totals["sim_s"],
                                                rel=1e-12)

    def test_per_shard_ledgers_merge_to_reference(self):
        """Registry idiom on the ledger itself: merging each shard's
        partial snapshot equals the unsharded ledger."""
        from repro.obs.ledger import OpLedger

        reference = SweepRunner()
        harness.run_figX_scale(runner=reference, **TINY)
        merged = OpLedger()
        for index in (0, 1):
            runner = SweepRunner(shard=(index, 2))
            try:
                harness.run_figX_scale(runner=runner, **TINY)
            except ShardIncomplete:
                pass
            merged.merge(runner.ledger().snapshot())
        assert merged.snapshot() == reference.ledger().snapshot()
