"""Tests of the fp16 wire codec (unary-plugin compression, §4.4.2)."""

import numpy as np
import pytest

from repro import units
from repro.cclo.microcontroller import CollectiveArgs
from repro.driver import attach_drivers
from repro.errors import CollectiveError
from repro.sim import all_of
from tests.helpers import dev_buffer, empty_dev_buffer, make_cluster

N = 2048


def payload():
    return np.random.default_rng(8).standard_normal(N).astype(np.float32)


def run_codec_transfer(codec="fp16", protocol=None):
    cluster = make_cluster(2, platform="coyote")
    data = payload()
    sview = dev_buffer(cluster, 0, data)
    rview = empty_dev_buffer(cluster, 1, N)
    d0, d1 = attach_drivers(cluster)
    reqs = [
        d1.recv(rview, data.nbytes, src=0, codec=codec),
        d0.send(sview, data.nbytes, dst=1, codec=codec),
    ]
    cluster.env.run(until=all_of(cluster.env, [r.event for r in reqs]))
    return cluster, data, rview


class TestFp16Codec:
    def test_values_roundtrip_within_fp16_precision(self):
        _, data, rview = run_codec_transfer()
        np.testing.assert_allclose(rview.array, data, rtol=2e-3, atol=1e-4)
        # ...but not exactly (it is a lossy codec).
        assert not np.array_equal(rview.array, data)

    def test_wire_bytes_halved(self):
        cluster, data, _ = run_codec_transfer()
        compressed_wire = cluster.nodes[0].endpoint.uplink.bytes_carried

        cluster2, data2, _ = run_codec_transfer(codec=None)
        plain_wire = cluster2.nodes[0].endpoint.uplink.bytes_carried
        # The codec saves close to half the wire traffic.
        assert compressed_wire < 0.6 * plain_wire

    def test_codec_faster_on_slow_links(self):
        """On a constrained link the halved payload shows up as latency."""
        from repro.cluster import build_fpga_cluster
        from repro.platform.base import BufferLocation

        def transfer_time(codec):
            cluster = build_fpga_cluster(
                2, protocol="rdma", platform="sim",
                link_rate=units.gbps(10))
            data = payload()
            sview = dev_buffer(cluster, 0, data)
            rview = empty_dev_buffer(cluster, 1, N)
            events = [
                cluster.engine(1).call(CollectiveArgs(
                    opcode="recv", peer=0, nbytes=data.nbytes,
                    rbuf=rview, extra={"codec": codec} if codec else {})),
                cluster.engine(0).call(CollectiveArgs(
                    opcode="send", peer=1, nbytes=data.nbytes,
                    sbuf=sview, extra={"codec": codec} if codec else {})),
            ]
            cluster.env.run(until=all_of(cluster.env, events))
            return cluster.env.now

        assert transfer_time("fp16") < transfer_time(None)

    def test_codec_with_rendezvous_rejected(self):
        cluster = make_cluster(2)
        data = payload()
        sview = dev_buffer(cluster, 0, data)
        ev = cluster.engine(0).call(CollectiveArgs(
            opcode="send", peer=1, nbytes=data.nbytes, sbuf=sview,
            protocol="rndz", extra={"codec": "fp16"}))
        with pytest.raises(CollectiveError, match="eager"):
            cluster.env.run(until=ev)

    def test_unknown_codec_rejected(self):
        cluster = make_cluster(2)
        ev = cluster.engine(0).call(CollectiveArgs(
            opcode="send", peer=1, nbytes=64,
            sbuf=empty_dev_buffer(cluster, 0, 16),
            extra={"codec": "zstd"}))
        with pytest.raises(CollectiveError, match="zstd"):
            cluster.env.run(until=ev)

    def test_codec_requires_plugin_compiled_in(self):
        from repro.cclo.config_mem import CcloConfig
        from repro.cluster import build_fpga_cluster
        from repro.errors import CcloError

        config = CcloConfig(plugins=("sum",))
        cluster = build_fpga_cluster(2, platform="sim", cclo_config=config)
        data = payload()
        sview = dev_buffer(cluster, 0, data)
        ev = cluster.engine(0).call(CollectiveArgs(
            opcode="send", peer=1, nbytes=data.nbytes, sbuf=sview,
            extra={"codec": "fp16"}))
        with pytest.raises(CcloError, match="not compiled"):
            cluster.env.run(until=ev)
