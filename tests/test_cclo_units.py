"""Direct unit tests of CCLO building blocks (below the collective level)."""

import numpy as np
import pytest

from repro import units
from repro.cclo.config_mem import (
    AlgorithmParams,
    CcloConfig,
    CommunicatorConfig,
    ConfigMemory,
)
from repro.cclo.dmp import Microcode, Slot, SlotKind
from repro.cclo.match import MatchTable
from repro.cclo.messages import BufferDescriptor, MsgType, Signature
from repro.cclo.microcontroller import CollectiveArgs
from repro.cclo.noc import NoC
from repro.cclo.plugins import PluginRegistry
from repro.cclo.rbm import RxBufManager
from repro.collectives import AlgorithmSelector
from repro.errors import CcloError, ConfigurationError
from repro.memory import Memory
from repro.sim import Environment


class TestCcloConfig:
    def test_cycles_at_clock(self):
        config = CcloConfig(clock_hz=250e6)
        assert config.cycles(250) == pytest.approx(1e-6)

    def test_datapath_rate(self):
        config = CcloConfig(clock_hz=250e6, datapath_bytes_per_cycle=64)
        assert config.datapath_rate == pytest.approx(16e9)

    def test_dlrm_clock_lowers_datapath(self):
        assert (CcloConfig(clock_hz=115e6).datapath_rate
                < CcloConfig(clock_hz=250e6).datapath_rate)


class TestCommunicatorConfig:
    def test_valid(self):
        comm = CommunicatorConfig(0, 1, [10, 11, 12])
        assert comm.size == 3
        assert comm.address_of(2) == 12

    def test_bad_local_rank(self):
        with pytest.raises(ConfigurationError):
            CommunicatorConfig(0, 3, [10, 11])

    def test_duplicate_addresses(self):
        with pytest.raises(ConfigurationError):
            CommunicatorConfig(0, 0, [10, 10])

    def test_bad_protocol(self):
        with pytest.raises(ConfigurationError):
            CommunicatorConfig(0, 0, [1, 2], protocol="smtp")

    def test_rank_bounds(self):
        comm = CommunicatorConfig(0, 0, [1, 2])
        with pytest.raises(ConfigurationError):
            comm.address_of(2)

    def test_config_memory_registry(self):
        mem = ConfigMemory()
        comm = CommunicatorConfig(5, 0, [1, 2])
        mem.add_communicator(comm)
        assert mem.communicator(5) is comm
        with pytest.raises(ConfigurationError):
            mem.add_communicator(comm)
        with pytest.raises(ConfigurationError):
            mem.communicator(6)


class TestSignature:
    def test_match_key(self):
        sig = Signature(comm_id=1, src_rank=2, dst_rank=3,
                        msg_type=MsgType.EAGER, nbytes=64, tag=9)
        assert sig.match_key() == (1, 2, 9)

    def test_repr_mentions_type(self):
        sig = Signature(0, 0, 1, MsgType.RNDZ_INIT, 0)
        assert "rndz_init" in repr(sig)

    def test_descriptor(self):
        desc = BufferDescriptor(node_addr=3, target_id=7, nbytes=128)
        assert "id=7" in repr(desc)


class TestMicrocode:
    def test_two_operands_require_function(self):
        with pytest.raises(CcloError, match="plugin function"):
            Microcode(nbytes=64, op0=Slot.stream(), op1=Slot.stream())

    def test_negative_size_rejected(self):
        with pytest.raises(CcloError):
            Microcode(nbytes=-1, op0=Slot.none())

    def test_slot_constructors(self):
        assert Slot.none().kind is SlotKind.NONE
        assert Slot.stream().kind is SlotKind.STREAM
        assert Slot.immediate(5).data == 5
        assert Slot.rx_eager(0, 1, 2).src_rank == 1


class TestNoC:
    def make(self):
        env = Environment()
        noc = NoC(env, CcloConfig())
        for port in ("memory", "tx"):
            noc.register_port(port)
        return env, noc

    def test_route_charges_bandwidth(self):
        env, noc = self.make()
        t = {}

        def proc():
            yield noc.route("memory", "tx", 16 * units.KIB)
            t["done"] = env.now

        env.process(proc())
        env.run()
        expected = 16 * units.KIB / 16e9 + CcloConfig().cycles(8)
        assert t["done"] == pytest.approx(expected)

    def test_unknown_port_rejected(self):
        _, noc = self.make()
        with pytest.raises(CcloError, match="unknown"):
            noc.route("memory", "rx", 64)

    def test_duplicate_port_rejected(self):
        _, noc = self.make()
        with pytest.raises(CcloError):
            noc.register_port("memory")

    def test_counters(self):
        env, noc = self.make()
        noc.route("memory", "tx", 100)
        env.run()
        assert noc.transfers == 1
        assert noc.bytes_routed == 100

    def test_negative_transfer_rejected(self):
        _, noc = self.make()
        with pytest.raises(CcloError):
            noc.route("memory", "tx", -5)


class TestPlugins:
    def test_binary_ops(self):
        reg = PluginRegistry()
        a, b = np.array([1.0, 4.0]), np.array([3.0, 2.0])
        np.testing.assert_array_equal(reg.apply_binary("sum", a, b), [4, 6])
        np.testing.assert_array_equal(reg.apply_binary("max", a, b), [3, 4])
        np.testing.assert_array_equal(reg.apply_binary("min", a, b), [1, 2])
        np.testing.assert_array_equal(reg.apply_binary("prod", a, b), [3, 8])

    def test_unary_ops(self):
        reg = PluginRegistry(enabled=("identity", "negate", "compress_fp16"))
        a = np.array([1.5, -2.0], dtype=np.float32)
        np.testing.assert_array_equal(reg.apply_unary("identity", a), a)
        np.testing.assert_array_equal(reg.apply_unary("negate", a), -a)
        lossy = reg.apply_unary("compress_fp16", a)
        assert lossy.dtype == np.float32
        np.testing.assert_allclose(lossy, a, rtol=1e-3)

    def test_timing_only_payloads_pass_through(self):
        reg = PluginRegistry()
        assert reg.apply_binary("sum", None, np.zeros(2)) is None

    def test_disabled_function_rejected(self):
        reg = PluginRegistry(enabled=("sum",))
        with pytest.raises(CcloError, match="not compiled"):
            reg.apply_binary("max", np.zeros(2), np.zeros(2))

    def test_unknown_function_rejected(self):
        with pytest.raises(CcloError):
            PluginRegistry(enabled=("xor",))
        reg = PluginRegistry()
        with pytest.raises(CcloError):
            reg.apply_binary("xor", np.zeros(1), np.zeros(1))

    def test_invocation_counter(self):
        reg = PluginRegistry()
        reg.apply_binary("sum", np.zeros(1), np.zeros(1))
        assert reg.invocations == 1

    def test_known_functions_table(self):
        table = PluginRegistry.known_functions()
        assert table["sum"] == "binary"
        assert table["negate"] == "unary"


class TestRxBufManager:
    def make(self, pool=units.MIB, slots=4):
        env = Environment()
        mem = Memory(env, capacity=64 * units.MIB, bandwidth=460e9)
        config = CcloConfig(rx_pool_bytes=pool, rx_max_messages=slots)
        return env, RxBufManager(env, config, mem)

    def sig(self, nbytes, src=0, tag=0):
        return Signature(comm_id=0, src_rank=src, dst_rank=1,
                         msg_type=MsgType.EAGER, nbytes=nbytes, tag=tag)

    def test_store_and_claim(self):
        env, rbm = self.make()
        rbm.handle_incoming(self.sig(1024), data="payload")
        got = {}

        def consumer():
            record = yield rbm.await_message(0, 0, 0)
            got["data"] = record.data
            rbm.release(record)

        env.process(consumer())
        env.run()
        assert got["data"] == "payload"
        assert rbm.free_bytes == units.MIB

    def test_watermark_tracks_peak(self):
        env, rbm = self.make()
        for i in range(3):
            rbm.handle_incoming(self.sig(1024, tag=i), data=None)
        env.run()
        assert rbm.high_watermark == 3 * 1024

    def test_oversized_message_guidance(self):
        env, rbm = self.make(pool=1024)
        with pytest.raises(CcloError, match="rendezvous"):
            rbm.handle_incoming(self.sig(4096), data=None)

    def test_double_release_rejected(self):
        env, rbm = self.make()
        rbm.handle_incoming(self.sig(64), data=None)
        records = {}

        def consumer():
            record = yield rbm.await_message(0, 0, 0)
            records["r"] = record
            rbm.release(record)

        env.process(consumer())
        env.run()
        with pytest.raises(CcloError, match="double release"):
            rbm.release(records["r"])

    def test_slot_limit_backpressure(self):
        """With 2 slots, a third message only lands after a release."""
        env, rbm = self.make(slots=2)
        for i in range(3):
            rbm.handle_incoming(self.sig(64, tag=i), data=i)
        order = []

        def consumer():
            for i in range(3):
                record = yield rbm.await_message(0, 0, i)
                order.append(record.data)
                rbm.release(record)

        env.process(consumer())
        env.run()
        assert order == [0, 1, 2]


class TestSelectorUnit:
    def make(self, protocol="rdma", size=8):
        comm = CommunicatorConfig(0, 0, list(range(size)), protocol=protocol)
        return AlgorithmSelector(), comm, AlgorithmParams()

    def test_rendezvous_requires_rdma(self):
        selector, comm, params = self.make(protocol="udp")
        args = CollectiveArgs(opcode="reduce", nbytes=units.MIB)
        assert not selector.uses_rendezvous(args, comm, params)

    def test_forced_protocol_respected(self):
        selector, comm, params = self.make()
        args = CollectiveArgs(opcode="reduce", nbytes=64, protocol="rndz")
        assert selector.uses_rendezvous(args, comm, params)

    def test_threshold_tunable_at_runtime(self):
        selector, comm, params = self.make()
        args = CollectiveArgs(opcode="reduce", nbytes=8 * units.KIB)
        assert selector.choose(args, comm, params) == "all_to_one"
        params.tree_threshold_bytes = 4 * units.KIB  # runtime re-tuning
        args = CollectiveArgs(opcode="reduce", nbytes=8 * units.KIB)
        assert selector.choose(args, comm, params) == "binary_tree"

    def test_bcast_rank_threshold(self):
        selector, comm_small, params = self.make(size=4)
        _, comm_large, _ = self.make(size=8)
        args = CollectiveArgs(opcode="bcast", nbytes=units.MIB)
        assert selector.choose(args, comm_small, params) == "one_to_all"
        args = CollectiveArgs(opcode="bcast", nbytes=units.MIB)
        assert selector.choose(args, comm_large, params) == "recursive_doubling"

    def test_unknown_opcode(self):
        from repro.errors import CollectiveError
        selector, comm, params = self.make()
        with pytest.raises(CollectiveError):
            selector.choose(CollectiveArgs(opcode="scan"), comm, params)
