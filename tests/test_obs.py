"""Tests of the observability layer (metrics, spans, exporters, wiring)."""

import json

import pytest

from repro import units
from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observability,
    SpanTracer,
    metrics_to_csv,
    phase_breakdown,
    render_phase_table,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs import runtime as obs_runtime
from repro.obs.capture import trace_artifact, traceable_artifacts
from repro.sim.monitor import percentile_of
from tests.helpers import make_cluster


class TestMetrics:
    def test_counter_monotonic(self):
        c = Counter("msgs")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_windowed_rate(self):
        c = Counter("msgs")
        for t in (1.0, 2.0, 3.0, 4.0):
            c.inc(2, t=t)
        # 4 marks of +2 over [0, 4]: 8 increments / 4 sim-seconds
        assert c.rate(0.0, 4.0) == pytest.approx(2.0)
        # window [2, 4] sees the marks at t=3 and t=4: +4 over 2 s
        assert c.rate(2.0, 4.0) == pytest.approx(2.0)
        # half-window ending before any mark
        assert c.rate(5.0, 6.0) == 0.0
        assert Counter("empty").rate(0.0, 1.0) == 0.0

    def test_gauge_set_and_callback(self):
        g = Gauge("depth")
        g.set(7)
        assert g.value == 7.0
        live = {"n": 3}
        gf = Gauge("live", fn=lambda: live["n"])
        assert gf.value == 3.0
        live["n"] = 9
        assert gf.value == 9.0
        with pytest.raises(ValueError):
            gf.set(1)

    def test_histogram_percentiles_match_monitor_math(self):
        h = Histogram("lat")
        values = [float(v) for v in range(1, 101)]
        for v in values:
            h.observe(v)
        for pct in (50, 90, 99):
            assert h.percentile(pct) == pytest.approx(
                percentile_of(values, pct))
        s = h.summary()
        assert s["count"] == 100 and s["min"] == 1.0 and s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.5)

    def test_histogram_windowed_rate(self):
        h = Histogram("lat")
        for t in (0.5, 1.5, 2.5, 3.5):
            h.observe(1.0, t=t)
        assert h.rate(0.0, 4.0) == pytest.approx(1.0)
        assert h.rate(2.0, 4.0) == pytest.approx(1.0)

    def test_registry_get_or_create_and_kind_clash(self):
        reg = MetricsRegistry()
        assert reg.counter("a", node="x") is reg.counter("a", node="x")
        assert reg.counter("a", node="x") is not reg.counter("a", node="y")
        with pytest.raises(TypeError):
            reg.gauge("a", node="x")

    def test_merge_worker_snapshots(self):
        """Counters add, gauges max, histograms extend — the pooled-sweep
        fold in SweepRunner."""
        parent = MetricsRegistry()
        snapshots = []
        for peak, obs in ((5.0, [1.0, 2.0]), (3.0, [10.0])):
            worker = MetricsRegistry()
            worker.counter("tx", node="n0").inc(10)
            worker.gauge("hw", node="n0").set(peak)
            for v in obs:
                worker.histogram("lat", node="n0").observe(v)
            snapshots.append(worker.snapshot())
        for snap in snapshots:
            assert json.loads(json.dumps(snap)) == snap  # picklable/plain
            parent.merge(snap)
        assert parent.counter("tx{node=n0}").value == 20.0
        assert parent.gauge("hw{node=n0}").value == 5.0
        merged = parent.histogram("lat{node=n0}")
        assert merged.count == 3 and merged.total == 13.0

    def test_merge_is_order_independent(self):
        """Folding worker snapshots must commute: any arrival order of the
        pooled-sweep results yields the same merged registry."""
        import random

        snapshots = []
        for i in range(5):
            worker = MetricsRegistry()
            worker.counter("tx", node="n0").inc(i + 1)
            worker.counter("rx", node=f"n{i % 2}").inc(10 * i)
            worker.gauge("hw", node="n0").set(float(i * 3 % 7))
            for v in (float(i), float(i) / 2):
                worker.histogram("lat", node="n0").observe(v)
            snapshots.append(worker.snapshot())

        def folded(order):
            parent = MetricsRegistry()
            for idx in order:
                parent.merge(snapshots[idx])
            snap = parent.snapshot()
            # Histogram observations arrive in merge order; the multiset
            # is what must match, so compare sorted.
            hists = {k: sorted(v) for k, v in snap["histograms"].items()}
            return snap["counters"], snap["gauges"], hists

        rng = random.Random(7)
        reference = folded(range(len(snapshots)))
        for _ in range(6):
            order = list(range(len(snapshots)))
            rng.shuffle(order)
            assert folded(order) == reference

    def test_snapshot_resolves_callback_gauges(self):
        reg = MetricsRegistry()
        reg.gauge("live", fn=lambda: 42.0)
        assert reg.snapshot()["gauges"]["live"] == 42.0

    def test_null_registry_is_total_no_op(self):
        assert len(NULL_REGISTRY) == 0
        c = NULL_REGISTRY.counter("x", node="y")
        c.inc(5)
        assert c.value == 0.0
        g = NULL_REGISTRY.gauge("g")
        g.set(3)
        h = NULL_REGISTRY.histogram("h")
        h.observe(1.0)
        assert h.summary() == {"count": 0, "sum": 0.0}
        assert NULL_REGISTRY.rows() == []
        NULL_REGISTRY.merge({"counters": {"x": 1}})
        assert NULL_REGISTRY.snapshot()["counters"] == {}


class TestSpanTracer:
    def test_begin_end_and_auto_parenting(self):
        tr = SpanTracer()
        op = tr.next_op_id()
        root = tr.span_begin(0.0, "cclo0.uc", "collective:send",
                             phase="collective", op_id=op)
        child = tr.span_begin(1.0, "cclo0.dmp", "instr", phase="dmp",
                              op_id=op)
        tr.span_end(2.0, child)
        tr.span_end(3.0, root)
        spans = {s.sid: s for s in tr.completed_spans}
        assert spans[child].parent == root
        assert spans[root].parent == -1
        assert spans[child].duration == pytest.approx(1.0)
        assert tr.root_span(op).sid == root
        assert tr.op_ids() == [op]

    def test_unclosed_count_and_idempotent_end(self):
        tr = SpanTracer()
        sid = tr.span_begin(0.0, "cclo0.uc", "step")
        assert tr.unclosed_count == 1
        tr.span_end(1.0, sid)
        tr.span_end(2.0, sid)        # double-close: ignored
        tr.span_end(2.0, 99999)      # unknown id: ignored
        assert tr.unclosed_count == 0
        assert len(tr.completed_spans) == 1

    def test_span_capacity_evicts_and_counts(self):
        tr = SpanTracer(span_capacity=2)
        for i in range(4):
            tr.span_complete("cclo0.uc", f"s{i}", float(i), float(i) + 0.5)
        assert len(tr.completed_spans) == 2
        assert tr.spans_dropped == 2

    def test_spans_feed_flat_event_trace(self):
        """SpanTracer is a Tracer: existing flat-event consumers keep
        working on the same instance."""
        tr = SpanTracer()
        sid = tr.span_begin(0.0, "cclo0.uc", "step")
        tr.span_end(1.0, sid)
        summary = tr.summary()
        assert summary.get("cclo0.uc.span_begin") == 1
        assert summary.get("cclo0.uc.span_end") == 1


class TestExporters:
    def _small_trace(self):
        tr = SpanTracer()
        op = tr.next_op_id()
        root = tr.span_begin(0.0, "cclo0.driver", "collective:send",
                             phase="collective", op_id=op, nbytes=64)
        tr.span_complete("cclo0.uc", "dispatch", 0.0, 2e-6, phase="uc",
                         op_id=op)
        tr.span_complete("cclo0.dmp", "instr", 2e-6, 6e-6, phase="dmp",
                         op_id=op)
        tr.span_complete("cclo0.wire", "wire:eager", 5e-6, 8e-6,
                         phase="wire", op_id=op)
        tr.span_end(10e-6, root)
        return tr, op

    def test_chrome_trace_schema(self, tmp_path):
        tr, _ = self._small_trace()
        doc = to_chrome_trace(tr)
        assert validate_chrome_trace(doc) == []
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {
            "collective:send", "dispatch", "instr", "wire:eager"}
        for e in xs:
            assert e["dur"] > 0 and isinstance(e["ts"], float)
        # one pid (cclo0), one tid per component
        assert len({e["pid"] for e in xs}) == 1
        assert len({e["tid"] for e in xs}) == 4
        path = tmp_path / "trace.json"
        assert write_chrome_trace(tr, str(path)) == 4
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_validate_flags_bad_events(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a "
                                             "list"]
        bad = {"traceEvents": [
            {"ph": "X", "ts": "soon", "dur": 1, "pid": 1, "tid": 1,
             "name": "a"},
            {"ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 1, "name": "b"},
            {"ph": "Q", "name": "c"},
            {"ph": "X", "name": "d"},
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) == 4

    def test_phase_breakdown_sums_to_wall(self):
        tr, op = self._small_trace()
        bd = phase_breakdown(tr, op)
        assert bd["wall_s"] == pytest.approx(10e-6)
        assert sum(bd["phases"].values()) == pytest.approx(bd["wall_s"])
        # dmp [2,6]us overlaps wire [5,8]us: wire wins the [5,6] overlap
        assert bd["phases"]["wire"] == pytest.approx(3e-6)
        assert bd["phases"]["dmp"] == pytest.approx(3e-6)
        assert bd["phases"]["uc"] == pytest.approx(2e-6)
        assert bd["phases"]["other"] == pytest.approx(2e-6)
        assert sum(bd["fractions"].values()) == pytest.approx(1.0)

    def test_phase_breakdown_errors(self):
        tr = SpanTracer()
        with pytest.raises(KeyError):
            phase_breakdown(tr, 7)
        op = tr.next_op_id()
        tr.span_begin(0.0, "cclo0.uc", "collective:send",
                      phase="collective", op_id=op)
        with pytest.raises(ValueError):
            phase_breakdown(tr, op)

    def test_render_phase_table(self):
        tr, op = self._small_trace()
        table = render_phase_table([phase_breakdown(tr, op)])
        assert "collective:send" in table and "wire%" in table

    def test_metrics_csv(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("tx", node="n0").inc(3)
        reg.histogram("lat").observe(1.0)
        path = tmp_path / "metrics.csv"
        assert metrics_to_csv(reg, str(path)) == 2
        lines = path.read_text().splitlines()
        assert lines[0].startswith("metric,kind,")
        assert any("tx{node=n0}" in ln for ln in lines)


class TestClusterWiring:
    def test_attach_collects_spans_and_metrics(self):
        from repro.bench.harness import accl_collective_time

        cluster = make_cluster(2)
        obs = Observability().attach(cluster)
        # direct engine call path: the uC allocates the op id
        from repro.sim import all_of
        from tests.helpers import collective_args, dev_buffer, \
            empty_dev_buffer
        import numpy as np

        payload = np.ones(256, np.float32)
        sview = dev_buffer(cluster, 0, payload)
        rview = empty_dev_buffer(cluster, 1, 256)
        events = [
            cluster.engine(1).call(collective_args(
                opcode="recv", peer=0, nbytes=payload.nbytes, rbuf=rview)),
            cluster.engine(0).call(collective_args(
                opcode="send", peer=1, nbytes=payload.nbytes, sbuf=sview)),
        ]
        cluster.env.run(until=all_of(cluster.env, events))

        assert obs.tracer.unclosed_count == 0
        ops = obs.tracer.op_ids()
        assert len(ops) == 2
        for op in ops:
            bd = phase_breakdown(obs.tracer, op)
            assert sum(bd["phases"].values()) == pytest.approx(
                bd["wall_s"], rel=1e-9)
        assert validate_chrome_trace(to_chrome_trace(obs.tracer)) == []
        rows = {r["metric"]: r for r in obs.registry.rows()}
        assert rows["uc_commands_executed{node=cclo0}"]["value"] >= 1
        assert rows["kernel_events_processed"]["value"] > 0
        del accl_collective_time  # imported only to assert availability

    def test_disabled_cluster_records_nothing(self):
        cluster = make_cluster(2)
        engine = cluster.engine(0)
        assert engine.tracer is None
        assert engine._span_tracer is None
        assert engine.span_begin("uc", "x") == -1
        engine.span_end(-1)  # must be a no-op, not crash
        assert engine.next_op_id() == -1

    def test_global_enable_auto_attaches(self):
        bundle = obs_runtime.enable()
        try:
            cluster = make_cluster(2)
            assert cluster.engine(0)._span_tracer is bundle.tracer
            assert len(bundle.registry) > 0
        finally:
            obs_runtime.disable()
        cluster = make_cluster(2)
        assert cluster.engine(0)._span_tracer is None

    def test_scoped_swaps_and_restores(self):
        outer = obs_runtime.enable()
        try:
            with obs_runtime.scoped() as inner:
                assert obs_runtime.get_global() is inner
                assert inner is not outer
            assert obs_runtime.get_global() is outer
        finally:
            obs_runtime.disable()
        assert not obs_runtime.is_enabled()


class TestCapture:
    def test_traceable_artifacts_listed(self):
        names = traceable_artifacts()
        assert "fig08" in names and "fig07" in names

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            trace_artifact("fig99")

    def test_fig08_capture_end_to_end(self):
        cap = trace_artifact("fig08")
        assert cap.op_ids and cap.tracer.unclosed_count == 0
        for bd in cap.breakdowns():
            assert sum(bd["phases"].values()) == pytest.approx(
                bd["wall_s"], rel=1e-9)
        assert validate_chrome_trace(to_chrome_trace(cap.tracer)) == []

    def test_allreduce_capture_attributes_wire_time(self):
        cap = trace_artifact("allreduce", nbytes=16 * units.KIB, n_nodes=2)
        assert cap.tracer.unclosed_count == 0
        total_wire = sum(bd["phases"]["wire"] for bd in cap.breakdowns())
        assert total_wire > 0  # data moved, so some wall time is wire time


class TestRunnerIntegration:
    def test_enabled_sweep_merges_worker_metrics(self):
        from repro.bench.runner import SweepPoint, SweepRunner
        import repro.bench.harness  # noqa: F401 — registers kernels

        bundle = obs_runtime.enable()
        try:
            runner = SweepRunner(jobs=1, cache=None)
            runner.run([SweepPoint.make(
                "t", "accl_collective", opcode="allreduce",
                size=4 * units.KIB, n_nodes=2)])
            merged = bundle.registry.snapshot()
        finally:
            obs_runtime.disable()
        assert any(k.startswith("uc_commands_executed")
                   for k in merged["gauges"])

    def test_disabled_sweep_ships_no_obs(self):
        from repro.bench.runner import SweepPoint, execute_point

        out = execute_point(SweepPoint.make(
            "t", "accl_collective", opcode="allreduce",
            size=4 * units.KIB, n_nodes=2))
        assert "obs" not in out
        assert out["dropped"] >= 0
