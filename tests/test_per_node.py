"""Per-node/per-link outlier attribution and the incomplete-trace flag."""

import numpy as np
import pytest

from repro import units
from repro.obs import capture
from repro.obs.critpath import (critical_path, per_node_report,
                                render_critpath, render_per_node)
from repro.obs.export import attribute_op, phase_breakdown
from repro.obs.runtime import Observability, attach


class TestPerNodeReport:
    def test_small_allreduce_attributes_nodes_and_links(self):
        cap = capture.trace_artifact("allreduce")
        report = per_node_report(cap.tracer, cap.op_ids)
        assert report["ops"] == sorted(cap.op_ids)
        assert report["node_count"] == 4
        assert report["link_count"] > 0
        names = {m["name"] for m in report["nodes"]}
        assert names == {"cclo0", "cclo1", "cclo2", "cclo3"}
        for member in report["nodes"] + report["links"]:
            assert member["busy_s"] >= 0 and member["wait_s"] >= 0
            assert member["total_s"] == pytest.approx(
                member["busy_s"] + member["wait_s"])
        assert not report["incomplete"]

    def test_render_mentions_kinds_and_stragglers(self):
        cap = capture.trace_artifact("fig08")
        report = per_node_report(cap.tracer, cap.op_ids)
        text = render_per_node(report)
        assert "per-node attribution" in text
        assert "node" in text and "link" in text
        assert ("stragglers:" in text) or ("no stragglers flagged" in text)

    def test_z_scores_are_population_relative(self):
        cap = capture.trace_artifact("allreduce")
        report = per_node_report(cap.tracer, cap.op_ids, z_threshold=1e9)
        # absurd threshold: nothing can be flagged
        assert report["stragglers"] == []
        zs = [m["z"] for m in report["nodes"]]
        assert max(zs) > 0 or all(z == 0 for z in zs)


class TestInjectedStragglerAtScale:
    """Acceptance: the injected slow link of a >=256-node fabric is the
    top-ranked link straggler."""

    def test_slow_link_flagged_in_256_node_fattree(self):
        cap = capture.trace_artifact(
            "figX_scale", n_nodes=256, size=256 * units.KIB,
            slow_link="fpga137.down", slow_factor=16.0)
        assert cap.tracer.spans_dropped == 0, \
            "scenario must size its trace ring for the fabric"
        report = per_node_report(cap.tracer, cap.op_ids, top_k=5)
        assert report["node_count"] == 256
        top_link = report["links"][0]
        assert top_link["name"] == "fpga137.down"
        assert top_link["straggler"]
        assert top_link["z"] >= 2.5
        assert "fpga137.down" in report["stragglers"]
        # and its blockage is attributed to the link-serialization cause
        assert max(top_link["causes"], key=top_link["causes"].get) == \
            "link_busy"

    def test_unperturbed_run_does_not_flag_that_link(self):
        cap = capture.trace_artifact(
            "figX_scale", n_nodes=64, size=256 * units.KIB)
        report = per_node_report(cap.tracer, cap.op_ids, top_k=5)
        assert "fpga37.down" not in report["stragglers"]

    def test_throttle_unknown_pattern_is_an_error(self):
        with pytest.raises(ValueError, match="matched no link"):
            capture.trace_artifact("figX_scale", n_nodes=8,
                                   size=64 * units.KIB,
                                   slow_link="nosuchlink.down")


class TestIncompleteFlag:
    """Dropped spans must surface as an explicit flag, not silently skew
    attribution totals."""

    def _overflowed_capture(self):
        from repro.cluster.builder import build_fpga_cluster
        from repro.driver.api import attach_drivers
        from repro.sim import all_of

        cluster = build_fpga_cluster(2)
        obs = attach(cluster, Observability(trace_capacity=8))
        drivers = attach_drivers(cluster)
        nbytes = 64 * units.KIB
        data = np.ones(nbytes // 4, dtype=np.float32)
        requests = [
            drivers[0].send(drivers[0].wrap(data), nbytes, dst=1, tag=5),
            drivers[1].recv(drivers[1].alloc(nbytes), nbytes, src=0, tag=5),
        ]
        cluster.env.run(until=all_of(cluster.env,
                                     [r.event for r in requests]))
        assert obs.tracer.spans_dropped > 0
        return obs

    def test_attribute_op_and_breakdown_carry_the_flag(self):
        obs = self._overflowed_capture()
        for op in obs.tracer.op_ids():
            assert attribute_op(obs.tracer, op)["incomplete"] is True
            assert phase_breakdown(obs.tracer, op)["incomplete"] is True

    def test_critpath_and_per_node_warn(self):
        obs = self._overflowed_capture()
        op_ids = obs.tracer.op_ids()
        report = critical_path(obs.tracer, op_ids[0])
        assert report["incomplete"] is True
        assert "INCOMPLETE" in render_critpath(report)
        per_node = per_node_report(obs.tracer, op_ids)
        assert per_node["incomplete"] is True
        assert "INCOMPLETE" in render_per_node(per_node)

    def test_intact_trace_is_not_flagged(self):
        cap = capture.trace_artifact("fig08")
        for op in cap.op_ids:
            assert attribute_op(cap.tracer, op)["incomplete"] is False
        assert "INCOMPLETE" not in render_critpath(
            critical_path(cap.tracer, cap.op_ids[0]))


class TestCliWarnings:
    def test_trace_cli_warns_on_dropped_spans(self, capsys, monkeypatch):
        from repro.bench.__main__ import main

        real = capture.trace_artifact

        def tiny(name, **kwargs):
            cap = real(name, **kwargs)
            cap.tracer.spans_dropped = 7
            return cap

        monkeypatch.setattr(capture, "trace_artifact", tiny)
        assert main(["trace", "fig08"]) == 0
        err = capsys.readouterr().err
        assert "INCOMPLETE" in err and "7 span(s) dropped" in err

    def test_critpath_cli_per_node_runs(self, capsys):
        from repro.bench.__main__ import main

        assert main(["critpath", "allreduce", "--per-node"]) == 0
        out = capsys.readouterr().out
        assert "per-node attribution" in out
