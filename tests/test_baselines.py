"""Tests of the software-MPI model, its algorithms, F2F wrapper and ACCL v1."""

import numpy as np
import pytest

from repro import units
from repro.baselines import (
    F2fMpiModel,
    MpiTuning,
    build_accl_v1_cluster,
    build_mpi_cluster,
)
from repro.baselines import algorithms as alg
from repro.cclo.microcontroller import CollectiveArgs
from repro.sim import all_of
from tests.helpers import dev_buffer, empty_dev_buffer, make_cluster

N = 256


def data(rank, n=N):
    rng = np.random.default_rng(100 + rank)
    return rng.standard_normal(n).astype(np.float32)


class TestMpiPointToPoint:
    @pytest.mark.parametrize("nbytes", [1024, 256 * units.KIB])
    def test_send_recv_values(self, nbytes):
        """Covers both eager (1 KiB) and rendezvous (256 KiB) paths."""
        cluster = build_mpi_cluster(2)
        n = nbytes // 4
        payload = data(0, n)
        out = np.zeros(n, dtype=np.float32)

        def proc(me):
            if me.rank == 0:
                yield me.isend(payload, nbytes, dst=1, tag=5)
            else:
                yield me.irecv(out, nbytes, src=0, tag=5)

        elapsed = cluster.run_all(proc)
        assert elapsed > 0
        np.testing.assert_allclose(out, payload)

    def test_tcp_personality(self):
        cluster = build_mpi_cluster(2, library="mpich", transport="tcp")
        payload = data(0)
        out = np.zeros(N, dtype=np.float32)

        def proc(me):
            if me.rank == 0:
                yield me.isend(payload, payload.nbytes, dst=1)
            else:
                yield me.irecv(out, payload.nbytes, src=0)

        cluster.run_all(proc)
        np.testing.assert_allclose(out, payload)

    def test_rdma_faster_than_tcp_small_messages(self):
        def latency(transport, library):
            cluster = build_mpi_cluster(2, library=library,
                                        transport=transport)
            payload = data(0)
            out = np.zeros(N, dtype=np.float32)

            def proc(me):
                if me.rank == 0:
                    yield me.isend(payload, payload.nbytes, dst=1)
                else:
                    yield me.irecv(out, payload.nbytes, src=0)

            return cluster.run_all(proc)

        assert latency("rdma", "openmpi") < latency("tcp", "mpich")

    def test_cpu_busy_time_accounted(self):
        cluster = build_mpi_cluster(2)
        payload = data(0)

        def proc(me):
            if me.rank == 0:
                yield me.isend(payload, payload.nbytes, dst=1)
            else:
                yield me.irecv(np.zeros(N, np.float32), payload.nbytes, src=0)

        cluster.run_all(proc)
        assert all(r.cpu_busy_seconds > 0 for r in cluster.ranks)


class TestMpiCollectives:
    @pytest.mark.parametrize("algorithm", ["binomial", "scatter_allgather",
                                           "pipeline"])
    def test_bcast(self, algorithm):
        size = 8
        cluster = build_mpi_cluster(size)
        payload = data(0, 1024)
        bufs = [payload.copy() if r == 0 else np.zeros(1024, np.float32)
                for r in range(size)]
        cluster.run_all(lambda me: alg.mpi_bcast(
            me, bufs[me.rank], payload.nbytes, 0, tag=0, algorithm=algorithm))
        for r in range(size):
            np.testing.assert_allclose(bufs[r], payload, err_msg=f"rank {r}")

    @pytest.mark.parametrize("algorithm", [
        "linear", "chain", "binomial", "reduce_scatter_gather",
    ])
    @pytest.mark.parametrize("size,root", [(4, 0), (8, 3), (5, 2)])
    def test_reduce(self, algorithm, size, root):
        cluster = build_mpi_cluster(size)
        contribs = [data(r, 1024) for r in range(size)]
        out = np.zeros(1024, np.float32)
        cluster.run_all(lambda me: alg.mpi_reduce(
            me, contribs[me.rank], out if me.rank == root else
            np.zeros(1024, np.float32), contribs[0].nbytes, root,
            tag=0, algorithm=algorithm))
        np.testing.assert_allclose(out, np.sum(contribs, axis=0),
                                   rtol=1e-3, atol=1e-5)

    @pytest.mark.parametrize("algorithm", ["recursive_doubling", "ring"])
    @pytest.mark.parametrize("size", [2, 4, 5, 8])
    def test_allreduce(self, algorithm, size):
        cluster = build_mpi_cluster(size)
        contribs = [data(r, 1024) for r in range(size)]
        outs = [np.zeros(1024, np.float32) for _ in range(size)]
        cluster.run_all(lambda me: alg.mpi_allreduce(
            me, contribs[me.rank], outs[me.rank], contribs[0].nbytes,
            tag=0, algorithm=algorithm))
        expected = np.sum(contribs, axis=0)
        for r in range(size):
            np.testing.assert_allclose(outs[r], expected, rtol=1e-3,
                                       atol=1e-5, err_msg=f"rank {r}")

    @pytest.mark.parametrize("algorithm", ["linear", "binomial"])
    @pytest.mark.parametrize("root", [0, 3])
    def test_gather(self, algorithm, root):
        size = 8
        cluster = build_mpi_cluster(size)
        blocks = [data(r) for r in range(size)]
        out = np.zeros(N * size, np.float32)
        cluster.run_all(lambda me: alg.mpi_gather(
            me, blocks[me.rank], out if me.rank == root else None,
            blocks[0].nbytes, root, algorithm=algorithm))
        np.testing.assert_allclose(out, np.concatenate(blocks))

    @pytest.mark.parametrize("algorithm", ["linear", "binomial"])
    @pytest.mark.parametrize("size,root", [(4, 0), (8, 3), (5, 2)])
    def test_scatter(self, algorithm, size, root):
        cluster = build_mpi_cluster(size)
        blocks = [data(r) for r in range(size)]
        sbuf = np.concatenate(blocks)
        outs = [np.zeros(N, np.float32) for _ in range(size)]
        cluster.run_all(lambda me: alg.mpi_scatter(
            me, sbuf if me.rank == root else None, outs[me.rank],
            blocks[0].nbytes, root, algorithm=algorithm))
        for r in range(size):
            np.testing.assert_allclose(outs[r], blocks[r])

    def test_pipeline_bcast_beats_binomial_at_large_sizes(self):
        """The chain's segment overlap pays off once messages are long."""
        size = 8
        nbytes = 8 * units.MIB

        def bcast_time(algorithm):
            cluster = build_mpi_cluster(size)
            return cluster.run_all(lambda me: alg.mpi_bcast(
                me, None, nbytes, 0, tag=0, algorithm=algorithm))

        assert bcast_time("pipeline") < bcast_time("binomial")

    def test_allgather(self):
        size = 4
        cluster = build_mpi_cluster(size)
        blocks = [data(r) for r in range(size)]
        outs = [np.zeros(N * size, np.float32) for _ in range(size)]
        cluster.run_all(lambda me: alg.mpi_allgather(
            me, blocks[me.rank], outs[me.rank], blocks[0].nbytes))
        expected = np.concatenate(blocks)
        for r in range(size):
            np.testing.assert_allclose(outs[r], expected)

    def test_alltoall(self):
        size = 4
        cluster = build_mpi_cluster(size)
        sbufs = [np.concatenate([data(r * size + d) for d in range(size)])
                 for r in range(size)]
        outs = [np.zeros(N * size, np.float32) for _ in range(size)]
        cluster.run_all(lambda me: alg.mpi_alltoall(
            me, sbufs[me.rank], outs[me.rank], data(0).nbytes))
        for d in range(size):
            expected = np.concatenate([data(s * size + d)
                                       for s in range(size)])
            np.testing.assert_allclose(outs[d], expected)

    def test_barrier(self):
        cluster = build_mpi_cluster(6)
        elapsed = cluster.run_all(lambda me: alg.mpi_barrier(me))
        assert elapsed > 0


class TestTuning:
    def test_reduce_narrative_of_fig12(self):
        """The exact selection story told in the paper for Figure 12."""
        tuning = MpiTuning()
        small = 8 * units.KIB
        assert tuning.reduce(small, 2) == "linear"
        assert tuning.reduce(small, 4) == "chain"
        assert tuning.reduce(small, 8) == "binomial"
        large = 128 * units.KIB
        assert tuning.reduce(large, 3) == "linear"
        assert tuning.reduce(large, 8) == "binomial"

    def test_largest_reduce_uses_rabenseifner(self):
        tuning = MpiTuning()
        assert tuning.reduce(4 * units.MIB, 8) == "reduce_scatter_gather"

    def test_bcast_switches_to_van_de_geijn(self):
        tuning = MpiTuning()
        assert tuning.bcast(4 * units.KIB, 8) == "binomial"
        assert tuning.bcast(4 * units.MIB, 8) == "scatter_allgather"


class TestF2fModel:
    def test_breakdown_sums_and_pcie_dominates_small(self):
        cluster = build_mpi_cluster(4)
        model = F2fMpiModel(cluster)
        nbytes = 4 * units.KIB
        payload = data(0, nbytes // 4)
        bufs = [payload.copy() if r == 0 else np.zeros(nbytes // 4, np.float32)
                for r in range(4)]
        breakdown = model.run(
            lambda me: alg.mpi_bcast(me, bufs[me.rank], nbytes, 0, tag=0),
            in_bytes=lambda r: nbytes if r == 0 else 0,
            out_bytes=lambda r: 0 if r == 0 else nbytes,
        )
        d = breakdown.as_dict()
        assert d["total"] == pytest.approx(
            d["pcie_in"] + d["collective"] + d["pcie_out"] + d["invocation"])
        assert breakdown.pcie_in > 0 and breakdown.pcie_out > 0

    def test_collective_dominates_large(self):
        cluster = build_mpi_cluster(4)
        model = F2fMpiModel(cluster)
        nbytes = 16 * units.MIB
        breakdown = model.run(
            lambda me: alg.mpi_bcast(me, None, nbytes, 0, tag=0),
            in_bytes=lambda r: nbytes if r == 0 else 0,
            out_bytes=lambda r: 0 if r == 0 else nbytes,
        )
        assert breakdown.collective > breakdown.pcie_in
        assert breakdown.collective > breakdown.pcie_out


class TestAcclV1:
    def test_v1_functionally_correct(self):
        cluster = build_accl_v1_cluster(2)
        payload = data(0)
        sview = dev_buffer(cluster, 0, payload)
        rview = empty_dev_buffer(cluster, 1, N)

        def args(rank):
            if rank == 0:
                return CollectiveArgs(opcode="send", peer=1,
                                      nbytes=payload.nbytes, sbuf=sview)
            return CollectiveArgs(opcode="recv", peer=0,
                                  nbytes=payload.nbytes, rbuf=rview)

        cluster.run_collective(args)
        np.testing.assert_allclose(rview.array, payload)

    def test_v1_slower_than_accl_plus(self):
        """Fig 13's key claim: the RBM offload beats uC packet handling."""
        size = 512 * units.KIB

        def sendrecv_time(cluster):
            payload = np.zeros(size // 4, dtype=np.float32)
            sview = dev_buffer(cluster, 0, payload)
            rview = empty_dev_buffer(cluster, 1, size // 4)

            def args(rank):
                if rank == 0:
                    return CollectiveArgs(opcode="send", peer=1, nbytes=size,
                                          sbuf=sview)
                return CollectiveArgs(opcode="recv", peer=0, nbytes=size,
                                      rbuf=rview)

            return cluster.run_collective(args)

        t_v1 = sendrecv_time(build_accl_v1_cluster(2))
        t_v2 = sendrecv_time(make_cluster(2, protocol="tcp",
                                          platform="vitis"))
        assert t_v1 > 1.5 * t_v2
