"""Smoke tests for the profiling harness and its CLI surface."""

import json
import pstats

import pytest

from repro.bench import profile as profile_mod
from repro.bench.__main__ import main as bench_main
from repro.trace import Tracer


class TestMicrobenchmarks:
    def test_quick_suite_shape(self):
        reports = profile_mod.run_microbenchmarks(quick=True)
        labels = [r["label"] for r in reports]
        assert labels == ["sleep-path", "timeout-events",
                          "scheduled-callbacks", "collective-ops"]
        for report in reports:
            assert report["events"] > 0
            assert report["events_per_s"] > 0
            assert report["ns_per_event"] > 0
        assert reports[-1]["ops_per_s"] > 0

    def test_measure_counts_events(self):
        from repro.sim import Environment

        env = Environment()

        def proc():
            yield 1.0
            yield 1.0

        def run():
            env.process(proc())
            env.run()
            return "done"

        out = profile_mod.measure(run, "two-sleeps")
        assert out["value"] == "done"
        # bootstrap + two sleep wakeups + final StopIteration resolution
        assert out["report"]["events"] >= 3
        assert out["report"]["sim_s"] == pytest.approx(2.0)


class TestProfileArtifact:
    def test_fig08_with_memory_and_pstats(self, tmp_path):
        out = str(tmp_path / "fig08.pstats")
        report = profile_mod.profile_artifact(
            "fig08", quick=True, profile_out=out, memory=True)
        assert report["artifact"] == "fig08"
        assert report["points"] == 3
        assert report["events"] > 0
        assert report["memory"]["peak_bytes"] > 0
        stats = pstats.Stats(out)  # dumped file must be loadable
        assert stats.total_calls > 0
        rendered = profile_mod.render_report(report)
        assert "fig08" in rendered and "ns/event" in rendered

    def test_kernel_pseudo_artifact(self):
        report = profile_mod.profile_artifact("kernel", quick=True)
        assert len(report["microbenchmarks"]) == 4
        assert "sleep-path" in profile_mod.render_report(report)

    def test_unknown_artifact_raises(self):
        with pytest.raises(KeyError):
            profile_mod.profile_artifact("fig99")

    def test_quick_kwargs_shrink_fig07(self):
        report = profile_mod.profile_artifact("fig07", quick=True)
        # full fig07 runs 5 sizes x 3 series; quick trims to 3 sizes
        assert report["points"] == 9
        assert report["quick"] is True


class TestCli:
    def test_profile_kernel_quick(self, capsys):
        assert bench_main(["profile", "kernel", "--quick"]) == 0
        assert "kernel microbenchmarks" in capsys.readouterr().out

    def test_profile_requires_exactly_one_target(self, capsys):
        assert bench_main(["profile"]) == 2
        assert bench_main(["profile", "fig08", "fig09"]) == 2

    def test_profile_unknown_artifact(self, capsys):
        assert bench_main(["profile", "fig99"]) == 2

    def test_profile_json_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert bench_main(["profile", "fig08", "--quick",
                           "--json", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["artifact"] == "fig08"
        assert report["events_per_s"] > 0

    def test_artifact_run_with_profile_out(self, tmp_path, capsys):
        pstats_out = tmp_path / "run.pstats"
        assert bench_main(["fig08", "--no-cache",
                           "--profile-out", str(pstats_out)]) == 0
        assert pstats.Stats(str(pstats_out)).total_calls > 0


class TestPerfSection:
    def test_from_runner_records(self):
        from repro.bench.runner import PointResult, SweepPoint

        point = SweepPoint.make("figXX", "k")
        records = [
            PointResult(point=point, value=1.0, wall_s=0.5, sim_s=0.1,
                        events=1000, cached=False),
            PointResult(point=point, value=1.0, wall_s=0.0, sim_s=0.0,
                        events=0, cached=True),  # cache reads excluded
        ]
        perf = profile_mod.perf_section(records, wall_s=0.75)
        assert perf["events"] == 1000
        assert perf["events_per_s"] == pytest.approx(2000.0)
        assert perf["wall_s"] == 0.75

    def test_empty_records(self):
        perf = profile_mod.perf_section([], wall_s=0.0)
        assert perf["events"] == 0
        assert perf["events_per_s"] == 0.0


class TestTracerDropCounter:
    def test_total_dropped_aggregates_across_instances(self):
        before = Tracer.total_dropped
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(float(i), "c", "e")
        assert tracer.dropped == 3
        assert Tracer.total_dropped == before + 3
        other = Tracer(capacity=1)
        other.record(0.0, "c", "e")
        other.record(1.0, "c", "e")
        assert Tracer.total_dropped == before + 4
        # clear() resets the instance, not the process-wide total
        tracer.clear()
        assert tracer.dropped == 0
        assert Tracer.total_dropped == before + 4
