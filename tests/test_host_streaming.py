"""Host-side streaming collectives (§4.1) and the functional sim preset."""

import numpy as np
import pytest

from repro.cclo.config_mem import CcloConfig
from repro.cluster import build_fpga_cluster
from repro.driver import attach_drivers
from repro.sim import all_of
from tests.helpers import make_cluster

N = 512


def data(seed):
    return np.random.default_rng(seed).standard_normal(N).astype(np.float32)


class TestHostStreaming:
    def test_host_streaming_send(self):
        """Host pushes chunks into a streaming send; remote receives them."""
        cluster = make_cluster(2, platform="coyote")
        d0, d1 = attach_drivers(cluster)
        payload = data(1)
        rbuf = d1.wrap(np.zeros(N, np.float32))
        recv_req = d1.recv(rbuf, payload.nbytes, src=0)
        d0.send(None, payload.nbytes, dst=1, from_stream=True)
        for chunk in np.split(payload, 4):
            d0.push_stream(chunk)
        recv_req.wait()
        np.testing.assert_allclose(rbuf.array, payload)

    def test_host_streaming_recv(self):
        cluster = make_cluster(2, platform="coyote")
        d0, d1 = attach_drivers(cluster)
        payload = data(2)
        d0.send(d0.wrap(payload), payload.nbytes, dst=1)
        d1.recv(None, payload.nbytes, src=0, to_stream=True)
        pull = d1.pull_stream()
        nbytes, chunk = pull.wait()
        assert nbytes == payload.nbytes
        np.testing.assert_allclose(np.asarray(chunk).reshape(-1), payload)

    def test_host_stream_pays_pcie(self):
        """Host streaming is not free: chunks cross PCIe on the way in."""
        cluster = make_cluster(2, platform="coyote")
        d0, d1 = attach_drivers(cluster)
        payload = data(3)
        rbuf = d1.wrap(np.zeros(N, np.float32))
        recv_req = d1.recv(rbuf, payload.nbytes, src=0)
        d0.send(None, payload.nbytes, dst=1, from_stream=True)
        d0.push_stream(payload)
        recv_req.wait()
        assert cluster.nodes[0].platform.pcie.bytes_h2d >= payload.nbytes


class TestFunctionalSimLevel:
    def test_functional_preset_is_near_zero_latency(self):
        """The paper's functional simulation level: logic without timing."""
        payload = data(4)

        def sendrecv_time(config):
            cluster = build_fpga_cluster(2, platform="sim",
                                         cclo_config=config)
            d0, d1 = attach_drivers(cluster)
            rbuf = d1.wrap(np.zeros(N, np.float32))
            reqs = [d1.recv(rbuf, payload.nbytes, src=0),
                    d0.send(d0.wrap(payload), payload.nbytes, dst=1)]
            cluster.env.run(
                until=all_of(cluster.env, [r.event for r in reqs]))
            np.testing.assert_allclose(rbuf.array, payload)
            return cluster.env.now

        functional = sendrecv_time(CcloConfig.functional())
        calibrated = sendrecv_time(CcloConfig())
        # Engine-side costs vanish; only POE/wire time remains.
        assert functional < 0.7 * calibrated
        # Functional mode still moves the wire bytes (it is not magic).
        assert functional > 0

    def test_functional_collectives_still_correct(self):
        cluster = build_fpga_cluster(4, platform="sim",
                                     cclo_config=CcloConfig.functional())
        drivers = attach_drivers(cluster)
        contribs = [data(10 + r) for r in range(4)]
        outs = [d.wrap(np.zeros(N, np.float32)) for d in drivers]
        reqs = [d.allreduce(d.wrap(contribs[r]), outs[r], contribs[r].nbytes)
                for r, d in enumerate(drivers)]
        cluster.env.run(until=all_of(cluster.env, [r.event for r in reqs]))
        expected = np.sum(contribs, axis=0)
        for r in range(4):
            np.testing.assert_allclose(outs[r].array, expected, rtol=1e-3,
                                       atol=1e-5)
