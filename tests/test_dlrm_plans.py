"""Tests of alternative DLRM deployment plans (the §6.1 scaling knobs)."""

import numpy as np
import pytest

from repro.apps.dlrm import (
    DistributedDlrm,
    DlrmConfig,
    DlrmModel,
    DlrmPlan,
    PartitionedWeights,
)
from repro.errors import ConfigurationError


class TestPlanGeometry:
    @pytest.mark.parametrize("cols,nodes", [(2, 6), (4, 10), (5, 12)])
    def test_node_count_follows_columns(self, cols, nodes):
        plan = DlrmPlan(col_parts=cols)
        assert plan.n_nodes == nodes
        assert len(plan.embed_nodes) == cols
        assert len(plan.fc1_partner_nodes) == cols
        assert plan.fc2_node == 2 * cols
        assert plan.fc3_node == 2 * cols + 1

    def test_reduce_group_is_partners_plus_fc2(self):
        plan = DlrmPlan(col_parts=2)
        assert plan.reduce_group == [2, 3, 4]

    def test_partner_mapping(self):
        plan = DlrmPlan(col_parts=4)
        assert [plan.partner_of(n) for n in plan.embed_nodes] == [4, 5, 6, 7]

    def test_uneven_table_split_rejected(self):
        plan = DlrmPlan(col_parts=3)  # 100 tables do not split by 3
        with pytest.raises(ConfigurationError, match="evenly"):
            plan.tables_for(0, DlrmConfig())

    def test_chunk_and_row_lengths(self):
        config = DlrmConfig()
        plan2 = DlrmPlan(col_parts=2)
        assert plan2.chunk_len(config) == 1600
        assert plan2.row_len(config) == 1024


class TestPartitionedWeightsVariants:
    @pytest.mark.parametrize("cols", [2, 4, 5])
    def test_decomposition_exact_for_any_width(self, cols):
        model = DlrmModel()
        weights = PartitionedWeights(model, DlrmPlan(col_parts=cols))
        x = np.random.default_rng(cols).standard_normal(
            model.config.concat_len).astype(np.float32)
        np.testing.assert_allclose(
            weights.check_decomposition(x), model.weights[0] @ x,
            rtol=1e-3, atol=1e-4)

    def test_block_shapes(self):
        model = DlrmModel()
        weights = PartitionedWeights(model, DlrmPlan(col_parts=4))
        assert weights.fc1_blocks[0][0].shape == (1024, 800)
        assert len(weights.fc1_blocks) == 2
        assert len(weights.fc1_blocks[0]) == 4


class TestPipelineVariants:
    def test_narrow_plan_runs_and_verifies(self):
        model = DlrmModel()
        dlrm = DistributedDlrm(model, plan=DlrmPlan(col_parts=2))
        queries = model.make_queries(8)
        stats = dlrm.run(queries)
        np.testing.assert_allclose(stats.outputs,
                                   model.forward_batch(queries),
                                   rtol=1e-3, atol=1e-4)

    def test_unsupported_row_split_rejected(self):
        with pytest.raises(ConfigurationError, match="two-row"):
            DistributedDlrm(DlrmModel(), plan=DlrmPlan(col_parts=4,
                                                       row_parts=4))
