"""Shared test utilities for collective-level tests."""

from __future__ import annotations

import numpy as np

from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import FpgaCluster, build_fpga_cluster
from repro.platform.base import BufferLocation


def make_cluster(n, protocol="rdma", platform="sim", **kwargs) -> FpgaCluster:
    return build_fpga_cluster(n, protocol=protocol, platform=platform, **kwargs)


def dev_buffer(cluster, rank, array):
    """Wrap a numpy array in a device buffer on *rank*; returns a view."""
    buf = cluster.nodes[rank].platform.wrap(
        np.ascontiguousarray(array), BufferLocation.DEVICE
    )
    return buf.view()


def empty_dev_buffer(cluster, rank, n_elems, dtype=np.float32):
    return dev_buffer(cluster, rank, np.zeros(n_elems, dtype=dtype))


def run_collective(cluster, make_args):
    """Run one collective; returns elapsed simulated seconds."""
    return cluster.run_collective(make_args)


def collective_args(**kwargs) -> CollectiveArgs:
    return CollectiveArgs(**kwargs)
