"""Per-op latency ledger: keys, merge identity, attribution reconciliation."""

import json

import pytest

from repro import units
from repro.bench import harness
from repro.bench.runner import SweepRunner
from repro.network.fidelity import fidelity_override
from repro.obs import capture
from repro.obs.export import attribute_op, phase_breakdown
from repro.obs.ledger import (LedgerEntry, OpLedger, entry_key,
                              ledger_from_records, ledger_path_for)

KIB = units.KIB


class TestEntryBasics:
    def test_key_format_is_stable(self):
        key = entry_key("fig07", "allreduce", 65536, "ring", 8, "packet")
        assert key == "fig07/allreduce/65536B/ring/8n/packet"
        assert entry_key("a", "bcast", 16, None, 4, "flow") == \
            "a/bcast/16B/auto/4n/flow"

    def test_observe_accumulates_histogram_and_totals(self):
        ent = LedgerEntry("a", "bcast", 1024, None, 4, "packet")
        ent.observe(1e-3, crit_s={"wire": 6e-4, "wait:rendezvous": 4e-4},
                    phase_s={"wire": 6e-4, "other": 4e-4})
        ent.observe(3e-3, crit_s={"wire": 3e-3})
        assert ent.count == 2
        assert ent.crit_s["wire"] == pytest.approx(3.6e-3)
        summary = ent.summary()
        assert summary["ops"] == 2
        assert summary["sum_us"] == pytest.approx(4000.0)
        assert summary["min_us"] == pytest.approx(1000.0)
        assert summary["max_us"] == pytest.approx(3000.0)
        assert "p50_us" in summary and "p99_us" in summary
        assert "incomplete" not in summary

    def test_incomplete_flag_ors_and_surfaces(self):
        ent = LedgerEntry("a", "bcast", 1024, None, 4, "packet")
        ent.observe(1e-3)
        ent.observe(1e-3, incomplete=True)
        ent.observe(1e-3)
        assert ent.incomplete
        assert ent.summary()["incomplete"] is True


class TestLedgerMerge:
    def _sample(self, fidelity="packet"):
        ledger = OpLedger(fidelity=fidelity)
        for latency in (1e-3, 2e-3, 5e-3):
            ledger.observe(latency, artifact="fig07", collective="bcast",
                           size=64 * KIB, nprocs=8,
                           crit_s={"wire": latency})
        ledger.observe(4e-3, artifact="fig12", collective="reduce",
                       size=KIB, nprocs=4, algorithm="ring")
        return ledger

    def test_snapshot_roundtrip_is_identity(self):
        ledger = self._sample()
        clone = OpLedger.from_snapshot(ledger.snapshot())
        assert clone.snapshot() == ledger.snapshot()
        assert clone.ops == ledger.ops == 4

    def test_merge_is_equivalent_to_interleaved_observation(self):
        """Registry idiom: histograms extend, totals add, flags OR."""
        a, b = self._sample(), self._sample()
        merged = OpLedger(fidelity="packet")
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        key = entry_key("fig07", "bcast", 64 * KIB, None, 8, "packet")
        ent = merged.entries[key]
        assert ent.count == 6
        assert ent.crit_s["wire"] == pytest.approx(2 * 8e-3)
        # Same observations recorded directly, one sequence:
        direct = self._sample()
        for latency in (1e-3, 2e-3, 5e-3):
            direct.observe(latency, artifact="fig07", collective="bcast",
                           size=64 * KIB, nprocs=8,
                           crit_s={"wire": latency})
        direct.observe(4e-3, artifact="fig12", collective="reduce",
                       size=KIB, nprocs=4, algorithm="ring")
        assert sorted(merged.entries) == sorted(direct.entries)
        for k in merged.entries:
            assert sorted(merged.entries[k].latency._values) == \
                sorted(direct.entries[k].latency._values)
            assert merged.entries[k].crit_s == pytest.approx(
                direct.entries[k].crit_s)

    def test_save_load(self, tmp_path):
        ledger = self._sample()
        path = str(tmp_path / "ledger.json")
        assert ledger.save(path) == len(ledger.entries)
        loaded = OpLedger.load(path)
        assert loaded.snapshot() == ledger.snapshot()

    def test_summary_has_per_artifact_percentiles(self):
        summary = self._sample().summary()
        assert summary["ops"] == 4
        assert summary["entries"] == 2
        fig07 = summary["artifacts"]["fig07"]
        assert fig07["ops"] == 3
        assert fig07["p50_us"] == pytest.approx(2000.0)
        assert fig07["p99_us"] <= 5000.0 + 1e-6
        assert "fig12" in summary["artifacts"]


class TestRecordOpReconciliation:
    """Ledger cause totals must reconcile exactly with phase_breakdown
    and the op's wall sim-time — the tentpole's acceptance invariant."""

    @pytest.mark.parametrize("fidelity", ["packet", "flow"])
    def test_cause_totals_reconcile_with_wall(self, fidelity):
        with fidelity_override(fidelity):
            cap = capture.trace_artifact("fig07")
        ledger = OpLedger(fidelity=fidelity)
        for op in cap.op_ids:
            report = ledger.record_op(cap.tracer, op, artifact="fig07",
                                      nprocs=2)
            assert sum(report["totals"].values()) == \
                pytest.approx(report["wall_s"], rel=1e-9)
        total_wall = sum(attribute_op(cap.tracer, op)["wall_s"]
                         for op in cap.op_ids)
        crit_total = sum(s for ent in ledger.entries.values()
                         for s in ent.crit_s.values())
        phase_total = sum(s for ent in ledger.entries.values()
                          for s in ent.phase_s.values())
        hist_total = sum(s for ent in ledger.entries.values()
                         for s in ent.latency._values)
        assert crit_total == pytest.approx(total_wall, rel=1e-9)
        assert phase_total == pytest.approx(total_wall, rel=1e-9)
        assert hist_total == pytest.approx(total_wall, rel=1e-9)

    def test_record_op_matches_phase_breakdown(self):
        cap = capture.trace_artifact("allreduce")
        ledger = cap.ledger()
        assert ledger.ops == len(cap.op_ids)
        for op in cap.op_ids:
            breakdown = phase_breakdown(cap.tracer, op)
            assert "incomplete" in breakdown
        (ent,) = ledger.entries.values()
        assert ent.collective == "allreduce"
        assert ent.nprocs == 4
        assert ent.size == 64 * KIB

    def test_collective_and_size_from_root_span(self):
        cap = capture.trace_artifact("fig12")
        ledger = cap.ledger()
        keys = list(ledger.entries)
        assert all("/reduce/" in k for k in keys)
        assert all(f"{32 * units.MIB}B" in k for k in keys)


class TestLedgerFromRecords:
    def test_sweep_records_become_observations(self):
        runner = SweepRunner()
        harness.run_figX_scale(runner=runner,
                               node_counts=(4,), size=256 * KIB)
        ledger = ledger_from_records(runner.records)
        assert ledger.ops == len(runner.records) == 3
        collectives = {ent.collective for ent in ledger.entries.values()}
        assert collectives == {"allreduce", "bcast"}
        for ent in ledger.entries.values():
            assert ent.nprocs == 4
            assert ent.size == 256 * KIB
            assert all(v > 0 for v in ent.latency._values)
        # runner.ledger() is the same construction
        assert runner.ledger().snapshot() == ledger.snapshot()

    def test_non_latency_kernels_are_skipped(self):
        runner = SweepRunner()
        harness.run_tab02_dlrm_config(runner=runner)
        assert ledger_from_records(runner.records).ops == 0

    def test_cached_rerun_produces_identical_ledger(self, tmp_path):
        from repro.bench.cache import ResultCache

        kwargs = dict(node_counts=(4,), size=256 * KIB)
        cold = SweepRunner(cache=ResultCache(tmp_path / "c"))
        harness.run_figX_scale(runner=cold, **kwargs)
        warm = SweepRunner(cache=ResultCache(tmp_path / "c"))
        harness.run_figX_scale(runner=warm, **kwargs)
        assert all(rec.cached for rec in warm.records)
        assert ledger_from_records(warm.records).snapshot() == \
            ledger_from_records(cold.records).snapshot()


class TestLedgerPath:
    def test_default_results_maps_to_default_ledger(self):
        assert ledger_path_for("BENCH_results.json") == "BENCH_ledger.json"
        assert ledger_path_for("out/BENCH_results.json") == \
            "out/BENCH_ledger.json"

    def test_other_names_get_ledger_suffix(self):
        assert ledger_path_for("s0.json") == "s0_ledger.json"
        assert ledger_path_for("runs/a.json") == "runs/a_ledger.json"


class TestTrajectoryLedgerSection:
    def test_bench_cli_writes_ledger_and_summary(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = str(tmp_path / "r.json")
        rc = main(["figX_scale", "--quick", "--no-cache", "--json", out])
        assert rc == 0
        capsys.readouterr()
        doc = json.load(open(out))
        assert doc["ledger"]["ops"] > 0
        assert "figX_scale" in doc["ledger"]["artifacts"]
        stats = doc["ledger"]["artifacts"]["figX_scale"]
        assert stats["p50_us"] > 0 and stats["p99_us"] >= stats["p50_us"]
        ledger = OpLedger.load(str(tmp_path / "r_ledger.json"))
        assert ledger.ops == doc["ledger"]["ops"]
