"""Smoke tests: the fast example scripts run end-to-end and self-verify.

(The two use-case examples sweep multi-minute grids; their logic is covered
by tests/test_vecmat.py and tests/test_dlrm.py instead.)
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "streaming_kernels.py",
    "custom_collective.py",
    "trace_debugging.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=240,
    )
    assert result.returncode == 0, result.stderr
    assert "verified" in result.stdout


def test_all_examples_present():
    expected = {
        "quickstart.py", "streaming_kernels.py", "custom_collective.py",
        "trace_debugging.py", "collective_offload_vecmat.py",
        "distributed_dlrm.py",
    }
    assert {p.name for p in EXAMPLES.glob("*.py")} == expected
