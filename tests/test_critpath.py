"""Critical-path extraction, wait-cause attribution, flamegraph export."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import units
from repro.obs import (
    SpanTracer,
    attribute_op,
    blocking_dag,
    critical_path,
    phase_breakdown,
    render_critpath,
    to_chrome_trace,
    to_collapsed_stacks,
    validate_chrome_trace,
    write_flamegraph,
)
from repro.obs.capture import trace_artifact
from repro.sim import all_of


@pytest.fixture(scope="module")
def fig07_capture():
    return trace_artifact("fig07")


def _reltol(wall):
    return 1e-9 * max(abs(wall), 1e-12)


class TestAttribution:
    def test_totals_reconcile_exactly_with_wall(self, fig07_capture):
        """ISSUE acceptance: per-cause + per-phase exclusive totals sum to
        the op's wall sim-time, exactly (shared interval sweep)."""
        cap = fig07_capture
        assert cap.op_ids
        for op in cap.op_ids:
            report = critical_path(cap.tracer, op)
            wall = report["wall_s"]
            assert abs(sum(report["totals"].values()) - wall) <= _reltol(wall)
            assert abs(sum(report["phases"].values()) - wall) <= _reltol(wall)

    def test_phases_bitwise_match_phase_breakdown(self, fig07_capture):
        """phase_breakdown is a view of the same sweep: identical floats."""
        cap = fig07_capture
        for op in cap.op_ids:
            report = attribute_op(cap.tracer, op)
            legacy = phase_breakdown(cap.tracer, op)
            assert report["phases"] == legacy["phases"]
            assert report["fractions"] == legacy["fractions"]
            assert report["wall_s"] == legacy["wall_s"]

    def test_segments_tile_the_wall_window(self, fig07_capture):
        cap = fig07_capture
        for op in cap.op_ids:
            report = critical_path(cap.tracer, op)
            segs = report["segments"]
            assert segs[0]["t0"] == report["t0"]
            assert segs[-1]["t1"] == report["t1"]
            for prev, cur in zip(segs, segs[1:]):
                assert cur["t0"] == prev["t1"]
                assert cur["dur_s"] > 0

    def test_fig07_observes_rendezvous_and_pcie_waits(self, fig07_capture):
        cap = fig07_capture
        causes = set()
        for op in cap.op_ids:
            causes |= set(critical_path(cap.tracer, op)["wait_observed"])
        assert "rendezvous" in causes  # the 1 MiB rendezvous transfer
        assert "pcie" in causes        # coyote host invocation

    def test_attribute_op_errors_match_phase_breakdown(self):
        tr = SpanTracer()
        with pytest.raises(KeyError):
            attribute_op(tr, 3)
        op = tr.next_op_id()
        tr.span_begin(0.0, "cclo0.uc", "collective:send",
                      phase="collective", op_id=op)
        with pytest.raises(ValueError):
            attribute_op(tr, op)

    def test_render_reports_reconciliation_ok(self, fig07_capture):
        cap = fig07_capture
        text = render_critpath(critical_path(cap.tracer, cap.op_ids[0]))
        assert "critical path:" in text
        assert "[OK]" in text and "MISMATCH" not in text

    def test_back_to_back_calls_wait_on_uc_dispatch(self):
        """Two commands submitted together on one engine: the second is
        serialized behind the first's uC dispatch."""
        from repro.cluster.builder import build_fpga_cluster
        from repro.driver.api import attach_drivers
        from repro.obs.runtime import attach

        cluster = build_fpga_cluster(2, protocol="rdma", platform="coyote")
        obs = attach(cluster)
        driver = attach_drivers(cluster)[0]
        reqs = [driver.nop(), driver.nop()]
        cluster.env.run(until=all_of(cluster.env, [r.event for r in reqs]))
        ops = obs.tracer.op_ids()
        assert len(ops) == 2
        second = critical_path(obs.tracer, ops[1])
        assert second["wait_observed"].get("uc_dispatch", 0.0) > 0


class TestBlockingDag:
    def test_dag_structure(self, fig07_capture):
        cap = fig07_capture
        dag = blocking_dag(cap.tracer, cap.op_ids[0])
        sids = {n["sid"] for n in dag["nodes"]}
        roots = [n for n in dag["nodes"] if n["phase"] == "collective"]
        assert len(roots) == 1 and roots[0]["on_critical_path"]
        for edge in dag["edges"]:
            assert edge["src"] in sids and edge["dst"] in sids
        assert set(dag["critical_sids"]) <= sids
        waits = [n for n in dag["nodes"] if n["cause"]]
        assert waits, "fig07 must surface at least one annotated wait"


class TestFlamegraph:
    def test_collapsed_stacks_format_and_rooting(self, fig07_capture):
        cap = fig07_capture
        lines = to_collapsed_stacks(cap.tracer, cap.op_ids)
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            frames = stack.split(";")
            assert all(":" in f for f in frames)
        # Every stack is rooted at a collective span.
        assert all(":collective:" in line.split(";")[0] for line in lines)

    def test_write_flamegraph(self, fig07_capture, tmp_path):
        cap = fig07_capture
        path = tmp_path / "flame.txt"
        n = write_flamegraph(cap.tracer, str(path), cap.op_ids)
        content = path.read_text().splitlines()
        assert len(content) == n > 0


class TestTimingInvariance:
    @staticmethod
    def _run_sendrecv(with_obs: bool) -> float:
        from repro.cluster.builder import build_fpga_cluster
        from repro.driver.api import attach_drivers
        from repro.obs.runtime import attach

        cluster = build_fpga_cluster(2, protocol="rdma", platform="coyote")
        if with_obs:
            attach(cluster)
        drivers = attach_drivers(cluster)
        for tag, nbytes in ((7, 16 * units.KIB), (8, units.MIB)):
            data = np.ones(nbytes // 4, dtype=np.float32)
            reqs = [
                drivers[0].send(drivers[0].wrap(data), nbytes, dst=1,
                                tag=tag),
                drivers[1].recv(drivers[1].alloc(nbytes), nbytes, src=0,
                                tag=tag),
            ]
            cluster.env.run(
                until=all_of(cluster.env, [r.event for r in reqs]))
        return cluster.env.now

    def test_instrumentation_is_record_only(self):
        """The wait annotations must not move simulated time."""
        assert self._run_sendrecv(True) == self._run_sendrecv(False)


class TestChromeTruncation:
    def test_open_spans_export_truncated_end_events(self):
        tr = SpanTracer()
        op = tr.next_op_id()
        root = tr.span_begin(0.0, "cclo0.driver", "collective:send",
                             phase="collective", op_id=op)
        tr.span_complete("cclo0.uc", "dispatch", 1e-6, 2e-6, phase="uc",
                         op_id=op)
        tr.span_begin(3e-6, "cclo0.dmp", "instr", phase="dmp", op_id=op)
        assert tr.unclosed_count == 2
        doc = to_chrome_trace(tr)
        assert validate_chrome_trace(doc) == []
        xs = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert xs["dispatch"]["args"].get("truncated") is None
        for name in ("collective:send", "instr"):
            assert xs[name]["args"]["truncated"] is True
            assert xs[name]["dur"] > 0
        # Synthetic ends land at the last observed sim time (3 us).
        assert xs["collective:send"]["dur"] == pytest.approx(3.0)
        assert doc["otherData"]["truncated_spans"] == 2
        assert doc["otherData"]["unclosed"] == 2  # check_trace still gates
        tr.span_end(4e-6, root)


class TestCli:
    def test_critpath_unknown_scenario_lists_available(self, capsys):
        from repro.bench.__main__ import main

        assert main(["critpath", "nope"]) == 2
        err = capsys.readouterr().err
        assert "fig07" in err and "allreduce" in err

    def test_trace_unknown_scenario_lists_available(self, capsys):
        from repro.bench.__main__ import main

        assert main(["trace", "nope"]) == 2
        err = capsys.readouterr().err
        assert "fig07" in err and "fig08" in err

    def test_critpath_cli_prints_reconciled_paths(self, capsys, tmp_path):
        from repro.bench.__main__ import main

        flame = tmp_path / "flame.txt"
        out_json = tmp_path / "crit.json"
        rc = main(["critpath", "fig08", "--flamegraph-out", str(flame),
                   "--json", str(out_json)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical path:" in out and "MISMATCH" not in out
        assert flame.read_text().strip()
        doc = json.loads(out_json.read_text())
        assert doc["artifact"] == "fig08" and doc["ops"]

    def test_trace_json_feeds_check_trace_script(self, tmp_path):
        from repro.bench.__main__ import main

        trace = tmp_path / "trace.json"
        breakdown = tmp_path / "breakdown.json"
        rc = main(["trace", "fig08", "--trace-out", str(trace),
                   "--json", str(breakdown)])
        assert rc == 0
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ, PYTHONPATH=os.path.join(repo, "src"))
        proc = subprocess.run(
            [sys.executable, os.path.join(repo, "scripts", "check_trace.py"),
             str(trace), str(breakdown)],
            capture_output=True, text=True, env=env, cwd=repo,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "breakdown ok" in proc.stdout
