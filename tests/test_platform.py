"""Unit tests for the platform layer: Coyote, Vitis/XRT, SimPlatform."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError, PlatformError
from repro.platform import (
    BufferLocation,
    CoyotePlatform,
    SimPlatform,
    Tlb,
    VitisPlatform,
)
from repro.sim import Environment


def run_event(env, make_event):
    """Helper: run a process that yields one event, return elapsed time."""
    t = {}

    def proc():
        yield make_event()
        t["done"] = env.now

    start = env.now
    env.process(proc())
    env.run()
    return t["done"] - start


class TestTlb:
    def test_hit_is_cheap(self):
        env = Environment()
        tlb = Tlb(env)
        tlb.map_page(0)
        assert tlb.translate(0) == tlb.lookup_latency
        assert tlb.hits == 1 and tlb.faults == 0

    def test_miss_pays_fault_and_maps(self):
        env = Environment()
        tlb = Tlb(env)
        cost = tlb.translate(5)
        assert cost == pytest.approx(tlb.lookup_latency + tlb.fault_penalty)
        assert tlb.faults == 1
        assert tlb.translate(5) == tlb.lookup_latency

    def test_capacity_eviction(self):
        env = Environment()
        tlb = Tlb(env, entries=2)
        tlb.map_page(0)
        tlb.map_page(1)
        tlb.map_page(2)  # evicts 0
        assert tlb.translate(1) == tlb.lookup_latency
        assert tlb.translate(0) > tlb.lookup_latency  # faulted back in

    def test_map_range(self):
        env = Environment()
        tlb = Tlb(env)
        tlb.map_range(10, 4)
        for page in range(10, 14):
            assert tlb.translate(page) == tlb.lookup_latency


class TestCoyote:
    def test_buffer_pages_eagerly_mapped(self):
        env = Environment()
        plat = CoyotePlatform(env)
        buf = plat.allocate(8 * units.MIB, BufferLocation.HOST)
        assert plat.tlb.faults == 0
        elapsed = run_event(env, lambda: buf.device_read())
        assert plat.tlb.faults == 0
        assert plat.tlb.hits == 4  # one lookup per touched 2 MiB hugepage
        assert elapsed > 0

    def test_lazy_buffer_faults_on_first_touch(self):
        env = Environment()
        plat = CoyotePlatform(env)
        buf = plat.allocate(8 * units.MIB, BufferLocation.HOST,
                            eager_map=False)
        run_event(env, lambda: buf.device_read())
        assert plat.tlb.faults == 4
        # Second access hits the now-populated translations.
        faults_before = plat.tlb.faults
        run_event(env, lambda: buf.device_read())
        assert plat.tlb.faults == faults_before

    def test_host_access_rides_pcie(self):
        env = Environment()
        plat = CoyotePlatform(env)
        buf = plat.allocate(13 * 10**6, BufferLocation.HOST)
        elapsed = run_event(env, lambda: buf.device_read())
        # 13 MB over ~13 GB/s PCIe ~ 1 ms
        assert elapsed == pytest.approx(1e-3, rel=0.2)
        assert plat.pcie.bytes_h2d == 13 * 10**6

    def test_device_access_uses_hbm_not_pcie(self):
        env = Environment()
        plat = CoyotePlatform(env)
        buf = plat.allocate(units.MIB, BufferLocation.DEVICE)
        run_event(env, lambda: buf.device_write())
        assert plat.pcie.bytes_h2d == 0 and plat.pcie.bytes_d2h == 0
        assert plat.device_memory.bytes_accessed == units.MIB

    def test_no_staging_required(self):
        env = Environment()
        plat = CoyotePlatform(env)
        buf = plat.allocate(1024, BufferLocation.HOST)
        assert not plat.requires_staging(buf)

    def test_invocation_latencies_ordered(self):
        env = Environment()
        plat = CoyotePlatform(env)
        assert plat.kernel_invocation_latency < plat.host_invocation_latency
        assert plat.host_invocation_latency == pytest.approx(units.us(2.3))

    def test_wrap_array(self):
        env = Environment()
        plat = CoyotePlatform(env)
        arr = np.zeros(1024, dtype=np.float32)
        buf = plat.wrap(arr, BufferLocation.HOST)
        assert buf.nbytes == arr.nbytes
        assert buf.array is arr

    def test_wrap_size_mismatch_rejected(self):
        env = Environment()
        plat = CoyotePlatform(env)
        arr = np.zeros(10)
        with pytest.raises(ConfigurationError):
            plat.allocate(999, BufferLocation.HOST, array=arr)

    def test_oversized_access_rejected(self):
        env = Environment()
        plat = CoyotePlatform(env)
        buf = plat.allocate(100, BufferLocation.DEVICE)
        with pytest.raises(PlatformError):
            plat.device_access(buf, 200, "read")

    def test_foreign_buffer_rejected(self):
        env = Environment()
        plat_a = CoyotePlatform(env)
        plat_b = CoyotePlatform(env)
        buf = plat_a.allocate(100, BufferLocation.DEVICE)
        with pytest.raises(PlatformError, match="different platform"):
            plat_b.device_access(buf, 100, "read")

    def test_buffer_free_returns_capacity(self):
        env = Environment()
        plat = CoyotePlatform(env)
        before = plat.device_memory.free_bytes
        buf = plat.allocate(units.MIB, BufferLocation.DEVICE)
        buf.free()
        assert plat.device_memory.free_bytes == before
        with pytest.raises(PlatformError):
            buf.free()


class TestVitis:
    def test_unstaged_host_buffer_access_rejected(self):
        env = Environment()
        plat = VitisPlatform(env)
        buf = plat.allocate(1024, BufferLocation.HOST)
        assert plat.requires_staging(buf)
        with pytest.raises(PlatformError, match="staged"):
            plat.device_access(buf, 1024, "read")

    def test_stage_in_enables_access_and_charges_pcie(self):
        env = Environment()
        plat = VitisPlatform(env)
        buf = plat.allocate(units.MIB, BufferLocation.HOST)
        elapsed = run_event(env, lambda: plat.stage_in(buf))
        assert elapsed > 0
        assert plat.pcie.bytes_h2d == units.MIB
        run_event(env, lambda: buf.device_read())
        assert plat.stagings == 1

    def test_stage_out_reverses(self):
        env = Environment()
        plat = VitisPlatform(env)
        buf = plat.allocate(units.MIB, BufferLocation.HOST)
        run_event(env, lambda: plat.stage_in(buf))
        run_event(env, lambda: plat.stage_out(buf))
        assert plat.pcie.bytes_d2h == units.MIB
        assert not buf.staged

    def test_device_buffer_needs_no_staging(self):
        env = Environment()
        plat = VitisPlatform(env)
        buf = plat.allocate(1024, BufferLocation.DEVICE)
        assert not plat.requires_staging(buf)
        elapsed = run_event(env, lambda: plat.stage_in(buf))
        assert elapsed == 0

    def test_invocation_much_higher_than_coyote(self):
        env = Environment()
        vitis = VitisPlatform(env)
        coyote = CoyotePlatform(env)
        assert vitis.host_invocation_latency > 10 * coyote.host_invocation_latency

    def test_host_buffer_has_device_shadow(self):
        env = Environment()
        plat = VitisPlatform(env)
        free_before = plat.device_memory.free_bytes
        buf = plat.allocate(units.MIB, BufferLocation.HOST)
        assert plat.device_memory.free_bytes == free_before - units.MIB
        buf.free()
        assert plat.device_memory.free_bytes == free_before


class TestSimPlatform:
    def test_zero_cost_access(self):
        env = Environment()
        plat = SimPlatform(env)
        buf = plat.allocate(units.GIB)
        elapsed = run_event(env, lambda: buf.device_read())
        assert elapsed == 0.0

    def test_zero_invocation(self):
        assert SimPlatform.host_invocation_latency == 0.0

    def test_capacity_enforced(self):
        env = Environment()
        plat = SimPlatform(env, capacity=1024)
        plat.allocate(1024)
        with pytest.raises(PlatformError):
            plat.allocate(1)
