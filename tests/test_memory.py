"""Unit tests for memory models and the PCIe link."""

import pytest

from repro import units
from repro.errors import ConfigurationError, PlatformError
from repro.memory import Memory, PcieLink, bram, fpga_ddr, hbm_stack, host_dram
from repro.sim import Environment


class TestAllocator:
    def test_allocate_and_free(self):
        env = Environment()
        mem = Memory(env, capacity=1000, bandwidth=1e9)
        a = mem.allocate(400)
        b = mem.allocate(600)
        assert mem.free_bytes == 0
        mem.free(a)
        assert mem.free_bytes == 400
        mem.free(b)
        assert mem.free_bytes == 1000

    def test_exhaustion_raises(self):
        env = Environment()
        mem = Memory(env, capacity=100, bandwidth=1e9, name="tiny")
        mem.allocate(80)
        with pytest.raises(PlatformError, match="out of memory"):
            mem.allocate(21)

    def test_double_free_raises(self):
        env = Environment()
        mem = Memory(env, capacity=100, bandwidth=1e9)
        a = mem.allocate(10)
        mem.free(a)
        with pytest.raises(PlatformError):
            mem.free(a)

    def test_zero_alloc_rejected(self):
        env = Environment()
        mem = Memory(env, capacity=100, bandwidth=1e9)
        with pytest.raises(ConfigurationError):
            mem.allocate(0)

    def test_capacity_reusable_after_free(self):
        env = Environment()
        mem = Memory(env, capacity=100, bandwidth=1e9)
        for _ in range(10):
            a = mem.allocate(90)
            mem.free(a)
        assert mem.free_bytes == 100

    def test_allocation_end(self):
        env = Environment()
        mem = Memory(env, capacity=100, bandwidth=1e9)
        a = mem.allocate(30)
        assert a.end == a.offset + 30


class TestMemoryTiming:
    def test_read_duration(self):
        env = Environment()
        mem = Memory(env, capacity=1000, bandwidth=100.0, access_latency=0.25)
        t = {}

        def proc():
            yield mem.read(100)
            t["done"] = env.now

        env.process(proc())
        env.run()
        assert t["done"] == pytest.approx(1.25)

    def test_port_shared_between_read_and_write(self):
        env = Environment()
        mem = Memory(env, capacity=1000, bandwidth=100.0)
        t = {}

        def proc():
            ra = mem.read(100)
            wb = mem.write(100)
            yield ra
            yield wb
            t["done"] = env.now

        env.process(proc())
        env.run()
        assert t["done"] == pytest.approx(2.0)

    def test_access_time_analytic(self):
        env = Environment()
        mem = Memory(env, capacity=1000, bandwidth=100.0, access_latency=0.5)
        assert mem.access_time(100) == pytest.approx(1.5)

    def test_factory_capacities(self):
        env = Environment()
        assert hbm_stack(env).capacity == 16 * units.GIB
        assert fpga_ddr(env).capacity == 16 * units.GIB
        assert host_dram(env).capacity == 256 * units.GIB
        assert bram(env).capacity == 8 * units.MIB

    def test_bad_capacity_rejected(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            Memory(env, capacity=0, bandwidth=1e9)


class TestPcie:
    def test_dma_duration(self):
        env = Environment()
        pcie = PcieLink(env, bandwidth=1e9, dma_latency=0.001)
        t = {}

        def proc():
            yield pcie.dma_h2d(int(1e9))
            t["done"] = env.now

        env.process(proc())
        env.run()
        assert t["done"] == pytest.approx(1.001)

    def test_directions_are_independent(self):
        env = Environment()
        pcie = PcieLink(env, bandwidth=100.0, dma_latency=0.0)
        t = {}

        def proc():
            a = pcie.dma_h2d(100)
            b = pcie.dma_d2h(100)
            yield a
            yield b
            t["done"] = env.now

        env.process(proc())
        env.run()
        assert t["done"] == pytest.approx(1.0)  # full duplex

    def test_same_direction_serializes(self):
        env = Environment()
        pcie = PcieLink(env, bandwidth=100.0, dma_latency=0.0)
        t = {}

        def proc():
            a = pcie.dma_h2d(100)
            b = pcie.dma_h2d(100)
            yield a
            yield b
            t["done"] = env.now

        env.process(proc())
        env.run()
        assert t["done"] == pytest.approx(2.0)

    def test_counters(self):
        env = Environment()
        pcie = PcieLink(env)
        pcie.dma_h2d(100)
        pcie.dma_d2h(50)
        env.run()
        assert pcie.bytes_h2d == 100
        assert pcie.bytes_d2h == 50

    def test_negative_dma_rejected(self):
        env = Environment()
        pcie = PcieLink(env)
        with pytest.raises(ValueError):
            pcie.dma_h2d(-1)

    def test_mmio_roundtrip_cost(self):
        env = Environment()
        pcie = PcieLink(env, mmio_latency=units.us(0.9))
        t = {}

        def proc():
            yield pcie.mmio_write()
            yield pcie.mmio_read()
            t["done"] = env.now

        env.process(proc())
        env.run()
        assert t["done"] == pytest.approx(units.us(1.8))

    def test_dma_time_analytic(self):
        env = Environment()
        pcie = PcieLink(env, bandwidth=1e9, dma_latency=0.5)
        assert pcie.dma_time(int(1e9)) == pytest.approx(1.5)
