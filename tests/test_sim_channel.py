"""Unit tests for FIFO channels (AXI-Stream analogue)."""

import pytest

from repro.sim import Channel, ChannelClosed, Environment


def run_proc(env, gen):
    p = env.process(gen)
    return env.run(until=p)


def test_put_then_get():
    env = Environment()
    ch = Channel(env)

    def proc():
        yield ch.put("word")
        item = yield ch.get()
        return item

    assert run_proc(env, proc()) == "word"


def test_get_blocks_until_put():
    env = Environment()
    ch = Channel(env)
    times = {}

    def consumer():
        item = yield ch.get()
        times["got"] = (env.now, item)

    def producer():
        yield env.timeout(3)
        yield ch.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert times["got"] == (3, "late")


def test_fifo_ordering():
    env = Environment()
    ch = Channel(env)
    got = []

    def producer():
        for i in range(5):
            yield ch.put(i)

    def consumer():
        for _ in range(5):
            item = yield ch.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2, 3, 4]


def test_backpressure_blocks_putter():
    env = Environment()
    ch = Channel(env, capacity=1)
    times = []

    def producer():
        yield ch.put("a")
        times.append(("a", env.now))
        yield ch.put("b")  # blocks until consumer drains
        times.append(("b", env.now))

    def consumer():
        yield env.timeout(10)
        yield ch.get()
        yield ch.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times[0] == ("a", 0)
    assert times[1][1] == pytest.approx(10)


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Channel(env, capacity=0)


def test_try_put_try_get():
    env = Environment()
    ch = Channel(env, capacity=1)
    assert ch.try_put("x") is True
    assert ch.try_put("y") is False
    ok, item = ch.try_get()
    assert ok and item == "x"
    ok, item = ch.try_get()
    assert not ok and item is None


def test_peek_does_not_consume():
    env = Environment()
    ch = Channel(env)
    ch.try_put("head")
    assert ch.peek() == "head"
    assert len(ch) == 1


def test_close_fails_pending_getters():
    env = Environment()
    ch = Channel(env)
    caught = {}

    def consumer():
        try:
            yield ch.get()
        except ChannelClosed:
            caught["closed"] = True

    env.process(consumer())

    def closer():
        yield env.timeout(1)
        ch.close()

    env.process(closer())
    env.run()
    assert caught["closed"]


def test_put_on_closed_channel_raises():
    env = Environment()
    ch = Channel(env)
    ch.close()
    with pytest.raises(ChannelClosed):
        ch.put("x")


def test_direct_handoff_to_waiting_getter():
    env = Environment()
    ch = Channel(env, capacity=1)
    order = []

    def consumer(tag):
        item = yield ch.get()
        order.append((tag, item))

    env.process(consumer("first"))
    env.process(consumer("second"))

    def producer():
        yield env.timeout(1)
        yield ch.put(1)
        yield ch.put(2)

    env.process(producer())
    env.run()
    assert order == [("first", 1), ("second", 2)]
