"""Differential comparison: ranked deltas, cause attribution, check wiring."""

import json

import pytest

from repro.bench import check as check_mod
from repro.obs import capture
from repro.obs.diff import (diff_files, diff_runs, load_run,
                            metric_delta_attribution, normalize_run,
                            render_check_attribution, render_diff,
                            render_diff_html)


def _ledger_doc(entries):
    """Minimal ledger document: {key: (latencies_s, crit_s)}."""
    return {
        "schema": 1,
        "fidelity": "packet",
        "entries": {
            key: {
                "artifact": key.split("/")[0],
                "collective": key.split("/")[1],
                "size": 1024, "algorithm": "auto", "nprocs": 4,
                "fidelity": "packet",
                "latencies": list(latencies),
                "crit_s": dict(crit_s),
                "phase_s": {},
                "incomplete": False,
            }
            for key, (latencies, crit_s) in entries.items()
        },
    }


BASE = _ledger_doc({
    "fig07/allreduce": ([100e-6], {"wire": 60e-6, "wait:credit_stall": 10e-6}),
    "fig07/bcast": ([50e-6], {"wire": 50e-6}),
})


class TestNormalize:
    def test_ledger_doc_normalizes_to_per_op_means(self):
        run = normalize_run(_ledger_doc({
            "a/bcast": ([10e-6, 30e-6], {"wire": 40e-6}),
        }))
        assert run["kind"] == "ledger"
        ent = run["entries"]["a/bcast"]
        assert ent["wall_us"] == pytest.approx(20.0)  # mean of 10 and 30
        assert ent["crit_us"]["wire"] == pytest.approx(20.0)  # 40/2 ops

    def test_trace_doc_keys_by_name_occurrence(self):
        run = normalize_run({
            "artifact": "fig08",
            "ops": [
                {"name": "collective:nop", "wall_s": 1e-6,
                 "phases": {"uc": 1e-6}},
                {"name": "collective:nop", "wall_s": 2e-6,
                 "totals": {"uc": 2e-6}},
            ],
        })
        assert run["kind"] == "trace"
        assert set(run["entries"]) == \
            {"fig08/collective:nop#0", "fig08/collective:nop#1"}
        # totals preferred over phases when both exist
        assert run["entries"]["fig08/collective:nop#1"]["crit_us"]["uc"] == \
            pytest.approx(2.0)

    def test_unrecognized_doc_rejected(self):
        with pytest.raises(ValueError):
            normalize_run({"rows": []}, label="x.json")


class TestDiffRuns:
    def test_identical_runs_have_zero_deltas(self):
        rows = diff_runs(normalize_run(BASE), normalize_run(BASE))
        assert rows == []

    def test_perturbed_entry_ranks_first_with_correct_cause(self):
        cur = _ledger_doc({
            # +40us, +38 of it credit_stall: the regression
            "fig07/allreduce": ([140e-6],
                                {"wire": 62e-6, "wait:credit_stall": 48e-6}),
            # small improvement elsewhere
            "fig07/bcast": ([48e-6], {"wire": 48e-6}),
        })
        rows = diff_runs(normalize_run(BASE), normalize_run(cur))
        assert [r["key"] for r in rows] == \
            ["fig07/allreduce", "fig07/bcast"]
        top = rows[0]
        assert top["delta_us"] == pytest.approx(40.0)
        assert top["rel"] == pytest.approx(0.40)
        # the majority of the delta is attributed to the perturbed cause
        assert top["causes"][0]["bucket"] == "wait:credit_stall"
        assert top["causes"][0]["delta_us"] > abs(
            sum(c["delta_us"] for c in top["causes"][1:]))
        assert rows[1]["delta_us"] == pytest.approx(-2.0)

    def test_regressions_rank_before_equal_improvements(self):
        cur = _ledger_doc({
            "fig07/allreduce": ([110e-6], {"wire": 70e-6}),
            "fig07/bcast": ([40e-6], {"wire": 40e-6}),
        })
        rows = diff_runs(normalize_run(BASE), normalize_run(cur))
        assert rows[0]["key"] == "fig07/allreduce"  # +10 beats -10

    def test_added_and_removed_entries_are_noted(self):
        cur = _ledger_doc({
            "fig07/allreduce": ([100e-6],
                                {"wire": 60e-6, "wait:credit_stall": 10e-6}),
            "fig07/reduce": ([70e-6], {"wire": 70e-6}),
        })
        rows = diff_runs(normalize_run(BASE), normalize_run(cur))
        notes = {r["key"]: r["note"] for r in rows}
        assert notes["fig07/reduce"] == "only in b"
        assert notes["fig07/bcast"] == "only in a"


class TestDiffFilesAndRendering:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_diff_files_and_render(self, tmp_path):
        a = self._write(tmp_path, "a.json", BASE)
        b = self._write(tmp_path, "b.json", _ledger_doc({
            "fig07/allreduce": ([130e-6],
                                {"wire": 60e-6, "wait:credit_stall": 40e-6}),
            "fig07/bcast": ([50e-6], {"wire": 50e-6}),
        }))
        doc = diff_files(a, b)
        assert doc["kind"] == "ledger"
        assert not doc["identical"]
        text = render_diff(doc)
        assert "ranked by regression magnitude" in text
        assert "wait:credit_stall" in text
        html = render_diff_html(doc, standalone=True)
        assert html.startswith("<!DOCTYPE html>")
        assert "wait:credit_stall" in html

    def test_identical_files_render_as_identical(self, tmp_path):
        a = self._write(tmp_path, "a.json", BASE)
        doc = diff_files(a, a)
        assert doc["identical"]
        assert "identical: no deltas" in render_diff(doc)
        assert "identical" in render_diff_html(doc)

    def test_load_run_accepts_trace_docs(self, tmp_path):
        path = self._write(tmp_path, "t.json", {
            "artifact": "fig08",
            "ops": [{"name": "collective:nop", "wall_s": 1e-6,
                     "phases": {"uc": 1e-6}}],
        })
        assert load_run(path)["kind"] == "trace"


class TestEndToEndSlowLink:
    """Acceptance: a perturbed figX_scale run diffs against baseline with
    the perturbed op first and the delta blamed on the wire/link path."""

    def test_slow_link_is_ranked_and_attributed(self):
        kwargs = dict(n_nodes=8, size=256 * 1024)
        base = capture.trace_artifact("figX_scale", **kwargs).ledger()
        slow = capture.trace_artifact(
            "figX_scale", slow_link="fpga3.down", slow_factor=8.0,
            **kwargs).ledger()
        rows = diff_runs(normalize_run(base.snapshot()),
                         normalize_run(slow.snapshot()))
        assert rows, "slow link must produce deltas"
        top = rows[0]
        assert top["delta_us"] > 0
        # majority of the regression lands on the serialization path
        majority = sum(c["delta_us"] for c in top["causes"]
                       if c["bucket"] in ("wire", "wait:link_busy"))
        regress = sum(c["delta_us"] for c in top["causes"]
                      if c["delta_us"] > 0)
        assert majority > 0.5 * regress
        # identical reruns stay silent
        again = capture.trace_artifact("figX_scale", **kwargs).ledger()
        assert diff_runs(normalize_run(base.snapshot()),
                         normalize_run(again.snapshot())) == []


class TestCheckAttribution:
    def test_metric_delta_attribution_sorts_by_magnitude(self):
        base = {"wall_us": 100.0, "wait_us.credit_stall": 10.0,
                "phase_us.wire": 60.0, "spans": 4.0}
        cur = {"wall_us": 130.0, "wait_us.credit_stall": 38.0,
               "phase_us.wire": 62.0, "spans": 4.0}
        causes = metric_delta_attribution(base, cur)
        assert causes[0]["metric"] == "wait_us.credit_stall"
        assert causes[0]["share"] == pytest.approx(0.28)
        assert {c["metric"] for c in causes} == \
            {"wait_us.credit_stall", "phase_us.wire"}

    def test_render_names_scenario_and_top_cause(self):
        line = render_check_attribution(
            "fig07", {"wall_us": 100.0, "wait_us.rx_match": 5.0},
            {"wall_us": 112.0, "wait_us.rx_match": 16.0})
        assert "fig07" in line
        assert "+12.0%" in line
        assert "wait_us.rx_match" in line

    def test_no_moved_metric_is_called_out(self):
        line = render_check_attribution(
            "fig08", {"wall_us": 100.0}, {"wall_us": 100.0})
        assert "no wait/phase metric moved" in line


class TestCheckJsonReport:
    def test_report_doc_shape(self):
        rows = [
            {"scenario": "fig08", "metric": "wall_us", "base": 5.8,
             "cur": 5.8, "rel": 0.0, "tol": 0.02, "ok": True, "note": ""},
            {"scenario": "fig08", "metric": "spans", "base": 6.0,
             "cur": 9.0, "rel": 0.5, "tol": 0.02, "ok": False, "note": ""},
        ]
        doc = check_mod.report_doc(rows, "packet", "benchmarks/x.json")
        assert doc["ok"] is False
        assert doc["violations"] == 1
        verdicts = {m["metric"]: m["verdict"] for m in doc["metrics"]}
        assert verdicts == {"wall_us": "ok", "spans": "fail"}
        assert doc["metrics"][0]["observed"] == 5.8
        assert doc["metrics"][0]["tolerance"] == 0.02

    def test_check_cli_writes_json_report(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = str(tmp_path / "report.json")
        rc = main(["check", "fig08", "--json", out])
        assert rc == 0
        capsys.readouterr()
        doc = json.load(open(out))
        assert doc["schema"] == 1
        assert doc["ok"] is True
        assert all(m["verdict"] == "ok" for m in doc["metrics"])
