"""Cross-module integration tests: sequences, concurrency, mixed setups."""

import numpy as np
import pytest

from repro import units
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import build_fpga_cluster
from repro.driver import attach_drivers
from repro.errors import ConfigurationError
from repro.platform.base import BufferLocation
from repro.sim import all_of
from tests.helpers import dev_buffer, empty_dev_buffer, make_cluster

N = 128


def data(seed, n=N):
    return np.random.default_rng(seed).standard_normal(n).astype(np.float32)


class TestCollectiveSequences:
    def test_back_to_back_collectives_share_engines(self):
        """A bcast, an allreduce and a barrier in sequence on one cluster."""
        size = 4
        cluster = make_cluster(size, platform="coyote")
        drivers = attach_drivers(cluster)
        env = cluster.env

        payload = data(1)
        bufs = [d.wrap(payload.copy() if d.rank == 0
                       else np.zeros(N, np.float32)) for d in drivers]
        reqs = [d.bcast(bufs[i], payload.nbytes, root=0)
                for i, d in enumerate(drivers)]
        env.run(until=all_of(env, [r.event for r in reqs]))

        outs = [d.wrap(np.zeros(N, np.float32)) for d in drivers]
        reqs = [d.allreduce(bufs[i], outs[i], payload.nbytes)
                for i, d in enumerate(drivers)]
        env.run(until=all_of(env, [r.event for r in reqs]))

        reqs = [d.barrier(sync=False) for d in drivers]
        env.run(until=all_of(env, [r.event for r in reqs]))

        for i in range(size):
            np.testing.assert_allclose(outs[i].array, payload * size,
                                       rtol=1e-4)

    def test_pipelined_collectives_overlap(self):
        """Two independent reduces issued together overlap in time."""
        size = 4
        nbytes = 256 * units.KIB

        def run(n_collectives):
            cluster = make_cluster(size, platform="sim")
            views = []
            for k in range(n_collectives):
                svs = [
                    cluster.nodes[r].platform.allocate(
                        nbytes, BufferLocation.DEVICE).view()
                    for r in range(size)
                ]
                rv = cluster.nodes[0].platform.allocate(
                    nbytes, BufferLocation.DEVICE).view()
                views.append((svs, rv))
            events = []
            for k, (svs, rv) in enumerate(views):
                for r in range(size):
                    events.append(cluster.engine(r).call(CollectiveArgs(
                        opcode="reduce", nbytes=nbytes, root=0,
                        tag=(1 << 20) + k * 2048, sbuf=svs[r],
                        rbuf=rv if r == 0 else None,
                    )))
            start = cluster.env.now
            cluster.env.run(until=all_of(cluster.env, events))
            return cluster.env.now - start

        one = run(1)
        two = run(2)
        assert two < 2 * one  # overlapped, not serialized

    def test_interleaved_p2p_with_tags(self):
        """Out-of-order tag matching: late-tag recv gets the right payload."""
        cluster = make_cluster(2)
        a, b = data(10), data(11)
        sa = dev_buffer(cluster, 0, a)
        sb = dev_buffer(cluster, 0, b)
        ra = empty_dev_buffer(cluster, 1, N)
        rb = empty_dev_buffer(cluster, 1, N)
        env = cluster.env
        events = [
            cluster.engine(0).call(CollectiveArgs(
                opcode="send", peer=1, nbytes=a.nbytes, tag=7, sbuf=sa)),
            cluster.engine(0).call(CollectiveArgs(
                opcode="send", peer=1, nbytes=b.nbytes, tag=9, sbuf=sb)),
            # Receives posted in the opposite order of the sends.
            cluster.engine(1).call(CollectiveArgs(
                opcode="recv", peer=0, nbytes=b.nbytes, tag=9, rbuf=rb)),
            cluster.engine(1).call(CollectiveArgs(
                opcode="recv", peer=0, nbytes=a.nbytes, tag=7, rbuf=ra)),
        ]
        env.run(until=all_of(env, events))
        np.testing.assert_allclose(ra.array, a)
        np.testing.assert_allclose(rb.array, b)


class TestSubcommunicators:
    def test_collective_on_subgroup_leaves_others_idle(self):
        cluster = make_cluster(6)
        cluster.add_subcommunicator(1, [1, 3, 5])
        payload = data(3)
        views = {}
        for sub_rank, r in enumerate([1, 3, 5]):
            views[r] = (dev_buffer(cluster, r, payload.copy())
                        if sub_rank == 0 else empty_dev_buffer(cluster, r, N))
        events = []
        for sub_rank, r in enumerate([1, 3, 5]):
            events.append(cluster.engine(r).call(CollectiveArgs(
                opcode="bcast", comm_id=1, nbytes=payload.nbytes, root=0,
                tag=1 << 20, rbuf=views[r])))
        cluster.env.run(until=all_of(cluster.env, events))
        for r in (1, 3, 5):
            np.testing.assert_allclose(views[r].array, payload)
        # Non-members saw no traffic at all.
        for r in (0, 2, 4):
            assert cluster.nodes[r].endpoint.segments_received == 0

    def test_sub_and_global_communicators_coexist(self):
        cluster = make_cluster(4)
        cluster.add_subcommunicator(1, [0, 1])
        payload = data(5)
        g_views = [empty_dev_buffer(cluster, r, N) for r in range(4)]
        g_views[0] = dev_buffer(cluster, 0, payload.copy())
        s_view = empty_dev_buffer(cluster, 1, N)
        events = [
            cluster.engine(r).call(CollectiveArgs(
                opcode="bcast", comm_id=0, nbytes=payload.nbytes, root=0,
                tag=1 << 20, rbuf=g_views[r]))
            for r in range(4)
        ]
        events.append(cluster.engine(0).call(CollectiveArgs(
            opcode="send", comm_id=1, peer=1, nbytes=payload.nbytes,
            tag=3, sbuf=g_views[0])))
        events.append(cluster.engine(1).call(CollectiveArgs(
            opcode="recv", comm_id=1, peer=0, nbytes=payload.nbytes,
            tag=3, rbuf=s_view)))
        cluster.env.run(until=all_of(cluster.env, events))
        np.testing.assert_allclose(s_view.array, payload)
        np.testing.assert_allclose(g_views[3].array, payload)


class TestMixedProtocolClusters:
    @pytest.mark.parametrize("protocol", ["tcp", "udp"])
    def test_collectives_over_non_rdma(self, protocol):
        """Table 1's eager-only column: all collectives work over TCP/UDP."""
        size = 4
        cluster = make_cluster(size, protocol=protocol)
        contribs = [data(20 + r) for r in range(size)]
        svs = [dev_buffer(cluster, r, contribs[r]) for r in range(size)]
        rvs = [empty_dev_buffer(cluster, r, N) for r in range(size)]
        cluster.run_collective(lambda r: CollectiveArgs(
            opcode="allreduce", nbytes=contribs[0].nbytes, sbuf=svs[r],
            rbuf=rvs[r]))
        expected = np.sum(contribs, axis=0)
        for r in range(size):
            np.testing.assert_allclose(rvs[r].array, expected,
                                       rtol=1e-3, atol=1e-5)

    def test_rendezvous_forced_on_tcp_fails(self):
        """TCP has no WRITE verb: forcing rndz must raise, not hang."""
        cluster = make_cluster(2, protocol="tcp")
        payload = data(2)
        sview = dev_buffer(cluster, 0, payload)
        rview = empty_dev_buffer(cluster, 1, N)
        events = [
            cluster.engine(1).call(CollectiveArgs(
                opcode="recv", peer=0, nbytes=payload.nbytes, tag=0,
                rbuf=rview, protocol="rndz")),
            cluster.engine(0).call(CollectiveArgs(
                opcode="send", peer=1, nbytes=payload.nbytes, tag=0,
                sbuf=sview, protocol="rndz")),
        ]
        from repro.errors import CcloError
        with pytest.raises(CcloError, match="RDMA"):
            cluster.env.run(until=all_of(cluster.env, events))


class TestClusterBuilder:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            build_fpga_cluster(0)
        with pytest.raises(ConfigurationError):
            build_fpga_cluster(2, protocol="quic")
        with pytest.raises(ConfigurationError):
            build_fpga_cluster(2, platform="de10")

    def test_tcp_cluster_sessions_pre_established(self):
        cluster = build_fpga_cluster(4, protocol="tcp", platform="sim")
        for node in cluster.nodes:
            assert node.poe.session_count == 3

    def test_rdma_cluster_qps_pre_established(self):
        cluster = build_fpga_cluster(4, protocol="rdma", platform="sim")
        for node in cluster.nodes:
            assert node.poe.qp_count == 3

    def test_custom_link_rate(self):
        cluster = build_fpga_cluster(2, link_rate=units.gbps(10),
                                     platform="sim")
        assert cluster.topology.link_rate == units.gbps(10)


class TestFirmwareHotSwap:
    def test_updated_firmware_takes_effect(self):
        """uC firmware can be replaced at runtime (no 're-synthesis')."""
        cluster = make_cluster(2)
        calls = []

        def traced_send(ctx, args):
            calls.append(ctx.rank)
            yield ctx.cost()
            yield ctx.send(args.peer, args.sbuf, args.nbytes, ctx.tag(0))

        cluster.engine(0).uc.registry.update("send", "direct", traced_send)
        payload = data(30)
        sview = dev_buffer(cluster, 0, payload)
        rview = empty_dev_buffer(cluster, 1, N)
        events = [
            cluster.engine(1).call(CollectiveArgs(
                opcode="recv", peer=0, nbytes=payload.nbytes, rbuf=rview)),
            cluster.engine(0).call(CollectiveArgs(
                opcode="send", peer=1, nbytes=payload.nbytes, sbuf=sview)),
        ]
        cluster.env.run(until=all_of(cluster.env, events))
        assert calls == [0]
        np.testing.assert_allclose(rview.array, payload)

    def test_duplicate_registration_rejected(self):
        cluster = make_cluster(2)
        from repro.errors import CcloError
        with pytest.raises(CcloError, match="already loaded"):
            cluster.engine(0).uc.registry.register(
                "send", "direct", lambda ctx, args: iter(()))
