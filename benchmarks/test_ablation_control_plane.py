"""Ablation: decoupled control/data plane (the ACCL -> ACCL+ redesign).

The paper attributes Figure 13's ACCL+ > ACCL gap to "offloading more tasks
to the hardware data plane, such as utilizing the Rx Buffer Manager for
packet assembling".  This ablation sweeps the amount of per-payload work
left on the micro-controller (``uc_rx_instr_per_kib``): 0 is the ACCL+
design, higher values re-centralize receive processing on the uC.
"""

from repro import units
from repro.bench.harness import accl_collective_time
from repro.bench.formats import format_rows
from repro.cclo.config_mem import CcloConfig
from repro.platform.base import BufferLocation
from conftest import emit

SIZE = 512 * units.KIB


def sweep():
    rows = []
    for instr_per_kib in (0, 1, 2, 4):
        config = CcloConfig(uc_rx_instr_per_kib=instr_per_kib)
        elapsed = accl_collective_time(
            "reduce", SIZE, n_nodes=4, protocol="tcp", platform="vitis",
            location=BufferLocation.DEVICE, cclo_config=config,
        )
        rows.append({
            "uc_instr_per_kib": instr_per_kib,
            "reduce_512k_us": units.to_us(elapsed),
        })
    return rows


def test_ablation_control_plane(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_rows(
        rows, ["uc_instr_per_kib", "reduce_512k_us"],
        title="Ablation — uC-centric receive processing "
              "(0 = ACCL+ RBM offload)",
    ))
    times = [r["reduce_512k_us"] for r in rows]
    # Latency grows monotonically as work returns to the sequential uC.
    assert times == sorted(times)
    # Full offload is substantially faster than even light uC involvement.
    assert times[-1] > 2 * times[0]
    benchmark.extra_info["offload_speedup"] = times[-1] / times[0]
