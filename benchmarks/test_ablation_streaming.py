"""Ablation: streaming collectives vs MPI-like (buffered) collectives.

The streaming API exists because FPGA kernels *produce data over time*:
pushing each burst into the CCLO as it is computed overlaps production with
transmission, while the MPI-like path must materialize the whole result in
memory before the collective can start ("determining whether data needs to
be buffered in memory before communication", §1).  This ablation models a
kernel producing at the CCLO datapath rate and compares both paths.
"""

from repro import units
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import build_fpga_cluster
from repro.platform.base import BufferLocation
from repro.sim import all_of
from repro.bench.formats import format_rows
from conftest import emit

SIZES = [256 * units.KIB, units.MIB, 4 * units.MIB]
PRODUCTION_RATE = 16e9  # bytes/s the kernel generates (64 B/cy @ 250 MHz)
CHUNK = 32 * units.KIB


def _streamed_send(size):
    """Kernel pushes bursts into the CCLO as it produces them."""
    cluster = build_fpga_cluster(2, protocol="rdma", platform="coyote")
    env = cluster.env
    engine = cluster.engine(0)
    rview = cluster.nodes[1].platform.allocate(
        size, BufferLocation.DEVICE).view()
    recv_ev = cluster.engine(1).call(CollectiveArgs(
        opcode="recv", nbytes=size, peer=0, tag=0, rbuf=rview))

    def kernel():
        engine.call(CollectiveArgs(
            opcode="send", nbytes=size, peer=1, tag=0, from_stream=True))
        remaining = size
        while remaining > 0:
            nbytes = min(CHUNK, remaining)
            yield env.timeout(nbytes / PRODUCTION_RATE)  # compute the burst
            yield engine.kernel_data_in.put((nbytes, None))
            remaining -= nbytes

    env.process(kernel())
    env.run(until=all_of(env, [recv_ev]))
    return env.now


def _staged_send(size):
    """Kernel materializes its whole result in memory, then sends."""
    cluster = build_fpga_cluster(2, protocol="rdma", platform="coyote")
    env = cluster.env
    engine = cluster.engine(0)
    sview = cluster.nodes[0].platform.allocate(
        size, BufferLocation.DEVICE).view()
    rview = cluster.nodes[1].platform.allocate(
        size, BufferLocation.DEVICE).view()
    recv_ev = cluster.engine(1).call(CollectiveArgs(
        opcode="recv", nbytes=size, peer=0, tag=0, rbuf=rview))

    def kernel():
        yield env.timeout(size / PRODUCTION_RATE)  # compute the whole result
        yield sview.device_write(size)             # buffer it in memory
        yield engine.call(CollectiveArgs(
            opcode="send", nbytes=size, peer=1, tag=0, sbuf=sview))

    env.process(kernel())
    env.run(until=all_of(env, [recv_ev]))
    return env.now


def sweep():
    rows = []
    for size in SIZES:
        rows.append({
            "size": units.pretty_size(size),
            "streamed_us": units.to_us(_streamed_send(size)),
            "staged_us": units.to_us(_staged_send(size)),
        })
    return rows


def test_ablation_streaming(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_rows(
        rows, ["size", "streamed_us", "staged_us"],
        title="Ablation — streaming vs buffered kernel send "
              "(kernel producing at 16 GB/s)",
    ))
    for row in rows:
        assert row["streamed_us"] < row["staged_us"], row
    # At large sizes the buffered path approaches produce-then-send (~2x).
    big = rows[-1]
    assert big["staged_us"] / big["streamed_us"] > 1.4
    benchmark.extra_info["overlap_speedup_4m"] = (
        big["staged_us"] / big["streamed_us"])
