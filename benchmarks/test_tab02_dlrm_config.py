"""Table 2: parameters of the target recommendation model.

| Tables | Concat Vec Len | FC Layers        | Embed Size |
|--------|----------------|------------------|------------|
| 100    | 3200           | (2048, 512, 256) | 50GB       |
"""

from repro.apps.dlrm import DlrmConfig, DlrmModel
from repro.bench.formats import format_rows
from conftest import emit


def build_and_describe():
    config = DlrmConfig()
    model = DlrmModel(config)
    return config, model


def test_tab02_dlrm_config(benchmark):
    config, model = benchmark.pedantic(build_and_describe,
                                       rounds=1, iterations=1)
    emit(format_rows(
        [{
            "Tables": config.num_tables,
            "Concat Vec Len": config.concat_len,
            "FC Layers": str(config.fc_dims),
            "Embed Size": f"{config.embed_bytes / 1e9:.0f}GB",
        }],
        ["Tables", "Concat Vec Len", "FC Layers", "Embed Size"],
        title="Table 2 — target recommendation model",
    ))
    assert config.num_tables == 100
    assert config.concat_len == 3200
    assert config.fc_dims == (2048, 512, 256)
    assert 50e9 <= config.embed_bytes < 60e9
    # The model's weight stack matches the FC dims.
    assert [w.shape for w in model.weights] == [
        (2048, 3200), (512, 2048), (256, 512)]
