"""Figure 12: reduce latency vs rank count, 8 KB and 128 KB messages.

Paper shape:

- ACCL+ 8 KB uses all-to-one: minimal latency increase across nodes.
- ACCL+ 128 KB uses a binary tree: latency steps up after four nodes, then
  stabilizes until eight (constant tree depth).
- Software MPI selects finer-grained: for 8 KB, all-to-one (<4 nodes), a
  chain (4-8) and an optimized binomial at 8 nodes.
"""

from repro.bench import format_series, run_fig12_reduce_scalability
from conftest import attach_point_metrics, emit


def test_fig12_reduce_scalability(benchmark, sweep_runner):
    series = benchmark.pedantic(run_fig12_reduce_scalability,
                                kwargs={"runner": sweep_runner},
                                rounds=1, iterations=1)
    emit(format_series(series, "ranks",
                       title="Figure 12 — reduce latency vs ranks (us)"))
    attach_point_metrics(benchmark, sweep_runner, n_latest=28)

    accl_small = series["accl_8KiB"]
    accl_large = series["accl_128KiB"]
    mpi_small = series["mpi_8KiB"]

    # 8 KB all-to-one: minimal increase from 2 to 8 ranks.
    growth = accl_small[8] / accl_small[2]
    benchmark.extra_info["accl_8k_growth"] = growth
    assert growth < 2.0

    # 128 KB binary tree: a step when depth grows, then a plateau —
    # 5..8 ranks share depth 3, so latency is flat there.
    assert accl_large[5] > accl_large[4]
    assert abs(accl_large[8] - accl_large[5]) / accl_large[5] < 0.1

    # MPI's 8-rank binomial beats its own 7-rank chain (the paper's
    # "optimized binomial algorithm for 8 nodes").
    assert mpi_small[8] < mpi_small[7]
    # ...and the chain grows linearly in between.
    assert mpi_small[7] > mpi_small[5] > mpi_small[4]
