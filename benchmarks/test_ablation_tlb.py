"""Ablation: eager TLB mapping (§4.2 "Integration with Coyote").

"If a memory page is not registered during TLB lookup, it triggers an
interruption to the CPU, resulting in a page fault and introducing a
performance penalty.  Therefore, the CCL driver, specifically the
CoyoteBuffer class, eagerly maps pages to the Coyote TLBs when
instantiating buffers."

This ablation measures a cold first-touch transfer into lazily- vs
eagerly-mapped host buffers.
"""

from repro import units
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import build_fpga_cluster
from repro.platform.base import BufferLocation
from repro.sim import all_of
from repro.bench.formats import format_rows
from conftest import emit

SIZES = [2 * units.MIB, 8 * units.MIB, 32 * units.MIB]


def _first_touch_transfer(size, eager_map):
    cluster = build_fpga_cluster(2, protocol="rdma", platform="coyote")
    sview = cluster.nodes[0].platform.allocate(
        size, BufferLocation.HOST, eager_map=eager_map).view()
    rview = cluster.nodes[1].platform.allocate(
        size, BufferLocation.HOST, eager_map=eager_map).view()
    events = [
        cluster.engine(1).call(CollectiveArgs(
            opcode="recv", peer=0, nbytes=size, tag=0, rbuf=rview)),
        cluster.engine(0).call(CollectiveArgs(
            opcode="send", peer=1, nbytes=size, tag=0, sbuf=sview)),
    ]
    cluster.env.run(until=all_of(cluster.env, events))
    faults = (cluster.nodes[0].platform.tlb.faults
              + cluster.nodes[1].platform.tlb.faults)
    return cluster.env.now, faults


def sweep():
    rows = []
    for size in SIZES:
        eager_t, eager_faults = _first_touch_transfer(size, eager_map=True)
        lazy_t, lazy_faults = _first_touch_transfer(size, eager_map=False)
        rows.append({
            "size": units.pretty_size(size),
            "eager_us": units.to_us(eager_t),
            "lazy_us": units.to_us(lazy_t),
            "eager_faults": eager_faults,
            "lazy_faults": lazy_faults,
        })
    return rows


def test_ablation_tlb(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_rows(
        rows, ["size", "eager_us", "lazy_us", "eager_faults", "lazy_faults"],
        title="Ablation — eager vs lazy TLB mapping "
              "(cold H2H transfer, Coyote)",
    ))
    for row in rows:
        assert row["eager_faults"] == 0
        assert row["lazy_faults"] > 0
        assert row["lazy_us"] > row["eager_us"], row
    benchmark.extra_info["penalty_32m_pct"] = 100 * (
        rows[-1]["lazy_us"] / rows[-1]["eager_us"] - 1)
