"""Figure 17: distributed DLRM inference, ACCL+ on 10 FPGAs vs CPU serving.

Paper shape: "The hardware implementation demonstrates two orders of
magnitude lower latency compared to the CPU...  ACCL+ shows more than an
order of magnitude higher throughput compared to the CPU baseline."
ACCL+ works on streaming data without batching; the CPU needs large batches
for throughput, which inflates its latency.
"""

from repro.bench import run_fig17_dlrm
from repro.bench.formats import format_rows
from conftest import emit


def test_fig17_dlrm(benchmark):
    result = benchmark.pedantic(lambda: run_fig17_dlrm(n_inferences=48),
                                rounds=1, iterations=1)
    accl = result["accl"]
    cpu_rows = result["cpu"]
    emit(format_rows(
        cpu_rows, ["batch", "latency_ms", "throughput"],
        title="Figure 17 — CPU baseline (TF-Serving model)",
    ))
    emit(format_rows(
        [{"latency_us": accl["latency_us"], "p99_us": accl["p99_us"],
          "throughput": accl["throughput"], "correct": accl["correct"]}],
        ["latency_us", "p99_us", "throughput", "correct"],
        title="Figure 17 — ACCL+ DLRM on 10 FPGAs (streaming, no batching)",
    ))
    assert accl["correct"], "pipeline output diverged from the reference"

    cpu_best_thr = result["cpu_best_throughput"]
    cpu_serving_latency_ms = max(r["latency_ms"] for r in cpu_rows
                                 if r["throughput"] > 0.8 * cpu_best_thr)
    latency_gap = cpu_serving_latency_ms * 1000 / accl["latency_us"]
    throughput_gap = accl["throughput"] / cpu_best_thr
    benchmark.extra_info["latency_gap"] = latency_gap
    benchmark.extra_info["throughput_gap"] = throughput_gap

    # Two orders of magnitude lower latency than CPU serving...
    assert latency_gap > 100
    # ...and more than an order of magnitude higher throughput.
    assert throughput_gap > 10
