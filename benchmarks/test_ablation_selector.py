"""Ablation: algorithm-selection granularity (the Figure 12 discussion).

"Software MPI's approach involves detailed algorithmic tuning...  ACCL+'s
flexible design allows for potential future enhancements through additional
fine-grained tuning."  This ablation measures what ACCL+'s coarse two-
threshold table leaves on the table: every (size, ranks) point is run with
each available reduce algorithm, and the selector's pick is compared with
the oracle-best.
"""

from repro import units
from repro.bench.harness import accl_collective_time
from repro.bench.formats import format_rows
from repro.cclo.config_mem import AlgorithmParams, CommunicatorConfig
from repro.cclo.microcontroller import CollectiveArgs
from repro.collectives import AlgorithmSelector
from repro.platform.base import BufferLocation
from conftest import emit

ALGORITHMS = ("ring", "all_to_one", "binary_tree")
POINTS = [(8 * units.KIB, 4), (8 * units.KIB, 8),
          (128 * units.KIB, 4), (128 * units.KIB, 8)]


def sweep():
    selector = AlgorithmSelector()
    params = AlgorithmParams()
    rows = []
    for size, ranks in POINTS:
        times = {
            alg: units.to_us(accl_collective_time(
                "reduce", size, n_nodes=ranks, algorithm=alg,
                location=BufferLocation.DEVICE,
            ))
            for alg in ALGORITHMS
        }
        comm = CommunicatorConfig(0, 0, list(range(ranks)), protocol="rdma")
        picked = selector.choose(
            CollectiveArgs(opcode="reduce", nbytes=size), comm, params)
        best = min(times, key=times.get)
        rows.append({
            "size": units.pretty_size(size),
            "ranks": ranks,
            **{f"{alg}_us": times[alg] for alg in ALGORITHMS},
            "selector": picked,
            "oracle": best,
            "regret_pct": 100 * (times[picked] / times[best] - 1),
        })
    return rows


def test_ablation_selector(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_rows(
        rows,
        ["size", "ranks", "ring_us", "all_to_one_us", "binary_tree_us",
         "selector", "oracle", "regret_pct"],
        title="Ablation — selector pick vs oracle-best reduce algorithm",
    ))
    # The coarse table is near-optimal at the paper's headline points...
    for row in rows:
        assert row["regret_pct"] < 50, row
    # ...and picks the Table 1 algorithms at the Fig 12 operating points.
    by_point = {(r["size"], r["ranks"]): r for r in rows}
    assert by_point[("8KiB", 8)]["selector"] == "all_to_one"
    assert by_point[("128KiB", 8)]["selector"] == "binary_tree"
    benchmark.extra_info["max_regret_pct"] = max(
        r["regret_pct"] for r in rows)
