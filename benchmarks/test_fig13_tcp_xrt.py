"""Figure 13: ACCL+ TCP on the XRT platform vs software MPI TCP vs ACCL v1.

Paper shape: ACCL+ TCP consistently outperforms software MPI TCP (line-rate
hardware POE) and outperforms ACCL v1 (whose uC does per-packet work the
ACCL+ RBM offloads); serving *host* applications on XRT carries a large
staging + invocation overhead compared to device applications.
"""

from repro.bench import run_fig13_tcp_xrt
from repro.bench.formats import format_rows
from conftest import emit


def test_fig13_tcp_xrt(benchmark):
    result = benchmark.pedantic(run_fig13_tcp_xrt, rounds=1, iterations=1)
    rows = []
    for opcode, by_size in result.items():
        for size_label, vals in by_size.items():
            rows.append({"collective": opcode, "size": size_label, **vals})
    emit(format_rows(
        rows,
        ["collective", "size", "accl+_f2f_us", "accl_v1_us", "mpi_tcp_us",
         "accl+_h2h_us"],
        title="Figure 13 — TCP collectives on XRT, 4 ranks (us)",
    ))

    for opcode, by_size in result.items():
        for size_label, vals in by_size.items():
            point = (opcode, size_label)
            # ACCL+ F2F beats software MPI TCP everywhere.
            assert vals["accl+_f2f_us"] < vals["mpi_tcp_us"], point
            # ACCL+ beats its predecessor, with the gap widening with size
            # (uC-side packet handling saturates the v1 engine).
            assert vals["accl+_f2f_us"] < vals["accl_v1_us"], point
            # XRT host applications pay staging + invocation overheads.
            assert vals["accl+_h2h_us"] > vals["accl+_f2f_us"], point

    large = result["bcast"]["512KiB"]
    benchmark.extra_info["v1_gap_512k"] = (
        large["accl_v1_us"] / large["accl+_f2f_us"])
    assert large["accl_v1_us"] / large["accl+_f2f_us"] > 1.5
