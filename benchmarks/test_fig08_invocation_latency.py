"""Figure 8: CCLO invocation latency from different callers.

Paper shape: FPGA-kernel invocation is minimal; Coyote host invocation is a
PCIe write + read (~2-3 us); XRT host invocation is significantly higher.
"""

from repro.bench import format_rows, run_fig08_invocation_latency
from conftest import attach_point_metrics, emit


def test_fig08_invocation_latency(benchmark, sweep_runner):
    rows = benchmark.pedantic(run_fig08_invocation_latency,
                              kwargs={"runner": sweep_runner},
                              rounds=1, iterations=1)
    emit(format_rows(rows, ["caller", "latency_us"],
                     title="Figure 8 — CCLO NOP invocation latency (us)"))
    attach_point_metrics(benchmark, sweep_runner, n_latest=3)
    by_caller = {r["caller"]: r["latency_us"] for r in rows}
    for caller, value in by_caller.items():
        benchmark.extra_info[caller] = value

    assert by_caller["FPGA kernel"] < by_caller["Coyote host"]
    assert by_caller["Coyote host"] < by_caller["XRT host"]
    # "the XRT invocation latency is significantly higher"
    assert by_caller["XRT host"] > 10 * by_caller["Coyote host"]
    # Coyote: one PCIe write + one PCIe read, low single-digit us.
    assert 1 < by_caller["Coyote host"] < 10
