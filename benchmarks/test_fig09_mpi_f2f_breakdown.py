"""Figure 9: latency breakdown of broadcasting FPGA-produced data with
software MPI (8 ranks).

Paper shape: the PCIe transfer time dominates for small messages while the
collective time dominates for large messages.
"""

from repro.bench import format_rows, run_fig09_f2f_breakdown
from conftest import emit


def test_fig09_mpi_f2f_breakdown(benchmark):
    rows = benchmark.pedantic(run_fig09_f2f_breakdown, rounds=1, iterations=1)
    emit(format_rows(
        rows,
        ["size", "pcie_in", "collective", "pcie_out", "invocation", "total"],
        title="Figure 9 — MPI F2F broadcast breakdown (us)",
    ))
    smallest, largest = rows[0], rows[-1]
    benchmark.extra_info["small_pcie_share"] = (
        (smallest["pcie_in"] + smallest["pcie_out"]) / smallest["total"])
    benchmark.extra_info["large_collective_share"] = (
        largest["collective"] / largest["total"])

    # PCIe (plus invocation overhead) dominates small messages...
    small_pcie = smallest["pcie_in"] + smallest["pcie_out"]
    assert small_pcie + smallest["invocation"] > smallest["collective"]
    # ...and the collective dominates large messages.
    assert largest["collective"] > largest["pcie_in"] + largest["pcie_out"]
