"""Ablation: fine-grained empirical tuning vs the stock Table 1 policy.

The paper's stated future work ("additional fine-grained tuning to further
optimize performance"), implemented in :mod:`repro.collectives.autotune`:
measure every algorithm over a (size, ranks) grid, deploy the per-point
winner at runtime.  The benchmark reports the stock policy's worst-case
regret on the grid and verifies the tuned selector eliminates it.
"""

from repro import units
from repro.bench.harness import accl_collective_time
from repro.bench.formats import format_rows
from repro.cclo.config_mem import AlgorithmParams, CommunicatorConfig
from repro.cclo.microcontroller import CollectiveArgs
from repro.collectives.autotune import CollectiveAutoTuner
from repro.platform.base import BufferLocation
from conftest import emit

SIZES = [8 * units.KIB, 32 * units.KIB, 128 * units.KIB]
RANKS = [4, 8]
ALGOS = {"reduce": ("ring", "all_to_one", "binary_tree")}


def run():
    def measure(opcode, algorithm, nbytes, nranks):
        return accl_collective_time(
            opcode, nbytes, n_nodes=nranks, algorithm=algorithm,
            location=BufferLocation.DEVICE)

    tuner = CollectiveAutoTuner(measure, ALGOS)
    tuner.tune("reduce", sizes=SIZES, rank_counts=RANKS)
    selector = tuner.build_selector()
    params = AlgorithmParams()

    rows = []
    tuned_regret = 0.0
    for point in tuner.tables["reduce"]:
        comm = CommunicatorConfig(0, 0, list(range(point.nranks)),
                                  protocol="rdma")
        args = CollectiveArgs(opcode="reduce", nbytes=point.nbytes)
        tuned_pick = selector.choose(args, comm, params)
        tuned_regret = max(tuned_regret, point.regret_of(tuned_pick))
        rows.append({
            "size": units.pretty_size(point.nbytes),
            "ranks": point.nranks,
            "oracle": point.best,
            "tuned": tuned_pick,
            **{a: round(t * 1e6, 1) for a, t in point.timings.items()},
        })
    return rows, tuner.max_stock_regret("reduce"), tuned_regret


def test_ablation_autotune(benchmark):
    rows, stock_regret, tuned_regret = benchmark.pedantic(
        run, rounds=1, iterations=1)
    emit(format_rows(
        rows,
        ["size", "ranks", "ring", "all_to_one", "binary_tree", "oracle",
         "tuned"],
        title="Ablation — empirically tuned selection vs stock Table 1 "
              "(reduce, us)",
    ))
    benchmark.extra_info["stock_regret"] = stock_regret
    benchmark.extra_info["tuned_regret"] = tuned_regret
    # Tuning reproduces the oracle on its grid...
    assert tuned_regret == 0.0
    # ...and the stock table's regret is bounded but non-trivial somewhere.
    assert 0.0 <= stock_regret < 1.0
    for row in rows:
        assert row["tuned"] == row["oracle"]
