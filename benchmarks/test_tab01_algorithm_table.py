"""Table 1: algorithms used for example collectives.

Regenerated from the live selector.  Expected contents:

| Collective | Eager      | Rendezvous                      |
|------------|------------|---------------------------------|
| Bcast      | One-to-all | One-to-all; Recursive doubling  |
| Reduce     | Ring       | All-to-one; Binary tree         |
| Gather     | Ring       | All-to-one; Binary tree         |
| All-to-all | Linear     | Linear                          |
"""

from repro.bench import format_rows, run_tab01_algorithm_table
from conftest import emit

EXPECTED = {
    "bcast": ("one_to_all", "one_to_all", "recursive_doubling"),
    "reduce": ("ring", "all_to_one", "binary_tree"),
    "gather": ("ring", "all_to_one", "binary_tree"),
    "alltoall": ("linear", "linear", "linear"),
}


def test_tab01_algorithm_table(benchmark):
    rows = benchmark.pedantic(run_tab01_algorithm_table,
                              rounds=1, iterations=1)
    emit(format_rows(
        rows, ["collective", "eager", "rndz_small", "rndz_large"],
        title="Table 1 — collective algorithm selection",
    ))
    for row in rows:
        expected = EXPECTED[row["collective"]]
        got = (row["eager"], row["rndz_small"], row["rndz_large"])
        assert got == expected, row["collective"]
