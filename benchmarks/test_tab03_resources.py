"""Table 3: resource utilization of ACCL+ components and DLRM layers.

Regenerates the utilization table and checks the headline numbers: the TCP
POE is the most resource-intensive ACCL+ component, the CCLO itself is
comparatively lean, and DLRM FC1 exceeds a single U55C (it spans 8 FPGAs)
with URAM and DSP as the bottleneck resources.
"""

from repro.bench import format_rows, run_tab03_resources
from conftest import emit


def test_tab03_resources(benchmark):
    rows = benchmark.pedantic(run_tab03_resources, rounds=1, iterations=1)
    emit(format_rows(
        rows, ["component", "CLB kLUT", "DSP", "BRAM", "URAM"],
        title="Table 3 — resource utilization (% of U55C)",
    ))
    by_name = {r["component"]: r for r in rows}

    assert by_name["CCLO"]["CLB kLUT"] == 12.1
    assert by_name["TCP POE"]["CLB kLUT"] == 19.8
    assert by_name["RDMA POE"]["CLB kLUT"] == 13.0
    assert by_name["TCP POE"]["CLB kLUT"] > by_name["RDMA POE"]["CLB kLUT"]

    fc1 = by_name["DLRM FC1"]
    assert fc1["DSP"] > 100 and fc1["URAM"] > 100   # spans multiple FPGAs
    assert fc1["URAM"] < 800 and fc1["DSP"] < 800   # fits the 8-FPGA budget
    assert by_name["DLRM FC3"]["DSP"] < by_name["DLRM FC2"]["DSP"]
