"""Figure 7: send/recv throughput vs message size.

Paper shape: ACCL+ RDMA peaks near 95 Gb/s, F2F and H2H are nearly
indistinguishable (Coyote unified memory), and software MPI over RDMA peaks
slightly lower.
"""

from repro.bench import format_rows, run_fig07_sendrecv_throughput
from conftest import emit

SIZES = [65536, 1048576, 16 * 1048576, 64 * 1048576]


def test_fig07_sendrecv_throughput(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig07_sendrecv_throughput(sizes=SIZES),
        rounds=1, iterations=1,
    )
    emit(format_rows(
        rows, ["size", "accl_f2f_gbps", "accl_h2h_gbps", "mpi_rdma_gbps"],
        title="Figure 7 — send/recv throughput (Gb/s)",
    ))
    peak = rows[-1]
    benchmark.extra_info["accl_f2f_peak_gbps"] = peak["accl_f2f_gbps"]
    benchmark.extra_info["mpi_peak_gbps"] = peak["mpi_rdma_gbps"]

    # ACCL+ nearly saturates the 100 Gb/s link...
    assert peak["accl_f2f_gbps"] > 90
    # ...with minimal distinction between F2F and H2H (unified memory)...
    assert abs(peak["accl_f2f_gbps"] - peak["accl_h2h_gbps"]) < 5
    # ...and a slightly higher peak than software MPI.
    assert peak["accl_f2f_gbps"] > peak["mpi_rdma_gbps"]
    # Throughput ramps with message size.
    assert rows[0]["accl_f2f_gbps"] < peak["accl_f2f_gbps"]
