"""Figure 16: speedup and latency breakdown of distributed vector-matrix
multiplication (CPU compute + ACCL+/MPI reduce).

Paper shape: ACCL+ generally yields lower matrix-vector *computation* time
(reduced CPU-cache pressure) while its *reduction* time is mostly higher
(an extra staging copy); two configurations show super-linear speedup
(partitions dropping into L2/L3); overall ACCL+ achieves lower latency for
specific (size, ranks) configurations.
"""

from repro.bench import format_rows, run_fig16_vecmat
from conftest import emit


def test_fig16_vecmat(benchmark):
    rows = benchmark.pedantic(run_fig16_vecmat, rounds=1, iterations=1)
    emit(format_rows(
        rows,
        ["fc_size", "ranks", "backend", "compute_us", "reduce_us",
         "speedup", "correct"],
        title="Figure 16 — distributed vector-matrix multiplication",
    ))
    assert all(r["correct"] for r in rows)

    def cell(size, ranks, backend):
        return next(r for r in rows if r["fc_size"] == size
                    and r["ranks"] == ranks and r["backend"] == backend)

    # Super-linear instances (partitions fit caches after splitting).
    superlinear = [r for r in rows if r["speedup"] > r["ranks"]]
    benchmark.extra_info["superlinear_points"] = len(superlinear)
    assert len(superlinear) >= 2

    # ACCL+ compute < MPI compute at matched configurations (cache relief).
    compute_wins = sum(
        cell(s, n, "accl")["compute_us"] < cell(s, n, "mpi")["compute_us"]
        for s in (2048, 4096, 8192) for n in (4, 8)
    )
    assert compute_wins >= 5

    # ...while the ACCL+ reduction usually costs more (extra copy).
    reduce_higher = sum(
        cell(s, n, "accl")["reduce_us"] > cell(s, n, "mpi")["reduce_us"]
        for s in (2048, 4096, 8192) for n in (2, 4, 8)
    )
    assert reduce_higher >= 5

    # Overall: ACCL+ achieves the better total for mid-size configurations.
    accl = cell(4096, 4, "accl")
    mpi = cell(4096, 4, "mpi")
    assert accl["speedup"] > mpi["speedup"]
