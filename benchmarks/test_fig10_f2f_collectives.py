"""Figure 10: F2F collective latency, ACCL+ RDMA vs software MPI RDMA,
eight ranks, device-resident data.

Paper shape: "ACCL+ exhibits significant performance benefits compared to
its software counterpart", which must detour device data over PCIe through
the CPU.  The better of eager/rendezvous is shown per point, as the paper
presents.
"""

from repro import units
from repro.bench import run_fig10_f2f_collectives
from repro.bench.formats import format_rows
from conftest import emit

SIZES = [units.KIB, 16 * units.KIB, 256 * units.KIB, 4 * units.MIB]


def test_fig10_f2f_collectives(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig10_f2f_collectives(sizes=SIZES),
        rounds=1, iterations=1,
    )
    rows = []
    wins = 0
    cells = 0
    for opcode, by_size in result.items():
        for size_label, (accl, mpi) in by_size.items():
            rows.append({
                "collective": opcode, "size": size_label,
                "accl_us": accl, "mpi_f2f_us": mpi,
                "speedup": mpi / accl,
            })
            cells += 1
            wins += accl < mpi
    emit(format_rows(
        rows, ["collective", "size", "accl_us", "mpi_f2f_us", "speedup"],
        title="Figure 10 — F2F collective latency, 8 ranks (us)",
    ))
    benchmark.extra_info["accl_win_fraction"] = wins / cells

    # ACCL+ wins the overwhelming majority of operating points...
    assert wins / cells >= 0.9
    # ...including every small/mid-size point, where bypassing the
    # PCIe+invocation detour matters most.
    for opcode, by_size in result.items():
        for size_label in ("1KiB", "16KiB", "256KiB"):
            accl, mpi = by_size[size_label]
            assert accl < mpi, (opcode, size_label)
