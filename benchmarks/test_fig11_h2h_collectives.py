"""Figure 11: H2H collective latency, ACCL+ as offload engine vs software
MPI, eight ranks, host-resident data.

Paper shape: "the performance gains with ACCL+ vary across different
collectives...  for broadcast and gather ACCL+ consistently outperforms
software MPI across a range of message sizes.  However, for other
collectives such as reduce and all-to-all, ACCL+ shows only marginal
benefits and, in some cases, falls short of software MPI."
"""

from repro import units
from repro.bench import run_fig11_h2h_collectives
from repro.bench.formats import format_rows
from conftest import emit

SIZES = [units.KIB, 16 * units.KIB, 256 * units.KIB, 4 * units.MIB]


def test_fig11_h2h_collectives(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig11_h2h_collectives(sizes=SIZES),
        rounds=1, iterations=1,
    )
    rows = []
    for opcode, by_size in result.items():
        for size_label, (accl, mpi) in by_size.items():
            rows.append({
                "collective": opcode, "size": size_label,
                "accl_us": accl, "mpi_us": mpi, "ratio": accl / mpi,
            })
    emit(format_rows(
        rows, ["collective", "size", "accl_us", "mpi_us", "ratio"],
        title="Figure 11 — H2H collective latency, 8 ranks (us)",
    ))

    # Broadcast: ACCL+ ahead across a range of message sizes.
    bcast = result["bcast"]
    bcast_wins = sum(a < m for a, m in bcast.values())
    assert bcast_wins >= 3
    benchmark.extra_info["bcast_wins"] = bcast_wins

    # Reduce / all-to-all: marginal at best — some points fall short,
    # and nothing runs away (within ~2x either direction at mid sizes).
    for opcode in ("reduce", "alltoall"):
        losses = sum(a > m for a, m in result[opcode].values())
        assert losses >= 1, f"{opcode} unexpectedly dominates MPI everywhere"
        for size_label in ("16KiB", "256KiB"):
            accl, mpi = result[opcode][size_label]
            assert 0.3 < accl / mpi < 2.5, (opcode, size_label)
