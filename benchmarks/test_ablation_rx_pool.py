"""Ablation: eager Rx buffer pool (§4.4.1 / §4.4.3).

The eager protocol's cost structure: every inbound message occupies pool
space until the matching receive consumes it, so the pool's high watermark
grows with eager traffic — and a message larger than the whole pool cannot
be handled at all (the hard reason large transfers use rendezvous, which
bypasses temporary buffering entirely and keeps the pool untouched).
"""

import pytest

from repro import units
from repro.cclo.config_mem import CcloConfig
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import build_fpga_cluster
from repro.errors import CcloError
from repro.platform.base import BufferLocation
from repro.bench.formats import format_rows
from conftest import emit


def _run_gather(size, sync_protocol, pool_bytes):
    """All-to-one gather of 8 blocks; returns the root's pool watermark."""
    cluster = build_fpga_cluster(
        8, protocol="rdma", platform="coyote",
        cclo_config=CcloConfig(rx_pool_bytes=pool_bytes),
    )
    root_plat = cluster.nodes[0].platform
    rbuf = root_plat.allocate(8 * size, BufferLocation.DEVICE).view()

    def make_args(rank):
        plat = cluster.nodes[rank].platform
        return CollectiveArgs(
            opcode="gather", nbytes=size, root=0, tag=1 << 20,
            sbuf=plat.allocate(size, BufferLocation.DEVICE).view(),
            rbuf=rbuf if rank == 0 else None,
            protocol=sync_protocol, algorithm="all_to_one",
        )

    elapsed = cluster.run_collective(make_args)
    rbm = cluster.engine(0).rbm
    return elapsed, rbm.high_watermark


def sweep():
    rows = []
    pool = 64 * units.MIB
    for size in (64 * units.KIB, 512 * units.KIB, 2 * units.MIB):
        _, eager_peak = _run_gather(size, "eager", pool)
        _, rndz_peak = _run_gather(size, "rndz", pool)
        rows.append({
            "block": units.pretty_size(size),
            "eager_pool_peak": units.pretty_size(int(eager_peak)),
            "rndz_pool_peak": units.pretty_size(int(rndz_peak)),
            "_eager_raw": eager_peak,
            "_rndz_raw": rndz_peak,
        })
    return rows


def test_ablation_rx_pool(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_rows(
        rows, ["block", "eager_pool_peak", "rndz_pool_peak"],
        title="Ablation — eager vs rendezvous Rx pool occupancy "
              "(gather all-to-one, 8 ranks)",
    ))
    # Eager occupies pool space, growing with traffic...
    peaks = [r["_eager_raw"] for r in rows]
    assert peaks == sorted(peaks) and peaks[0] > 0
    # ...while rendezvous lands straight in the result buffer.
    assert all(r["_rndz_raw"] == 0 for r in rows)

    # And the hard limit: an eager message larger than the entire pool is
    # rejected outright; the same transfer succeeds over rendezvous.
    tiny_pool = units.MIB
    with pytest.raises(CcloError, match="rendezvous"):
        _run_gather(2 * units.MIB, "eager", tiny_pool)
    elapsed, _ = _run_gather(2 * units.MIB, "rndz", tiny_pool)
    assert elapsed > 0
    benchmark.extra_info["eager_peak_2m"] = rows[-1]["_eager_raw"]
