"""Shared benchmark plumbing.

Every benchmark regenerates one paper artifact (table or figure): it runs
the experiment through :mod:`repro.bench.harness` inside pytest-benchmark
(so wall-clock cost is tracked), prints the regenerated rows/series, and
asserts the paper's qualitative shape.  Simulated-time metrics are attached
to ``benchmark.extra_info`` for machine consumption.

Benchmarks that accept a ``runner=`` keyword share one
:class:`~repro.bench.runner.SweepRunner` per session via the
``sweep_runner`` fixture.  It honours two environment variables:

- ``BENCH_JOBS``  — fan sweep points out over N worker processes;
- ``BENCH_CACHE`` — memoize points in the given cache directory
  (off by default so benchmark wall-clock numbers stay honest).
"""

import os
import sys

import pytest

from repro.bench.cache import ResultCache
from repro.bench.runner import SweepRunner


def emit(text: str) -> None:
    """Print a regenerated artifact so it lands in the benchmark log."""
    sys.stdout.write("\n" + text + "\n")


@pytest.fixture(scope="session")
def sweep_runner():
    """One SweepRunner per benchmark session (jobs/cache from the env)."""
    jobs = int(os.environ.get("BENCH_JOBS", "1"))
    cache_dir = os.environ.get("BENCH_CACHE", "")
    cache = ResultCache(cache_dir) if cache_dir else None
    return SweepRunner(jobs=jobs, cache=cache)


def attach_point_metrics(benchmark, runner: SweepRunner,
                         n_latest: int) -> None:
    """Record the latest *n_latest* points' sim metadata on the benchmark."""
    latest = runner.records[-n_latest:]
    benchmark.extra_info["points"] = len(latest)
    benchmark.extra_info["sim_s"] = sum(r.sim_s for r in latest)
    benchmark.extra_info["sim_events"] = sum(r.events for r in latest)
    benchmark.extra_info["cached_points"] = sum(r.cached for r in latest)
