"""Shared benchmark plumbing.

Every benchmark regenerates one paper artifact (table or figure): it runs
the experiment through :mod:`repro.bench.harness` inside pytest-benchmark
(so wall-clock cost is tracked), prints the regenerated rows/series, and
asserts the paper's qualitative shape.  Simulated-time metrics are attached
to ``benchmark.extra_info`` for machine consumption.
"""

import sys


def emit(text: str) -> None:
    """Print a regenerated artifact so it lands in the benchmark log."""
    sys.stdout.write("\n" + text + "\n")
