"""Ablation: eager vs rendezvous synchronization (§4.4.3, §5).

Paper: "eager collectives can sometimes outperform rendezvous collectives
with small message sizes, as seen in broadcast.  This is because eager
collectives do not require a handshake to resolve addresses."  At large
sizes the rendezvous zero-copy path wins (no Rx-buffer copy).
"""

from repro import units
from repro.bench.harness import accl_collective_time
from repro.bench.formats import format_rows
from repro.platform.base import BufferLocation
from conftest import emit

SIZES = [KIB := units.KIB, 4 * units.KIB, 64 * units.KIB,
         units.MIB, 4 * units.MIB]


def sweep():
    rows = []
    for size in SIZES:
        eager = accl_collective_time(
            "bcast", size, n_nodes=8, sync_protocol="eager",
            location=BufferLocation.DEVICE, algorithm="one_to_all",
        )
        rndz = accl_collective_time(
            "bcast", size, n_nodes=8, sync_protocol="rndz",
            location=BufferLocation.DEVICE, algorithm="one_to_all",
        )
        rows.append({
            "size": units.pretty_size(size),
            "eager_us": units.to_us(eager),
            "rndz_us": units.to_us(rndz),
        })
    return rows


def test_ablation_sync_protocol(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_rows(
        rows, ["size", "eager_us", "rndz_us"],
        title="Ablation — eager vs rendezvous (bcast one-to-all, 8 ranks)",
    ))
    # Small messages: no handshake -> eager wins.
    assert rows[0]["eager_us"] < rows[0]["rndz_us"]
    # Large messages: zero-copy WRITE -> rendezvous wins.
    assert rows[-1]["rndz_us"] < rows[-1]["eager_us"]
    # There is a crossover in between.
    crossover = next(
        (r["size"] for r in rows if r["rndz_us"] <= r["eager_us"]), None)
    assert crossover is not None
    benchmark.extra_info["crossover"] = crossover
