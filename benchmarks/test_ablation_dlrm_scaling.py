"""Ablation: DLRM resource scaling (§6.1).

"Scaling resources according to the computation distribution requirements
of each layer could lead to improved performance.  For example, increasing
the allocation of FPGAs for different layers based on their computational
load."  This ablation widens the FC1 checkerboard from 2 to 4 columns
(6 -> 10 FPGAs) and measures latency and throughput; outputs stay verified
against the reference model at every width.
"""

import numpy as np

from repro import units
from repro.apps.dlrm import DistributedDlrm, DlrmModel, DlrmPlan
from repro.bench.formats import format_rows
from conftest import emit


def sweep(n_inferences=32):
    model = DlrmModel()
    queries = model.make_queries(n_inferences)
    reference = model.forward_batch(queries)
    rows = []
    for cols in (2, 4):
        plan = DlrmPlan(col_parts=cols)
        dlrm = DistributedDlrm(model, plan=plan)
        stats = dlrm.run(queries)
        rows.append({
            "fc1_columns": cols,
            "fpgas": plan.n_nodes,
            "latency_us": units.to_us(stats.mean_latency),
            "throughput": round(stats.throughput),
            "correct": bool(np.allclose(stats.outputs, reference,
                                        rtol=1e-3, atol=1e-4)),
        })
    return rows


def test_ablation_dlrm_scaling(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_rows(
        rows, ["fc1_columns", "fpgas", "latency_us", "throughput", "correct"],
        title="Ablation — DLRM FC1 resource scaling",
    ))
    assert all(r["correct"] for r in rows)
    narrow, wide = rows
    # More FPGAs on the heavy layer: higher throughput and lower latency.
    assert wide["throughput"] > narrow["throughput"]
    assert wide["latency_us"] < narrow["latency_us"]
    benchmark.extra_info["scaling_gain"] = (
        wide["throughput"] / narrow["throughput"])
