"""Network endpoint: the attachment point of an FPGA port or commodity NIC.

An :class:`Endpoint` owns the uplink toward the switch and receives segments
from its downlink.  Protocol engines register themselves as the receive
handler; transmit paces segments through the uplink's serializer.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import NetworkError
from repro.sim import Environment
from repro.network.link import Link
from repro.network.packet import Burst, Segment


class Endpoint:
    """One fabric port with an address, an uplink and a downlink."""

    __slots__ = ("env", "address", "name", "fidelity", "uplink",
                 "_rx_handler", "_rx_burst_handler", "segments_sent",
                 "segments_received")

    def __init__(self, env: Environment, address: int, name: str = ""):
        self.env = env
        self.address = address
        self.name = name or f"ep{address}"
        #: network fidelity level this port runs at; set by the owning
        #: topology ("packet" unless the topology was built in flow mode).
        self.fidelity = "packet"
        self.uplink: Optional[Link] = None
        self._rx_handler: Optional[Callable[[Segment], None]] = None
        self._rx_burst_handler: Optional[Callable[[Burst], None]] = None
        self.segments_sent = 0
        self.segments_received = 0

    def attach_uplink(self, link: Link) -> None:
        if self.uplink is not None:
            raise NetworkError(f"endpoint {self.name!r} already has an uplink")
        self.uplink = link

    def on_receive(self, handler: Callable[[Segment], None]) -> None:
        """Install the protocol engine's receive handler."""
        if self._rx_handler is not None:
            raise NetworkError(
                f"endpoint {self.name!r} already has a receive handler"
            )
        self._rx_handler = handler

    def deliver(self, segment: Segment) -> None:
        """Sink for the downlink; invoked by the fabric."""
        if self._rx_handler is None:
            raise NetworkError(
                f"endpoint {self.name!r} received a segment but has no handler"
            )
        self.segments_received += 1
        self._rx_handler(segment)

    def send(self, segment: Segment) -> float:
        """Transmit a segment; returns serialization-complete time."""
        if self.uplink is None:
            raise NetworkError(f"endpoint {self.name!r} has no uplink")
        if segment.src != self.address:
            raise NetworkError(
                f"endpoint {self.name!r} (addr {self.address}) asked to send "
                f"a segment with src={segment.src}"
            )
        self.segments_sent += 1
        return self.uplink.send(segment)

    # -- flow-fidelity burst path -----------------------------------------

    def on_receive_burst(self, handler: Callable[[Burst], None]) -> None:
        """Install the protocol engine's fast-forwarded-burst handler."""
        if self._rx_burst_handler is not None:
            raise NetworkError(
                f"endpoint {self.name!r} already has a burst handler"
            )
        self._rx_burst_handler = handler

    def deliver_burst(self, burst: Burst) -> None:
        """Sink for fast-forwarded bursts; invoked at last-segment arrival."""
        if self._rx_burst_handler is None:
            raise NetworkError(
                f"endpoint {self.name!r} received a burst but has no "
                "burst handler"
            )
        self.segments_received += burst.n_segments
        self._rx_burst_handler(burst)

    def send_burst(self, burst: Burst) -> Optional[float]:
        """Fast-forward a segment train through the uplink.

        Returns the handoff time of the last segment (what the sender paces
        to), or ``None`` when the uplink cannot take the analytic path right
        now — a serializer busy with other traffic or missing burst wiring —
        in which case the caller must fall back to the per-segment transmit
        loop.  A serializer still draining an earlier sub-burst of the same
        message continues analytically.
        """
        if self.uplink is None:
            raise NetworkError(f"endpoint {self.name!r} has no uplink")
        if burst.src != self.address:
            raise NetworkError(
                f"endpoint {self.name!r} (addr {self.address}) asked to send "
                f"a burst with src={burst.src}"
            )
        handoff = self.uplink.try_send_burst(burst)
        if handoff is None:
            return None
        self.segments_sent += burst.n_segments
        return handoff

    def __repr__(self) -> str:
        return f"<Endpoint {self.name!r} addr={self.address}>"
