"""Output-queued switch model (Cisco Nexus class).

Forwarding is cut-through with a fixed port-to-port latency; contention shows
up on the egress :class:`~repro.network.link.Link` of the destination port,
which is exactly where in-cast congestion (the paper's motivation for
tree-based reduce/gather at large sizes) materializes.

Routing resolves in three stages, cheapest and most specific first:

1. exact per-address entries (:meth:`Switch.attach` — the ports endpoints
   hang off);
2. *block* entries (:meth:`Switch.attach_block`) keyed by a resolver
   function over the destination address — one route per downstream
   leaf/pod/group instead of one per endpoint, which is what keeps route
   tables O(ports) instead of O(endpoints) on spine/aggregation/core tiers;
3. default routes, ECMP-balanced on a deterministic (src, dst) flow hash.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import NetworkError
from repro.sim import Environment
from repro.network.link import Link
from repro.network.packet import Burst, Segment
from repro import units


class Switch:
    """A single-stage switch: address -> egress link table."""

    __slots__ = ("env", "forwarding_latency", "name", "_egress", "_blocks",
                 "_resolver", "_default_routes", "segments_forwarded")

    def __init__(
        self,
        env: Environment,
        forwarding_latency: float = units.ns(600),
        name: str = "switch",
    ):
        self.env = env
        self.forwarding_latency = forwarding_latency
        self.name = name
        self._egress: Dict[int, Link] = {}
        self._blocks: Dict[int, Link] = {}
        self._resolver: Optional[Callable[[int], int]] = None
        self._default_routes: list = []
        self.segments_forwarded = 0

    @property
    def port_count(self) -> int:
        return len(self._egress) + len(self._blocks)

    def attach(self, address: int, egress: Link) -> None:
        """Register the egress link toward endpoint *address*."""
        if address in self._egress:
            raise NetworkError(
                f"switch {self.name!r}: address {address} already attached"
            )
        self._egress[address] = egress

    def set_resolver(self, resolver: Callable[[int], int]) -> None:
        """Install the address -> block-key mapping for block routes.

        The resolver collapses whole address ranges onto one table entry
        (e.g. ``addr // ports_per_leaf`` on a spine), so aggregation tiers
        install O(downstream switches) routes, not O(endpoints).
        """
        self._resolver = resolver

    def attach_block(self, key: int, egress: Link) -> None:
        """Register the egress link for every address resolving to *key*."""
        if key in self._blocks:
            raise NetworkError(
                f"switch {self.name!r}: block {key} already attached"
            )
        self._blocks[key] = egress

    def add_default_route(self, egress: Link) -> None:
        """Register an uplink used for addresses with no local entry.

        Multiple default routes load-balance ECMP-style on a (src, dst)
        flow hash, keeping one flow's segments in order.
        """
        self._default_routes.append(egress)

    def _route(self, src: int, dst: int) -> Link:
        egress = self._egress.get(dst)
        if egress is None and self._resolver is not None:
            egress = self._blocks.get(self._resolver(dst))
        if egress is None and self._default_routes:
            flow = hash((src, dst))
            egress = self._default_routes[flow % len(self._default_routes)]
        if egress is None:
            raise NetworkError(
                f"switch {self.name!r}: no route to address {dst}"
            )
        return egress

    def ingress(self, segment: Segment) -> None:
        """Entry point wired as the sink of every endpoint's uplink."""
        egress = self._route(segment.src, segment.dst)
        self.segments_forwarded += 1
        self.env.schedule_callback(self.forwarding_latency, egress.send, segment)

    def ingress_burst(self, burst: Burst) -> None:
        """Forward a fast-forwarded train (flow fidelity) in one step.

        Invoked when the burst's head segment arrives; routing uses the same
        (src, dst) flow hash as per-segment forwarding, so ECMP placement is
        identical.  One forwarding callback replaces ``n_segments`` of them;
        the egress link decides whether the train stays analytic or expands.
        """
        egress = self._route(burst.src, burst.dst)
        self.segments_forwarded += burst.n_segments
        Environment.total_events_fast_forwarded += burst.n_segments - 1
        self.env.schedule_callback(
            self.forwarding_latency, self._forward_burst, egress, burst)

    def _forward_burst(self, egress: Link, burst: Burst) -> None:
        # Runs at head arrival + forwarding latency: shift every segment's
        # availability by the same fixed delay and hand off.
        latency = self.forwarding_latency
        burst.head_at += latency
        burst.last_at += latency
        egress.send_burst(burst)

    def iter_egress(self):
        """Every distinct egress link this switch can forward onto."""
        yield from self._egress.values()
        yield from self._blocks.values()
        yield from self._default_routes

    def __repr__(self) -> str:
        return f"<Switch {self.name!r} ports={self.port_count}>"
