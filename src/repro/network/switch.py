"""Output-queued switch model (Cisco Nexus class).

Forwarding is cut-through with a fixed port-to-port latency; contention shows
up on the egress :class:`~repro.network.link.Link` of the destination port,
which is exactly where in-cast congestion (the paper's motivation for
tree-based reduce/gather at large sizes) materializes.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import NetworkError
from repro.sim import Environment
from repro.network.link import Link
from repro.network.packet import Burst, Segment
from repro import units


class Switch:
    """A single-stage switch: address -> egress link table."""

    def __init__(
        self,
        env: Environment,
        forwarding_latency: float = units.ns(600),
        name: str = "switch",
    ):
        self.env = env
        self.forwarding_latency = forwarding_latency
        self.name = name
        self._egress: Dict[int, Link] = {}
        self._default_routes: list = []
        self.segments_forwarded = 0

    @property
    def port_count(self) -> int:
        return len(self._egress)

    def attach(self, address: int, egress: Link) -> None:
        """Register the egress link toward endpoint *address*."""
        if address in self._egress:
            raise NetworkError(
                f"switch {self.name!r}: address {address} already attached"
            )
        self._egress[address] = egress

    def add_default_route(self, egress: Link) -> None:
        """Register an uplink used for addresses with no local entry.

        Multiple default routes load-balance ECMP-style on a (src, dst)
        flow hash, keeping one flow's segments in order.
        """
        self._default_routes.append(egress)

    def ingress(self, segment: Segment) -> None:
        """Entry point wired as the sink of every endpoint's uplink."""
        egress = self._egress.get(segment.dst)
        if egress is None and self._default_routes:
            flow = hash((segment.src, segment.dst))
            egress = self._default_routes[flow % len(self._default_routes)]
        if egress is None:
            raise NetworkError(
                f"switch {self.name!r}: no route to address {segment.dst}"
            )
        self.segments_forwarded += 1
        self.env.schedule_callback(self.forwarding_latency, egress.send, segment)

    def ingress_burst(self, burst: Burst) -> None:
        """Forward a fast-forwarded train (flow fidelity) in one step.

        Invoked when the burst's head segment arrives; routing uses the same
        (src, dst) flow hash as per-segment forwarding, so ECMP placement is
        identical.  One forwarding callback replaces ``n_segments`` of them;
        the egress link decides whether the train stays analytic or expands.
        """
        egress = self._egress.get(burst.dst)
        if egress is None and self._default_routes:
            flow = hash((burst.src, burst.dst))
            egress = self._default_routes[flow % len(self._default_routes)]
        if egress is None:
            raise NetworkError(
                f"switch {self.name!r}: no route to address {burst.dst}"
            )
        self.segments_forwarded += burst.n_segments
        Environment.total_events_fast_forwarded += burst.n_segments - 1
        self.env.schedule_callback(
            self.forwarding_latency, self._forward_burst, egress, burst)

    def _forward_burst(self, egress: Link, burst: Burst) -> None:
        # Runs at head arrival + forwarding latency: shift every segment's
        # availability by the same fixed delay and hand off.
        latency = self.forwarding_latency
        burst.head_at += latency
        burst.last_at += latency
        egress.send_burst(burst)

    def __repr__(self) -> str:
        return f"<Switch {self.name!r} ports={self.port_count}>"
