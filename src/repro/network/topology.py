"""Cluster topologies.

The evaluation cluster (§5) connects every CPU NIC and every FPGA Ethernet
port to Cisco Nexus switches — a star from the traffic-pattern point of
view.  :class:`StarTopology` builds that: N endpoints, one switch, duplex
100 Gb/s links.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import NetworkError
from repro.sim import Environment
from repro.network.endpoint import Endpoint
from repro.network.fidelity import resolve_fidelity
from repro.network.link import Link
from repro.network.switch import Switch
from repro import units


class StarTopology:
    """All endpoints hang off one switch with duplex links.

    Args:
        env: simulation environment.
        link_rate: bytes/second per direction (default 100 Gb/s).
        link_latency: one-way cable+PHY latency.
        fidelity: ``"packet"`` or ``"flow"``; ``None`` reads the
            process-wide default (``$REPRO_FIDELITY``, usually packet).
    """

    def __init__(
        self,
        env: Environment,
        link_rate: float = units.gbps(100),
        link_latency: float = units.ns(500),
        name: str = "fabric",
        fidelity: Optional[str] = None,
    ):
        self.env = env
        self.link_rate = link_rate
        self.link_latency = link_latency
        self.name = name
        self.fidelity = resolve_fidelity(fidelity)
        self.switch = Switch(env, name=f"{name}.sw")
        self._endpoints: Dict[int, Endpoint] = {}

    @property
    def endpoints(self) -> List[Endpoint]:
        return [self._endpoints[a] for a in sorted(self._endpoints)]

    def endpoint(self, address: int) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise NetworkError(f"no endpoint with address {address}") from None

    def add_endpoint(self, address: int, name: str = "") -> Endpoint:
        """Create an endpoint and wire duplex links to the switch."""
        if address in self._endpoints:
            raise NetworkError(f"address {address} already in topology")
        ep = Endpoint(self.env, address, name=name)
        uplink = Link(
            self.env, self.link_rate, self.link_latency, name=f"{ep.name}.up"
        )
        downlink = Link(
            self.env, self.link_rate, self.link_latency, name=f"{ep.name}.down"
        )
        uplink.connect(self.switch.ingress)
        downlink.connect(ep.deliver)
        # Burst wiring mirrors the segment wiring; bursts only flow when a
        # protocol engine on a flow-fidelity endpoint creates them.
        uplink.connect_burst(self.switch.ingress_burst)
        downlink.connect_burst(ep.deliver_burst, at_tail=True)
        ep.fidelity = self.fidelity
        ep.attach_uplink(uplink)
        self.switch.attach(address, downlink)
        self._endpoints[address] = ep
        return ep

    def one_way_base_latency(self) -> float:
        """Zero-byte one-way fabric latency: two links + switch forwarding."""
        return 2 * self.link_latency + self.switch.forwarding_latency

    def iter_links(self) -> List[Link]:
        """Every link in the fabric (uplinks and switch egress), once each."""
        links: List[Link] = []
        seen = set()
        candidates = [ep.uplink for ep in self.endpoints]
        candidates.extend(self.switch._egress.values())
        for link in candidates:
            if link is not None and id(link) not in seen:
                seen.add(id(link))
                links.append(link)
        return links

    def __repr__(self) -> str:
        return f"<StarTopology {self.name!r} n={len(self._endpoints)}>"


class LeafSpineTopology:
    """Two-tier Clos fabric: endpoints on leaf switches, leaves meshed
    through spine switches.

    Intra-leaf traffic crosses one switch; cross-leaf traffic crosses
    leaf -> spine -> leaf, ECMP-balanced over the spines on a flow hash.
    This is the data-center-scale integration story of §1: collectives run
    over the same packet-switched infrastructure CPUs use, not dedicated
    FPGA-to-FPGA links.
    """

    def __init__(
        self,
        env: Environment,
        ports_per_leaf: int = 4,
        n_spines: int = 2,
        link_rate: float = units.gbps(100),
        link_latency: float = units.ns(500),
        name: str = "clos",
        fidelity: Optional[str] = None,
    ):
        if ports_per_leaf < 1 or n_spines < 1:
            raise NetworkError("need at least one leaf port and one spine")
        self.env = env
        self.ports_per_leaf = ports_per_leaf
        self.n_spines = n_spines
        self.link_rate = link_rate
        self.link_latency = link_latency
        self.name = name
        self.fidelity = resolve_fidelity(fidelity)
        self._endpoints: Dict[int, Endpoint] = {}
        self._leaves: List[Switch] = []
        self._spines: List[Switch] = [
            Switch(env, name=f"{name}.spine{i}") for i in range(n_spines)
        ]

    @property
    def endpoints(self) -> List[Endpoint]:
        return [self._endpoints[a] for a in sorted(self._endpoints)]

    def endpoint(self, address: int) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise NetworkError(f"no endpoint with address {address}") from None

    def leaf_of(self, address: int) -> int:
        return address // self.ports_per_leaf

    def _link(self, name: str) -> Link:
        return Link(self.env, self.link_rate, self.link_latency, name=name)

    def _grow_leaves(self, leaf_idx: int) -> None:
        while len(self._leaves) <= leaf_idx:
            idx = len(self._leaves)
            leaf = Switch(self.env, name=f"{self.name}.leaf{idx}")
            # Full bipartite leaf<->spine wiring.
            for s, spine in enumerate(self._spines):
                up = self._link(f"{leaf.name}.up{s}")
                down = self._link(f"{spine.name}.down{idx}")
                up.connect(spine.ingress)
                down.connect(leaf.ingress)
                up.connect_burst(spine.ingress_burst)
                down.connect_burst(leaf.ingress_burst)
                leaf.add_default_route(up)
                # The spine routes every address of this leaf down to it.
                for port in range(self.ports_per_leaf):
                    spine.attach(idx * self.ports_per_leaf + port, down)
            self._leaves.append(leaf)

    def add_endpoint(self, address: int, name: str = "") -> Endpoint:
        if address in self._endpoints:
            raise NetworkError(f"address {address} already in topology")
        leaf_idx = self.leaf_of(address)
        self._grow_leaves(leaf_idx)
        leaf = self._leaves[leaf_idx]
        ep = Endpoint(self.env, address, name=name)
        uplink = self._link(f"{ep.name}.up")
        downlink = self._link(f"{ep.name}.down")
        uplink.connect(leaf.ingress)
        downlink.connect(ep.deliver)
        uplink.connect_burst(leaf.ingress_burst)
        downlink.connect_burst(ep.deliver_burst, at_tail=True)
        ep.fidelity = self.fidelity
        ep.attach_uplink(uplink)
        leaf.attach(address, downlink)
        self._endpoints[address] = ep
        return ep

    def one_way_base_latency(self, cross_leaf: bool = True) -> float:
        hops = 4 if cross_leaf else 2
        switches = 3 if cross_leaf else 1
        forwarding = self._spines[0].forwarding_latency
        return hops * self.link_latency + switches * forwarding

    def iter_links(self) -> List[Link]:
        """Every link in the fabric, once each: endpoint up/downlinks plus
        every leaf/spine egress and default route."""
        links: List[Link] = []
        seen = set()
        candidates: List[Link] = [ep.uplink for ep in self.endpoints]
        for switch in self._leaves + self._spines:
            candidates.extend(switch._egress.values())
            candidates.extend(switch._default_routes)
        for link in candidates:
            if link is not None and id(link) not in seen:
                seen.add(id(link))
                links.append(link)
        return links

    def __repr__(self) -> str:
        return (
            f"<LeafSpineTopology {self.name!r} leaves={len(self._leaves)} "
            f"spines={self.n_spines} n={len(self._endpoints)}>"
        )
