"""Cluster topologies.

The evaluation cluster (§5) connects every CPU NIC and every FPGA Ethernet
port to Cisco Nexus switches — a star from the traffic-pattern point of
view.  :class:`StarTopology` builds that: N endpoints, one switch, duplex
100 Gb/s links.

Beyond the paper's 10-node testbed, the fabric builders scale to the
regimes ACCL-class engines would meet in a real data center:

- :class:`LeafSpineTopology` — two-tier Clos, ECMP over the spines;
- :class:`FatTreeTopology` — three-tier k-ary fat-tree (k³/4 hosts);
- :class:`DragonflyTopology` — group-based low-diameter fabric with
  direct global links.

All of them share :class:`FabricTopology` (endpoint bookkeeping, duplex
host wiring, link enumeration), grow their switching tiers lazily as
addresses are added, route the aggregation tiers through O(switches) block
tables instead of O(endpoints) per-address entries, and balance equal-cost
paths with the same deterministic (src, dst) flow hash, so results are
reproducible across processes and job counts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import NetworkError
from repro.sim import Environment
from repro.network.endpoint import Endpoint
from repro.network.fidelity import resolve_fidelity
from repro.network.link import Link
from repro.network.switch import Switch
from repro import units


class FabricTopology:
    """Shared machinery of every fabric builder.

    Subclasses implement :meth:`_edge_switch_for` — grow whatever switching
    tiers the address implies and return the switch the endpoint plugs
    into — plus :meth:`_switches` for link enumeration.
    """

    def __init__(
        self,
        env: Environment,
        link_rate: float = units.gbps(100),
        link_latency: float = units.ns(500),
        name: str = "fabric",
        fidelity: Optional[str] = None,
    ):
        self.env = env
        self.link_rate = link_rate
        self.link_latency = link_latency
        self.name = name
        self.fidelity = resolve_fidelity(fidelity)
        self._endpoints: Dict[int, Endpoint] = {}

    @property
    def endpoints(self) -> List[Endpoint]:
        return [self._endpoints[a] for a in sorted(self._endpoints)]

    def endpoint(self, address: int) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise NetworkError(f"no endpoint with address {address}") from None

    def _link(self, name: str, rate: Optional[float] = None) -> Link:
        return Link(self.env, rate if rate is not None else self.link_rate,
                    self.link_latency, name=name)

    def _duplex(self, a: Switch, b: Switch, up_name: str, down_name: str,
                rate: Optional[float] = None) -> (Link, Link):
        """Wire a duplex switch-to-switch connection; returns (a->b, b->a)."""
        up = self._link(up_name, rate)
        down = self._link(down_name, rate)
        up.connect(b.ingress)
        down.connect(a.ingress)
        up.connect_burst(b.ingress_burst)
        down.connect_burst(a.ingress_burst)
        return up, down

    def _edge_switch_for(self, address: int) -> Switch:
        """Grow the fabric to cover *address*; return its edge switch."""
        raise NotImplementedError

    def _switches(self) -> Iterable[Switch]:
        """Every switch in the fabric (for link enumeration)."""
        raise NotImplementedError

    def add_endpoint(self, address: int, name: str = "") -> Endpoint:
        """Create an endpoint and wire duplex links to its edge switch."""
        if address in self._endpoints:
            raise NetworkError(f"address {address} already in topology")
        edge = self._edge_switch_for(address)
        ep = Endpoint(self.env, address, name=name)
        uplink = self._link(f"{ep.name}.up")
        downlink = self._link(f"{ep.name}.down")
        uplink.connect(edge.ingress)
        downlink.connect(ep.deliver)
        # Burst wiring mirrors the segment wiring; bursts only flow when a
        # protocol engine on a flow-fidelity endpoint creates them.
        uplink.connect_burst(edge.ingress_burst)
        downlink.connect_burst(ep.deliver_burst, at_tail=True)
        ep.fidelity = self.fidelity
        ep.attach_uplink(uplink)
        edge.attach(address, downlink)
        self._endpoints[address] = ep
        return ep

    def iter_links(self) -> List[Link]:
        """Every link in the fabric, once each: endpoint uplinks plus every
        switch egress, block and default route."""
        links: List[Link] = []
        seen = set()
        candidates: List[Link] = [ep.uplink for ep in self.endpoints]
        for switch in self._switches():
            candidates.extend(switch.iter_egress())
        for link in candidates:
            if link is not None and id(link) not in seen:
                seen.add(id(link))
                links.append(link)
        return links

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name!r} "
                f"n={len(self._endpoints)}>")


class StarTopology(FabricTopology):
    """All endpoints hang off one switch with duplex links.

    Args:
        env: simulation environment.
        link_rate: bytes/second per direction (default 100 Gb/s).
        link_latency: one-way cable+PHY latency.
        fidelity: ``"packet"`` or ``"flow"``; ``None`` reads the
            process-wide default (``$REPRO_FIDELITY``, usually packet).
    """

    def __init__(
        self,
        env: Environment,
        link_rate: float = units.gbps(100),
        link_latency: float = units.ns(500),
        name: str = "fabric",
        fidelity: Optional[str] = None,
    ):
        super().__init__(env, link_rate, link_latency, name, fidelity)
        self.switch = Switch(env, name=f"{name}.sw")

    def _edge_switch_for(self, address: int) -> Switch:
        return self.switch

    def _switches(self) -> Iterable[Switch]:
        return (self.switch,)

    def one_way_base_latency(self) -> float:
        """Zero-byte one-way fabric latency: two links + switch forwarding."""
        return 2 * self.link_latency + self.switch.forwarding_latency

    def __repr__(self) -> str:
        return f"<StarTopology {self.name!r} n={len(self._endpoints)}>"


class LeafSpineTopology(FabricTopology):
    """Two-tier Clos fabric: endpoints on leaf switches, leaves meshed
    through spine switches.

    Intra-leaf traffic crosses one switch; cross-leaf traffic crosses
    leaf -> spine -> leaf, ECMP-balanced over the spines on a flow hash.
    This is the data-center-scale integration story of §1: collectives run
    over the same packet-switched infrastructure CPUs use, not dedicated
    FPGA-to-FPGA links.

    Spines route per *leaf* (one block-table entry per downstream leaf via
    ``address // ports_per_leaf``), so route construction is O(leaves ×
    spines), not O(endpoints × spines).
    """

    def __init__(
        self,
        env: Environment,
        ports_per_leaf: int = 4,
        n_spines: int = 2,
        link_rate: float = units.gbps(100),
        link_latency: float = units.ns(500),
        name: str = "clos",
        fidelity: Optional[str] = None,
        oversubscription: float = 1.0,
    ):
        if ports_per_leaf < 1 or n_spines < 1:
            raise NetworkError("need at least one leaf port and one spine")
        if oversubscription <= 0:
            raise NetworkError("oversubscription factor must be positive")
        super().__init__(env, link_rate, link_latency, name, fidelity)
        self.ports_per_leaf = ports_per_leaf
        self.n_spines = n_spines
        self.oversubscription = oversubscription
        self._uplink_rate = link_rate / oversubscription
        self._leaves: List[Switch] = []
        self._spines: List[Switch] = [
            Switch(env, name=f"{name}.spine{i}") for i in range(n_spines)
        ]
        ppl = ports_per_leaf
        for spine in self._spines:
            spine.set_resolver(lambda dst, ppl=ppl: dst // ppl)

    def leaf_of(self, address: int) -> int:
        return address // self.ports_per_leaf

    def _grow_leaves(self, leaf_idx: int) -> None:
        while len(self._leaves) <= leaf_idx:
            idx = len(self._leaves)
            leaf = Switch(self.env, name=f"{self.name}.leaf{idx}")
            # Full bipartite leaf<->spine wiring; one block route per leaf
            # on the spine replaces the per-port entries.
            for s, spine in enumerate(self._spines):
                up, down = self._duplex(
                    leaf, spine, f"{leaf.name}.up{s}",
                    f"{spine.name}.down{idx}", rate=self._uplink_rate)
                leaf.add_default_route(up)
                spine.attach_block(idx, down)
            self._leaves.append(leaf)

    def _edge_switch_for(self, address: int) -> Switch:
        leaf_idx = self.leaf_of(address)
        self._grow_leaves(leaf_idx)
        return self._leaves[leaf_idx]

    def _switches(self) -> Iterable[Switch]:
        return self._leaves + self._spines

    def one_way_base_latency(self, cross_leaf: bool = True) -> float:
        hops = 4 if cross_leaf else 2
        switches = 3 if cross_leaf else 1
        forwarding = self._spines[0].forwarding_latency
        return hops * self.link_latency + switches * forwarding

    def __repr__(self) -> str:
        return (
            f"<LeafSpineTopology {self.name!r} leaves={len(self._leaves)} "
            f"spines={self.n_spines} n={len(self._endpoints)}>"
        )


class FatTreeTopology(FabricTopology):
    """Three-tier k-ary fat-tree (Al-Fares et al.): k pods of k/2 edge and
    k/2 aggregation switches, (k/2)² core switches, k³/4 host ports.

    Address layout: host ``a`` lives in pod ``a // (k²/4)`` on edge switch
    ``(a % (k²/4)) // (k/2)`` of that pod.  Pods (and the core tier) are
    grown lazily as addresses arrive, so a 1024-host fabric (k=16) only
    builds the pods its endpoints actually occupy.

    Routing is the standard up/down scheme with deterministic ECMP:

    - edge: exact host entries down, flow-hashed default over its k/2
      aggregation uplinks;
    - aggregation: one block entry per edge switch (``dst // (k/2)``) down,
      flow-hashed default over its k/2 core uplinks;
    - core: one block entry per pod (``dst // (k²/4)``) down.

    Block tables keep route construction O(switch ports) per switch.
    ``oversubscription`` divides the rate of every switch-to-switch link
    (> 1.0 starves the upper tiers the way real pods do).
    """

    def __init__(
        self,
        env: Environment,
        k: int = 4,
        link_rate: float = units.gbps(100),
        link_latency: float = units.ns(500),
        name: str = "fattree",
        fidelity: Optional[str] = None,
        oversubscription: float = 1.0,
    ):
        if k < 2 or k % 2:
            raise NetworkError(f"fat-tree arity must be even and >= 2, got {k}")
        if oversubscription <= 0:
            raise NetworkError("oversubscription factor must be positive")
        super().__init__(env, link_rate, link_latency, name, fidelity)
        self.k = k
        self.oversubscription = oversubscription
        self._uplink_rate = link_rate / oversubscription
        self.radix = k // 2                  # hosts per edge, links per tier
        self.hosts_per_pod = self.radix * self.radix
        self.capacity = k * self.hosts_per_pod
        self._pods: List[dict] = []          # {"edges": [...], "aggs": [...]}
        self._cores: List[Switch] = []

    def pod_of(self, address: int) -> int:
        return address // self.hosts_per_pod

    def edge_of(self, address: int) -> int:
        """Global edge-switch index of *address*."""
        return address // self.radix

    def _grow_cores(self) -> None:
        if self._cores:
            return
        hpp = self.hosts_per_pod
        for c in range(self.radix * self.radix):
            core = Switch(self.env, name=f"{self.name}.core{c}")
            core.set_resolver(lambda dst, hpp=hpp: dst // hpp)
            self._cores.append(core)

    def _grow_pods(self, pod_idx: int) -> None:
        if pod_idx >= self.k:
            raise NetworkError(
                f"fat-tree k={self.k} holds {self.capacity} hosts; "
                f"address implies pod {pod_idx}"
            )
        self._grow_cores()
        radix = self.radix
        while len(self._pods) <= pod_idx:
            p = len(self._pods)
            edges = [Switch(self.env, name=f"{self.name}.p{p}.edge{e}")
                     for e in range(radix)]
            aggs = [Switch(self.env, name=f"{self.name}.p{p}.agg{a}")
                    for a in range(radix)]
            for a, agg in enumerate(aggs):
                agg.set_resolver(lambda dst, r=radix: dst // r)
                # Down tier: one block route per edge switch in the pod.
                for e, edge in enumerate(edges):
                    up, down = self._duplex(
                        edge, agg, f"{edge.name}.up{a}",
                        f"{agg.name}.down{e}", rate=self._uplink_rate)
                    edge.add_default_route(up)
                    agg.attach_block(p * radix + e, down)
                # Up tier: agg a owns cores [a*radix, (a+1)*radix).
                for j in range(radix):
                    core = self._cores[a * radix + j]
                    up, down = self._duplex(
                        agg, core, f"{agg.name}.up{j}",
                        f"{core.name}.down{p}", rate=self._uplink_rate)
                    agg.add_default_route(up)
                    core.attach_block(p, down)
            self._pods.append({"edges": edges, "aggs": aggs})

    def _edge_switch_for(self, address: int) -> Switch:
        pod_idx = self.pod_of(address)
        self._grow_pods(pod_idx)
        edge_idx = (address % self.hosts_per_pod) // self.radix
        return self._pods[pod_idx]["edges"][edge_idx]

    def _switches(self) -> Iterable[Switch]:
        for pod in self._pods:
            yield from pod["edges"]
            yield from pod["aggs"]
        yield from self._cores

    def one_way_base_latency(self, tier: str = "core") -> float:
        """Zero-byte one-way latency for a path peaking at *tier*:
        ``"edge"`` (same edge switch), ``"agg"`` (same pod) or ``"core"``
        (cross-pod)."""
        hops, switches = {"edge": (2, 1), "agg": (4, 3), "core": (6, 5)}[tier]
        forwarding = units.ns(600) if not self._cores else \
            self._cores[0].forwarding_latency
        return hops * self.link_latency + switches * forwarding

    def __repr__(self) -> str:
        return (
            f"<FatTreeTopology {self.name!r} k={self.k} "
            f"pods={len(self._pods)} n={len(self._endpoints)}>"
        )


class DragonflyTopology(FabricTopology):
    """Dragonfly fabric (Kim et al.): groups of ``a`` routers, each with
    ``p`` host ports and ``h`` global links; routers within a group are
    fully meshed, groups are connected by one direct global channel per
    pair (the canonical "palmtree" assignment), supporting up to
    ``a*h + 1`` groups.

    Address layout: host ``addr`` sits on router ``addr // p``; routers
    number ``a`` per group.  Groups grow lazily; creating group *g* wires
    its intra-group mesh and the duplex global channels to every
    previously built group.

    Routing is minimal and deterministic — local hop to the gateway
    router, one global hop, local hop to the destination router — encoded
    entirely in per-router block tables: a router holds one entry per
    other local router and one per remote group (either its own global
    link or the intra-group link toward the gateway that owns it), so
    tables stay O(a + groups) regardless of host count.
    ``oversubscription`` divides the rate of the global links only (the
    classic tapered dragonfly).
    """

    def __init__(
        self,
        env: Environment,
        routers_per_group: int = 4,
        hosts_per_router: int = 4,
        global_links_per_router: int = 2,
        link_rate: float = units.gbps(100),
        link_latency: float = units.ns(500),
        name: str = "dfly",
        fidelity: Optional[str] = None,
        oversubscription: float = 1.0,
    ):
        if min(routers_per_group, hosts_per_router,
               global_links_per_router) < 1:
            raise NetworkError(
                "dragonfly needs >= 1 router per group, host per router "
                "and global link per router"
            )
        if oversubscription <= 0:
            raise NetworkError("oversubscription factor must be positive")
        super().__init__(env, link_rate, link_latency, name, fidelity)
        self.a = routers_per_group
        self.p = hosts_per_router
        self.h = global_links_per_router
        self.oversubscription = oversubscription
        self._global_rate = link_rate / oversubscription
        self.max_groups = self.a * self.h + 1
        self.capacity = self.max_groups * self.a * self.p
        self._groups: List[List[Switch]] = []

    def router_of(self, address: int) -> int:
        """Global router index of *address*."""
        return address // self.p

    def group_of(self, address: int) -> int:
        return address // (self.a * self.p)

    def _gateway(self, group: int, dst_group: int) -> (int, int):
        """(local router, link slot) owning *group*'s channel to *dst_group*."""
        channel = dst_group if dst_group < group else dst_group - 1
        return channel // self.h, channel % self.h

    def _make_resolver(self, group: int):
        a, p = self.a, self.p

        def resolver(dst: int, group=group, a=a, p=p) -> int:
            router = dst // p
            dst_group = router // a
            # Local routers key by global router index (>= 0); remote
            # groups by -(group+1) — the two key spaces never collide.
            return router if dst_group == group else -(dst_group + 1)

        return resolver

    def _grow_groups(self, group_idx: int) -> None:
        if group_idx >= self.max_groups:
            raise NetworkError(
                f"dragonfly a={self.a} h={self.h} supports "
                f"{self.max_groups} groups ({self.capacity} hosts); "
                f"address implies group {group_idx}"
            )
        while len(self._groups) <= group_idx:
            g = len(self._groups)
            routers = [
                Switch(self.env, name=f"{self.name}.g{g}.r{r}")
                for r in range(self.a)
            ]
            for router in routers:
                router.set_resolver(self._make_resolver(g))
            # Intra-group full mesh.
            for i, ri in enumerate(routers):
                for j in range(i + 1, self.a):
                    rj = routers[j]
                    lij, lji = self._duplex(
                        ri, rj, f"{ri.name}.l{j}", f"{rj.name}.l{i}")
                    ri.attach_block(g * self.a + j, lij)
                    rj.attach_block(g * self.a + i, lji)
            # Global channels to every existing group (one per pair).
            for other in range(g):
                lo_r, lo_s = self._gateway(other, g)
                hi_r, hi_s = self._gateway(g, other)
                src = self._groups[other][lo_r]
                dst = routers[hi_r]
                out, back = self._duplex(
                    src, dst, f"{src.name}.gl{lo_s}", f"{dst.name}.gl{hi_s}",
                    rate=self._global_rate)
                src.attach_block(-(g + 1), out)
                dst.attach_block(-(other + 1), back)
                # Non-gateway routers reach the remote group through the
                # gateway's intra-group links; the gateway's own block
                # entry for the group is the global link itself, and every
                # other router already has a block entry per local router —
                # so route the group key onto the existing mesh link.
                for r, router in enumerate(self._groups[other]):
                    if r != lo_r:
                        router.attach_block(
                            -(g + 1),
                            router._blocks[other * self.a + lo_r])
                for r, router in enumerate(routers):
                    if r != hi_r:
                        router.attach_block(
                            -(other + 1),
                            router._blocks[g * self.a + hi_r])
            self._groups.append(routers)

    def _edge_switch_for(self, address: int) -> Switch:
        group_idx = self.group_of(address)
        self._grow_groups(group_idx)
        local_router = (address // self.p) % self.a
        return self._groups[group_idx][local_router]

    def _switches(self) -> Iterable[Switch]:
        for group in self._groups:
            yield from group

    def one_way_base_latency(self, scope: str = "global") -> float:
        """Zero-byte one-way latency: ``"router"`` (same router),
        ``"group"`` (intra-group mesh hop) or ``"global"`` (worst minimal
        path: local, global, local)."""
        hops, switches = {"router": (2, 1), "group": (3, 2),
                          "global": (5, 4)}[scope]
        forwarding = units.ns(600) if not self._groups else \
            self._groups[0][0].forwarding_latency
        return hops * self.link_latency + switches * forwarding

    def __repr__(self) -> str:
        return (
            f"<DragonflyTopology {self.name!r} a={self.a} p={self.p} "
            f"h={self.h} groups={len(self._groups)} "
            f"n={len(self._endpoints)}>"
        )
