"""Fabric fidelity switches.

The simulator supports two network fidelity levels, selected per topology:

- ``"packet"`` (default) — every 32 KiB segment is an individual wire event
  on every hop.  Bit-identical to the calibrated baseline; always used for
  regression baselines.
- ``"flow"`` — a multi-segment message on an *uncongested* path is modeled
  as one analytic serialization+propagation interval per hop (a
  :class:`~repro.network.packet.Burst`), falling back to packet-level
  per-segment behavior automatically wherever a link is busy.  Validated
  against packet mode per artifact by ``python -m repro.bench
  validate-fidelity``.

The process-wide default comes from the ``REPRO_FIDELITY`` environment
variable so that benchmark pool workers and subprocesses inherit the mode
without plumbing it through every constructor; topologies accept an explicit
``fidelity=`` override.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ConfigurationError

#: recognized fidelity levels
FIDELITIES = ("packet", "flow")

ENV_VAR = "REPRO_FIDELITY"

#: Reason codes for every flow-fidelity decision a :class:`Link` takes on a
#: burst.  Links count each decision in ``link.flow_decisions`` (exposed as
#: ``link_flow_decisions{reason=...}`` callback gauges) and, under a span
#: tracer, record a zero-duration ``phase="fidelity"`` span per decision —
#: record-only markers that attribution ignores but the dashboard's decision
#: log and the Chrome trace surface.  All counts stay zero in packet mode.
LINK_FLOW_DECISIONS = (
    "burst:carry",           # solo analytic train carried (closed form)
    "burst:decline:busy",    # first hop declined: serializer busy
    "burst:decline:unwired", # first hop declined: no burst sink
    "burst:expand:busy",     # downstream hop expanded: foreign occupancy
    "burst:expand:convoy",   # convoy path declined -> per-segment expansion
    "burst:expand:unwired",  # downstream hop expanded: no burst sink
    "convoy:form",           # convoy grid pinned on an idle serializer
    "convoy:form:respace",   # grid formed by re-spacing a committed train
    "convoy:join",           # new member admitted to an existing grid
    "convoy:widen",          # grid widened (re-spaced) for a late arrival
    "convoy:lay",            # member sub-burst laid on its first-hop slots
    "convoy:carry",          # downstream hop carried a convoy train
    "convoy:decline",        # convoy asked for but grid/timing mismatched
    "interleave",            # control segment slotted into a train gap
)

#: Reason codes for the POE-side flow admission pipeline: whether a bulk
#: message enters the analytic fast-forward path at all, per-window
#: re-admission between sub-bursts, and mid-message fallbacks to the
#: per-segment loop (with cause).  Counted in ``poe.flow_tx_decisions``
#: (``poe_flow_decisions{reason=...}`` gauges) plus zero-duration
#: ``phase="fidelity"`` decision spans under a tracer.
POE_FLOW_DECISIONS = (
    "admit",                    # message enters the analytic burst path
    "reject:below_floor",       # shorter than the admission floor
    "reject:paced",             # cut-through producer paces segmentation
    "reject:packet_sibling",    # a sibling bulk tx runs the packet loop
    "reject:flow_control",      # credit/window state could stall mid-train
    "window:readmit",           # sub-burst window re-admitted mid-message
    "fallback:link_declined",   # first hop declined the burst (with cause)
    "fallback:packet_sibling",  # packet-loop sibling appeared mid-message
    "fallback:flow_control",    # flow-control state soured mid-message
)


def default_fidelity() -> str:
    """The process-wide fidelity: ``$REPRO_FIDELITY`` or ``"packet"``."""
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if not value:
        return "packet"
    if value not in FIDELITIES:
        raise ConfigurationError(
            f"{ENV_VAR}={value!r} is not a fidelity level; "
            f"choose one of {', '.join(FIDELITIES)}"
        )
    return value


def resolve_fidelity(fidelity: Optional[str]) -> str:
    """Validate an explicit *fidelity*, or fall back to the default."""
    if fidelity is None:
        return default_fidelity()
    if fidelity not in FIDELITIES:
        raise ConfigurationError(
            f"fidelity {fidelity!r} is not a fidelity level; "
            f"choose one of {', '.join(FIDELITIES)}"
        )
    return fidelity


@contextmanager
def fidelity_override(fidelity: str) -> Iterator[str]:
    """Temporarily force the process-wide default (used by the validation
    harness to replay one artifact in both modes)."""
    fidelity = resolve_fidelity(fidelity)
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = fidelity
    try:
        yield fidelity
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
