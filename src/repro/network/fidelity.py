"""Fabric fidelity switches.

The simulator supports two network fidelity levels, selected per topology:

- ``"packet"`` (default) — every 32 KiB segment is an individual wire event
  on every hop.  Bit-identical to the calibrated baseline; always used for
  regression baselines.
- ``"flow"`` — a multi-segment message on an *uncongested* path is modeled
  as one analytic serialization+propagation interval per hop (a
  :class:`~repro.network.packet.Burst`), falling back to packet-level
  per-segment behavior automatically wherever a link is busy.  Validated
  against packet mode per artifact by ``python -m repro.bench
  validate-fidelity``.

The process-wide default comes from the ``REPRO_FIDELITY`` environment
variable so that benchmark pool workers and subprocesses inherit the mode
without plumbing it through every constructor; topologies accept an explicit
``fidelity=`` override.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ConfigurationError

#: recognized fidelity levels
FIDELITIES = ("packet", "flow")

ENV_VAR = "REPRO_FIDELITY"


def default_fidelity() -> str:
    """The process-wide fidelity: ``$REPRO_FIDELITY`` or ``"packet"``."""
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if not value:
        return "packet"
    if value not in FIDELITIES:
        raise ConfigurationError(
            f"{ENV_VAR}={value!r} is not a fidelity level; "
            f"choose one of {', '.join(FIDELITIES)}"
        )
    return value


def resolve_fidelity(fidelity: Optional[str]) -> str:
    """Validate an explicit *fidelity*, or fall back to the default."""
    if fidelity is None:
        return default_fidelity()
    if fidelity not in FIDELITIES:
        raise ConfigurationError(
            f"fidelity {fidelity!r} is not a fidelity level; "
            f"choose one of {', '.join(FIDELITIES)}"
        )
    return fidelity


@contextmanager
def fidelity_override(fidelity: str) -> Iterator[str]:
    """Temporarily force the process-wide default (used by the validation
    harness to replay one artifact in both modes)."""
    fidelity = resolve_fidelity(fidelity)
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = fidelity
    try:
        yield fidelity
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
