"""Wire-level data unit: the Segment.

A :class:`Segment` stands for a contiguous burst of Ethernet frames belonging
to one message.  Simulating every 1.5 KB frame of a 256 MB transfer would cost
hundreds of thousands of events; instead protocol engines cut messages into
segments (bounded by their own segment size) and the fabric charges wire time
for the frames the segment *represents*:

    wire_bytes = payload + n_frames * per_frame_header

This keeps goodput-vs-size curves honest (headers hurt small messages) at
O(message/segment_size) event cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

ETHERNET_HEADER_BYTES = 58
"""Ethernet + IP + transport header overhead per frame (14+20+20 + margin)."""

DEFAULT_MTU = 1500
"""Standard Ethernet MTU used by the 100G stacks in the paper's cluster."""


@dataclass(slots=True)
class Segment:
    """A burst of frames from ``src`` to ``dst``.

    Attributes:
        src: source endpoint address (fabric-wide unique int).
        dst: destination endpoint address.
        payload_bytes: user/protocol payload carried.
        protocol: tag such as ``"tcp"``, ``"udp"``, ``"roce"`` (for tracing).
        meta: protocol-private descriptor (header object, message signature).
        data: optional real payload (numpy slice) carried end-to-end.
        mtu: frame payload size used to derive the frame count.

    Segments are the per-hop currency of the fabric — a large sweep makes
    millions — so the class is slotted and the derived frame counts are
    computed once at construction instead of per property access.  Fields
    are treated as immutable after construction.
    """

    src: int
    dst: int
    payload_bytes: int
    protocol: str = "raw"
    meta: Any = None
    data: Any = None
    mtu: int = DEFAULT_MTU
    seqno: int = 0
    header_bytes: int = field(default=ETHERNET_HEADER_BYTES)
    #: number of MTU frames this segment stands for (>= 1); derived.
    n_frames: int = field(init=False, compare=False, default=1)
    #: bytes occupying the wire, headers included; derived.
    wire_bytes: int = field(init=False, compare=False, default=0)

    def __post_init__(self) -> None:
        payload = self.payload_bytes
        if payload < 0:
            raise ValueError(f"negative payload: {payload}")
        if self.mtu <= 0:
            raise ValueError(f"MTU must be positive, got {self.mtu}")
        frames = -(-payload // self.mtu) if payload else 1
        self.n_frames = frames
        self.wire_bytes = payload + frames * self.header_bytes

    @property
    def op_id(self) -> int:
        """Collective op id riding in the protocol header's meta, or -1.

        Segments carry a protocol descriptor in ``meta`` whose own ``meta``
        is the collective-level context (when traced); links use this to
        stamp wait spans and fidelity decisions with the owning op.
        """
        meta = getattr(self.meta, "meta", None)
        return getattr(meta, "op_id", -1)

    def __repr__(self) -> str:
        return (
            f"<Segment {self.protocol} {self.src}->{self.dst} "
            f"{self.payload_bytes}B seq={self.seqno}>"
        )


def _wire_bytes(payload: int, mtu: int, header_bytes: int) -> int:
    frames = -(-payload // mtu) if payload else 1
    return payload + frames * header_bytes


@dataclass(slots=True)
class Burst:
    """A fast-forwarded train of back-to-back segments of one message.

    Under ``fidelity='flow'`` an uncongested multi-segment message crosses
    each hop as one Burst instead of ``n_segments`` individual
    :class:`Segment` events.  The train is fully described by three absolute
    timestamps, updated hop by hop:

    - ``head_at`` — time the *tail* of segment 0 is available at the next
      hop's input;
    - ``spacing`` — uniform tail-to-tail spacing of segments ``0..n-2``
      (the train leaves each serializer evenly spaced at the slowest
      upstream rate seen so far);
    - ``last_at`` — tail availability of the final (possibly short) segment.

    Any hop whose serializer is busy at ``head_at`` *expands* the burst back
    into its constituent segments at their exact availability times, so
    congested paths keep full packet-level fidelity from that hop on.

    Long messages travel as a *train of bursts* (the transmit loop re-checks
    for contention between sub-bursts); ``seq_base`` is the message-level
    seqno of this burst's first segment and ``last_bytes`` may equal
    ``segment_bytes`` for every sub-burst except the message's final one.
    """

    src: int
    dst: int
    payload_bytes: int
    n_segments: int
    segment_bytes: int  # payload of every full chunk
    last_bytes: int     # payload of the final chunk (<= segment_bytes)
    protocol: str = "raw"
    meta: Any = None
    data: Any = None
    mtu: int = DEFAULT_MTU
    header_bytes: int = ETHERNET_HEADER_BYTES
    seq_base: int = 0
    #: symmetric concurrent bulk messages sharing the first hop (including
    #: this one).  ``share > 1`` asks the first hop to carry the train as a
    #: *convoy* member — round-robin interleaved with its siblings at
    #: ``share`` times the per-segment spacing, which is exactly how packet
    #: FIFO schedules simultaneous equal senders pacing to egress.
    share: int = 1
    #: convoy identity token, stamped by the first hop at formation and
    #: carried downstream so later hops can recognize sibling trains (their
    #: slot grids are disjoint by construction and may share a serializer).
    convoy: Any = None
    # -- timing state (absolute simulation times), updated per hop
    head_at: float = 0.0
    spacing: float = 0.0
    last_at: float = 0.0
    #: wire occupancy of one full chunk / the last chunk / the train; derived.
    wire_full: int = field(init=False, compare=False, default=0)
    wire_last: int = field(init=False, compare=False, default=0)
    wire_total: int = field(init=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.n_segments < 2:
            raise ValueError(
                f"a burst needs >= 2 segments, got {self.n_segments}"
            )
        if not 0 < self.last_bytes <= self.segment_bytes:
            raise ValueError(
                f"last chunk of {self.last_bytes}B outside "
                f"(0, {self.segment_bytes}]"
            )
        self.wire_full = _wire_bytes(self.segment_bytes, self.mtu,
                                     self.header_bytes)
        self.wire_last = _wire_bytes(self.last_bytes, self.mtu,
                                     self.header_bytes)
        self.wire_total = ((self.n_segments - 1) * self.wire_full
                           + self.wire_last)

    def iter_segments(self):
        """``(availability_time, Segment)`` pairs for packet-level expansion.

        Times are the absolute instants each segment's tail becomes
        available at the expanding hop's input; the constructed segments are
        exactly what the packet-level transmit loop would have produced.
        """
        head = self.head_at
        spacing = self.spacing
        n = self.n_segments
        base = self.seq_base
        for i in range(n - 1):
            yield head + i * spacing, Segment(
                src=self.src, dst=self.dst,
                payload_bytes=self.segment_bytes,
                protocol=self.protocol, meta=self.meta,
                data=self.data if i == 0 else None,
                mtu=self.mtu, seqno=base + i,
                header_bytes=self.header_bytes,
            )
        yield self.last_at, Segment(
            src=self.src, dst=self.dst, payload_bytes=self.last_bytes,
            protocol=self.protocol, meta=self.meta, data=None,
            mtu=self.mtu, seqno=base + n - 1,
            header_bytes=self.header_bytes,
        )

    @property
    def op_id(self) -> int:
        """Collective op id riding in the message header's meta, or -1."""
        meta = getattr(self.meta, "meta", None)
        return getattr(meta, "op_id", -1)

    def __repr__(self) -> str:
        return (
            f"<Burst {self.protocol} {self.src}->{self.dst} "
            f"{self.payload_bytes}B x{self.n_segments}>"
        )
