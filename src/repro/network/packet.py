"""Wire-level data unit: the Segment.

A :class:`Segment` stands for a contiguous burst of Ethernet frames belonging
to one message.  Simulating every 1.5 KB frame of a 256 MB transfer would cost
hundreds of thousands of events; instead protocol engines cut messages into
segments (bounded by their own segment size) and the fabric charges wire time
for the frames the segment *represents*:

    wire_bytes = payload + n_frames * per_frame_header

This keeps goodput-vs-size curves honest (headers hurt small messages) at
O(message/segment_size) event cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

ETHERNET_HEADER_BYTES = 58
"""Ethernet + IP + transport header overhead per frame (14+20+20 + margin)."""

DEFAULT_MTU = 1500
"""Standard Ethernet MTU used by the 100G stacks in the paper's cluster."""


@dataclass(slots=True)
class Segment:
    """A burst of frames from ``src`` to ``dst``.

    Attributes:
        src: source endpoint address (fabric-wide unique int).
        dst: destination endpoint address.
        payload_bytes: user/protocol payload carried.
        protocol: tag such as ``"tcp"``, ``"udp"``, ``"roce"`` (for tracing).
        meta: protocol-private descriptor (header object, message signature).
        data: optional real payload (numpy slice) carried end-to-end.
        mtu: frame payload size used to derive the frame count.

    Segments are the per-hop currency of the fabric — a large sweep makes
    millions — so the class is slotted and the derived frame counts are
    computed once at construction instead of per property access.  Fields
    are treated as immutable after construction.
    """

    src: int
    dst: int
    payload_bytes: int
    protocol: str = "raw"
    meta: Any = None
    data: Any = None
    mtu: int = DEFAULT_MTU
    seqno: int = 0
    header_bytes: int = field(default=ETHERNET_HEADER_BYTES)
    #: number of MTU frames this segment stands for (>= 1); derived.
    n_frames: int = field(init=False, compare=False, default=1)
    #: bytes occupying the wire, headers included; derived.
    wire_bytes: int = field(init=False, compare=False, default=0)

    def __post_init__(self) -> None:
        payload = self.payload_bytes
        if payload < 0:
            raise ValueError(f"negative payload: {payload}")
        if self.mtu <= 0:
            raise ValueError(f"MTU must be positive, got {self.mtu}")
        frames = -(-payload // self.mtu) if payload else 1
        self.n_frames = frames
        self.wire_bytes = payload + frames * self.header_bytes

    def __repr__(self) -> str:
        return (
            f"<Segment {self.protocol} {self.src}->{self.dst} "
            f"{self.payload_bytes}B seq={self.seqno}>"
        )
