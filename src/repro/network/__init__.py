"""Packet-switched network fabric.

Models the evaluation cluster's data-center network: endpoints (FPGA
Ethernet ports, commodity NICs) attach to a :class:`Switch` through
full-duplex 100 Gb/s :class:`Link` pairs.  Transfers are carried as
:class:`Segment` descriptors — MTU-coalesced bursts whose wire time accounts
for per-frame header overhead, so effective goodput matches an Ethernet
reality without per-frame event cost.
"""

from repro.network.packet import Segment
from repro.network.link import Link
from repro.network.switch import Switch
from repro.network.endpoint import Endpoint
from repro.network.topology import (
    DragonflyTopology,
    FabricTopology,
    FatTreeTopology,
    LeafSpineTopology,
    StarTopology,
)

__all__ = [
    "Segment", "Link", "Switch", "Endpoint", "FabricTopology",
    "StarTopology", "LeafSpineTopology", "FatTreeTopology",
    "DragonflyTopology",
]
