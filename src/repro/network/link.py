"""Point-to-point link: serialization + propagation.

A :class:`Link` is unidirectional; duplex connections are two links.  The
transmitter serializes segments at the link rate (FIFO — this is where egress
contention and in-cast congestion appear) and the receiver sees the segment
after an additional fixed propagation/PHY latency.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.errors import NetworkError
from repro.sim import BandwidthResource, Environment
from repro.network.fidelity import LINK_FLOW_DECISIONS
from repro.network.packet import Burst, Segment
from repro import units


class Link:
    """Unidirectional serializing link.

    Args:
        env: simulation environment.
        rate: bytes/second (default 100 Gb/s).
        latency: propagation + PHY/MAC latency in seconds.
        name: for tracing.
    """

    #: Largest segment a link accepts.  The fabric is store-and-forward at
    #: segment granularity, so bounding segments bounds the per-hop
    #: pipelining error; protocol engines segment larger messages.
    MAX_SEGMENT_BYTES = 256 * units.KIB

    # Large fabrics build thousands of links; a fixed attribute layout
    # drops the per-instance __dict__.
    __slots__ = (
        "env", "rate", "latency", "name", "coalesce", "_pipe", "_sink",
        "_burst_sink", "_burst_at_tail", "_last_owner", "_train",
        "_train_prev", "_train_tail", "_intr_free", "_convoy",
        "_convoy_token", "_relay", "segments_carried", "_in_flight",
        "_pump_scheduled", "_span_tracer", "flow_decisions",
    )

    def __init__(
        self,
        env: Environment,
        rate: float = units.gbps(100),
        latency: float = units.ns(500),
        name: str = "link",
        coalesce: bool = True,
    ):
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self.env = env
        self.rate = rate
        self.latency = latency
        self.name = name
        self.coalesce = coalesce
        self._pipe = BandwidthResource(env, rate, name=f"{name}.pipe")
        self._sink: Optional[Callable[[Segment], None]] = None
        self._burst_sink: Optional[Callable[[Burst], None]] = None
        self._burst_at_tail = False
        # Message descriptor (segment/burst ``meta``) of the traffic that
        # last occupied the serializer.  A busy serializer normally forces
        # burst expansion, but when the only occupancy ahead is this same
        # message's own tail (a sub-burst train), FIFO continuation is
        # exact and the analytic path stays valid.
        self._last_owner: Any = None
        # Timing grid of the analytic train(s) currently occupying the
        # serializer — (f_head, step, f_pen, start_last, f_last) — kept so
        # single-frame control segments can be slotted into inter-segment
        # gaps exactly where packet-level FIFO would have put them.  The
        # previous window survives one generation because a continuation
        # sub-burst is admitted while its predecessor is still draining.
        self._train: Optional[Tuple[float, float, float, float, float]] = None
        self._train_prev: Optional[Tuple[float, float, float, float,
                                         float]] = None
        self._train_tail = -1.0
        self._intr_free = 0.0
        # First-hop convoy state (symmetric concurrent bulk messages):
        # {token, share, origin, dur, members: {id(header): phase},
        #  bursts: {id(header): Burst}, tail}.
        # Each member's segments occupy a rigid round-robin slot grid —
        # segment s of the member at *phase* serializes over
        # [origin + (s*share + phase)*dur, +dur] — which is exactly the
        # interleaving packet FIFO produces when `share` equal senders
        # start together and pace to their own egress instants.
        self._convoy: Optional[dict] = None
        # Convoy token of the sibling trains most recently carried through
        # this (downstream) hop; their slot grids are disjoint by
        # construction, so a busy serializer is no reason to expand them.
        self._convoy_token: Any = None
        # Most recent message-opening single burst and its serialization
        # start: the convoy-formation candidate.  Senders rarely start at
        # the same instant — command queues stagger them by ~1 us — so the
        # first sender lays a solid train before its siblings exist.  While
        # nothing of that train has been delivered downstream it can still
        # be re-spaced onto a convoy grid, exactly as packet FIFO would
        # have interleaved the late arrivals.
        self._relay: Optional[Tuple[Burst, float]] = None
        self.segments_carried = 0
        # Delivery pump state (coalesced path): in-flight segments with their
        # delivery times.  The pipe is FIFO and the latency constant, so
        # delivery times are strictly increasing within one link and a single
        # self-rescheduling heap entry can drain the queue in order.
        self._in_flight: Deque[Tuple[float, Segment]] = deque()
        self._pump_scheduled = False
        # Span tracing (None = disabled): bound via bind_tracer.
        self._span_tracer = None
        #: per-reason flow-fidelity decision counts (see
        #: :data:`repro.network.fidelity.LINK_FLOW_DECISIONS`); stays empty
        #: in packet mode, where no bursts reach this link.
        self.flow_decisions: dict = {}

    def _flow_decision(self, kind: str, burst: Optional[Burst] = None) -> None:
        """Count one flow-path decision; under a tracer also drop a
        zero-duration ``phase="fidelity"`` marker span (record-only:
        attribution ignores the phase, the decision log renders it)."""
        d = self.flow_decisions
        d[kind] = d.get(kind, 0) + 1
        tracer = self._span_tracer
        if tracer is not None and burst is not None:
            op = burst.op_id
            if op >= 0:
                now = self.env._now
                tracer.span_complete(
                    self.name, f"flow:{kind}", now, now, phase="fidelity",
                    op_id=op, reason=kind, segments=burst.n_segments,
                    nbytes=burst.payload_bytes)

    def bind_tracer(self, span_tracer) -> None:
        """Record queueing delay behind this link as ``wait:link_busy``
        spans (record-only; ``None`` deactivates)."""
        self._span_tracer = span_tracer

    def connect(self, sink: Callable[[Segment], None]) -> None:
        """Attach the receiving side; exactly one sink per link."""
        if self._sink is not None:
            raise NetworkError(f"link {self.name!r} already has a sink")
        self._sink = sink

    def connect_burst(self, sink: Callable[[Burst], None],
                      at_tail: bool = False) -> None:
        """Attach the receiver of fast-forwarded bursts (flow fidelity).

        ``at_tail=False`` (switch hops) hands the burst over when its *head*
        segment arrives, so the next hop admits or expands it at the same
        instant the packet-level first segment would have shown up.
        ``at_tail=True`` (the terminal downlink) delivers at the *last*
        segment's arrival — the moment packet-level reassembly would have
        completed — saving the extra head-to-tail callback.
        """
        if self._burst_sink is not None:
            raise NetworkError(f"link {self.name!r} already has a burst sink")
        self._burst_sink = sink
        self._burst_at_tail = at_tail

    def can_fast_forward(self, owner: Any = None) -> bool:
        """True when a burst submitted *now* would take the analytic path:
        a burst-aware sink is wired and the serializer is idle — or busy
        only with *owner*'s own earlier sub-bursts (queued contenders force
        packet-level fidelity)."""
        if self._burst_sink is None:
            return False
        if self._pipe._free_at <= self.env._now or (
                owner is not None and self._last_owner is owner):
            return True
        convoy = self._convoy
        return (convoy is not None and self.env._now < convoy["tail"]
                and (id(owner) in convoy["members"]
                     or len(convoy["members"]) < convoy["share"]))

    @property
    def bytes_carried(self) -> int:
        return self._pipe.bytes_moved

    def utilization(self, since: float = 0.0) -> float:
        return self._pipe.utilization(since)

    def send(self, segment: Segment) -> float:
        """Enqueue *segment* for transmission.

        Returns the simulation time at which the last byte leaves the
        transmitter (useful for senders that pace subsequent segments).
        Delivery to the sink happens ``latency`` later.
        """
        if self._sink is None:
            raise NetworkError(f"link {self.name!r} has no sink connected")
        if segment.payload_bytes > self.MAX_SEGMENT_BYTES:
            raise NetworkError(
                f"segment of {segment.payload_bytes}B exceeds the "
                f"{self.MAX_SEGMENT_BYTES}B link segment bound; "
                "protocol engines must segment large messages"
            )
        env = self.env
        pipe = self._pipe
        if (self._train is not None and segment.n_frames == 1
                and pipe._free_at > env._now
                and pipe._free_at == self._train_tail):
            egress_done = self._interleave(segment)
            if egress_done >= 0.0:
                return egress_done
        tracer = self._span_tracer
        if tracer is not None:
            queued_until = self._pipe.busy_until()
            if queued_until > env.now:
                # The serializer is still busy with earlier traffic: the
                # segment queues.  Attribute the head-of-line delay to the
                # owning collective (ack/credit segments carry no op id).
                meta = getattr(segment.meta, "meta", None)
                op = getattr(meta, "op_id", -1)
                if op >= 0:
                    tracer.span_complete(
                        self.name, "wait:link_busy", env.now, queued_until,
                        phase="wait", op_id=op, cause="link_busy",
                        nbytes=segment.wire_bytes)
        egress_done = self._pipe.reserve(segment.wire_bytes)
        self._last_owner = segment.meta
        self.segments_carried += 1
        deliver_at = egress_done + self.latency
        if self.coalesce:
            # A back-to-back segment train keeps one heap entry alive instead
            # of one per segment: the pump delivers each segment at its exact
            # reserved time, so timing and per-link order are unchanged.  The
            # stored fire time reproduces the relative path's float rounding
            # (now + (deliver_at - now)) bit-for-bit.
            fire_at = env.now + (deliver_at - env.now)
            self._in_flight.append((fire_at, segment))
            if not self._pump_scheduled:
                self._pump_scheduled = True
                env.schedule_callback_at(fire_at, self._pump)
        else:
            env.schedule_callback(deliver_at - env.now, self._sink, segment)
        return egress_done

    def _pump(self) -> None:
        in_flight = self._in_flight
        _deliver_at, segment = in_flight.popleft()
        self._sink(segment)
        if in_flight:
            self.env.schedule_callback_at(in_flight[0][0], self._pump)
        else:
            self._pump_scheduled = False

    def _train_boundary(self, t: float) -> float:
        """Next instant the serializer yields between segments of the
        analytic train covering *t* — the slot packet-level FIFO would
        hand a queued single-frame segment.  Negative when no train
        window covers *t* (the caller falls back to a normal reserve)."""
        for train in (self._train_prev, self._train):
            if train is None:
                continue
            f_head, step, f_pen, start_last, f_last = train
            if t >= f_last:
                continue
            if t < f_head:
                return f_head
            if t < f_pen:
                k = math.ceil((t - f_head) / step)
                boundary = f_head + k * step
                return boundary if boundary < f_pen else f_pen
            if t < start_last:
                # Gap before the (late-arriving) last chunk: idle now.
                return t
            return f_last
        return -1.0

    def _interleave(self, segment: Segment) -> float:
        """Serialize a single-frame segment *inside* an analytic train.

        Packet-level FIFO lets a tiny control segment (ack, credit
        return, rendezvous CTS) slot in after the data segment currently
        on the wire, delaying it by at most one segment time — not by
        the train's whole reservation.  This reproduces that slot from
        the train's timing grid.  The train's own tail slip (one control
        frame of wire time, ~100 ns) is deliberately not modelled; the
        reservation and the already-scheduled burst delivery stand.

        Returns the egress-complete time, or a negative value when *now*
        falls outside every recorded train window.
        """
        env = self.env
        now = env._now
        start = self._train_boundary(now)
        if start < 0.0:
            return -1.0
        if self._intr_free > start:
            # A previously interleaved segment still occupies the slot:
            # queue right behind it, as FIFO would.
            start = self._intr_free
        pipe = self._pipe
        duration = pipe.overhead + segment.wire_bytes / pipe.rate
        egress_done = start + duration
        pipe._busy_time += duration
        pipe._bytes_moved += segment.wire_bytes
        pipe._record_busy(start, egress_done)
        self._intr_free = egress_done
        self.segments_carried += 1
        self._flow_decision("interleave")
        tracer = self._span_tracer
        if tracer is not None and start > now:
            meta = getattr(segment.meta, "meta", None)
            op = getattr(meta, "op_id", -1)
            if op >= 0:
                tracer.span_complete(
                    self.name, "wait:link_busy", now, start,
                    phase="wait", op_id=op, cause="link_busy",
                    nbytes=segment.wire_bytes)
        deliver_at = egress_done + self.latency
        if self.coalesce:
            fire_at = now + (deliver_at - now)
            self._in_flight.append((fire_at, segment))
            if not self._pump_scheduled:
                self._pump_scheduled = True
                env.schedule_callback_at(fire_at, self._pump)
        else:
            env.schedule_callback(deliver_at - now, self._sink, segment)
        return egress_done

    def send_burst(self, burst: Burst) -> float:
        """Carry a whole segment train in one analytic step (flow fidelity).

        The caller guarantees ``burst.head_at >= now``.  On an idle
        serializer the train's exit times have a closed form: the head
        finishes one serialization after it arrives, full segments follow at
        the slower of their arrival spacing and this link's serialization
        time, and the (possibly short) last segment starts when both it has
        arrived and the train ahead has drained.  One delivery callback
        replaces the per-segment pump.

        Occupancy bookkeeping matches per-segment ``reserve`` calls in
        total busy time and bytes; the busy *interval* is recorded as one
        span (arrival spacing gaps inside a train are not broken out).

        If the serializer is busy at ``burst.head_at`` — queued contenders,
        in-cast — the burst is expanded back into per-segment sends at the
        segments' exact availability times, restoring packet-level fidelity
        from this hop on.  The one exception: a serializer busy only with
        an earlier sub-burst of the *same message* continues analytically
        (FIFO behind one's own tail is exactly what the packet loop does).

        Returns the time the second-to-last segment finishes serializing:
        the instant the packet-level transmit loop hands off the last
        segment, which is what the first-hop sender paces to.  (After an
        expansion the return value is meaningless; first-hop senders go
        through :meth:`try_send_burst`, which declines instead of
        expanding, so only downstream hops ever expand here.)
        """
        if burst.segment_bytes > self.MAX_SEGMENT_BYTES:
            raise NetworkError(
                f"burst chunks of {burst.segment_bytes}B exceed the "
                f"{self.MAX_SEGMENT_BYTES}B link segment bound"
            )
        pipe = self._pipe
        head_at = burst.head_at
        if burst.convoy is not None:
            # Downstream hop of a convoy train: siblings interleave here
            # with disjoint slot grids, so carry it past the busy check.
            handoff = self._convoy_carry(burst)
            if handoff is not None:
                return handoff
            self._flow_decision("burst:expand:convoy", burst)
            return self._expand_burst(burst)
        if burst.share > 1:
            # First hop of a symmetric concurrent transmit: serialize on
            # the convoy's round-robin slot grid instead of back-to-back.
            handoff = self._convoy_send(burst)
            if handoff is not None:
                return handoff
            self._flow_decision("burst:expand:convoy", burst)
            return self._expand_burst(burst)
        if self._burst_sink is None:
            self._flow_decision("burst:expand:unwired", burst)
            return self._expand_burst(burst)
        if pipe._free_at > head_at and self._last_owner is not burst.meta:
            self._flow_decision("burst:expand:busy", burst)
            return self._expand_burst(burst)
        return self._single_burst(burst)

    def try_send_burst(self, burst: Burst) -> Optional[float]:
        """First-hop entry: carry *burst* analytically or decline.

        Unlike :meth:`send_burst` this never expands — a declined burst has
        no side effects, letting the transmitting POE fall back to its
        per-segment loop (which paces and interleaves correctly, where an
        expansion at the first hop would dump the whole train into the
        FIFO at once)."""
        if self._burst_sink is None:
            self._flow_decision("burst:decline:unwired", burst)
            return None
        if burst.share > 1:
            return self._convoy_send(burst)
        if (self._pipe._free_at > burst.head_at
                and self._last_owner is not burst.meta):
            self._flow_decision("burst:decline:busy", burst)
            return None
        return self._single_burst(burst)

    def _burst_target(self) -> Callable[[Burst], None]:
        """Delivery callback for a carried burst: the plain sink, or the
        tracing wrapper that first records this hop's synthetic wire span."""
        if self._span_tracer is not None:
            return self._traced_burst_sink
        return self._burst_sink

    def _traced_burst_sink(self, burst: Burst) -> None:
        """Deliver a carried burst, recording the elided wire interval as a
        synthetic ``wire:burst`` span on this link's timeline.

        The span is reconstructed from the burst's timing fields *at fire
        time*, not at carry time: a committed train may be re-spaced onto a
        convoy grid (:meth:`_respace`) until its first delivery callback, so
        only now are ``head_at``/``last_at`` final.  Every carry path sets
        ``head_at = serialization_start + dur_full + latency``, which makes
        the serialization window ``[head_at - latency - dur_full,
        last_at - latency]`` — the same interval the per-segment sends would
        have occupied.  The sink runs after recording because downstream
        hops re-stamp the burst in place.
        """
        tracer = self._span_tracer
        if tracer is not None:
            op = burst.op_id
            if op >= 0:
                pipe = self._pipe
                dur = pipe.overhead + burst.wire_full / pipe.rate
                t1 = burst.last_at - self.latency
                t0 = burst.head_at - self.latency - dur
                tracer.span_complete(
                    self.name, "wire:burst", t0, t1, phase="wire", op_id=op,
                    nbytes=burst.payload_bytes, segments=burst.n_segments)
        self._burst_sink(burst)

    def _single_burst(self, burst: Burst) -> float:
        self._flow_decision("burst:carry", burst)
        pipe = self._pipe
        head_at = burst.head_at
        # Serialization of the head starts when it has both arrived and the
        # tail of this message's previous sub-burst has drained.
        base = head_at if head_at >= pipe._free_at else pipe._free_at
        n = burst.n_segments
        rate = pipe.rate
        dur_full = pipe.overhead + burst.wire_full / rate
        dur_last = pipe.overhead + burst.wire_last / rate
        step = dur_full if dur_full > burst.spacing else burst.spacing
        f_head = base + dur_full
        f_pen = f_head + (n - 2) * step
        start_last = f_pen if f_pen > burst.last_at else burst.last_at
        f_last = start_last + dur_last
        pipe._free_at = f_last
        pipe._busy_time += (n - 1) * dur_full + dur_last
        pipe._bytes_moved += burst.wire_total
        pipe._record_busy(base, f_last)
        self._relay = (burst, base) if burst.seq_base == 0 else None
        self._last_owner = burst.meta
        self._train_prev = self._train
        self._train = (f_head, step, f_pen, start_last, f_last)
        self._train_tail = f_last
        self.segments_carried += n
        Environment.total_events_fast_forwarded += n - 1
        latency = self.latency
        burst.head_at = f_head + latency
        burst.spacing = step
        burst.last_at = f_last + latency
        self.env.schedule_callback_at(
            burst.last_at if self._burst_at_tail else burst.head_at,
            self._burst_target(), burst)
        return f_pen

    def _convoy_send(self, burst: Burst) -> Optional[float]:
        """First-hop convoy carry: one of ``share`` symmetric concurrent
        transmits, serialized on a rigid round-robin slot grid.

        When ``share`` equal senders start together and each paces its next
        segment to its own egress instant, packet FIFO interleaves them
        deterministically: the member admitted at *phase* owns the slots
        ``origin + (s*share + phase)*dur`` for its message-level segment
        ``s``.  The grid is pinned at formation and derived from each
        sub-burst's ``seq_base``, so continuation sub-bursts land on their
        slots no matter when their handoffs fire.

        Returns the handoff time, or ``None`` to decline (formation needs
        an idle serializer; joiners must arrive before their first slot;
        membership, share and segment timing must match the grid).  A
        declined first-hop burst must NOT be expanded — the POE falls back
        to its per-segment loop, which interleaves correctly.
        """
        if self._burst_sink is None:
            self._flow_decision("burst:decline:unwired", burst)
            return None
        pipe = self._pipe
        env = self.env
        dur = pipe.overhead + burst.wire_full / pipe.rate
        convoy = self._convoy
        if convoy is not None and env._now >= convoy["tail"]:
            convoy = self._convoy = None
        owner = burst.meta
        if convoy is None:
            convoy = self._convoy_form(burst, dur)
            if convoy is None:
                self._flow_decision("convoy:decline", burst)
                return None
        if dur != convoy["dur"]:
            self._flow_decision("convoy:decline", burst)
            return None
        members = convoy["members"]
        phase = members.get(id(owner))
        if phase is None:
            if burst.share == convoy["share"] + 1:
                # One more bulk transmit in flight than when the convoy
                # formed: a late arrival.  Widen the grid for everyone
                # (exact while nothing has been delivered downstream).
                if not self._convoy_grow(convoy):
                    self._flow_decision("convoy:decline", burst)
                    return None
                self._flow_decision("convoy:widen", burst)
            elif burst.share != convoy["share"]:
                self._flow_decision("convoy:decline", burst)
                return None
            phase = len(members)
            if (burst.seq_base != 0 or phase >= convoy["share"]
                    or burst.head_at > convoy["origin"] + phase * dur):
                self._flow_decision("convoy:decline", burst)
                return None
            members[id(owner)] = phase
            self._flow_decision("convoy:join", burst)
        elif burst.share != convoy["share"]:
            self._flow_decision("convoy:decline", burst)
            return None
        self._flow_decision("convoy:lay", burst)
        f_pen = self._convoy_lay(burst, convoy, phase)
        n = burst.n_segments
        pipe._busy_time += ((n - 1) * dur
                            + pipe.overhead + burst.wire_last / pipe.rate)
        pipe._bytes_moved += burst.wire_total
        self._last_owner = owner
        self.segments_carried += n
        Environment.total_events_fast_forwarded += n - 1
        env.schedule_callback_at(
            burst.last_at if self._burst_at_tail else burst.head_at,
            self._burst_target(), burst)
        return f_pen

    def _convoy_form(self, burst: Burst, dur: float) -> Optional[dict]:
        """Start a convoy for *burst*'s message, or return ``None``.

        Two ways in:

        - an idle serializer — the senders reached the link at the same
          instant and the grid simply starts at ``burst.head_at``;
        - a *re-spaceable* solo train — one sender started alone (command
          queues stagger real senders by ~1 us) and laid a solid opening
          sub-burst, but none of it has been delivered downstream yet
          (the first callback fires one serialization plus one propagation
          after its start), so the committed train can still be re-spaced
          onto the round-robin grid.  That re-spacing reproduces packet
          FIFO exactly: the founder's head segment is on the wire either
          way, and each later sender's first segment queues right behind
          whatever is serializing when it shows up — slot ``phase``.
        """
        pipe = self._pipe
        env = self.env
        if pipe._free_at <= burst.head_at:
            convoy = self._convoy = {
                "token": object(), "share": burst.share,
                "origin": burst.head_at, "dur": dur,
                "members": {}, "bursts": {}, "tail": burst.head_at,
            }
            self._flow_decision("convoy:form", burst)
            return convoy
        relay = self._relay
        if relay is None:
            return None
        founder, base = relay
        f_dur = pipe.overhead + founder.wire_full / pipe.rate
        if (founder.seq_base != 0 or f_dur != dur
                or env._now >= base + dur + self.latency):
            return None
        self._relay = None
        convoy = self._convoy = {
            "token": object(), "share": burst.share,
            "origin": base, "dur": dur,
            "members": {id(founder.meta): 0},
            "bursts": {id(founder.meta): founder}, "tail": base,
        }
        self._flow_decision("convoy:form:respace", burst)
        self._respace(founder, convoy, 0)
        return convoy

    def _convoy_grow(self, convoy: dict) -> bool:
        """Admit one more member: widen every committed train's spacing.

        Exact only while the whole convoy is younger than one delivery:
        every committed burst is still its message's opening sub-burst and
        no downstream callback has fired, so heads stay pinned to their
        (step-independent) slots and only the spacing stretches.
        """
        if self.env._now >= convoy["origin"] + convoy["dur"] + self.latency:
            return False
        for b in convoy["bursts"].values():
            if b.seq_base != 0:
                return False
        convoy["share"] += 1
        members = convoy["members"]
        for key, b in convoy["bursts"].items():
            self._respace(b, convoy, members[key])
        return True

    def _respace(self, burst: Burst, convoy: dict, phase: int) -> float:
        """Move an already-committed train onto the convoy's current grid.

        Re-stamps the burst's timing in place — safe because its delivery
        callback reads the fields when it fires, and the head time (slot
        ``origin + phase*dur`` plus one serialization) does not depend on
        the grid step for an opening sub-burst.  Wire bookkeeping (busy
        time, bytes) was charged when the train was first laid and does
        not change with spacing; only the busy span and ``free_at`` grow.
        Returns the handoff (the penultimate slot's egress).
        """
        pipe = self._pipe
        dur = convoy["dur"]
        n = burst.n_segments
        dur_last = pipe.overhead + burst.wire_last / pipe.rate
        step = convoy["share"] * dur
        start_head = convoy["origin"] + phase * dur + burst.seq_base * step
        f_head = start_head + dur
        f_pen = f_head + (n - 2) * step
        start_last = start_head + (n - 1) * step
        f_last = start_last + dur_last
        if f_last > convoy["tail"]:
            convoy["tail"] = f_last
        if f_last > pipe._free_at:
            pipe._free_at = f_last
        pipe._record_busy(start_head, f_last)
        latency = self.latency
        burst.convoy = convoy["token"]
        burst.spacing = step
        burst.head_at = f_head + latency
        burst.last_at = f_last + latency
        return f_pen

    def _convoy_lay(self, burst: Burst, convoy: dict, phase: int) -> float:
        """Put a member's sub-burst on its slots; returns the handoff."""
        f_pen = self._respace(burst, convoy, phase)
        convoy["bursts"][id(burst.meta)] = burst
        # A convoy train has no idle inter-segment gaps — the slots between
        # one member's segments belong to its siblings — so single-frame
        # control segments must NOT interleave into the grid.  They queue
        # behind the committed tail instead, exactly as packet FIFO orders
        # a completion notification after the data it follows.
        self._train = self._train_prev = None
        self._train_tail = -1.0
        return f_pen

    def _convoy_carry(self, burst: Burst) -> Optional[float]:
        """Downstream-hop carry of a convoy member's train.

        Upstream, sibling trains were spaced onto disjoint slot grids and
        store-and-forward preserves the stagger, so every segment here
        serializes on arrival: the serializer being "busy" with a sibling
        of the same convoy is occupancy in complementary slots, not
        contention.  Declines (-> expansion) when the slots are too narrow
        for this hop's rate or the occupancy is foreign traffic.
        """
        if self._burst_sink is None:
            return None
        pipe = self._pipe
        head_at = burst.head_at
        token = burst.convoy
        if (pipe._free_at > head_at and self._convoy_token is not token
                and self._last_owner is not burst.meta):
            return None
        dur = pipe.overhead + burst.wire_full / pipe.rate
        if dur * burst.share > burst.spacing * (1.0 + 1e-9):
            return None
        n = burst.n_segments
        dur_last = pipe.overhead + burst.wire_last / pipe.rate
        step = burst.spacing if burst.spacing > dur else dur
        f_head = head_at + dur
        f_pen = f_head + (n - 2) * step
        start_last = burst.last_at if burst.last_at > f_pen else f_pen
        f_last = start_last + dur_last
        if f_last > pipe._free_at:
            pipe._free_at = f_last
        pipe._busy_time += (n - 1) * dur + dur_last
        pipe._bytes_moved += burst.wire_total
        pipe._record_busy(head_at, f_last)
        self._last_owner = burst.meta
        self._convoy_token = token
        # Sibling trains fill each other's slot gaps: no control-segment
        # interleaving inside a convoy (see _convoy_lay).
        self._train = self._train_prev = None
        self._train_tail = -1.0
        self.segments_carried += n
        Environment.total_events_fast_forwarded += n - 1
        latency = self.latency
        burst.head_at = f_head + latency
        burst.spacing = step
        burst.last_at = f_last + latency
        self._flow_decision("convoy:carry", burst)
        self.env.schedule_callback_at(
            burst.last_at if self._burst_at_tail else burst.head_at,
            self._burst_target(), burst)
        return f_pen

    def _expand_burst(self, burst: Burst) -> float:
        """Replay a burst as individual segments at their availability
        times — the automatic packet-level fallback at congested hops."""
        env = self.env
        now = env._now
        send = self.send
        for avail, segment in burst.iter_segments():
            if avail <= now:
                send(segment)
            else:
                env.schedule_callback_at(avail, send, segment)
        return 0.0

    def register_metrics(self, registry, **labels) -> None:
        """Expose carried traffic and occupancy as callback gauges."""
        registry.gauge("link_segments_carried",
                       fn=lambda: float(self.segments_carried),
                       link=self.name, **labels)
        for reason in LINK_FLOW_DECISIONS:
            registry.gauge(
                "link_flow_decisions",
                fn=lambda r=reason: float(self.flow_decisions.get(r, 0.0)),
                link=self.name, reason=reason, **labels)
        self._pipe.register_metrics(registry, name="link",
                                    link=self.name, **labels)

    def __repr__(self) -> str:
        return f"<Link {self.name!r} {units.to_gbps(self.rate):.0f} Gb/s>"
