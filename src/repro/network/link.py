"""Point-to-point link: serialization + propagation.

A :class:`Link` is unidirectional; duplex connections are two links.  The
transmitter serializes segments at the link rate (FIFO — this is where egress
contention and in-cast congestion appear) and the receiver sees the segment
after an additional fixed propagation/PHY latency.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.errors import NetworkError
from repro.sim import BandwidthResource, Environment
from repro.network.packet import Segment
from repro import units


class Link:
    """Unidirectional serializing link.

    Args:
        env: simulation environment.
        rate: bytes/second (default 100 Gb/s).
        latency: propagation + PHY/MAC latency in seconds.
        name: for tracing.
    """

    #: Largest segment a link accepts.  The fabric is store-and-forward at
    #: segment granularity, so bounding segments bounds the per-hop
    #: pipelining error; protocol engines segment larger messages.
    MAX_SEGMENT_BYTES = 256 * units.KIB

    def __init__(
        self,
        env: Environment,
        rate: float = units.gbps(100),
        latency: float = units.ns(500),
        name: str = "link",
        coalesce: bool = True,
    ):
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self.env = env
        self.rate = rate
        self.latency = latency
        self.name = name
        self.coalesce = coalesce
        self._pipe = BandwidthResource(env, rate, name=f"{name}.pipe")
        self._sink: Optional[Callable[[Segment], None]] = None
        self.segments_carried = 0
        # Delivery pump state (coalesced path): in-flight segments with their
        # delivery times.  The pipe is FIFO and the latency constant, so
        # delivery times are strictly increasing within one link and a single
        # self-rescheduling heap entry can drain the queue in order.
        self._in_flight: Deque[Tuple[float, Segment]] = deque()
        self._pump_scheduled = False
        # Span tracing (None = disabled): bound via bind_tracer.
        self._span_tracer = None

    def bind_tracer(self, span_tracer) -> None:
        """Record queueing delay behind this link as ``wait:link_busy``
        spans (record-only; ``None`` deactivates)."""
        self._span_tracer = span_tracer

    def connect(self, sink: Callable[[Segment], None]) -> None:
        """Attach the receiving side; exactly one sink per link."""
        if self._sink is not None:
            raise NetworkError(f"link {self.name!r} already has a sink")
        self._sink = sink

    @property
    def bytes_carried(self) -> int:
        return self._pipe.bytes_moved

    def utilization(self, since: float = 0.0) -> float:
        return self._pipe.utilization(since)

    def send(self, segment: Segment) -> float:
        """Enqueue *segment* for transmission.

        Returns the simulation time at which the last byte leaves the
        transmitter (useful for senders that pace subsequent segments).
        Delivery to the sink happens ``latency`` later.
        """
        if self._sink is None:
            raise NetworkError(f"link {self.name!r} has no sink connected")
        if segment.payload_bytes > self.MAX_SEGMENT_BYTES:
            raise NetworkError(
                f"segment of {segment.payload_bytes}B exceeds the "
                f"{self.MAX_SEGMENT_BYTES}B link segment bound; "
                "protocol engines must segment large messages"
            )
        env = self.env
        tracer = self._span_tracer
        if tracer is not None:
            queued_until = self._pipe.busy_until()
            if queued_until > env.now:
                # The serializer is still busy with earlier traffic: the
                # segment queues.  Attribute the head-of-line delay to the
                # owning collective (ack/credit segments carry no op id).
                meta = getattr(segment.meta, "meta", None)
                op = getattr(meta, "op_id", -1)
                if op >= 0:
                    tracer.span_complete(
                        self.name, "wait:link_busy", env.now, queued_until,
                        phase="wait", op_id=op, cause="link_busy",
                        nbytes=segment.wire_bytes)
        egress_done = self._pipe.reserve(segment.wire_bytes)
        self.segments_carried += 1
        deliver_at = egress_done + self.latency
        if self.coalesce:
            # A back-to-back segment train keeps one heap entry alive instead
            # of one per segment: the pump delivers each segment at its exact
            # reserved time, so timing and per-link order are unchanged.  The
            # stored fire time reproduces the relative path's float rounding
            # (now + (deliver_at - now)) bit-for-bit.
            fire_at = env.now + (deliver_at - env.now)
            self._in_flight.append((fire_at, segment))
            if not self._pump_scheduled:
                self._pump_scheduled = True
                env.schedule_callback_at(fire_at, self._pump)
        else:
            env.schedule_callback(deliver_at - env.now, self._sink, segment)
        return egress_done

    def _pump(self) -> None:
        in_flight = self._in_flight
        _deliver_at, segment = in_flight.popleft()
        self._sink(segment)
        if in_flight:
            self.env.schedule_callback_at(in_flight[0][0], self._pump)
        else:
            self._pump_scheduled = False

    def register_metrics(self, registry, **labels) -> None:
        """Expose carried traffic and occupancy as callback gauges."""
        registry.gauge("link_segments_carried",
                       fn=lambda: float(self.segments_carried),
                       link=self.name, **labels)
        self._pipe.register_metrics(registry, name="link",
                                    link=self.name, **labels)

    def __repr__(self) -> str:
        return f"<Link {self.name!r} {units.to_gbps(self.rate):.0f} Gb/s>"
