"""Latency-insensitive FIFO channels — the AXI-Stream analogue.

Hardware blocks in ACCL+ talk through AXI-Stream interfaces with ready/valid
handshakes.  :class:`Channel` models that: a bounded FIFO whose ``put`` blocks
when full (back-pressure) and whose ``get`` blocks when empty.  Channels carry
arbitrary Python items (command words, message descriptors, data segments).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.kernel import Environment, Event


class ChannelClosed(Exception):
    """Raised to getters when a channel is closed and drained."""


class Channel:
    """Bounded FIFO with blocking put/get, usable from processes via yield.

    ``capacity=None`` means unbounded (useful for command queues where the
    paper notes "FIFO queues are incorporated into all command paths").
    """

    def __init__(
        self,
        env: Environment,
        capacity: Optional[int] = None,
        name: str = "channel",
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> Event:
        """Return an event that succeeds once *item* is accepted by the FIFO."""
        if self._closed:
            raise ChannelClosed(f"put on closed channel {self.name!r}")
        ev = Event(self.env)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the FIFO is full."""
        if self._closed:
            raise ChannelClosed(f"put on closed channel {self.name!r}")
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        ev = Event(self.env)
        if self._items:
            item = self._items.popleft()
            ev.succeed(item)
            self._admit_putter()
        elif self._closed:
            ev.fail(ChannelClosed(f"get on closed channel {self.name!r}"))
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple:
        """Non-blocking get; returns ``(ok, item)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def peek(self) -> Any:
        """Look at the head item without removing it (None when empty)."""
        return self._items[0] if self._items else None

    def close(self) -> None:
        """Close the channel; pending and future gets fail with ChannelClosed."""
        if self._closed:
            return
        self._closed = True
        while self._getters:
            self._getters.popleft().fail(
                ChannelClosed(f"channel {self.name!r} closed")
            )

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.succeed()

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else self.capacity
        return f"<Channel {self.name!r} {len(self._items)}/{cap}>"
