"""Sample recording and summary statistics for experiments."""

from __future__ import annotations

import math
from typing import List, Tuple


class Monitor:
    """Records ``(time, value)`` samples and summarizes them.

    Used by benchmarks to collect per-run latencies and by components to
    expose occupancy counters without printing anything themselves.
    """

    def __init__(self, name: str = "monitor"):
        self.name = name
        self._samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        self._samples.append((time, float(value)))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def values(self) -> List[float]:
        return [v for _, v in self._samples]

    @property
    def times(self) -> List[float]:
        return [t for t, _ in self._samples]

    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return sum(self.values) / len(self._samples)

    def minimum(self) -> float:
        if not self._samples:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return min(self.values)

    def maximum(self) -> float:
        if not self._samples:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return max(self.values)

    def stddev(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        mu = self.mean()
        var = sum((v - mu) ** 2 for v in self.values) / (len(self._samples) - 1)
        return math.sqrt(var)

    def percentile(self, pct: float) -> float:
        """Linear-interpolated percentile, ``pct`` in [0, 100]."""
        if not self._samples:
            raise ValueError(f"monitor {self.name!r} has no samples")
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = pct / 100.0 * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def clear(self) -> None:
        self._samples.clear()

    def summary(self) -> dict:
        """Dict summary convenient for table rows."""
        return {
            "name": self.name,
            "count": len(self._samples),
            "mean": self.mean(),
            "min": self.minimum(),
            "max": self.maximum(),
            "p50": self.percentile(50),
            "p99": self.percentile(99) if len(self._samples) > 1 else self.maximum(),
        }

    def __repr__(self) -> str:
        return f"<Monitor {self.name!r} n={len(self._samples)}>"
