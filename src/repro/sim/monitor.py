"""Sample recording and summary statistics for experiments."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def percentile_of(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile of *values*, ``pct`` in [0, 100].

    Shared by :class:`Monitor` and :class:`repro.obs.metrics.Histogram` so
    both report identical quantiles for identical samples.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = pct / 100.0 * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi or ordered[lo] == ordered[hi]:
        return ordered[lo]
    frac = rank - lo
    # Clamp to the bracketing samples: the products can round outside
    # [lo, hi] for subnormal values (e.g. 5e-324 * 0.5 underflows to 0),
    # which would break percentile monotonicity.
    val = ordered[lo] * (1 - frac) + ordered[hi] * frac
    return min(max(val, ordered[lo]), ordered[hi])


class Monitor:
    """Records ``(time, value)`` samples and summarizes them.

    Used by benchmarks to collect per-run latencies and by components to
    expose occupancy counters without printing anything themselves.
    """

    def __init__(self, name: str = "monitor"):
        self.name = name
        self._samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        self._samples.append((time, float(value)))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def values(self) -> List[float]:
        return [v for _, v in self._samples]

    @property
    def times(self) -> List[float]:
        return [t for t, _ in self._samples]

    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return sum(self.values) / len(self._samples)

    def minimum(self) -> float:
        if not self._samples:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return min(self.values)

    def maximum(self) -> float:
        if not self._samples:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return max(self.values)

    def stddev(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        mu = self.mean()
        var = sum((v - mu) ** 2 for v in self.values) / (len(self._samples) - 1)
        return math.sqrt(var)

    def percentile(self, pct: float) -> float:
        """Linear-interpolated percentile, ``pct`` in [0, 100]."""
        if not self._samples:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return percentile_of(self.values, pct)

    def register_metrics(self, registry, name: str = None, **labels) -> None:
        """Expose this monitor's summary through a metrics registry.

        Registers callback gauges, so the monitor itself stays the single
        source of truth and pays nothing while no registry is attached.
        """
        base = name or self.name
        registry.gauge(f"{base}_count", fn=lambda: float(len(self)), **labels)
        registry.gauge(
            f"{base}_mean",
            fn=lambda: self.mean() if self._samples else 0.0, **labels)
        registry.gauge(
            f"{base}_p99",
            fn=lambda: (self.percentile(99) if self._samples else 0.0),
            **labels)

    def clear(self) -> None:
        self._samples.clear()

    def summary(self) -> dict:
        """Dict summary convenient for table rows."""
        return {
            "name": self.name,
            "count": len(self._samples),
            "mean": self.mean(),
            "min": self.minimum(),
            "max": self.maximum(),
            "p50": self.percentile(50),
            "p99": self.percentile(99) if len(self._samples) > 1 else self.maximum(),
        }

    def __repr__(self) -> str:
        return f"<Monitor {self.name!r} n={len(self._samples)}>"
