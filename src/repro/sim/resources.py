"""Shared-resource models: counted resources and serializing byte-pipes.

:class:`BandwidthResource` is the workhorse of the timing model.  Links,
memory ports and PCIe lanes are all byte-pipes: a transfer of *n* bytes
occupies the pipe for ``n / rate`` seconds, transfers are serialized FIFO,
and an optional per-transfer overhead models fixed command/packet costs.
Occupancy is tracked analytically (a "free-at" watermark) so that a transfer
costs O(1) events regardless of its size.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.sim.kernel import Environment, Event


class Resource:
    """A counted resource with FIFO queueing (e.g. DMA engines, QP slots)."""

    __slots__ = ("env", "capacity", "name", "_in_use", "_waiters")

    def __init__(self, env: Environment, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Event that succeeds when a slot is granted.  Pair with release()."""
        ev = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter; _in_use is unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:
        return f"<Resource {self.name!r} {self._in_use}/{self.capacity}>"


class BandwidthResource:
    """A FIFO byte-pipe with fixed rate and optional per-transfer overhead.

    ``transfer(nbytes)`` returns an event that succeeds when the last byte
    has left the pipe.  Back-to-back transfers queue behind each other, so
    sustained throughput can never exceed ``rate`` and small transfers pay
    ``per_transfer_overhead`` each — exactly the behaviour that produces the
    classic throughput-vs-message-size ramp of Figure 7.
    """

    __slots__ = ("env", "rate", "overhead", "name", "_free_at", "_busy_time",
                 "_bytes_moved", "_busy_intervals")

    def __init__(
        self,
        env: Environment,
        rate_bytes_per_s: float,
        per_transfer_overhead_s: float = 0.0,
        name: str = "pipe",
    ):
        if rate_bytes_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_bytes_per_s}")
        if per_transfer_overhead_s < 0:
            raise ValueError("overhead must be non-negative")
        self.env = env
        self.rate = float(rate_bytes_per_s)
        self.overhead = float(per_transfer_overhead_s)
        self.name = name
        self._free_at = 0.0
        self._busy_time = 0.0
        self._bytes_moved = 0
        # Busy time in timestamped form: merged, non-overlapping
        # [start, end] occupancy intervals, sorted by start.  Back-to-back
        # transfers extend the last interval, so the list only grows at
        # idle gaps and windowed queries stay cheap.
        self._busy_intervals: List[List[float]] = []

    @property
    def bytes_moved(self) -> int:
        return self._bytes_moved

    def _record_busy(self, start: float, finish: float) -> None:
        if self._busy_intervals and start <= self._busy_intervals[-1][1]:
            last = self._busy_intervals[-1]
            last[1] = max(last[1], finish)
        else:
            self._busy_intervals.append([start, finish])

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of wall time the pipe was busy in ``[since, now]``.

        Occupancy scheduled beyond *now* (a transfer still in flight) is
        clipped to the window, so the result is exact for any ``since``.
        """
        now = self.env.now
        elapsed = now - since
        if elapsed <= 0:
            return 0.0
        busy = 0.0
        for start, end in reversed(self._busy_intervals):
            if end <= since:
                break
            busy += max(0.0, min(end, now) - max(start, since))
        return min(1.0, busy / elapsed)

    def busy_until(self) -> float:
        """Simulation time at which the pipe becomes idle."""
        return max(self._free_at, self.env.now)

    def occupancy_delay(self, nbytes: int) -> float:
        """Time from *now* until a transfer of *nbytes* would finish."""
        start = max(self._free_at, self.env.now)
        return (start - self.env.now) + self.overhead + nbytes / self.rate

    def transfer(self, nbytes: int) -> Event:
        """Occupy the pipe for *nbytes*; event succeeds at completion time."""
        finish = self.reserve(nbytes)
        return self.env.timeout(finish - self.env._now, value=nbytes)

    def reserve(self, nbytes: int) -> float:
        """Like :meth:`transfer` but returns the completion *time* without an
        event — for components that aggregate several pipe stages analytically.

        This is the hottest non-kernel function in a sweep (every segment on
        every link lands here), so the busy-interval merge is inlined.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        now = self.env._now
        free_at = self._free_at
        start = free_at if free_at > now else now
        duration = self.overhead + nbytes / self.rate
        finish = start + duration
        self._free_at = finish
        self._busy_time += duration
        self._bytes_moved += nbytes
        intervals = self._busy_intervals
        if intervals:
            last = intervals[-1]
            if start <= last[1]:
                if finish > last[1]:
                    last[1] = finish
                return finish
        intervals.append([start, finish])
        return finish

    def register_metrics(self, registry, name: Optional[str] = None,
                         **labels) -> None:
        """Expose pipe throughput and utilization as callback gauges.

        Reading a gauge samples the live pipe; :meth:`reserve` — the
        hottest function in a sweep — is not touched.
        """
        base = name or self.name
        registry.gauge(f"{base}_bytes_moved",
                       fn=lambda: float(self._bytes_moved), **labels)
        registry.gauge(f"{base}_utilization",
                       fn=lambda: self.utilization(), **labels)

    def __repr__(self) -> str:
        gbps = self.rate * 8 / 1e9
        return f"<BandwidthResource {self.name!r} {gbps:.1f} Gb/s>"


class TokenBucket:
    """Credit-based flow control (RDMA-style tokens).

    The paper notes RDMA's token-based flow control makes it well-suited to
    the sophisticated rendezvous algorithms; TCP's window plays a similar
    role.  This primitive backs both.
    """

    __slots__ = ("env", "capacity", "name", "_available", "_waiters")

    def __init__(self, env: Environment, tokens: int, name: str = "tokens",
                 initial: Optional[int] = None):
        if tokens < 1:
            raise ValueError("token count must be >= 1")
        self.env = env
        self.capacity = tokens
        self.name = name
        self._available = tokens if initial is None else initial
        self._waiters: Deque[tuple] = deque()  # (event, amount)

    @property
    def available(self) -> int:
        return self._available

    def take(self, amount: int = 1) -> Event:
        if amount > self.capacity:
            raise ValueError(
                f"requested {amount} tokens, bucket holds only {self.capacity}"
            )
        ev = Event(self.env)
        if self._available >= amount and not self._waiters:
            self._available -= amount
            ev.succeed(amount)
        else:
            self._waiters.append((ev, amount))
        return ev

    def give(self, amount: int = 1) -> None:
        self._available = min(self.capacity, self._available + amount)
        while self._waiters and self._waiters[0][1] <= self._available:
            ev, amt = self._waiters.popleft()
            self._available -= amt
            ev.succeed(amt)

    def register_metrics(self, registry, name: Optional[str] = None,
                         **labels) -> None:
        """Expose credit occupancy as callback gauges."""
        base = name or self.name
        registry.gauge(f"{base}_available",
                       fn=lambda: float(self._available), **labels)
        registry.gauge(f"{base}_waiters",
                       fn=lambda: float(len(self._waiters)), **labels)
