"""Discrete-event simulation kernel.

A compact, dependency-free engine in the style of SimPy.  Processes are
generator coroutines that yield *events*; the :class:`~repro.sim.kernel.Environment`
advances virtual time along an event heap.

Public surface:

- :class:`Environment`, :class:`Event`, :class:`Timeout`, :class:`Process`,
  :class:`Interrupt` -- the kernel (:mod:`repro.sim.kernel`).
- :func:`all_of`, :func:`any_of` -- event combinators.
- :class:`Channel` -- latency-insensitive FIFO stream (AXI-Stream analogue).
- :class:`BandwidthResource` -- serializing byte-pipe (link/memory-port model).
- :class:`Resource` -- counted resource with FIFO queueing.
- :class:`Monitor` -- time-series sample recorder with summary statistics.
"""

from repro.sim.kernel import (
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    all_of,
    any_of,
)
from repro.sim.channel import Channel, ChannelClosed
from repro.sim.resources import BandwidthResource, Resource
from repro.sim.monitor import Monitor

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "all_of",
    "any_of",
    "Channel",
    "ChannelClosed",
    "BandwidthResource",
    "Resource",
    "Monitor",
]
