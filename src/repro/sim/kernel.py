"""The discrete-event kernel: environment, events, processes.

The design follows SimPy's proven model closely enough that anyone familiar
with SimPy can read the rest of the codebase, but it is written from scratch
and trimmed to what the ACCL+ simulation needs:

- an event heap ordered by ``(time, priority, sequence)``;
- :class:`Event` objects with success/failure values and callback lists;
- :class:`Process` coroutines that suspend on yielded events and may be
  interrupted (used for TCP retransmission timers);
- ``all_of`` / ``any_of`` combinators for barrier-style joins.

Time is a ``float`` in **seconds**; components express their own constants in
ns/us via the helpers in :mod:`repro.units`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Raised for kernel misuse (double-trigger, running a finished sim...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value supplied by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()  # sentinel: event value not yet decided


class Event:
    """A one-shot occurrence that processes can wait on.

    An event goes through at most one transition: *pending* -> *triggered*
    (either succeeded with a value, or failed with an exception).  Once
    triggered it is scheduled on the environment's heap and its callbacks run
    when the heap pops it.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired callbacks yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (``callbacks`` is discarded then)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully, scheduling callbacks after *delay*."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not crash on it."""
        self._defused = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event is processed."""
        if self.callbacks is None:
            raise SimulationError(f"{self!r} has already been processed")
        self.callbacks.append(fn)

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self.env._schedule(self, delay)


class Process(Event):
    """A running generator coroutine.  As an :class:`Event` it triggers when
    the generator returns (value = ``StopIteration`` value) or raises.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume once at the current time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._schedule(init, 0.0)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        if self._target is None:
            raise SimulationError("cannot interrupt a process being initialized")
        # Detach from the event we were waiting on, then resume with failure.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._defused = True
        wakeup.callbacks.append(self._resume)
        self.env._schedule(wakeup, 0.0)

    def _resume(self, event: Event) -> None:
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, 0.0)
                return
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env._schedule(self, 0.0)
                return

            if not isinstance(next_event, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
            if next_event.callbacks is None:
                # Already processed: resume immediately with its value.
                event = next_event
                continue
            next_event.add_callback(self._resume)
            self._target = next_event
            return

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Condition(Event):
    """Base for ``all_of`` / ``any_of``: triggers from a set of child events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            i: ev._value
            for i, ev in enumerate(self._events)
            if ev.triggered
        }


class AllOf(Condition):
    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._results())


class AnyOf(Condition):
    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._results())


def all_of(env: "Environment", events: Iterable[Event]) -> Event:
    """Event that succeeds once every event in *events* has succeeded."""
    return AllOf(env, events)


def any_of(env: "Environment", events: Iterable[Event]) -> Event:
    """Event that succeeds once any event in *events* has succeeded."""
    return AnyOf(env, events)


class Environment:
    """Holds simulation time and the event heap, and runs the main loop."""

    #: process-wide instrumentation, accumulated across every Environment
    #: instance; the benchmark sweep runner reads deltas around each point
    #: to report per-point event counts and simulated time.
    total_events_processed: int = 0
    total_sim_time: float = 0.0

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: List[tuple] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def _schedule(self, event: Event, delay: float) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def schedule_callback(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run *fn* after *delay* (a convenience for non-process components)."""
        ev = Timeout(self, delay)
        ev.add_callback(lambda _ev: fn())
        return ev

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds after *delay* seconds."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process running *generator*."""
        return Process(self, generator, name=name)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("no more events")
        when, _seq, event = heapq.heappop(self._heap)
        Environment.total_events_processed += 1
        if when > self._now:
            Environment.total_sim_time += when - self._now
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for fn in callbacks:
            fn(event)
        if event._ok is False and not event._defused:
            # An unhandled failure: surface it instead of losing it silently.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        - ``until=None``: run until the heap drains.
        - ``until`` is an :class:`Event`: run until it triggers, return its value.
        - ``until`` is a number: run until that simulation time.
        """
        stop_time = None
        stop_event = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        while self._heap:
            if stop_event is not None and stop_event.processed:
                break
            if stop_time is not None and self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ended before the awaited event triggered "
                    "(deadlock or missing stimulus)"
                )
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if stop_time is not None:
            self._now = stop_time
        return None
