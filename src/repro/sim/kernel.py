"""The discrete-event kernel: environment, events, processes.

The design follows SimPy's proven model closely enough that anyone familiar
with SimPy can read the rest of the codebase, but it is written from scratch
and trimmed to what the ACCL+ simulation needs:

- an event heap ordered by ``(time, sequence)``;
- :class:`Event` objects with success/failure values and callback lists;
- :class:`Process` coroutines that suspend on yielded events and may be
  interrupted (used for TCP retransmission timers);
- ``all_of`` / ``any_of`` combinators for barrier-style joins.

Time is a ``float`` in **seconds**; components express their own constants in
ns/us via the helpers in :mod:`repro.units`.

Hot-path design notes
---------------------

The kernel is the simulator's constant factor: large sweeps process millions
of events, so a handful of attribute lookups per event is measurable in wall
time.  Three fast paths keep the per-event cost low without changing any
observable ordering:

- :meth:`Environment.schedule_callback` pushes a bare ``(fn, args)`` tuple on
  the heap instead of constructing a :class:`Timeout` plus closure.  The main
  loop type-checks the popped entry and calls the function directly.  A
  sequence number is still consumed at the same point an event would have
  been scheduled, so same-timestamp ordering is identical to the event path.
- Events allocate no callback list up front: ``callbacks`` holds a shared
  sentinel while empty, the bare callable for the (dominant) single-waiter
  case, and only upgrades to a list for multiple waiters.
- Processes may ``yield`` a plain ``float`` delay instead of a
  :class:`Timeout`.  The kernel schedules the wakeup as a callback tuple —
  zero event allocations for a plain sleep, which dominates protocol pacing
  loops.  Interrupts remain safe: a monotonically increasing sleep token
  invalidates stale wakeups.
- Zero-delay scheduling (event triggers, process terminations, ``yield
  0.0``, immediate callbacks) bypasses the heap entirely: entries land in a
  FIFO *now-bucket* drained before time advances.  Same-timestamp runs —
  the dominant traffic of tightly chained protocol events — cost a deque
  append/popleft instead of two O(log n) heap operations.  Bucket and heap
  entries share one sequence counter and the dispatch loop merges them by
  sequence at equal timestamps, so observable ordering is identical.

``Environment.run`` inlines the event dispatch loop (rather than calling
:meth:`Environment.step` per event) and flushes the process-wide counters
once on exit; the counters are exact at every point ``run`` returns or
raises.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappush
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Raised for kernel misuse (double-trigger, running a finished sim...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value supplied by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()  # sentinel: event value not yet decided

#: shared sentinel meaning "no callbacks registered yet" — distinct from
#: ``None``, which means "already processed".  Using one shared object lets
#: ``Event.__init__`` skip allocating a list that most events never need.
_NO_CALLBACKS = object()

#: sentinel target for a process suspended on a plain-delay sleep (the fast
#: path has no Event object for ``interrupt`` to detach from).
_SLEEPING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event goes through at most one transition: *pending* -> *triggered*
    (either succeeded with a value, or failed with an exception).  Once
    triggered it is scheduled on the environment's heap and its callbacks run
    when the heap pops it.

    ``callbacks`` is polymorphic to keep the common cases allocation-free:
    the :data:`_NO_CALLBACKS` sentinel while empty, a bare callable for one
    waiter, a list for several, and ``None`` once processed.  All access goes
    through :meth:`add_callback` / :attr:`processed`, so the representation
    is private to the kernel.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Any = _NO_CALLBACKS
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired callbacks yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (``callbacks`` is discarded then)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully, scheduling callbacks after *delay*."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        if not self._scheduled:
            self._scheduled = True
            env = self.env
            env._seq += 1
            if delay == 0.0:
                env._bucket.append((env._seq, self))
            else:
                heappush(env._heap, (env._now + delay, env._seq, self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        if not self._scheduled:
            self._scheduled = True
            env = self.env
            env._seq += 1
            if delay == 0.0:
                env._bucket.append((env._seq, self))
            else:
                heappush(env._heap, (env._now + delay, env._seq, self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not crash on it."""
        self._defused = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event is processed."""
        cbs = self.callbacks
        if cbs is _NO_CALLBACKS:
            self.callbacks = fn
        elif cbs is None:
            raise SimulationError(f"{self!r} has already been processed")
        elif type(cbs) is list:
            cbs.append(fn)
        else:
            self.callbacks = [cbs, fn]

    def _discard_callback(self, fn: Callable[["Event"], None]) -> None:
        """Remove *fn* if registered (used by :meth:`Process.interrupt`).

        Comparison is by equality, not identity: bound methods are recreated
        per attribute access, so two references to the same ``proc._resume``
        are equal but not identical.
        """
        cbs = self.callbacks
        if cbs is None or cbs is _NO_CALLBACKS:
            return
        if type(cbs) is list:
            if fn in cbs:
                cbs.remove(fn)
        elif cbs == fn:
            self.callbacks = _NO_CALLBACKS

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ + scheduling: timeouts are the most
        # frequently constructed event type, so the super() call and the
        # separate _schedule call are worth folding away.
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._value = value
        self._ok = True
        self._scheduled = True
        self._defused = False
        self.delay = delay
        env._seq += 1
        if delay == 0.0:
            env._bucket.append((env._seq, self))
        else:
            heappush(env._heap, (env._now + delay, env._seq, self))


class Process(Event):
    """A running generator coroutine.  As an :class:`Event` it triggers when
    the generator returns (value = ``StopIteration`` value) or raises.

    Besides events, the generator may yield a plain ``float``: the kernel
    treats it as a delay in seconds and resumes the process after that long,
    without constructing a :class:`Timeout`.  ``yield 0.0`` is a legal
    reschedule-at-now.  Ints are *not* accepted (they stay a loud error, as
    does any other non-event).
    """

    __slots__ = ("_generator", "_target", "name", "_sleep_token")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Any] = None
        self._sleep_token = 0
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume once at the current time.  A callback tuple takes
        # the sequence slot the old init-Event used, so start order at equal
        # timestamps is unchanged.
        env._seq += 1
        env._bucket.append((env._seq, (self._bootstrap, ())))

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        target = self._target
        if target is None:
            raise SimulationError("cannot interrupt a process being initialized")
        if target is _SLEEPING:
            # Invalidate the pending fast-path wakeup.
            self._sleep_token += 1
        else:
            # Detach from the event we were waiting on.
            target._discard_callback(self._resume)
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._defused = True
        wakeup.callbacks = self._resume
        self.env._schedule(wakeup, 0.0)

    def _bootstrap(self) -> None:
        self._advance(True, None)

    def _wake(self, token: int) -> None:
        # Stale wakeups (the process was interrupted mid-sleep) are no-ops.
        if token != self._sleep_token or self._value is not PENDING:
            return
        self._target = None
        self._advance(True, None)

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._advance(True, event._value)
        else:
            event._defused = True
            self._advance(False, event._value)

    def _advance(self, ok: bool, value: Any) -> None:
        env = self.env
        send = self._generator.send
        throw = self._generator.throw
        while True:
            try:
                if ok:
                    next_event = send(value)
                else:
                    next_event = throw(value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._schedule(self, 0.0)
                return
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._schedule(self, 0.0)
                return

            if next_event.__class__ is float:
                # Plain-delay sleep: schedule the wakeup as a callback tuple.
                # Only exact floats take this path: ints stay rejected below
                # so an accidental `yield n` does not silently become a
                # year-long sleep.
                if next_event < 0:
                    raise SimulationError(
                        f"process {self.name!r} yielded a negative delay: "
                        f"{next_event!r}"
                    )
                self._sleep_token += 1
                self._target = _SLEEPING
                env._seq += 1
                if next_event == 0.0:
                    env._bucket.append(
                        (env._seq, (self._wake, (self._sleep_token,))))
                else:
                    heappush(env._heap, (env._now + next_event, env._seq,
                                         (self._wake, (self._sleep_token,))))
                return
            if not isinstance(next_event, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
            cbs = next_event.callbacks
            if cbs is None:
                # Already processed: resume immediately with its value.
                if next_event._ok:
                    ok, value = True, next_event._value
                else:
                    next_event._defused = True
                    ok, value = False, next_event._value
                continue
            if cbs is _NO_CALLBACKS:
                next_event.callbacks = self._resume
            elif type(cbs) is list:
                cbs.append(self._resume)
            else:
                next_event.callbacks = [cbs, self._resume]
            self._target = next_event
            return

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Condition(Event):
    """Base for ``all_of`` / ``any_of``: triggers from a set of child events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            i: ev._value
            for i, ev in enumerate(self._events)
            if ev.triggered
        }


class AllOf(Condition):
    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._results())


class AnyOf(Condition):
    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._results())


def all_of(env: "Environment", events: Iterable[Event]) -> Event:
    """Event that succeeds once every event in *events* has succeeded."""
    return AllOf(env, events)


def any_of(env: "Environment", events: Iterable[Event]) -> Event:
    """Event that succeeds once any event in *events* has succeeded."""
    return AnyOf(env, events)


class Environment:
    """Holds simulation time and the event heap, and runs the main loop."""

    #: process-wide instrumentation, accumulated across every Environment
    #: instance; the benchmark sweep runner reads deltas around each point
    #: to report per-point event counts and simulated time.  Heap entries of
    #: both kinds (events and callback tuples) count as one processed event
    #: each, so the metric is comparable across kernel versions.
    total_events_processed: int = 0
    total_sim_time: float = 0.0
    #: events the flow-level fidelity mode modeled analytically instead of
    #: dispatching (elided per-segment deliveries, pacing sleeps, credit
    #: returns...).  ``processed + fast_forwarded`` is the packet-equivalent
    #: event count, which is what the perf metrics report so throughput
    #: numbers stay comparable across fidelity modes.
    total_events_fast_forwarded: int = 0

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: List[tuple] = []
        # FIFO of (seq, item) entries scheduled at the *current* time; always
        # drained before the clock advances.  Items are the same polymorphic
        # (fn, args) tuples / Event objects the heap holds.
        self._bucket: deque = deque()
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def _schedule(self, event: Event, delay: float) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._seq += 1
        if delay == 0.0:
            self._bucket.append((self._seq, event))
        else:
            heappush(self._heap, (self._now + delay, self._seq, event))

    def schedule_callback(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after *delay* (for non-process components).

        This is the cheapest way to get control at a future time: no
        :class:`Event` is constructed, only a tuple on the heap (or, for a
        zero delay, in the now-bucket).  The callback cannot be waited on;
        components that need a waitable handle should use :meth:`timeout`.
        """
        self._seq += 1
        if delay == 0.0:
            self._bucket.append((self._seq, (fn, args)))
        else:
            heappush(self._heap, (self._now + delay, self._seq, (fn, args)))

    def schedule_callback_at(self, time: float, fn: Callable,
                             *args: Any) -> None:
        """Like :meth:`schedule_callback` but at an *absolute* time.

        Components that pre-compute a future timestamp (e.g. a link's
        delivery pump) use this to fire at exactly that float, avoiding the
        re-rounding a relative ``now + (time - now)`` round trip would add.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        self._seq += 1
        if time == self._now:
            self._bucket.append((self._seq, (fn, args)))
        else:
            heappush(self._heap, (time, self._seq, (fn, args)))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds after *delay* seconds."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process running *generator*."""
        return Process(self, generator, name=name)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when none is pending."""
        if self._bucket:
            return self._now
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        bucket = self._bucket
        heap = self._heap
        if bucket and (not heap or heap[0][0] > self._now
                       or heap[0][1] > bucket[0][0]):
            _seq, item = bucket.popleft()
            when = self._now
        elif heap:
            when, _seq, item = heapq.heappop(heap)
        else:
            raise SimulationError("no more events")
        Environment.total_events_processed += 1
        if when > self._now:
            Environment.total_sim_time += when - self._now
        self._now = when
        if item.__class__ is tuple:
            fn, args = item
            fn(*args)
            return
        callbacks = item.callbacks
        item.callbacks = None
        if callbacks is not _NO_CALLBACKS:
            if callbacks.__class__ is list:
                for fn in callbacks:
                    fn(item)
            else:
                callbacks(item)
        if item._ok is False and not item._defused:
            # An unhandled failure: surface it instead of losing it silently.
            raise item._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        - ``until=None``: run until the heap drains.
        - ``until`` is an :class:`Event`: run until it triggers, return its value.
        - ``until`` is a number: run until that simulation time.  A stop time
          equal to the current time returns immediately (no events are
          processed); a stop time in the past raises :class:`SimulationError`.
        """
        stop_time = None
        stop_event = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )
            if stop_time == self._now:
                return None

        # Inlined dispatch loop (same semantics as step()); counters are
        # accumulated locally and flushed once, including on exceptions.
        # The now-bucket is merged with the heap by sequence number: bucket
        # entries always live at the current timestamp, so they run before
        # any strictly-later heap entry and interleave with same-time heap
        # entries in scheduling order.
        heap = self._heap
        bucket = self._bucket
        pop = heapq.heappop
        popleft = bucket.popleft
        no_cb = _NO_CALLBACKS
        events_n = 0
        sim_acc = 0.0
        try:
            while heap or bucket:
                if stop_event is not None:
                    if stop_event.callbacks is None:
                        break
                elif (stop_time is not None and not bucket
                        and heap[0][0] > stop_time):
                    break
                prev = self._now
                if bucket and (not heap or heap[0][0] > prev
                               or heap[0][1] > bucket[0][0]):
                    _seq, item = popleft()
                    when = prev
                else:
                    when, _seq, item = pop(heap)
                events_n += 1
                if when > prev:
                    sim_acc += when - prev
                self._now = when
                if item.__class__ is tuple:
                    item[0](*item[1])
                    continue
                callbacks = item.callbacks
                item.callbacks = None
                if callbacks is not no_cb:
                    if callbacks.__class__ is list:
                        for fn in callbacks:
                            fn(item)
                    else:
                        callbacks(item)
                if item._ok is False and not item._defused:
                    raise item._value
        finally:
            Environment.total_events_processed += events_n
            Environment.total_sim_time += sim_acc

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ended before the awaited event triggered "
                    "(deadlock or missing stimulus)"
                )
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if stop_time is not None:
            self._now = stop_time
        return None
