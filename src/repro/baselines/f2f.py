"""The FPGA-to-FPGA-via-CPU baseline (§5, Figure 9).

"We model the execution time for MPICH- and OpenMPI-based device-to-device
data movement, which includes: (1) moving data from FPGA HBM/kernel to host
DDR through the PCIe, (2) executing the collective using software MPI, (3)
moving data from host DDR to FPGA HBM/kernel, and (4) invoking the next
computation kernel."

:class:`F2fMpiModel` wraps an :class:`~repro.baselines.mpi.MpiCluster` with
per-node PCIe links and produces both the end-to-end time and the per-phase
breakdown Figure 9 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.baselines.mpi import MpiCluster
from repro.memory import PcieLink
from repro.sim import all_of
from repro import units


@dataclass
class F2fBreakdown:
    """Per-phase wall time of one device-to-device collective."""

    pcie_in: float       # FPGA -> host DDR staging
    collective: float    # software MPI on host data
    pcie_out: float      # host DDR -> FPGA staging
    invocation: float    # kicking the next FPGA kernel

    @property
    def total(self) -> float:
        return self.pcie_in + self.collective + self.pcie_out + self.invocation

    def as_dict(self) -> Dict[str, float]:
        return {
            "pcie_in": self.pcie_in,
            "collective": self.collective,
            "pcie_out": self.pcie_out,
            "invocation": self.invocation,
            "total": self.total,
        }


class F2fMpiModel:
    """Software-MPI collectives on device-resident data."""

    #: driver-side cost of one staging round: user-space call, DMA doorbell,
    #: completion polling — paid on top of the wire DMA time and the reason
    #: "PCIe transfer time is dominant for small messages" (Fig 9).
    STAGING_OVERHEAD = units.us(8)

    def __init__(self, cluster: MpiCluster,
                 invocation_latency: float = units.us(2.3),
                 staging_overhead: float = STAGING_OVERHEAD):
        self.cluster = cluster
        self.env = cluster.env
        self.invocation_latency = invocation_latency
        self.staging_overhead = staging_overhead
        self.pcie: List[PcieLink] = [
            PcieLink(self.env, name=f"f2f.pcie{r}")
            for r in range(cluster.size)
        ]

    def _phase(self, events) -> float:
        start = self.env.now
        events = list(events)
        self.env.run(until=all_of(self.env, events))
        elapsed = self.env.now - start
        return elapsed + self.staging_overhead if events else elapsed

    def run(
        self,
        make_collective: Callable,
        in_bytes: Callable[[int], int],
        out_bytes: Callable[[int], int],
    ) -> F2fBreakdown:
        """Run one device-data collective and return the phase breakdown.

        ``make_collective(rank_obj)`` builds the MPI collective generator;
        ``in_bytes(rank)`` / ``out_bytes(rank)`` give the staging volume per
        rank (0 for ranks whose data does not cross PCIe in that phase).
        """
        pcie_in = self._phase(
            self.pcie[r].dma_d2h(in_bytes(r))
            for r in range(self.cluster.size) if in_bytes(r) > 0
        ) if any(in_bytes(r) for r in range(self.cluster.size)) else 0.0

        start = self.env.now
        procs = [
            self.env.process(make_collective(rank_obj),
                             name=f"f2f{rank_obj.rank}")
            for rank_obj in self.cluster.ranks
        ]
        self.env.run(until=all_of(self.env, procs))
        collective = self.env.now - start

        pcie_out = self._phase(
            self.pcie[r].dma_h2d(out_bytes(r))
            for r in range(self.cluster.size) if out_bytes(r) > 0
        ) if any(out_bytes(r) for r in range(self.cluster.size)) else 0.0

        return F2fBreakdown(
            pcie_in=pcie_in,
            collective=collective,
            pcie_out=pcie_out,
            invocation=self.invocation_latency,
        )
