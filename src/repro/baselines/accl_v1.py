"""ACCL (HotI'21): the predecessor compared in Figure 13.

"While both ACCL+ and ACCL utilize embedded microprocessors for collective
orchestration in hardware, ACCL+ distinguishes itself by offloading more
tasks to the hardware data plane, such as utilizing the Rx Buffer Manager
for packet assembling.  In contrast, ACCL relies more on the microprocessor,
leading to lower performance."

The v1 configuration keeps the identical engine but moves per-packet receive
work back onto the uC (``uc_rx_instr_per_kib``) and removes DMP pipelining —
which caps effective throughput at the micro-processor's instruction rate,
exactly the structural deficit the paper attributes the gap to.
"""

from __future__ import annotations

from typing import Optional

from repro.cclo.config_mem import CcloConfig
from repro.cluster.builder import FpgaCluster, build_fpga_cluster
from repro.sim import Environment


def accl_v1_config(clock_hz: float = 250e6) -> CcloConfig:
    """Hardware parameters of the ACCL-v1 engine."""
    return CcloConfig(
        clock_hz=clock_hz,
        # uC touches every inbound frame's bookkeeping (~1 coarse
        # instruction per KiB): at 150 cycles/instruction and 250 MHz this
        # caps receive processing near ACCL v1's measured tens of Gb/s,
        # well below the line rate the ACCL+ RBM sustains.
        uc_rx_instr_per_kib=1,
        # Control is centralized: no pipelined microcode execution.
        dmp_parallel_slots=1,
        # v1's command handling does more in firmware per step.
        uc_dispatch_cycles=600,
        uc_instr_cycles=150,
    )


def build_accl_v1_cluster(
    n_nodes: int,
    protocol: str = "tcp",
    platform: str = "vitis",
    env: Optional[Environment] = None,
) -> FpgaCluster:
    """ACCL v1 as evaluated: TCP POE on the XRT platform."""
    return build_fpga_cluster(
        n_nodes,
        protocol=protocol,
        platform=platform,
        cclo_config=accl_v1_config(),
        env=env,
    )
