"""Event-driven software-MPI model over commodity NICs.

Each :class:`MpiRank` is an MPI process on a CPU node: a host-DRAM memory, a
CPU-time pipe (the sequential software stack), and a kernel-bypass RDMA NIC
or kernel TCP socket.  Point-to-point follows the standard eager/rendezvous
split (UCX-style threshold); collectives live in
:mod:`repro.baselines.algorithms` and are selected by the fine-grained
:class:`~repro.baselines.tuning.MpiTuning` tables — the "software MPI adapts
its algorithms more finely" behaviour of §5.

Personalities:

- ``library="openmpi", transport="rdma"`` — OpenMPI 4.1/UCX over RoCE
  (the paper's H2H comparison baseline);
- ``library="mpich", transport="tcp"`` — MPICH 4.0 over kernel TCP
  (the Fig 13 baseline).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.memory import Memory, host_dram
from repro.network.topology import StarTopology
from repro.protocols.base import MessageHeader
from repro.protocols.rdma import RdmaPoe
from repro.protocols.tcp import TcpPoe
from repro.sim import BandwidthResource, Environment, Event, all_of
from repro.cclo.match import MatchTable
from repro import units


class _HostRdmaNic(RdmaPoe):
    """Mellanox CX-5 class RDMA NIC: kernel-bypass verbs, ASIC pipeline."""

    protocol_name = "roce-nic"
    mtu = 4096
    poe_latency = units.ns(700)


class _KernelTcpNic(TcpPoe):
    """Kernel TCP through a commodity NIC: the socket stack costs
    microseconds per message (syscalls, skb handling, softirq)."""

    protocol_name = "tcp-nic"
    mtu = 1460
    poe_latency = units.us(6)


#: per-call software overhead of the MPI library + verbs/sockets post path
_SW_OVERHEAD = {
    ("openmpi", "rdma"): units.us(0.45),
    ("mpich", "tcp"): units.us(4.0),
}

#: eager -> rendezvous switch point of the transport layer
_RNDZ_THRESHOLD = {
    ("openmpi", "rdma"): 32 * units.KIB,   # UCX default neighbourhood
    ("mpich", "tcp"): 64 * units.KIB,
}

#: single-core streaming reduction bandwidth (SIMD sum over DRAM-resident data)
_CPU_REDUCE_BW = 12e9
#: memcpy bandwidth (eager receive copies bounce -> user buffer)
_CPU_MEMCPY_BW = 18e9


class MpiRank:
    """One MPI process: CPU pipe + NIC + host memory + matching engine."""

    def __init__(
        self,
        env: Environment,
        rank: int,
        addresses: List[int],
        nic,
        memory: Memory,
        library: str = "openmpi",
        transport: str = "rdma",
    ):
        key = (library, transport)
        if key not in _SW_OVERHEAD:
            raise ConfigurationError(
                f"unsupported MPI personality {library}/{transport}"
            )
        self.env = env
        self.rank = rank
        self.addresses = addresses
        self.nic = nic
        self.memory = memory
        self.library = library
        self.transport = transport
        self.sw_overhead = _SW_OVERHEAD[key]
        self.rndz_threshold = _RNDZ_THRESHOLD[key]
        # CPU time is sequential per rank: 1 unit == 1 second of core time.
        self._cpu = BandwidthResource(env, 1.0, name=f"mpi{rank}.cpu")
        self._inbound = MatchTable(env, name=f"mpi{rank}.match")
        self._rts = MatchTable(env, name=f"mpi{rank}.rts")
        self._cts = MatchTable(env, name=f"mpi{rank}.cts")
        self._fin = MatchTable(env, name=f"mpi{rank}.fin")
        self._write_targets: Dict[int, dict] = {}
        self._target_ids = itertools.count(1)
        nic.on_message(self._on_message)
        if isinstance(nic, RdmaPoe):
            nic.set_memory_writer(self._on_write)
        self.cpu_busy_seconds = 0.0

    @property
    def size(self) -> int:
        return len(self.addresses)

    # -- CPU accounting ------------------------------------------------------

    def cpu(self, seconds: float) -> Event:
        """Occupy this rank's core for *seconds* (serialized FIFO)."""
        self.cpu_busy_seconds += seconds
        done = self._cpu.reserve(seconds)
        return self.env.timeout(done - self.env.now)

    def _addr(self, rank: int) -> int:
        return self.addresses[rank]

    # -- NIC receive plumbing ---------------------------------------------------

    def _on_message(self, header: MessageHeader, data: Any) -> None:
        kind, src_rank, tag, payload_meta = header.meta
        key = (src_rank, tag)
        if kind == "eager":
            self._inbound.post(key, (header.nbytes, data))
        elif kind == "rts":
            self._rts.post(key, payload_meta)  # payload_meta = msg nbytes
        elif kind == "cts":
            self._cts.post(key, payload_meta)  # payload_meta = target id
        elif kind == "fin":
            self._fin.post(key, payload_meta)
        else:
            raise ConfigurationError(f"unknown MPI wire message {kind!r}")

    def _on_write(self, header: MessageHeader, data: Any) -> Event:
        target = self._write_targets.pop(header.meta, None)
        if target is None:
            raise ConfigurationError("WRITE to unknown MPI rendezvous target")

        def landing():
            # NIC DMAs straight into the user buffer: one memory write.
            yield self.memory.write(header.nbytes)
            if data is not None and target["buf"] is not None:
                np.copyto(target["buf"].reshape(-1),
                          np.asarray(data).reshape(-1))
            target["event"].succeed(header.nbytes)

        return self.env.process(landing(), name=f"mpi{self.rank}.write")

    # -- point-to-point ------------------------------------------------------------

    def isend(self, data: Optional[np.ndarray], nbytes: int, dst: int,
              tag: int = 0) -> Event:
        """Nonblocking send; event fires at local completion."""
        return self.env.process(
            self._send_proc(data, nbytes, dst, tag),
            name=f"mpi{self.rank}.isend",
        )

    def irecv(self, buf: Optional[np.ndarray], nbytes: int, src: int,
              tag: int = 0) -> Event:
        """Nonblocking receive; event fires when data is in *buf*."""
        return self.env.process(
            self._recv_proc(buf, nbytes, src, tag),
            name=f"mpi{self.rank}.irecv",
        )

    def _send_proc(self, data, nbytes: int, dst: int, tag: int):
        yield self.cpu(self.sw_overhead)
        payload = None if data is None else np.asarray(data).copy()
        if nbytes <= self.rndz_threshold or self.transport != "rdma":
            # Eager: read the user buffer, one shot onto the wire.
            yield self.memory.read(nbytes)
            yield self.nic.send_message(
                self._addr(dst), nbytes,
                meta=("eager", self.rank, tag, None), data=payload,
            )
            return
        # Rendezvous: RTS -> CTS (target id) -> zero-copy WRITE -> FIN.
        yield self.nic.send_message(
            self._addr(dst), 32, meta=("rts", self.rank, tag, nbytes)
        )
        target_id = yield self._cts.wait((dst, tag))
        yield self.cpu(self.sw_overhead)
        yield self.memory.read(nbytes)
        yield self.nic.post_write(
            self._addr(dst), nbytes, remote_descriptor=target_id, data=payload
        )
        yield self.nic.send_message(
            self._addr(dst), 32, meta=("fin", self.rank, tag, None)
        )

    def _recv_proc(self, buf, nbytes: int, src: int, tag: int):
        yield self.cpu(self.sw_overhead)
        if nbytes <= self.rndz_threshold or self.transport != "rdma":
            got_bytes, data = yield self._inbound.wait((src, tag))
            # Copy out of the transport bounce buffer into the user buffer.
            copy_time = got_bytes / _CPU_MEMCPY_BW
            yield self.cpu(copy_time)
            yield self.memory.write(got_bytes)
            if data is not None and buf is not None:
                np.copyto(buf.reshape(-1), np.asarray(data).reshape(-1))
            return
        # Rendezvous passive side.
        yield self._rts.wait((src, tag))
        target_id = next(self._target_ids)
        landed = Event(self.env)
        self._write_targets[target_id] = {"buf": buf, "event": landed}
        yield self.nic.send_message(
            self._addr(src), 32, meta=("cts", self.rank, tag, target_id)
        )
        yield self._fin.wait((src, tag))
        yield landed

    # -- local compute ------------------------------------------------------------

    def local_reduce(self, func: str, a: Optional[np.ndarray],
                     b: Optional[np.ndarray], out: Optional[np.ndarray],
                     nbytes: int) -> Event:
        """CPU-side reduction kernel: out = a (op) b."""

        def compute():
            yield self.memory.read(2 * nbytes)
            yield self.cpu(nbytes / _CPU_REDUCE_BW)
            yield self.memory.write(nbytes)
            if a is None or b is None or out is None:
                return
            ops = {"sum": np.add, "prod": np.multiply,
                   "max": np.maximum, "min": np.minimum}
            ops[func](a.reshape(-1), b.reshape(-1), out=out.reshape(-1))

        return self.env.process(compute(), name=f"mpi{self.rank}.reduce")

    def memcpy(self, src: Optional[np.ndarray], dst: Optional[np.ndarray],
               nbytes: int) -> Event:
        def compute():
            yield self.cpu(nbytes / _CPU_MEMCPY_BW)
            yield self.memory.read(nbytes)
            yield self.memory.write(nbytes)
            if src is not None and dst is not None:
                np.copyto(dst.reshape(-1), src.reshape(-1))

        return self.env.process(compute(), name=f"mpi{self.rank}.memcpy")

    def __repr__(self) -> str:
        return f"<MpiRank {self.rank}/{self.size} {self.library}/{self.transport}>"


class MpiCluster:
    """N MPI ranks on a 100 Gb/s star fabric."""

    def __init__(self, env: Environment, ranks: List[MpiRank],
                 topology: StarTopology, library: str, transport: str):
        self.env = env
        self.ranks = ranks
        self.topology = topology
        self.library = library
        self.transport = transport

    @property
    def size(self) -> int:
        return len(self.ranks)

    def run_all(self, make_proc) -> float:
        """Run ``make_proc(rank_obj)`` generators on every rank; returns
        elapsed simulated seconds until all complete."""
        start = self.env.now
        procs = [
            self.env.process(make_proc(rank_obj), name=f"mpi{rank_obj.rank}")
            for rank_obj in self.ranks
        ]
        self.env.run(until=all_of(self.env, procs))
        return self.env.now - start


def build_mpi_cluster(
    n_ranks: int,
    library: str = "openmpi",
    transport: str = "rdma",
    env: Optional[Environment] = None,
    link_rate: float = units.gbps(100),
) -> MpiCluster:
    """Construct a software-MPI cluster (sessions/QPs pre-established)."""
    if n_ranks < 1:
        raise ConfigurationError(f"need at least 1 rank, got {n_ranks}")
    env = env or Environment()
    topology = StarTopology(env, link_rate=link_rate)
    addresses = list(range(n_ranks))
    nic_cls = _HostRdmaNic if transport == "rdma" else _KernelTcpNic

    ranks: List[MpiRank] = []
    for r in range(n_ranks):
        endpoint = topology.add_endpoint(r, name=f"cpu{r}")
        nic = nic_cls(env, endpoint)
        memory = host_dram(env, name=f"dram{r}")
        ranks.append(MpiRank(env, r, addresses, nic, memory,
                             library=library, transport=transport))

    for a in ranks:
        for b in ranks:
            if a is b:
                continue
            if transport == "rdma":
                a.nic.create_qp(b.rank)
            else:
                a.nic.accept(b.rank)
    if transport == "tcp":
        handshakes = []
        for i, a in enumerate(ranks):
            for b in ranks[i + 1:]:
                handshakes.append(a.nic.connect(b.rank))
                handshakes.append(b.nic.connect(a.rank))
        if handshakes:
            env.run(until=all_of(env, handshakes))
    return MpiCluster(env, ranks, topology, library, transport)
