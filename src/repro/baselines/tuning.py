"""MPI's fine-grained algorithm selection tables.

The paper (Fig 12 discussion): "software MPI exhibits a more fine-grained
approach to algorithm selection based on the scale of the message size and
the number of nodes.  For instance, it deploys three distinct algorithms
within the 8 KB range: an all-to-one algorithm for fewer than four nodes, a
ring protocol for four to eight nodes, and an optimized binomial algorithm
for 8 nodes.  Additionally, for larger messages, software MPI switches
between an all-to-one algorithm below three nodes and a binomial tree
algorithm between four and eight nodes."

These tables encode exactly that narrative (plus conventional OpenMPI-style
choices for the collectives the paper does not spell out).
"""

from __future__ import annotations

from repro import units


class MpiTuning:
    """Decision functions: (nbytes, nprocs) -> algorithm name."""

    SMALL = 32 * units.KIB
    LARGE = 512 * units.KIB

    def bcast(self, nbytes: int, nprocs: int) -> str:
        if nbytes <= self.SMALL or nprocs <= 4:
            return "binomial"
        return "scatter_allgather"  # van de Geijn for large messages

    def reduce(self, nbytes: int, nprocs: int) -> str:
        if nbytes <= self.SMALL:
            if nprocs < 4:
                return "linear"
            if nprocs < 8:
                return "chain"
            return "binomial"
        if nbytes <= self.LARGE:
            return "linear" if nprocs <= 3 else "binomial"
        return "reduce_scatter_gather"  # Rabenseifner for the largest sizes

    def allreduce(self, nbytes: int, nprocs: int) -> str:
        if nbytes <= 2 * self.SMALL:
            return "recursive_doubling"
        return "ring"

    def gather(self, nbytes: int, nprocs: int) -> str:
        return "linear" if nbytes <= 2 * self.SMALL else "binomial"

    def scatter(self, nbytes: int, nprocs: int) -> str:
        return "linear" if nbytes <= 2 * self.SMALL else "binomial"

    def allgather(self, nbytes: int, nprocs: int) -> str:
        return "ring"

    def alltoall(self, nbytes: int, nprocs: int) -> str:
        return "pairwise"
