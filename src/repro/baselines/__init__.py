"""Comparator systems used in the paper's evaluation (§5).

- :mod:`repro.baselines.mpi` -- software MPI on CPU nodes with commodity
  NICs: OpenMPI-over-UCX/RoCE and MPICH-over-kernel-TCP personalities,
  including MPI's fine-grained per-(size, nprocs) algorithm selection.
- :mod:`repro.baselines.f2f` -- the FPGA-to-FPGA-via-CPU detour the paper
  models in Figure 9: PCIe out, software collective, PCIe back, kernel
  invocation.
- :mod:`repro.baselines.accl_v1` -- ACCL (HotI'21): the predecessor whose
  uC also handles per-packet receive work, capping throughput (Fig 13).
"""

from repro.baselines.mpi import MpiCluster, MpiRank, build_mpi_cluster
from repro.baselines.tuning import MpiTuning
from repro.baselines.f2f import F2fMpiModel
from repro.baselines.accl_v1 import build_accl_v1_cluster

__all__ = [
    "MpiCluster",
    "MpiRank",
    "build_mpi_cluster",
    "MpiTuning",
    "F2fMpiModel",
    "build_accl_v1_cluster",
]
