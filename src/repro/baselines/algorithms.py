"""Software-MPI collective algorithms over :class:`MpiRank` primitives.

All functions are generators to run as simulation processes, one per rank,
operating on flat numpy arrays.  ``tag`` is a base value; algorithms derive
per-step tags below a +512 window.

The high-level entry points (``mpi_bcast`` etc.) consult
:class:`~repro.baselines.tuning.MpiTuning` unless an algorithm is forced —
mirroring how OpenMPI/MPICH pick algorithms per (size, nprocs).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.tuning import MpiTuning
from repro.collectives.util import block_ranges

_DEFAULT_TUNING = MpiTuning()


def _elem_view(arr: Optional[np.ndarray], offset_bytes: int, nbytes: int):
    if arr is None:
        return None
    flat = arr.reshape(-1)
    start = offset_bytes // flat.itemsize
    stop = start + nbytes // flat.itemsize
    return flat[start:stop]


def _scratch_like(arr: Optional[np.ndarray], nbytes: int):
    if arr is None:
        return None
    flat = arr.reshape(-1)
    return np.zeros(nbytes // flat.itemsize, dtype=flat.dtype)


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------

def bcast_binomial(me, buf, nbytes, root, tag):
    size = me.size
    relative = (me.rank - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            yield me.irecv(buf, nbytes, parent, tag)
            break
        mask <<= 1
    # Blocking sends in descending-mask order, as MPICH does: the deepest
    # subtree's copy must not share the wire with the shallower ones.
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            child = (relative + mask + root) % size
            yield me.isend(buf, nbytes, child, tag)
        mask >>= 1


def bcast_scatter_allgather(me, buf, nbytes, root, tag):
    """van de Geijn large-message bcast: binomial scatter + ring allgather."""
    size = me.size
    blocks = block_ranges(nbytes, size)
    # Phase 1: scatter the blocks (linear from the root; the scatter itself
    # is latency-insignificant next to the allgather at large sizes).
    my_block = (me.rank - root) % size
    if me.rank == root:
        pending = []
        for q in range(1, size):
            dst = (root + q) % size
            off, ln = blocks[q]
            if ln:
                pending.append(me.isend(
                    _elem_view(buf, off, ln), ln, dst, tag + q))
        for ev in pending:
            yield ev
    else:
        off, ln = blocks[my_block]
        if ln:
            yield me.irecv(_elem_view(buf, off, ln), ln, root, tag + my_block)
    # Phase 2: ring allgather of the blocks.
    next_rank = (me.rank + 1) % size
    prev_rank = (me.rank - 1) % size
    for step in range(size - 1):
        send_q = (me.rank - root - step) % size
        recv_q = (me.rank - root - step - 1) % size
        s_off, s_len = blocks[send_q]
        r_off, r_len = blocks[recv_q]
        pending = []
        if s_len:
            pending.append(me.isend(_elem_view(buf, s_off, s_len), s_len,
                                    next_rank, tag + 100 + step))
        if r_len:
            pending.append(me.irecv(_elem_view(buf, r_off, r_len), r_len,
                                    prev_rank, tag + 100 + step))
        for ev in pending:
            yield ev


def bcast_pipeline(me, buf, nbytes, root, tag, segment_bytes=128 * 1024):
    """Segmented chain broadcast (OpenMPI's "pipeline" choice).

    Rank at chain position p forwards each segment to p+1 as soon as it
    arrives, so for large messages the cost approaches one message time
    plus (P-2) segment times, independent of the root's fan-out.
    """
    size = me.size
    position = (me.rank - root) % size
    prev_rank = (me.rank - 1) % size
    next_rank = (me.rank + 1) % size
    segments = block_ranges(nbytes, max(1, -(-nbytes // segment_bytes)))

    last_send = None
    for s, (offset, length) in enumerate(segments):
        if length == 0:
            continue
        view = _elem_view(buf, offset, length)
        if position != 0:
            yield me.irecv(view, length, prev_rank, tag + s)
        if position != size - 1:
            # Overlap: ship segment s while s+1 is still in flight to us.
            if last_send is not None:
                yield last_send
            last_send = me.isend(view, length, next_rank, tag + s)
    if last_send is not None:
        yield last_send


def scatter_binomial(me, sendbuf, recvbuf, nbytes, root, tag):
    """Binomial-tree scatter: halves of the block set fan down the tree."""
    size = me.size
    relative = (me.rank - root) % size

    if relative == 0:
        held = _scratch_like(sendbuf, size * nbytes)
        for q in range(size):
            rank_q = (root + q) % size
            yield me.memcpy(_elem_view(sendbuf, rank_q * nbytes, nbytes),
                            _elem_view(held, q * nbytes, nbytes), nbytes)
        my_blocks = size
        recv_mask = 1
        while recv_mask < size:
            recv_mask <<= 1
    else:
        recv_mask = relative & -relative
        my_blocks = min(recv_mask, size - relative)
        held = _scratch_like(recvbuf, my_blocks * nbytes)
        parent = (relative - recv_mask + root) % size
        yield me.irecv(held, my_blocks * nbytes, parent, tag)

    mask = recv_mask >> 1
    while mask > 0:
        child_rel = relative + mask
        if child_rel < size and mask < my_blocks:
            child = (child_rel + root) % size
            child_blocks = min(mask, my_blocks - mask)
            yield me.isend(
                _elem_view(held, mask * nbytes, child_blocks * nbytes),
                child_blocks * nbytes, child, tag)
        mask >>= 1
    yield me.memcpy(_elem_view(held, 0, nbytes), recvbuf, nbytes)


# ---------------------------------------------------------------------------
# reduce
# ---------------------------------------------------------------------------

def reduce_linear(me, sendbuf, recvbuf, nbytes, root, func, tag):
    """All-to-one: root folds every contribution sequentially."""
    if me.rank != root:
        yield me.isend(sendbuf, nbytes, root, tag)
        return
    yield me.memcpy(sendbuf, recvbuf, nbytes)
    incoming = _scratch_like(sendbuf, nbytes)
    for src in range(me.size):
        if src == root:
            continue
        yield me.irecv(incoming, nbytes, src, tag)
        yield me.local_reduce(func, recvbuf, incoming, recvbuf, nbytes)


def reduce_chain(me, sendbuf, recvbuf, nbytes, root, func, tag):
    """Chain (the "ring protocol" of the Fig 12 narrative)."""
    size = me.size
    position = (me.rank - root - 1) % size  # root at size-1
    next_rank = (me.rank + 1) % size
    prev_rank = (me.rank - 1) % size
    if position == 0:
        yield me.isend(sendbuf, nbytes, next_rank, tag)
        return
    incoming = _scratch_like(sendbuf, nbytes)
    if position == size - 1:  # root
        yield me.memcpy(sendbuf, recvbuf, nbytes)
        yield me.irecv(incoming, nbytes, prev_rank, tag)
        yield me.local_reduce(func, recvbuf, incoming, recvbuf, nbytes)
    else:
        acc = _scratch_like(sendbuf, nbytes)
        yield me.memcpy(sendbuf, acc, nbytes)
        yield me.irecv(incoming, nbytes, prev_rank, tag)
        yield me.local_reduce(func, acc, incoming, acc, nbytes)
        yield me.isend(acc, nbytes, next_rank, tag)


def reduce_binomial(me, sendbuf, recvbuf, nbytes, root, func, tag):
    size = me.size
    relative = (me.rank - root) % size
    acc = recvbuf if relative == 0 else _scratch_like(sendbuf, nbytes)
    yield me.memcpy(sendbuf, acc, nbytes)
    incoming = _scratch_like(sendbuf, nbytes)
    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            yield me.isend(acc, nbytes, parent, tag)
            break
        child_rel = relative | mask
        if child_rel < size:
            child = (child_rel + root) % size
            yield me.irecv(incoming, nbytes, child, tag)
            yield me.local_reduce(func, acc, incoming, acc, nbytes)
        mask <<= 1


def reduce_scatter_gather(me, sendbuf, recvbuf, nbytes, root, func, tag):
    """Rabenseifner-style: ring reduce-scatter, then gather to the root."""
    size = me.size
    rank = me.rank
    blocks = block_ranges(nbytes, size)
    acc = _scratch_like(sendbuf, nbytes)
    yield me.memcpy(sendbuf, acc, nbytes)
    incoming = _scratch_like(sendbuf, max(ln for _, ln in blocks) or 1)
    next_rank = (rank + 1) % size
    prev_rank = (rank - 1) % size
    for step in range(size - 1):
        send_q = (rank - step) % size
        recv_q = (rank - step - 1) % size
        s_off, s_len = blocks[send_q]
        r_off, r_len = blocks[recv_q]
        send_ev = me.isend(_elem_view(acc, s_off, s_len), s_len,
                           next_rank, tag + step) if s_len else None
        if r_len:
            yield me.irecv(_elem_view(incoming, 0, r_len), r_len,
                           prev_rank, tag + step)
            yield me.local_reduce(func, _elem_view(acc, r_off, r_len),
                                  _elem_view(incoming, 0, r_len),
                                  _elem_view(acc, r_off, r_len), r_len)
        if send_ev is not None:
            yield send_ev
    # Each rank now owns the reduced block (rank + 1) % size.
    owned_q = (rank + 1) % size
    o_off, o_len = blocks[owned_q]
    if rank == root:
        yield me.memcpy(_elem_view(acc, o_off, o_len),
                        _elem_view(recvbuf, o_off, o_len), o_len)
        pending = []
        for src in range(size):
            if src == root:
                continue
            q = (src - (size - 1)) % size
            off, ln = blocks[q]
            if ln:
                pending.append(me.irecv(_elem_view(recvbuf, off, ln), ln,
                                        src, tag + 300 + src))
        for ev in pending:
            yield ev
    else:
        if o_len:
            yield me.isend(_elem_view(acc, o_off, o_len), o_len, root,
                           tag + 300 + rank)


# ---------------------------------------------------------------------------
# allreduce
# ---------------------------------------------------------------------------

def allreduce_recursive_doubling(me, sendbuf, recvbuf, nbytes, func, tag):
    size = me.size
    rank = me.rank
    yield me.memcpy(sendbuf, recvbuf, nbytes)
    if size == 1:
        return
    # Power-of-two participants; extras fold in at the edges.
    pof2 = 1 << (size.bit_length() - 1)
    rem = size - pof2
    incoming = _scratch_like(sendbuf, nbytes)
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield me.isend(recvbuf, nbytes, rank + 1, tag)
            yield me.irecv(recvbuf, nbytes, rank + 1, tag + 1)
            return
        yield me.irecv(incoming, nbytes, rank - 1, tag)
        yield me.local_reduce(func, recvbuf, incoming, recvbuf, nbytes)
        newrank = rank // 2
    else:
        newrank = rank - rem

    mask = 1
    while mask < pof2:
        peer_new = newrank ^ mask
        peer = peer_new * 2 + 1 if peer_new < rem else peer_new + rem
        send_ev = me.isend(recvbuf, nbytes, peer, tag + 2 + mask)
        yield me.irecv(incoming, nbytes, peer, tag + 2 + mask)
        yield send_ev
        yield me.local_reduce(func, recvbuf, incoming, recvbuf, nbytes)
        mask <<= 1

    if rank < 2 * rem and rank % 2 == 1:
        yield me.isend(recvbuf, nbytes, rank - 1, tag + 1)


def allreduce_ring(me, sendbuf, recvbuf, nbytes, func, tag):
    size = me.size
    rank = me.rank
    blocks = block_ranges(nbytes, size)
    yield me.memcpy(sendbuf, recvbuf, nbytes)
    if size == 1:
        return
    incoming = _scratch_like(sendbuf, max(ln for _, ln in blocks) or 1)
    next_rank = (rank + 1) % size
    prev_rank = (rank - 1) % size
    for step in range(size - 1):
        s_off, s_len = blocks[(rank - step) % size]
        r_off, r_len = blocks[(rank - step - 1) % size]
        send_ev = me.isend(_elem_view(recvbuf, s_off, s_len), s_len,
                           next_rank, tag + step) if s_len else None
        if r_len:
            yield me.irecv(_elem_view(incoming, 0, r_len), r_len, prev_rank,
                           tag + step)
            yield me.local_reduce(func, _elem_view(recvbuf, r_off, r_len),
                                  _elem_view(incoming, 0, r_len),
                                  _elem_view(recvbuf, r_off, r_len), r_len)
        if send_ev is not None:
            yield send_ev
    for step in range(size - 1):
        s_off, s_len = blocks[(rank + 1 - step) % size]
        r_off, r_len = blocks[(rank - step) % size]
        pending = []
        if s_len:
            pending.append(me.isend(_elem_view(recvbuf, s_off, s_len), s_len,
                                    next_rank, tag + 200 + step))
        if r_len:
            pending.append(me.irecv(_elem_view(recvbuf, r_off, r_len), r_len,
                                    prev_rank, tag + 200 + step))
        for ev in pending:
            yield ev


# ---------------------------------------------------------------------------
# gather / scatter / allgather / alltoall / barrier
# ---------------------------------------------------------------------------

def gather_linear(me, sendbuf, recvbuf, nbytes, root, tag):
    if me.rank != root:
        yield me.isend(sendbuf, nbytes, root, tag)
        return
    yield me.memcpy(sendbuf, _elem_view(recvbuf, root * nbytes, nbytes),
                    nbytes)
    pending = [
        me.irecv(_elem_view(recvbuf, src * nbytes, nbytes), nbytes, src, tag)
        for src in range(me.size) if src != root
    ]
    for ev in pending:
        yield ev


def gather_binomial(me, sendbuf, recvbuf, nbytes, root, tag):
    size = me.size
    relative = (me.rank - root) % size
    held = _scratch_like(sendbuf, size * nbytes)
    yield me.memcpy(sendbuf, _elem_view(held, 0, nbytes), nbytes)
    my_blocks = 1
    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            yield me.isend(_elem_view(held, 0, my_blocks * nbytes),
                           my_blocks * nbytes, parent, tag)
            break
        child_rel = relative | mask
        if child_rel < size:
            child = (child_rel + root) % size
            child_blocks = min(mask, size - child_rel)
            yield me.irecv(
                _elem_view(held, mask * nbytes, child_blocks * nbytes),
                child_blocks * nbytes, child, tag)
            my_blocks = mask + child_blocks
        mask <<= 1
    if relative == 0:
        for q in range(size):
            rank_q = (root + q) % size
            yield me.memcpy(_elem_view(held, q * nbytes, nbytes),
                            _elem_view(recvbuf, rank_q * nbytes, nbytes),
                            nbytes)


def scatter_linear(me, sendbuf, recvbuf, nbytes, root, tag):
    if me.rank != root:
        yield me.irecv(recvbuf, nbytes, root, tag)
        return
    yield me.memcpy(_elem_view(sendbuf, root * nbytes, nbytes), recvbuf,
                    nbytes)
    pending = [
        me.isend(_elem_view(sendbuf, dst * nbytes, nbytes), nbytes, dst, tag)
        for dst in range(me.size) if dst != root
    ]
    for ev in pending:
        yield ev


def allgather_ring(me, sendbuf, recvbuf, nbytes, tag):
    size = me.size
    rank = me.rank
    yield me.memcpy(sendbuf, _elem_view(recvbuf, rank * nbytes, nbytes),
                    nbytes)
    next_rank = (rank + 1) % size
    prev_rank = (rank - 1) % size
    for step in range(size - 1):
        send_idx = (rank - step) % size
        recv_idx = (rank - step - 1) % size
        pending = [
            me.isend(_elem_view(recvbuf, send_idx * nbytes, nbytes), nbytes,
                     next_rank, tag + step),
            me.irecv(_elem_view(recvbuf, recv_idx * nbytes, nbytes), nbytes,
                     prev_rank, tag + step),
        ]
        for ev in pending:
            yield ev


def alltoall_pairwise(me, sendbuf, recvbuf, nbytes, tag):
    size = me.size
    rank = me.rank
    yield me.memcpy(_elem_view(sendbuf, rank * nbytes, nbytes),
                    _elem_view(recvbuf, rank * nbytes, nbytes), nbytes)
    pending = []
    for stride in range(1, size):
        dst = (rank + stride) % size
        src = (rank - stride) % size
        pending.append(me.isend(_elem_view(sendbuf, dst * nbytes, nbytes),
                                nbytes, dst, tag + stride))
        pending.append(me.irecv(_elem_view(recvbuf, src * nbytes, nbytes),
                                nbytes, src, tag + stride))
    for ev in pending:
        yield ev


def barrier_dissemination(me, tag):
    size = me.size
    distance = 1
    step = 0
    while distance < size:
        send_ev = me.isend(None, 0, (me.rank + distance) % size, tag + step)
        yield me.irecv(None, 0, (me.rank - distance) % size, tag + step)
        yield send_ev
        distance <<= 1
        step += 1


# ---------------------------------------------------------------------------
# tuned entry points
# ---------------------------------------------------------------------------

_BCAST = {"binomial": bcast_binomial,
          "scatter_allgather": bcast_scatter_allgather,
          "pipeline": bcast_pipeline}
_REDUCE = {"linear": reduce_linear, "chain": reduce_chain,
           "binomial": reduce_binomial,
           "reduce_scatter_gather": reduce_scatter_gather}
_ALLREDUCE = {"recursive_doubling": allreduce_recursive_doubling,
              "ring": allreduce_ring}
_GATHER = {"linear": gather_linear, "binomial": gather_binomial}


def mpi_bcast(me, buf, nbytes, root, tag, tuning=_DEFAULT_TUNING,
              algorithm=None):
    fn = _BCAST[algorithm or tuning.bcast(nbytes, me.size)]
    yield from fn(me, buf, nbytes, root, tag)


def mpi_reduce(me, sendbuf, recvbuf, nbytes, root, func="sum", tag=0,
               tuning=_DEFAULT_TUNING, algorithm=None):
    fn = _REDUCE[algorithm or tuning.reduce(nbytes, me.size)]
    yield from fn(me, sendbuf, recvbuf, nbytes, root, func, tag)


def mpi_allreduce(me, sendbuf, recvbuf, nbytes, func="sum", tag=0,
                  tuning=_DEFAULT_TUNING, algorithm=None):
    fn = _ALLREDUCE[algorithm or tuning.allreduce(nbytes, me.size)]
    yield from fn(me, sendbuf, recvbuf, nbytes, func, tag)


def mpi_gather(me, sendbuf, recvbuf, nbytes, root, tag=0,
               tuning=_DEFAULT_TUNING, algorithm=None):
    fn = _GATHER[algorithm or tuning.gather(nbytes, me.size)]
    yield from fn(me, sendbuf, recvbuf, nbytes, root, tag)


_SCATTER = {"linear": scatter_linear, "binomial": scatter_binomial}


def mpi_scatter(me, sendbuf, recvbuf, nbytes, root, tag=0,
                tuning=_DEFAULT_TUNING, algorithm=None):
    fn = _SCATTER[algorithm or tuning.scatter(nbytes, me.size)]
    yield from fn(me, sendbuf, recvbuf, nbytes, root, tag)


def mpi_allgather(me, sendbuf, recvbuf, nbytes, tag=0,
                  tuning=_DEFAULT_TUNING, algorithm=None):
    yield from allgather_ring(me, sendbuf, recvbuf, nbytes, tag)


def mpi_alltoall(me, sendbuf, recvbuf, nbytes, tag=0,
                 tuning=_DEFAULT_TUNING, algorithm=None):
    yield from alltoall_pairwise(me, sendbuf, recvbuf, nbytes, tag)


def mpi_barrier(me, tag=0):
    yield from barrier_dissemination(me, tag)
