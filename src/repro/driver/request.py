"""CclRequest: the handle returned by every collective call (Listing 1)."""

from __future__ import annotations

from typing import Any

from repro.sim import Environment, Event


class CclRequest:
    """Future for an in-flight collective.

    Two consumption styles:

    - host test/benchmark code (outside the simulation): ``request.wait()``
      advances the simulation until completion and returns the value;
    - simulation processes (CPU models, kernels): ``yield request.event``.
    """

    def __init__(self, env: Environment, event: Event, opcode: str):
        self.env = env
        self.event = event
        self.opcode = opcode
        self.issued_at = env.now
        self.completed_at: float = float("nan")
        if event.processed:
            self.completed_at = env.now
        else:
            event.add_callback(self._record_completion)

    def _record_completion(self, _event: Event) -> None:
        self.completed_at = self.env.now

    @property
    def done(self) -> bool:
        return self.event.triggered

    @property
    def ok(self) -> bool:
        return self.event.triggered and self.event.ok

    def wait(self) -> Any:
        """Drive the simulation to completion of this request."""
        if not self.event.processed:
            # Even a triggered event still needs its scheduled callbacks to
            # run (and simulation time to advance to its firing point).
            return self.env.run(until=self.event)
        if not self.event.ok:
            raise self.event.value
        return self.event.value

    @property
    def duration(self) -> float:
        """Seconds from issue to completion (only once done)."""
        if not self.event.triggered:
            raise RuntimeError(f"request {self.opcode!r} still in flight")
        return self.completed_at - self.issued_at

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"<CclRequest {self.opcode} {state}>"
