"""Host-side communicator handle.

Construction performs the driver's POE-initialization duty: "setting up
sessions or queue-pairs" (§4.1) — queue pairs are exchanged out of band and
registered with the POE, a one-time control-plane cost charged here.
"""

from __future__ import annotations

from repro.cclo.config_mem import CommunicatorConfig
from repro import units

#: Collective tags start above this; user point-to-point tags stay below.
COLLECTIVE_TAG_BASE = 1 << 20
#: Tag budget per collective invocation (phases/steps within it).
TAG_STRIDE = 1 << 10

#: Out-of-band exchange cost per remote peer during setup (sockets + MMIO).
PEER_SETUP_COST = units.us(150)


class Communicator:
    """A host view over one CCLO communicator."""

    def __init__(self, config: CommunicatorConfig):
        self.config = config
        self._next_collective_tag = COLLECTIVE_TAG_BASE

    @property
    def comm_id(self) -> int:
        return self.config.comm_id

    @property
    def rank(self) -> int:
        return self.config.local_rank

    @property
    def size(self) -> int:
        return self.config.size

    def next_tag(self) -> int:
        """Reserve a tag window for one collective invocation.

        Every rank calls collectives on a communicator in the same order
        (MPI semantics), so independent drivers hand out matching windows.
        """
        tag = self._next_collective_tag
        self._next_collective_tag += TAG_STRIDE
        return tag

    def setup_cost(self) -> float:
        """One-time session/QP exchange cost for this rank."""
        return PEER_SETUP_COST * (self.size - 1)

    def __repr__(self) -> str:
        return (
            f"<Communicator id={self.comm_id} rank={self.rank}/{self.size} "
            f"{self.config.protocol}>"
        )
