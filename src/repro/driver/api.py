"""The host CCL driver: MPI-like collective API (Listing 1).

One :class:`Accl` instance binds to one node's platform + CCLO engine and
exposes ``send/recv/bcast/reduce/allreduce/gather/allgather/scatter/
alltoall/barrier``.  Every call:

1. charges the platform's host invocation latency (Fig 8);
2. stages host buffers through XDMA on partitioned-memory platforms
   (Vitis), before and after the collective — the paper's *staging* penalty;
3. submits the command to the uC and returns a :class:`CclRequest`.

Buffers passed to collectives are :class:`BaseBuffer`/views created through
:meth:`Accl.alloc` / :meth:`Accl.wrap`; raw numpy arrays are accepted and
wrapped transparently (host-located), matching the paper's "can wrap normal
C++ arrays" convenience.
"""

from __future__ import annotations

from typing import Any, List, Optional, Union

import numpy as np

from repro.errors import PlatformError
from repro.cclo.engine import CcloEngine
from repro.cclo.microcontroller import CollectiveArgs
from repro.driver.communicator import Communicator
from repro.driver.request import CclRequest
from repro.platform.base import (
    BaseBuffer,
    BasePlatform,
    BufferLocation,
    BufferView,
)
from repro.sim import Environment

BufferLike = Union[BaseBuffer, BufferView, np.ndarray, None]


class Accl:
    """Host driver bound to one FPGA node."""

    def __init__(self, engine: CcloEngine, platform: Optional[BasePlatform] = None):
        self.engine = engine
        self.platform = platform or engine.platform
        self.env: Environment = engine.env
        self._communicators = {}
        for comm_id, config in engine.config_mem.communicators.items():
            self._communicators[comm_id] = Communicator(config)

    # -- communicators -------------------------------------------------------

    def communicator(self, comm_id: int = 0) -> Communicator:
        return self._communicators[comm_id]

    @property
    def rank(self) -> int:
        return self.communicator(0).rank

    @property
    def size(self) -> int:
        return self.communicator(0).size

    # -- buffers ------------------------------------------------------------------

    def alloc(self, nbytes: int,
              location: BufferLocation = BufferLocation.DEVICE) -> BaseBuffer:
        """Allocate a registered communication buffer."""
        return self.platform.allocate(nbytes, location)

    def wrap(self, array: np.ndarray,
             location: BufferLocation = BufferLocation.HOST) -> BaseBuffer:
        """Register an existing array (defaults to host memory: H2H style)."""
        return self.platform.wrap(np.ascontiguousarray(array), location)

    def _as_view(self, buf: BufferLike) -> Optional[BufferView]:
        if buf is None:
            return None
        if isinstance(buf, BufferView):
            return buf
        if isinstance(buf, BaseBuffer):
            return buf.view()
        if isinstance(buf, np.ndarray):
            return self.wrap(buf).view()
        raise PlatformError(f"cannot use {type(buf).__name__} as a buffer")

    # -- the collective API -----------------------------------------------------------

    def send(self, sbuf: BufferLike, count_bytes: int, dst: int,
             tag: int = 0, comm_id: int = 0, from_stream: bool = False,
             sync: bool = False, codec: Optional[str] = None) -> Any:
        args = CollectiveArgs(
            opcode="send", comm_id=comm_id, nbytes=count_bytes, peer=dst,
            tag=tag, sbuf=self._as_view(sbuf), from_stream=from_stream,
            extra={"codec": codec} if codec else {},
        )
        return self._submit(args, stage=[args.sbuf], sync=sync)

    def recv(self, rbuf: BufferLike, count_bytes: int, src: int,
             tag: int = 0, comm_id: int = 0, to_stream: bool = False,
             sync: bool = False, codec: Optional[str] = None) -> Any:
        args = CollectiveArgs(
            opcode="recv", comm_id=comm_id, nbytes=count_bytes, peer=src,
            tag=tag, rbuf=self._as_view(rbuf), to_stream=to_stream,
            extra={"codec": codec} if codec else {},
        )
        return self._submit(args, unstage=[args.rbuf], sync=sync)

    def bcast(self, buf: BufferLike, count_bytes: int, root: int,
              comm_id: int = 0, sync: bool = False,
              algorithm: Optional[str] = None,
              protocol: Optional[str] = None) -> Any:
        comm = self.communicator(comm_id)
        view = self._as_view(buf)
        args = CollectiveArgs(
            opcode="bcast", comm_id=comm_id, nbytes=count_bytes, root=root,
            tag=comm.next_tag(), rbuf=view, algorithm=algorithm,
            protocol=protocol,
        )
        stage = [view] if comm.rank == root else []
        unstage = [] if comm.rank == root else [view]
        return self._submit(args, stage=stage, unstage=unstage, sync=sync)

    def reduce(self, sbuf: BufferLike, rbuf: BufferLike, count_bytes: int,
               root: int, func: str = "sum", comm_id: int = 0,
               sync: bool = False, algorithm: Optional[str] = None,
               protocol: Optional[str] = None,
               from_stream: bool = False, to_stream: bool = False) -> Any:
        comm = self.communicator(comm_id)
        args = CollectiveArgs(
            opcode="reduce", comm_id=comm_id, nbytes=count_bytes, root=root,
            tag=comm.next_tag(), func=func, sbuf=self._as_view(sbuf),
            rbuf=self._as_view(rbuf), algorithm=algorithm, protocol=protocol,
            from_stream=from_stream, to_stream=to_stream,
        )
        unstage = [args.rbuf] if comm.rank == root else []
        return self._submit(args, stage=[args.sbuf], unstage=unstage,
                            sync=sync)

    def allreduce(self, sbuf: BufferLike, rbuf: BufferLike, count_bytes: int,
                  func: str = "sum", comm_id: int = 0, sync: bool = False,
                  algorithm: Optional[str] = None,
                  protocol: Optional[str] = None) -> Any:
        comm = self.communicator(comm_id)
        args = CollectiveArgs(
            opcode="allreduce", comm_id=comm_id, nbytes=count_bytes,
            tag=comm.next_tag(), func=func, sbuf=self._as_view(sbuf),
            rbuf=self._as_view(rbuf), algorithm=algorithm, protocol=protocol,
        )
        return self._submit(args, stage=[args.sbuf], unstage=[args.rbuf],
                            sync=sync)

    def gather(self, sbuf: BufferLike, rbuf: BufferLike, count_bytes: int,
               root: int, comm_id: int = 0, sync: bool = False,
               algorithm: Optional[str] = None,
               protocol: Optional[str] = None) -> Any:
        comm = self.communicator(comm_id)
        args = CollectiveArgs(
            opcode="gather", comm_id=comm_id, nbytes=count_bytes, root=root,
            tag=comm.next_tag(), sbuf=self._as_view(sbuf),
            rbuf=self._as_view(rbuf), algorithm=algorithm, protocol=protocol,
        )
        unstage = [args.rbuf] if comm.rank == root else []
        return self._submit(args, stage=[args.sbuf], unstage=unstage,
                            sync=sync)

    def allgather(self, sbuf: BufferLike, rbuf: BufferLike, count_bytes: int,
                  comm_id: int = 0, sync: bool = False,
                  protocol: Optional[str] = None) -> Any:
        comm = self.communicator(comm_id)
        args = CollectiveArgs(
            opcode="allgather", comm_id=comm_id, nbytes=count_bytes,
            tag=comm.next_tag(), sbuf=self._as_view(sbuf),
            rbuf=self._as_view(rbuf), protocol=protocol,
        )
        return self._submit(args, stage=[args.sbuf], unstage=[args.rbuf],
                            sync=sync)

    def scatter(self, sbuf: BufferLike, rbuf: BufferLike, count_bytes: int,
                root: int, comm_id: int = 0, sync: bool = False,
                algorithm: Optional[str] = None,
                protocol: Optional[str] = None) -> Any:
        comm = self.communicator(comm_id)
        args = CollectiveArgs(
            opcode="scatter", comm_id=comm_id, nbytes=count_bytes, root=root,
            tag=comm.next_tag(), sbuf=self._as_view(sbuf),
            rbuf=self._as_view(rbuf), algorithm=algorithm, protocol=protocol,
        )
        stage = [args.sbuf] if comm.rank == root else []
        return self._submit(args, stage=stage, unstage=[args.rbuf],
                            sync=sync)

    def alltoall(self, sbuf: BufferLike, rbuf: BufferLike, count_bytes: int,
                 comm_id: int = 0, sync: bool = False,
                 protocol: Optional[str] = None) -> Any:
        comm = self.communicator(comm_id)
        args = CollectiveArgs(
            opcode="alltoall", comm_id=comm_id, nbytes=count_bytes,
            tag=comm.next_tag(), sbuf=self._as_view(sbuf),
            rbuf=self._as_view(rbuf), protocol=protocol,
        )
        return self._submit(args, stage=[args.sbuf], unstage=[args.rbuf],
                            sync=sync)

    def barrier(self, comm_id: int = 0, sync: bool = True) -> Any:
        comm = self.communicator(comm_id)
        args = CollectiveArgs(
            opcode="barrier", comm_id=comm_id, tag=comm.next_tag()
        )
        return self._submit(args, sync=sync)

    def nop(self, sync: bool = False) -> Any:
        """Invoke the CCLO with a no-op (the Fig 8 microbenchmark)."""
        return self._submit(CollectiveArgs(opcode="nop"), sync=sync)

    # -- host-side streaming (§4.1: "the host can also call streaming
    # collectives via the host-side CCL driver") -----------------------------

    def push_stream(self, chunk: np.ndarray) -> Any:
        """Feed one chunk into the CCLO's kernel-side data stream.

        Pair with a ``from_stream=True`` collective.  Returns a CclRequest
        that completes once the chunk crosses PCIe and enters the stream.
        """
        chunk = np.ascontiguousarray(chunk)

        def proc():
            # Host data must cross PCIe before it can enter the fabric
            # stream; on Coyote this is a unified-memory read, on XRT an
            # explicit XDMA hop.
            pcie = getattr(self.platform, "pcie", None)
            if pcie is not None:
                yield pcie.dma_h2d(chunk.nbytes)
            yield self.engine.kernel_data_in.put((chunk.nbytes, chunk))

        return CclRequest(
            self.env, self.env.process(proc(), name="accl.push"), "push")

    def pull_stream(self) -> Any:
        """Take the next chunk from the CCLO's outbound stream.

        Returns a CclRequest whose value is ``(nbytes, data)``.
        """

        def proc():
            nbytes, data = yield self.engine.kernel_data_out.get()
            pcie = getattr(self.platform, "pcie", None)
            if pcie is not None:
                yield pcie.dma_d2h(nbytes)
            return nbytes, data

        return CclRequest(
            self.env, self.env.process(proc(), name="accl.pull"), "pull")

    # -- submission machinery ----------------------------------------------------------

    def _submit(self, args: CollectiveArgs, stage: list = (),
                unstage: list = (), sync: bool = False) -> Any:
        request = CclRequest(
            self.env,
            self.env.process(
                self._invoke(args, list(stage), list(unstage)),
                name=f"accl{self.rank}.{args.opcode}",
            ),
            args.opcode,
        )
        if sync:
            return request.wait()
        return request

    def _pcie_wait(self, args: CollectiveArgs, t0: float, step: str) -> None:
        """Record host<->device time (MMIO/XDMA) as a ``wait:pcie`` span."""
        span_complete = self.engine._span_complete
        now = self.env.now
        if span_complete is not None and args.op_id >= 0 and now > t0:
            span_complete(f"{self.engine.name}.driver", "wait:pcie", t0, now,
                          phase="wait", op_id=args.op_id, cause="pcie",
                          step=step)

    def _invoke(self, args: CollectiveArgs, stage: list, unstage: list):
        # Observability: allocate the collective's op id and open its root
        # span; every uC/DMP/POE/wire span downstream links back to it.
        root_sid = -1
        if self.engine._span_tracer is not None:
            args.op_id = self.engine.next_op_id()
            root_sid = self.engine.span_begin(
                "driver", f"collective:{args.opcode}", phase="collective",
                op_id=args.op_id, nbytes=args.nbytes, rank=self.rank)
        try:
            # Host -> CCLO invocation cost (MMIO doorbell + ack).
            t_mark = self.env.now
            yield self.platform.invoke_from_host()
            self._pcie_wait(args, t_mark, "invoke")
            # Partitioned memory: migrate host inputs to device memory first.
            for view in stage:
                if view is not None and self.platform.requires_staging(view.buffer):
                    t_mark = self.env.now
                    yield self.platform.stage_in(view.buffer)
                    self._pcie_wait(args, t_mark, "stage_in")
            yield self.engine.call(args)
            # ...and migrate results back afterwards.
            for view in unstage:
                if view is not None and self.platform.requires_staging(view.buffer):
                    t_mark = self.env.now
                    yield self.platform.stage_out(view.buffer)
                    self._pcie_wait(args, t_mark, "stage_out")
        finally:
            self.engine.span_end(root_sid)
        return args.opcode


def attach_drivers(cluster) -> List[Accl]:
    """One host driver per node of a built cluster."""
    return [Accl(node.engine, node.platform) for node in cluster.nodes]
