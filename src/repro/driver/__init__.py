"""Host-side CCL driver (§4.1).

:class:`Accl` is the platform- and protocol-agnostic host driver: it owns
buffer allocation (through the platform's BaseBuffer specialization), POE
initialization, staging on partitioned-memory platforms, and exposes the
MPI-like collective API of Listing 1.  :class:`KernelInterface` is the HLS
driver analogue of Listing 2 for FPGA-resident kernels.
"""

from repro.driver.request import CclRequest
from repro.driver.communicator import Communicator
from repro.driver.api import Accl, attach_drivers
from repro.driver.streaming import KernelInterface

__all__ = [
    "Accl",
    "CclRequest",
    "Communicator",
    "KernelInterface",
    "attach_drivers",
]
