"""The HLS kernel driver: streaming collective interface (Listing 2).

.. code-block:: python

    cclo = KernelInterface(engine)               # Command + Data setup
    cclo.send(nbytes, dst_rank)                  # streaming send command
    for chunk in chunks:
        yield from cclo.push(chunk)              # 64 B/cycle stream pushes
    yield from cclo.finalize()                   # wait for CCLO completion

All generator methods are used with ``yield from`` inside simulation
processes — the analogue of synthesizable HLS code running on the fabric.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import CcloError
from repro.cclo.engine import CcloEngine
from repro.cclo.microcontroller import CollectiveArgs
from repro.sim import Event


class KernelInterface:
    """Command + data interface of one FPGA kernel to its local CCLO."""

    def __init__(self, engine: CcloEngine, comm_id: int = 0):
        self.engine = engine
        self.env = engine.env
        self.comm_id = comm_id
        self._pending: List[Event] = []

    # -- command path (cclo_hls::Command) ------------------------------------

    def _issue(self, args: CollectiveArgs):
        """Kernel-side invocation: FIFO write latency, then the command."""
        yield self.engine.platform.invoke_from_kernel()
        self._pending.append(self.engine.call(args))

    def send(self, nbytes: int, dst_rank: int, tag: int = 0):
        """Streaming send: data comes from subsequent :meth:`push` calls."""
        yield from self._issue(CollectiveArgs(
            opcode="send", comm_id=self.comm_id, nbytes=nbytes, peer=dst_rank,
            tag=tag, from_stream=True,
        ))

    def recv(self, nbytes: int, src_rank: int, tag: int = 0):
        """Streaming recv: data arrives through :meth:`pull`."""
        yield from self._issue(CollectiveArgs(
            opcode="recv", comm_id=self.comm_id, nbytes=nbytes, peer=src_rank,
            tag=tag, to_stream=True,
        ))

    def reduce(self, nbytes: int, root: int, func: str = "sum",
               to_stream: bool = False, rbuf=None, tag: int = 0,
               algorithm: Optional[str] = None):
        """Streaming reduce: this kernel's contribution comes from pushes."""
        yield from self._issue(CollectiveArgs(
            opcode="reduce", comm_id=self.comm_id, nbytes=nbytes, root=root,
            tag=tag, func=func, from_stream=True, to_stream=to_stream,
            rbuf=rbuf, algorithm=algorithm,
        ))

    # -- data path (cclo_hls::Data) ----------------------------------------------

    def push(self, chunk: Any, nbytes: Optional[int] = None):
        """Push one chunk into the CCLO stream (blocking on back-pressure)."""
        if nbytes is None:
            if not hasattr(chunk, "nbytes"):
                raise CcloError("push needs an array chunk or explicit nbytes")
            nbytes = chunk.nbytes
        yield self.engine.kernel_data_in.put((nbytes, chunk))

    def pull(self):
        """Pull the next chunk from the CCLO stream; returns (nbytes, data)."""
        item = yield self.engine.kernel_data_out.get()
        return item

    def finalize(self):
        """Wait for every issued command to complete (cclo.finalize())."""
        pending, self._pending = self._pending, []
        for ev in pending:
            yield ev
