"""Exception hierarchy for the ACCL+ reproduction.

Every layer raises a subclass of :class:`ReproError` so applications can
catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """Invalid component configuration (bad sizes, unknown protocol...)."""


class NetworkError(ReproError):
    """Fabric-level failure (unknown destination, oversized frame...)."""


class ProtocolError(ReproError):
    """POE-level failure (no session, QP mismatch, retransmit exhausted)."""


class PlatformError(ReproError):
    """Platform/driver failure (unmapped buffer, staging on wrong platform)."""


class CcloError(ReproError):
    """CCLO engine failure (unknown opcode, firmware fault)."""


class CollectiveError(ReproError):
    """Collective-level failure (mismatched communicator, bad root rank)."""
