"""UDP protocol offload engine (VNx-style, §4.3).

Connectionless and unreliable: no sessions, no flow control, no
retransmission state.  The simulated fabric does not drop packets, so UDP
here is functionally lossless (the paper's firmware likewise "uses simple
algorithms like ring and one-to-all to minimize the chances of packet loss"
rather than recovering from it).  An optional drop hook lets failure-injection
tests exercise loss.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.network.packet import Segment
from repro.protocols.base import BasePoe, MessageHeader
from repro import units


class UdpPoe(BasePoe):
    """Datagram engine: messages go straight to the wire."""

    protocol_name = "udp"
    mtu = 1500
    poe_latency = units.ns(250)

    def __init__(self, env, endpoint, name: str = ""):
        super().__init__(env, endpoint, name)
        self._drop_filter: Optional[Callable[[Segment], bool]] = None
        self.segments_dropped = 0

    def set_drop_filter(self, predicate: Callable[[Segment], bool]) -> None:
        """Failure injection: drop inbound segments for which *predicate* is
        true.  Dropped datagrams are silently lost, as on real UDP."""
        self._drop_filter = predicate

    def _on_segment(self, segment: Segment) -> None:
        if self._drop_filter is not None and self._drop_filter(segment):
            self.segments_dropped += 1
            # Drop the whole reassembly: a datagram with a missing fragment
            # never completes.
            header: MessageHeader = segment.meta
            self._rx_state.pop((header.src_addr, header.msg_id), None)
            return
        super()._on_segment(segment)

    def _on_burst(self, burst) -> None:
        if self._drop_filter is not None:
            # Failure injection must still see individual segments: replay
            # the train through the per-segment path so the filter can drop
            # fragments (losing one loses the datagram, as in packet mode).
            for _avail, segment in burst.iter_segments():
                self._on_segment(segment)
            return
        super()._on_burst(burst)
