"""Common POE machinery: message headers, segmentation, reassembly.

A *message* is the unit the CCLO deals in; the wire deals in *segments*.
:class:`BasePoe` owns the split/merge: the transmit path cuts a message into
``segment_bytes`` chunks and paces them through the endpoint (subject to the
subclass's flow control), and the receive path counts segment arrivals per
message id, handing the completed message to the registered handler.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import ProtocolError
from repro.network.endpoint import Endpoint
from repro.network.packet import Segment
from repro.sim import Environment, Event
from repro import units


@dataclass
class MessageHeader:
    """Transport-level message descriptor (not the ACCL+ signature).

    The ACCL+ lightweight protocol header (rank ids, tag, sequence number —
    §4.4.2) rides inside ``meta``; this descriptor is what the POE itself
    needs to move bytes.
    """

    msg_id: int
    src_addr: int
    dst_addr: int
    nbytes: int
    kind: str = "send"  # "send" | "write" | "datagram"
    session: int = 0
    meta: Any = None
    #: sim time the first segment entered the wire (-1 = untraced); lets the
    #: receiving POE close a wire-phase span without a round trip.
    tx_t0: float = -1.0

    def __repr__(self) -> str:
        return (
            f"<MessageHeader #{self.msg_id} {self.kind} "
            f"{self.src_addr}->{self.dst_addr} {self.nbytes}B>"
        )


class DeferredPayload:
    """Functional payload of a cut-through streaming send.

    The POE starts transmitting before the sending kernel has produced all
    the data; the value is filled in by the producer before the last byte
    leaves, and resolved by the receive side at delivery time.
    """

    _UNSET = object()

    def __init__(self):
        self._value: Any = self._UNSET

    def set(self, value: Any) -> None:
        self._value = value

    def get(self) -> Any:
        if self._value is self._UNSET:
            raise ProtocolError(
                "deferred payload delivered before the producer finished "
                "(cut-through pacing violated)"
            )
        return self._value

    @staticmethod
    def resolve(data: Any) -> Any:
        return data.get() if isinstance(data, DeferredPayload) else data


@dataclass
class _Reassembly:
    header: MessageHeader
    bytes_seen: int = 0
    data: Any = None


class BasePoe:
    """Shared transmit/receive plumbing for all protocol engines.

    Subclasses set class attributes (``protocol_name``, ``mtu``,
    ``poe_latency``) and may override hooks:

    - :meth:`_tx_flow_control` -- yield before each segment (window/credits).
    - :meth:`_on_segment_delivered` -- receive-side accounting (acks).
    - :meth:`_deliver` -- how a completed message reaches the consumer.
    """

    protocol_name = "raw"
    #: wire MTU used for header-overhead accounting
    mtu = 1500
    #: segmentation quantum (bounded by the link's segment cap)
    segment_bytes = 32 * units.KIB
    #: fixed pipeline latency through the POE per message, seconds
    poe_latency = units.ns(300)
    #: wait-cause label for time blocked in :meth:`_tx_flow_control`
    #: (subclasses name their mechanism: TCP retx window, RDMA credits)
    flow_control_cause = "flow_control"

    def __init__(self, env: Environment, endpoint: Endpoint, name: str = ""):
        self.env = env
        self.endpoint = endpoint
        self.name = name or f"{self.protocol_name}@{endpoint.address}"
        self._msg_ids = itertools.count(1)
        self._handler: Optional[Callable[[MessageHeader, Any], None]] = None
        self._rx_state: Dict[tuple, _Reassembly] = {}
        self.messages_sent = 0
        self.messages_received = 0
        # Span tracing (None = disabled): bound by the owning engine.
        self._span_tracer = None
        self._trace_node = self.name
        endpoint.on_receive(self._on_segment)

    def bind_tracer(self, span_tracer, node: str) -> None:
        """Activate span tracing; *node* names this POE's trace tracks.

        Pass ``None`` to deactivate (a plain event tracer has no spans).
        """
        self._span_tracer = span_tracer
        self._trace_node = node

    def register_metrics(self, registry, **labels) -> None:
        registry.gauge("poe_messages_sent",
                       fn=lambda: float(self.messages_sent), **labels)
        registry.gauge("poe_messages_received",
                       fn=lambda: float(self.messages_received), **labels)

    @property
    def address(self) -> int:
        return self.endpoint.address

    def on_message(self, handler: Callable[[MessageHeader, Any], None]) -> None:
        """Register the consumer for completed inbound messages."""
        if self._handler is not None:
            raise ProtocolError(f"{self.name}: message handler already set")
        self._handler = handler

    # -- transmit path ----------------------------------------------------

    def send_message(
        self,
        dst_addr: int,
        nbytes: int,
        meta: Any = None,
        data: Any = None,
        kind: str = "send",
        session: int = 0,
        pace: Any = None,
    ) -> Event:
        """Transmit a message; the event fires when the last byte has been
        handed to the wire (local completion).

        ``pace`` (a byte TokenBucket) throttles segmentation to a producer
        that is still generating the data — the cut-through streaming path.
        """
        if nbytes < 0:
            raise ProtocolError(f"negative message size: {nbytes}")
        header = MessageHeader(
            msg_id=next(self._msg_ids),
            src_addr=self.address,
            dst_addr=dst_addr,
            nbytes=nbytes,
            kind=kind,
            session=session,
            meta=meta,
        )
        self.messages_sent += 1
        return self.env.process(
            self._tx_process(header, data, pace),
            name=f"{self.name}.tx{header.msg_id}",
        )

    def _tx_process(self, header: MessageHeader, data: Any, pace: Any = None):
        tracer = self._span_tracer
        t_start = self.env.now
        # Plain-float yields take the kernel's allocation-free sleep path;
        # this loop runs once per 32 KiB segment and dominates big transfers.
        yield self.poe_latency
        env = self.env
        if tracer is not None:
            header.tx_t0 = env.now
        endpoint_send = self.endpoint.send
        address = self.address
        dst_addr = header.dst_addr
        protocol_name = self.protocol_name
        mtu = self.mtu
        segment_bytes = self.segment_bytes
        remaining = header.nbytes
        seqno = 0
        sent_any = False
        while remaining > 0 or not sent_any:
            chunk = min(remaining, segment_bytes) if remaining else 0
            if pace is not None and chunk > 0:
                yield pace.take(chunk)
            if tracer is not None:
                t_fc = env.now
                yield from self._tx_flow_control(header, chunk)
                if env.now > t_fc:
                    tracer.span_complete(
                        f"{self._trace_node}.poe",
                        f"wait:{self.flow_control_cause}",
                        t_fc, env.now, phase="wait",
                        op_id=getattr(header.meta, "op_id", -1),
                        cause=self.flow_control_cause, dst=dst_addr)
            else:
                yield from self._tx_flow_control(header, chunk)
            segment = Segment(
                src=address,
                dst=dst_addr,
                payload_bytes=chunk,
                protocol=protocol_name,
                meta=header,
                data=data if seqno == 0 else None,
                mtu=mtu,
                seqno=seqno,
            )
            egress_done = endpoint_send(segment)
            yield from self._tx_post_segment(header, segment)
            remaining -= chunk
            seqno += 1
            sent_any = True
            if remaining > 0:
                # Pace the next segment to the serializer: prevents flooding
                # the heap, keeps FIFO fairness between concurrent messages.
                pause = egress_done - env.now
                yield pause if pause > 0.0 else 0.0
        if tracer is not None:
            tracer.span_complete(
                f"{self._trace_node}.poe", f"tx:{header.kind}",
                t_start, env.now, phase="poe",
                op_id=getattr(header.meta, "op_id", -1),
                nbytes=header.nbytes, dst=header.dst_addr)
        return header

    def _tx_flow_control(self, header: MessageHeader, chunk: int):
        """Subclass hook: yield until *chunk* bytes may enter the wire."""
        return
        yield  # pragma: no cover — makes this a generator

    def _tx_post_segment(self, header: MessageHeader, segment: Segment):
        """Subclass hook: per-segment bookkeeping (e.g. retx buffering)."""
        return
        yield  # pragma: no cover

    # -- receive path ------------------------------------------------------

    def _on_segment(self, segment: Segment) -> None:
        header: MessageHeader = segment.meta
        key = (header.src_addr, header.msg_id)
        state = self._rx_state.get(key)
        if state is None:
            state = _Reassembly(header=header)
            self._rx_state[key] = state
        state.bytes_seen += segment.payload_bytes
        if segment.data is not None:
            state.data = segment.data
        self._on_segment_delivered(segment)
        if state.bytes_seen >= header.nbytes:
            del self._rx_state[key]
            self.messages_received += 1
            tracer = self._span_tracer
            if tracer is not None:
                now = self.env.now
                op = getattr(header.meta, "op_id", -1)
                if header.tx_t0 >= 0:
                    # First byte on the wire to last byte reassembled: the
                    # message's wire occupancy, on the receiver's track.
                    tracer.span_complete(
                        f"{self._trace_node}.wire", f"wire:{header.kind}",
                        header.tx_t0, now, phase="wire", op_id=op,
                        nbytes=header.nbytes, src=header.src_addr)
                tracer.span_complete(
                    f"{self._trace_node}.poe", "rx", now,
                    now + self.poe_latency, phase="poe", op_id=op,
                    nbytes=header.nbytes)
            self.env.schedule_callback(
                self.poe_latency, self._deliver_resolved, header, state.data
            )

    def _deliver_resolved(self, header: MessageHeader, data: Any) -> None:
        # Resolution happens at delivery time, not scheduling time: a
        # cut-through producer may fill a DeferredPayload in between.
        self._deliver(header, DeferredPayload.resolve(data))

    def _on_segment_delivered(self, segment: Segment) -> None:
        """Subclass hook: receive-side per-segment work (acks/credits)."""

    def _deliver(self, header: MessageHeader, data: Any) -> None:
        if self._handler is None:
            raise ProtocolError(
                f"{self.name}: inbound message but no handler registered"
            )
        self._handler(header, data)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
