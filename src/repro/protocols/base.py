"""Common POE machinery: message headers, segmentation, reassembly.

A *message* is the unit the CCLO deals in; the wire deals in *segments*.
:class:`BasePoe` owns the split/merge: the transmit path cuts a message into
``segment_bytes`` chunks and paces them through the endpoint (subject to the
subclass's flow control), and the receive path counts segment arrivals per
message id, handing the completed message to the registered handler.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import ProtocolError
from repro.network.endpoint import Endpoint
from repro.network.fidelity import POE_FLOW_DECISIONS
from repro.network.packet import Burst, Segment
from repro.sim import Environment, Event
from repro import units


@dataclass
class MessageHeader:
    """Transport-level message descriptor (not the ACCL+ signature).

    The ACCL+ lightweight protocol header (rank ids, tag, sequence number —
    §4.4.2) rides inside ``meta``; this descriptor is what the POE itself
    needs to move bytes.
    """

    msg_id: int
    src_addr: int
    dst_addr: int
    nbytes: int
    kind: str = "send"  # "send" | "write" | "datagram"
    session: int = 0
    meta: Any = None
    #: sim time the first segment entered the wire (-1 = untraced); lets the
    #: receiving POE close a wire-phase span without a round trip.
    tx_t0: float = -1.0

    def __repr__(self) -> str:
        return (
            f"<MessageHeader #{self.msg_id} {self.kind} "
            f"{self.src_addr}->{self.dst_addr} {self.nbytes}B>"
        )


class DeferredPayload:
    """Functional payload of a cut-through streaming send.

    The POE starts transmitting before the sending kernel has produced all
    the data; the value is filled in by the producer before the last byte
    leaves, and resolved by the receive side at delivery time.
    """

    _UNSET = object()

    def __init__(self):
        self._value: Any = self._UNSET

    def set(self, value: Any) -> None:
        self._value = value

    def get(self) -> Any:
        if self._value is self._UNSET:
            raise ProtocolError(
                "deferred payload delivered before the producer finished "
                "(cut-through pacing violated)"
            )
        return self._value

    @staticmethod
    def resolve(data: Any) -> Any:
        return data.get() if isinstance(data, DeferredPayload) else data


@dataclass
class _Reassembly:
    header: MessageHeader
    bytes_seen: int = 0
    data: Any = None


class BasePoe:
    """Shared transmit/receive plumbing for all protocol engines.

    Subclasses set class attributes (``protocol_name``, ``mtu``,
    ``poe_latency``) and may override hooks:

    - :meth:`_tx_flow_control` -- yield before each segment (window/credits).
    - :meth:`_on_segment_delivered` -- receive-side accounting (acks).
    - :meth:`_deliver` -- how a completed message reaches the consumer.
    """

    protocol_name = "raw"
    #: wire MTU used for header-overhead accounting
    mtu = 1500
    #: segmentation quantum (bounded by the link's segment cap)
    segment_bytes = 32 * units.KIB
    #: fixed pipeline latency through the POE per message, seconds
    poe_latency = units.ns(300)
    #: wait-cause label for time blocked in :meth:`_tx_flow_control`
    #: (subclasses name their mechanism: TCP retx window, RDMA credits)
    flow_control_cause = "flow_control"
    #: flow fidelity accounting — heap events the per-segment transmit /
    #: receive paths would have dispatched per segment but the analytic
    #: burst elides (flow-control yields, retx writes; credit/ack returns).
    #: Feeds ``Environment.total_events_fast_forwarded`` so events/s stays
    #: comparable across fidelity modes.
    _FLOW_TX_ELIDED_PER_SEGMENT = 0
    _FLOW_RX_ELIDED_PER_SEGMENT = 0

    def __init__(self, env: Environment, endpoint: Endpoint, name: str = ""):
        self.env = env
        self.endpoint = endpoint
        self.name = name or f"{self.protocol_name}@{endpoint.address}"
        self._msg_ids = itertools.count(1)
        self._handler: Optional[Callable[[MessageHeader, Any], None]] = None
        self._rx_state: Dict[tuple, _Reassembly] = {}
        self.messages_sent = 0
        self.messages_received = 0
        #: multi-segment transmit processes currently between start and
        #: local completion.  >1 means concurrent bulk messages share the
        #: uplink; when they are *symmetric* (all fast-forwarding, started
        #: together) the link carries them as a round-robin convoy with
        #: ``share`` equal to this count.  Single-segment sends (acks,
        #: credits, rendezvous control) are not counted — the link slots
        #: those into the train's inter-segment gaps exactly as
        #: packet-level FIFO does.
        self._tx_bulk_inflight = 0
        #: bulk transmits currently running the per-segment loop (below
        #: the flow admission floor, paced, or fallen back).  Non-zero
        #: poisons the convoy: packet-loop traffic interleaves at FIFO
        #: granularity, which the analytic grid cannot represent, so flow
        #: transmits must not admit (and fall back between sub-bursts)
        #: while any such sibling is active.
        self._tx_bulk_packet = 0
        #: flow-fidelity transmit enabled for this engine (set per topology)
        self._fidelity_flow = (
            getattr(endpoint, "fidelity", "packet") == "flow")
        #: per-reason flow admission/fallback counts (see
        #: :data:`repro.network.fidelity.POE_FLOW_DECISIONS`); stays empty
        #: in packet mode.
        self.flow_tx_decisions: dict = {}
        # Span tracing (None = disabled): bound by the owning engine.
        self._span_tracer = None
        self._trace_node = self.name
        endpoint.on_receive(self._on_segment)
        if hasattr(endpoint, "on_receive_burst"):
            endpoint.on_receive_burst(self._on_burst)

    def bind_tracer(self, span_tracer, node: str) -> None:
        """Activate span tracing; *node* names this POE's trace tracks.

        Pass ``None`` to deactivate (a plain event tracer has no spans).
        """
        self._span_tracer = span_tracer
        self._trace_node = node

    def register_metrics(self, registry, **labels) -> None:
        registry.gauge("poe_messages_sent",
                       fn=lambda: float(self.messages_sent), **labels)
        registry.gauge("poe_messages_received",
                       fn=lambda: float(self.messages_received), **labels)
        for reason in POE_FLOW_DECISIONS:
            registry.gauge(
                "poe_flow_decisions",
                fn=lambda r=reason: float(
                    self.flow_tx_decisions.get(r, 0.0)),
                reason=reason, **labels)

    def _flow_decision(self, header: MessageHeader, kind: str) -> None:
        """Count one flow admission/fallback decision for *header*; under a
        tracer also drop a zero-duration ``phase="fidelity"`` marker span
        (record-only — attribution ignores it, the decision log shows it)."""
        d = self.flow_tx_decisions
        d[kind] = d.get(kind, 0) + 1
        tracer = self._span_tracer
        if tracer is not None:
            op = getattr(header.meta, "op_id", -1)
            if op >= 0:
                now = self.env._now
                tracer.span_complete(
                    f"{self._trace_node}.poe", f"flow:{kind}", now, now,
                    phase="fidelity", op_id=op, reason=kind,
                    msg_id=header.msg_id, nbytes=header.nbytes)

    @property
    def address(self) -> int:
        return self.endpoint.address

    def on_message(self, handler: Callable[[MessageHeader, Any], None]) -> None:
        """Register the consumer for completed inbound messages."""
        if self._handler is not None:
            raise ProtocolError(f"{self.name}: message handler already set")
        self._handler = handler

    # -- transmit path ----------------------------------------------------

    def send_message(
        self,
        dst_addr: int,
        nbytes: int,
        meta: Any = None,
        data: Any = None,
        kind: str = "send",
        session: int = 0,
        pace: Any = None,
    ) -> Event:
        """Transmit a message; the event fires when the last byte has been
        handed to the wire (local completion).

        ``pace`` (a byte TokenBucket) throttles segmentation to a producer
        that is still generating the data — the cut-through streaming path.
        """
        if nbytes < 0:
            raise ProtocolError(f"negative message size: {nbytes}")
        header = MessageHeader(
            msg_id=next(self._msg_ids),
            src_addr=self.address,
            dst_addr=dst_addr,
            nbytes=nbytes,
            kind=kind,
            session=session,
            meta=meta,
        )
        self.messages_sent += 1
        return self.env.process(
            self._tx_process(header, data, pace),
            name=f"{self.name}.tx{header.msg_id}",
        )

    def _tx_process(self, header: MessageHeader, data: Any, pace: Any = None):
        bulk = header.nbytes > self.segment_bytes
        if bulk:
            self._tx_bulk_inflight += 1
        try:
            result = yield from self._tx_run(header, data, pace)
        finally:
            if bulk:
                self._tx_bulk_inflight -= 1
        return result

    def _tx_run(self, header: MessageHeader, data: Any, pace: Any = None):
        tracer = self._span_tracer
        t_start = self.env.now
        # Plain-float yields take the kernel's allocation-free sleep path;
        # this loop runs once per 32 KiB segment and dominates big transfers.
        yield self.poe_latency
        env = self.env
        remaining = header.nbytes
        seqno = 0
        if (self._fidelity_flow and pace is None
                and self._tx_bulk_packet == 0
                and header.nbytes
                    >= self._FLOW_MIN_SEGMENTS * self.segment_bytes):
            # Flow fast-forward: submit the segment train as analytic
            # sub-bursts while nothing per-segment could have mattered —
            # pristine flow-control state and no packet-loop sibling on
            # this engine.  A lone message gets the FIFO closed form;
            # ``share`` concurrent bulk messages ask the link for a
            # round-robin convoy (declined unless they are symmetric).
            # Contention arriving mid-message drops the remainder back to
            # the per-segment loop (and mid-path congestion expands a
            # burst at the busy hop).
            remaining, seqno = yield from self._flow_tx_run(
                header, data, tracer)
            if remaining == 0:
                if tracer is not None:
                    tracer.span_complete(
                        f"{self._trace_node}.poe", f"tx:{header.kind}",
                        t_start, env.now, phase="poe",
                        op_id=getattr(header.meta, "op_id", -1),
                        nbytes=header.nbytes, dst=header.dst_addr)
                return header
        elif self._fidelity_flow and header.nbytes > self.segment_bytes:
            # Bulk message that never entered the analytic path: record why.
            if pace is not None:
                self._flow_decision(header, "reject:paced")
            elif self._tx_bulk_packet > 0:
                self._flow_decision(header, "reject:packet_sibling")
            else:
                self._flow_decision(header, "reject:below_floor")
        if tracer is not None and header.tx_t0 < 0:
            header.tx_t0 = env.now
        endpoint_send = self.endpoint.send
        address = self.address
        dst_addr = header.dst_addr
        protocol_name = self.protocol_name
        mtu = self.mtu
        segment_bytes = self.segment_bytes
        sent_any = seqno > 0
        bulk = header.nbytes > segment_bytes
        if bulk:
            self._tx_bulk_packet += 1
        try:
            while remaining > 0 or not sent_any:
                chunk = min(remaining, segment_bytes) if remaining else 0
                if pace is not None and chunk > 0:
                    yield pace.take(chunk)
                if tracer is not None:
                    t_fc = env.now
                    yield from self._tx_flow_control(header, chunk)
                    if env.now > t_fc:
                        tracer.span_complete(
                            f"{self._trace_node}.poe",
                            f"wait:{self.flow_control_cause}",
                            t_fc, env.now, phase="wait",
                            op_id=getattr(header.meta, "op_id", -1),
                            cause=self.flow_control_cause, dst=dst_addr)
                else:
                    yield from self._tx_flow_control(header, chunk)
                segment = Segment(
                    src=address,
                    dst=dst_addr,
                    payload_bytes=chunk,
                    protocol=protocol_name,
                    meta=header,
                    data=data if seqno == 0 else None,
                    mtu=mtu,
                    seqno=seqno,
                )
                egress_done = endpoint_send(segment)
                yield from self._tx_post_segment(header, segment)
                remaining -= chunk
                seqno += 1
                sent_any = True
                if remaining > 0:
                    # Pace the next segment to the serializer: prevents
                    # flooding the heap, keeps FIFO fairness between
                    # concurrent messages.
                    pause = egress_done - env.now
                    yield pause if pause > 0.0 else 0.0
        finally:
            if bulk:
                self._tx_bulk_packet -= 1
        if tracer is not None:
            tracer.span_complete(
                f"{self._trace_node}.poe", f"tx:{header.kind}",
                t_start, env.now, phase="poe",
                op_id=getattr(header.meta, "op_id", -1),
                nbytes=header.nbytes, dst=header.dst_addr)
        return header

    def _tx_flow_control(self, header: MessageHeader, chunk: int):
        """Subclass hook: yield until *chunk* bytes may enter the wire."""
        return
        yield  # pragma: no cover — makes this a generator

    def _tx_post_segment(self, header: MessageHeader, segment: Segment):
        """Subclass hook: per-segment bookkeeping (e.g. retx buffering)."""
        return
        yield  # pragma: no cover

    # -- flow-fidelity fast-forward ----------------------------------------

    #: segments per analytic sub-burst: the granularity at which a
    #: fast-forwarded transmit re-checks for contention.  A concurrent
    #: message arriving mid-train is noticed within one sub-burst's wire
    #: time and the remainder falls back to interleaved packet fidelity.
    _FLOW_SUBBURST_SEGMENTS = 32
    #: admission floor, in segments: the one-sub-burst fallback residue is
    #: an *absolute* error (up to one window of FIFO-vs-fair-share skew),
    #: so only messages long enough to keep it relatively negligible are
    #: fast-forwarded.  Shorter messages run at packet fidelity, where
    #: they are cheap anyway.
    _FLOW_MIN_SEGMENTS = 8 * _FLOW_SUBBURST_SEGMENTS

    def _flow_tx_run(self, header: MessageHeader, data: Any, tracer):
        """Analytic burst transmit as a train of sub-bursts.

        Pauses at each sub-burst's handoff instant (when the packet loop
        would have handed its last segment to the wire) and re-checks the
        admission conditions before continuing.  Each sub-burst is stamped
        with the engine's current bulk-transmit count as its ``share``:
        ``share > 1`` asks the link for convoy (round-robin) interleaving,
        and the link declines — forcing a fallback here — whenever the
        count disagrees with the convoy it actually formed.  Returns
        ``(remaining_bytes, next_seqno)`` — ``(0, n)`` when the whole
        message went out analytically, or the packet-loop resume point
        after a fallback.
        """
        nbytes = header.nbytes
        if not self._flow_tx_ready(header):
            self._flow_decision(header, "reject:flow_control")
            return nbytes, 0
        self._flow_decision(header, "admit")
        env = self.env
        seg = self.segment_bytes
        n_total = -(-nbytes // seg)
        tail_bytes = nbytes - (n_total - 1) * seg
        if tracer is not None:
            header.tx_t0 = env.now
        chunk = self._FLOW_SUBBURST_SEGMENTS
        sent = 0
        while sent < n_total:
            if sent > 0:
                self._flow_decision(header, "window:readmit")
            k = n_total - sent
            if k > chunk + 1:
                k = chunk
            is_tail = sent + k == n_total
            last_bytes = tail_bytes if is_tail else seg
            burst = Burst(
                src=self.address, dst=header.dst_addr,
                payload_bytes=(k - 1) * seg + last_bytes,
                n_segments=k, segment_bytes=seg, last_bytes=last_bytes,
                protocol=self.protocol_name, meta=header,
                data=data if sent == 0 else None,
                mtu=self.mtu, head_at=env.now, spacing=0.0,
                last_at=env.now, seq_base=sent,
                share=self._tx_bulk_inflight,
            )
            handoff = self.endpoint.send_burst(burst)
            if handoff is None:
                self._flow_decision(header, "fallback:link_declined")
                return nbytes - sent * seg, sent
            # k-1 elided pacing sleeps plus the per-segment protocol work.
            Environment.total_events_fast_forwarded += (
                (k - 1) + k * self._FLOW_TX_ELIDED_PER_SEGMENT)
            post = self._flow_tx_post(header, burst)
            pause = handoff - env.now
            if pause > 0.0:
                yield pause
            if post is not None:
                yield post
            sent += k
            if sent < n_total:
                if self._tx_bulk_packet > 0:
                    self._flow_decision(header, "fallback:packet_sibling")
                    return nbytes - sent * seg, sent
                if not self._flow_tx_ready(header):
                    self._flow_decision(header, "fallback:flow_control")
                    return nbytes - sent * seg, sent
        return 0, n_total

    def _flow_tx_ready(self, header: MessageHeader) -> bool:
        """Subclass hook: is per-segment flow control guaranteed not to
        stall this message on an idle path?  Must be conservative: any
        outstanding credit/window state forces the packet-level loop."""
        return True

    def _flow_tx_post(self, header: MessageHeader,
                      burst: Burst) -> Optional[Event]:
        """Subclass hook: transmit-side bulk bookkeeping for a burst
        (e.g. retx mirroring).  An Event return delays local completion."""
        return None

    def _flow_window_floor(self) -> float:
        """Flow-control capacity below which per-segment credits could run
        dry even on an idle path: roughly twice the bandwidth-delay product
        plus one in-flight segment.  Buckets at full capacity above this
        floor are transparent — packet mode would never have stalled."""
        link = self.endpoint.uplink
        if link is None:
            return float("inf")
        rtt = 4 * link.latency + units.us(2) + 4 * self.poe_latency
        return 2.0 * (link.rate * rtt + self.segment_bytes)

    def _on_burst(self, burst: Burst) -> None:
        """Receive a fast-forwarded train; runs at its last segment's arrival.

        Collapses ``n_segments`` calls of `_on_segment` into one: the
        burst's bytes accumulate into the same reassembly state packet
        segments use (a message may arrive as a mix of sub-bursts and
        fallen-back segments), and delivery fires once the message is
        whole.  Per-segment receive effects (credit returns, acks) are
        elided — on the idle paths that admit bursts they only refill
        already-full buckets — and counted as fast-forwarded events.
        """
        header: MessageHeader = burst.meta
        key = (header.src_addr, header.msg_id)
        state = self._rx_state.get(key)
        if state is None:
            state = _Reassembly(header=header)
            self._rx_state[key] = state
        state.bytes_seen += burst.payload_bytes
        if burst.data is not None:
            state.data = burst.data
        Environment.total_events_fast_forwarded += (
            burst.n_segments * self._FLOW_RX_ELIDED_PER_SEGMENT)
        self._flow_rx_effects(burst)
        if state.bytes_seen < header.nbytes:
            return
        del self._rx_state[key]
        self.messages_received += 1
        tracer = self._span_tracer
        if tracer is not None:
            now = self.env.now
            op = getattr(header.meta, "op_id", -1)
            if header.tx_t0 >= 0:
                tracer.span_complete(
                    f"{self._trace_node}.wire", f"wire:{header.kind}",
                    header.tx_t0, now, phase="wire", op_id=op,
                    nbytes=header.nbytes, src=header.src_addr)
            tracer.span_complete(
                f"{self._trace_node}.poe", "rx", now,
                now + self.poe_latency, phase="poe", op_id=op,
                nbytes=header.nbytes)
        self.env.schedule_callback(
            self.poe_latency, self._deliver_resolved, header, state.data
        )

    def _flow_rx_effects(self, burst: Burst) -> None:
        """Subclass hook: receive-side burst bookkeeping (memory landings)."""

    # -- receive path ------------------------------------------------------

    def _on_segment(self, segment: Segment) -> None:
        header: MessageHeader = segment.meta
        key = (header.src_addr, header.msg_id)
        state = self._rx_state.get(key)
        if state is None:
            state = _Reassembly(header=header)
            self._rx_state[key] = state
        state.bytes_seen += segment.payload_bytes
        if segment.data is not None:
            state.data = segment.data
        self._on_segment_delivered(segment)
        if state.bytes_seen >= header.nbytes:
            del self._rx_state[key]
            self.messages_received += 1
            tracer = self._span_tracer
            if tracer is not None:
                now = self.env.now
                op = getattr(header.meta, "op_id", -1)
                if header.tx_t0 >= 0:
                    # First byte on the wire to last byte reassembled: the
                    # message's wire occupancy, on the receiver's track.
                    tracer.span_complete(
                        f"{self._trace_node}.wire", f"wire:{header.kind}",
                        header.tx_t0, now, phase="wire", op_id=op,
                        nbytes=header.nbytes, src=header.src_addr)
                tracer.span_complete(
                    f"{self._trace_node}.poe", "rx", now,
                    now + self.poe_latency, phase="poe", op_id=op,
                    nbytes=header.nbytes)
            self.env.schedule_callback(
                self.poe_latency, self._deliver_resolved, header, state.data
            )

    def _deliver_resolved(self, header: MessageHeader, data: Any) -> None:
        # Resolution happens at delivery time, not scheduling time: a
        # cut-through producer may fill a DeferredPayload in between.
        self._deliver(header, DeferredPayload.resolve(data))

    def _on_segment_delivered(self, segment: Segment) -> None:
        """Subclass hook: receive-side per-segment work (acks/credits)."""

    def _deliver(self, header: MessageHeader, data: Any) -> None:
        if self._handler is None:
            raise ProtocolError(
                f"{self.name}: inbound message but no handler registered"
            )
        self._handler(header, data)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
