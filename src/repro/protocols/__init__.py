"""Protocol offload engines (POEs).

The CCLO engine has POE-independent internal interfaces (two meta/data stream
pairs); each POE here exposes the matching message-level service on top of the
fabric:

- :class:`UdpPoe` -- connectionless datagrams, no flow control (VNx-style).
- :class:`TcpPoe` -- sessions, windowed flow control, retransmission buffer
  accounting in FPGA memory (EasyNet-style, up to 1000 connections).
- :class:`RdmaPoe` -- queue pairs, two-sided SEND and one-sided WRITE verbs
  with credit-based flow control (Coyote network service).

All POEs segment messages to bounded wire segments and reassemble on the
receive side, delivering ``(header, data)`` to the registered handler.
"""

from repro.protocols.base import BasePoe, MessageHeader
from repro.protocols.udp import UdpPoe
from repro.protocols.tcp import TcpPoe
from repro.protocols.rdma import RdmaPoe, RdmaOpcode

__all__ = [
    "BasePoe",
    "MessageHeader",
    "UdpPoe",
    "TcpPoe",
    "RdmaPoe",
    "RdmaOpcode",
]
