"""RDMA protocol offload engine (Coyote network service, §4.3).

Supports the verbs the CCLO uses:

- **SEND** (two-sided): delivered to the remote consumer's message handler —
  the CCLO "consistently manages data and metadata streams from two-sided
  SEND".
- **WRITE** (one-sided): on the passive side, data bypasses the CCLO and is
  written straight to virtualized memory through a writer hook installed by
  the platform integration; only an optional completion record surfaces.

Queue pairs must be exchanged and registered before traffic flows (the CCL
driver does that at communicator construction), and flow control is
credit-based, which is what makes rendezvous algorithms safe at scale.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import ProtocolError
from repro.network.packet import Segment
from repro.protocols.base import BasePoe, MessageHeader
from repro.sim import Event
from repro.sim.resources import TokenBucket
from repro import units


class RdmaOpcode(enum.Enum):
    SEND = "send"
    WRITE = "write"


@dataclass(slots=True)
class QueuePair:
    qp_num: int
    local_addr: int
    remote_addr: int
    credits: "TokenBucket"


class RdmaPoe(BasePoe):
    """RoCE-style engine with SEND/WRITE verbs and QP-level credits."""

    protocol_name = "roce"
    mtu = 4096
    poe_latency = units.ns(300)
    #: QP-level credit exhaustion is the RDMA flow-control stall
    flow_control_cause = "credit_stall"
    #: per elided segment: one credit-take yield on the transmit side; one
    #: 16-byte credit-return segment (three wire hops) on the receive side
    _FLOW_TX_ELIDED_PER_SEGMENT = 1
    _FLOW_RX_ELIDED_PER_SEGMENT = 3

    DEFAULT_CREDIT_BYTES = 1 * units.MIB

    def __init__(
        self,
        env,
        endpoint,
        credit_bytes: int = DEFAULT_CREDIT_BYTES,
        name: str = "",
    ):
        super().__init__(env, endpoint, name)
        self.credit_bytes = credit_bytes
        self._qp_nums = itertools.count(1)
        self._qps: Dict[int, QueuePair] = {}
        self._by_remote: Dict[int, QueuePair] = {}
        self._lazy_qp = False
        # One shared name for every QP's credit bucket: large clusters
        # create many QPs and per-QP f-strings are pure construction cost.
        self._credit_name = f"{self.name}.crd"
        self._memory_writer: Optional[
            Callable[[MessageHeader, Any], Event]
        ] = None
        self._segment_writer: Optional[
            Callable[[MessageHeader, int], None]
        ] = None
        self.writes_completed = 0

    # -- queue pair management ------------------------------------------------

    @property
    def qp_count(self) -> int:
        return len(self._qps)

    def enable_lazy_qp(self) -> None:
        """Create queue pairs on first use instead of up front.

        QP exchange is an out-of-band, zero-sim-time control-plane step
        (see :meth:`create_qp`), so deferring it to the first verb toward a
        peer is timing-identical to eager all-pairs setup — but a node that
        talks to k peers allocates k QPs instead of n-1, which is what
        makes 1000-node clusters buildable.
        """
        self._lazy_qp = True

    def create_qp(self, remote_addr: int) -> QueuePair:
        """Create (or return) the queue pair toward *remote_addr*.

        QP number exchange is an out-of-band control-plane step; its cost is
        charged by the host driver during communicator setup, not here.
        """
        if remote_addr == self.address:
            raise ProtocolError(f"{self.name}: cannot create QP to self")
        if remote_addr in self._by_remote:
            return self._by_remote[remote_addr]
        qp = QueuePair(
            qp_num=next(self._qp_nums),
            local_addr=self.address,
            remote_addr=remote_addr,
            credits=TokenBucket(self.env, self.credit_bytes,
                                name=self._credit_name),
        )
        self._qps[qp.qp_num] = qp
        self._by_remote[remote_addr] = qp
        return qp

    def qp_to(self, remote_addr: int) -> QueuePair:
        qp = self._by_remote.get(remote_addr)
        if qp is None:
            if self._lazy_qp and remote_addr != self.address:
                return self.create_qp(remote_addr)
            raise ProtocolError(
                f"{self.name}: no queue pair to address {remote_addr}; "
                "exchange QPs during communicator setup first"
            )
        return qp

    def set_memory_writer(
        self, writer: Callable[[MessageHeader, Any], Event]
    ) -> None:
        """Install the passive-side WRITE path (platform memory management).

        The writer receives ``(header, data)``; ``header.meta`` carries the
        initiator-supplied destination descriptor (virtual address tuple).
        """
        if self._memory_writer is not None:
            raise ProtocolError(f"{self.name}: memory writer already set")
        self._memory_writer = writer

    def set_segment_writer(
        self, writer: Callable[[MessageHeader, int], None]
    ) -> None:
        """Install cut-through landing: called per arriving WRITE segment so
        memory traffic overlaps the arrival instead of trailing it."""
        if self._segment_writer is not None:
            raise ProtocolError(f"{self.name}: segment writer already set")
        self._segment_writer = writer

    # -- verbs ------------------------------------------------------------------

    def post_send(self, dst_addr: int, nbytes: int, meta: Any = None,
                  data: Any = None, pace: Any = None) -> Event:
        """Two-sided SEND verb."""
        qp = self.qp_to(dst_addr)
        return super().send_message(
            dst_addr, nbytes, meta=meta, data=data, kind=RdmaOpcode.SEND.value,
            session=qp.qp_num, pace=pace,
        )

    def post_write(self, dst_addr: int, nbytes: int, remote_descriptor: Any,
                   data: Any = None, pace: Any = None) -> Event:
        """One-sided WRITE verb: lands directly in remote memory."""
        qp = self.qp_to(dst_addr)
        return super().send_message(
            dst_addr, nbytes, meta=remote_descriptor, data=data,
            kind=RdmaOpcode.WRITE.value, session=qp.qp_num, pace=pace,
        )

    def send_message(self, dst_addr, nbytes, meta=None, data=None,
                     kind=RdmaOpcode.SEND.value, session=0, pace=None):
        """Generic entry (used by the CCLO Tx system); dispatches on verb."""
        if kind == RdmaOpcode.WRITE.value:
            return self.post_write(dst_addr, nbytes, meta, data, pace=pace)
        return self.post_send(dst_addr, nbytes, meta=meta, data=data,
                              pace=pace)

    # -- flow control -------------------------------------------------------------

    def _tx_flow_control(self, header: MessageHeader, chunk: int):
        qp = self._by_remote[header.dst_addr]
        if chunk > 0:
            yield qp.credits.take(chunk)

    def _flow_tx_ready(self, header: MessageHeader) -> bool:
        # Credits are transparent only when untouched: the bucket is full,
        # nobody queues on it, and its capacity clears the bandwidth-delay
        # product so per-segment accounting could never have stalled.
        qp = self._by_remote.get(header.dst_addr)
        if qp is None:
            return False
        credits = qp.credits
        return (not credits._waiters
                and credits._available == credits.capacity
                and credits.capacity >= self._flow_window_floor())

    def _flow_rx_effects(self, burst) -> None:
        # Cut-through landings: packet mode writes every WRITE segment to
        # memory as it arrives, and the rendezvous drain waits on the last
        # of them.  The burst issues that completion-gating last landing;
        # the earlier overlapped writes are elided (they finish long before
        # the train does on any path idle enough to admit a burst).
        header: MessageHeader = burst.meta
        if (header.kind == RdmaOpcode.WRITE.value
                and self._segment_writer is not None):
            self._segment_writer(header, burst.last_bytes)

    def _on_segment_delivered(self, segment) -> None:
        if segment.payload_bytes == 0:
            return
        credit_hdr = MessageHeader(
            msg_id=0,
            src_addr=self.address,
            dst_addr=segment.src,
            nbytes=16,
            kind="credit",
            meta=segment.payload_bytes,
        )
        self.endpoint.send(
            Segment(
                src=self.address,
                dst=segment.src,
                payload_bytes=16,
                protocol=self.protocol_name,
                meta=credit_hdr,
                mtu=self.mtu,
            )
        )

    def _on_segment(self, segment) -> None:
        header: MessageHeader = segment.meta
        if header.kind == "credit":
            qp = self._by_remote.get(header.src_addr)
            if qp is not None:
                qp.credits.give(header.meta)
            return
        if (header.kind == RdmaOpcode.WRITE.value
                and segment.payload_bytes > 0
                and self._segment_writer is not None):
            self._segment_writer(header, segment.payload_bytes)
        super()._on_segment(segment)

    # -- delivery ---------------------------------------------------------------

    def _deliver(self, header: MessageHeader, data: Any) -> None:
        if header.kind == RdmaOpcode.WRITE.value:
            if self._memory_writer is None:
                raise ProtocolError(
                    f"{self.name}: WRITE arrived but no memory writer is "
                    "installed (platform integration missing)"
                )
            self.writes_completed += 1
            self._memory_writer(header, data)
            return
        super()._deliver(header, data)
