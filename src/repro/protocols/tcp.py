"""TCP protocol offload engine (EasyNet-style, §4.3).

Models the properties that matter to collectives:

- explicit sessions (up to 1000), established with a one-RTT handshake;
- a sliding window bounding bytes in flight, replenished by ACK segments;
- retransmission buffering: every transmitted segment is also written to a
  POE-private region of FPGA memory, charging memory bandwidth (the paper:
  "the TCP POE also needs to access protocol-internal buffers for
  re-transmission").

The fabric is lossless, so actual retransmission never triggers; its *cost*
(the extra memory traffic) is what shapes performance and is modeled.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ProtocolError
from repro.memory.model import Memory
from repro.network.packet import Segment
from repro.protocols.base import BasePoe, MessageHeader
from repro.sim import Event
from repro.sim.resources import TokenBucket
from repro import units


@dataclass
class TcpSession:
    session_id: int
    local_addr: int
    remote_addr: int
    window: "TokenBucket"


class TcpPoe(BasePoe):
    """Reliable, connection-oriented engine with windowed flow control."""

    protocol_name = "tcp"
    mtu = 1460
    poe_latency = units.ns(500)
    #: window stalls exist because every segment is mirrored into the
    #: retransmission buffer; label them as that back-pressure
    flow_control_cause = "retx_backpressure"
    #: per elided segment: a window-take yield and a retx-write event on the
    #: transmit side; one 58-byte ACK segment (three wire hops) back
    _FLOW_TX_ELIDED_PER_SEGMENT = 2
    _FLOW_RX_ELIDED_PER_SEGMENT = 3

    MAX_SESSIONS = 1000
    DEFAULT_WINDOW_BYTES = 256 * units.KIB
    ACK_BYTES = 58

    def __init__(
        self,
        env,
        endpoint,
        retx_memory: Optional[Memory] = None,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
        name: str = "",
    ):
        super().__init__(env, endpoint, name)
        self.window_bytes = window_bytes
        self.retx_memory = retx_memory
        self._session_ids = itertools.count(1)
        self._sessions: Dict[int, TcpSession] = {}
        self._by_remote: Dict[int, TcpSession] = {}
        self.acks_sent = 0

    # -- session management -------------------------------------------------

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    def connect(self, remote_addr: int) -> Event:
        """Three-way handshake (modeled as one fabric RTT); the event value
        is the new session id."""
        if len(self._sessions) >= self.MAX_SESSIONS:
            raise ProtocolError(
                f"{self.name}: session table full ({self.MAX_SESSIONS})"
            )
        if remote_addr == self.address:
            raise ProtocolError(f"{self.name}: cannot connect to self")
        session = self._open_session(remote_addr)

        def handshake():
            # SYN out, SYN-ACK back: two fabric traversals plus POE passes.
            rtt = 2 * (self._fabric_hop() + self.poe_latency)
            yield self.env.timeout(rtt)
            return session.session_id

        return self.env.process(handshake(), name=f"{self.name}.connect")

    def accept(self, remote_addr: int) -> int:
        """Passive side of connect: install session state immediately."""
        return self._open_session(remote_addr).session_id

    def _open_session(self, remote_addr: int) -> TcpSession:
        if remote_addr in self._by_remote:
            return self._by_remote[remote_addr]
        session = TcpSession(
            session_id=next(self._session_ids),
            local_addr=self.address,
            remote_addr=remote_addr,
            window=TokenBucket(
                self.env, self.window_bytes, name=f"{self.name}.win"
            ),
        )
        self._sessions[session.session_id] = session
        self._by_remote[remote_addr] = session
        return session

    def session_to(self, remote_addr: int) -> TcpSession:
        session = self._by_remote.get(remote_addr)
        if session is None:
            raise ProtocolError(
                f"{self.name}: no session to address {remote_addr}"
            )
        return session

    def _fabric_hop(self) -> float:
        # One-way zero-byte latency estimate used for handshake costing only.
        link = self.endpoint.uplink
        return 2 * link.latency + units.ns(600)

    # -- transmit path overrides ---------------------------------------------

    def send_message(self, dst_addr, nbytes, meta=None, data=None,
                     kind="send", session=0, pace=None):
        sess = self._by_remote.get(dst_addr)
        if sess is None:
            raise ProtocolError(
                f"{self.name}: send to {dst_addr} without an established "
                "session; call connect()/accept() first"
            )
        return super().send_message(
            dst_addr, nbytes, meta=meta, data=data, kind=kind,
            session=sess.session_id, pace=pace,
        )

    def _tx_flow_control(self, header: MessageHeader, chunk: int):
        session = self._by_remote[header.dst_addr]
        if chunk > 0:
            yield session.window.take(chunk)

    def _tx_post_segment(self, header: MessageHeader, segment: Segment):
        # Retransmission buffering: the segment is mirrored into POE-private
        # FPGA memory; that write shares the memory port with everyone else.
        if self.retx_memory is not None and segment.payload_bytes > 0:
            yield self.retx_memory.write(segment.payload_bytes)

    def _flow_tx_ready(self, header: MessageHeader) -> bool:
        # The window is transparent only when untouched and large enough
        # that per-segment accounting could never have stalled the train.
        session = self._by_remote[header.dst_addr]
        window = session.window
        return (not window._waiters
                and window._available == window.capacity
                and window.capacity >= self._flow_window_floor())

    def _flow_tx_post(self, header: MessageHeader, burst):
        # Retx mirroring in bulk: the head of the train is charged to the
        # memory port up front (it overlaps serialization, as the
        # per-segment writes did), while the last chunk's write is what the
        # packet-level loop finishes on — local completion waits for it.
        if self.retx_memory is None:
            return None
        head_bytes = burst.payload_bytes - burst.last_bytes
        if head_bytes > 0:
            self.retx_memory.write(head_bytes)
        return self.retx_memory.write(burst.last_bytes)

    # -- receive path overrides ----------------------------------------------

    def _on_segment(self, segment: Segment) -> None:
        header: MessageHeader = segment.meta
        if header.kind == "ack":
            session = self._by_remote.get(header.src_addr)
            if session is not None:
                session.window.give(header.meta)
            return
        super()._on_segment(segment)

    def _on_segment_delivered(self, segment: Segment) -> None:
        if segment.payload_bytes == 0:
            return
        # Cumulative ACK per segment (coalescing would change little at
        # 32 KiB segments); restores the sender's window.
        ack_header = MessageHeader(
            msg_id=0,
            src_addr=self.address,
            dst_addr=segment.src,
            nbytes=self.ACK_BYTES,
            kind="ack",
            meta=segment.payload_bytes,
        )
        ack = Segment(
            src=self.address,
            dst=segment.src,
            payload_bytes=self.ACK_BYTES,
            protocol=self.protocol_name,
            meta=ack_header,
            mtu=self.mtu,
        )
        self.acks_sent += 1
        self.endpoint.send(ack)
