"""Metrics-backed regression gate (``bench check``).

Replays the traced scenarios (:mod:`repro.obs.capture`) — which are fully
deterministic simulations — and condenses each into a flat metric dict:
span counts, per-phase and per-wait-cause attributed sim-time, and the
engine/link work counters from the metrics registry.  ``bench check``
compares such a collection against a committed baseline
(``benchmarks/obs_baseline.json``) with per-metric relative tolerances and
exits nonzero on any regression, so observability accounting and simulated
performance are both gated in CI.

Baseline schema (version 2) keeps one scenario section per fidelity mode,
so the gate pins both the packet-exact accounting and the flow-mode
fast-forward accounting::

    {
      "schema": 2,
      "default_tolerance": 0.02,
      "tolerances": {"fig07.wall_us": 0.05, "spans": 0.0},
      "modes": {
        "packet": {"fig07": {"ops": 4.0, "wall_us": ..., ...}, ...},
        "flow":   {"fig07": {...}, ...}
      }
    }

Schema-1 baselines (a flat ``"scenarios"`` section) load transparently as
the ``packet`` mode of a schema-2 document.  Tolerance lookup is
most-specific-first: ``<scenario>.<metric>``, then ``<metric>``, then
``default_tolerance``.  Refresh with ``python -m repro.bench check
--update [--fidelity flow]`` after an intentional change.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

DEFAULT_BASELINE = "benchmarks/obs_baseline.json"
DEFAULT_TOLERANCE = 0.02
DEFAULT_SCENARIOS = ("fig07", "fig08", "allreduce", "fig12")

#: registry gauges summed (over their label sets) into scenario metrics;
#: kernel_events_processed is deliberately absent — it is class-global and
#: accumulates across every simulation the process has run.
_GAUGE_TOTALS = (
    "uc_commands_executed",
    "dmp_instructions_executed",
    "tx_messages_sent",
    "rx_messages_received",
    "poe_messages_sent",
    "poe_messages_received",
    "rbm_messages_buffered",
    "link_segments_carried",
    "link_flow_decisions",
    "poe_flow_decisions",
)


def collect(scenarios: Optional[Sequence[str]] = None,
            fidelity: str = "packet") -> Dict[str, Any]:
    """Run the traced scenarios at *fidelity* and build one mode's
    scenario section (plus the mode tag).

    The fidelity is forced for the collection regardless of
    ``$REPRO_FIDELITY``, so the gate never flaps when a perf run exported
    the other mode in the same shell.
    """
    from repro.network.fidelity import fidelity_override
    from repro.obs import capture
    from repro.obs.export import attribute_op

    names = list(scenarios) if scenarios else list(DEFAULT_SCENARIOS)
    with fidelity_override(fidelity):
        return _collect(names, fidelity, capture, attribute_op)


def _collect(names, fidelity, capture, attribute_op) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "schema": 2,
        "default_tolerance": DEFAULT_TOLERANCE,
        "tolerances": {},
        "fidelity": fidelity,
        "scenarios": {},
    }
    for name in names:
        cap = capture.trace_artifact(name)
        metrics: Dict[str, float] = {
            "ops": float(len(cap.op_ids)),
            "spans": float(len(cap.tracer.completed_spans)),
        }
        wall = 0.0
        phase_us: Dict[str, float] = {}
        wait_us: Dict[str, float] = {}
        for op in cap.op_ids:
            report = attribute_op(cap.tracer, op)
            wall += report["wall_s"]
            for phase, seconds in report["phases"].items():
                phase_us[phase] = phase_us.get(phase, 0.0) + seconds * 1e6
            for cause, seconds in report["wait_observed"].items():
                wait_us[cause] = wait_us.get(cause, 0.0) + seconds * 1e6
        metrics["wall_us"] = wall * 1e6
        for phase, us in sorted(phase_us.items()):
            if us > 0:
                metrics[f"phase_us.{phase}"] = us
        for cause, us in sorted(wait_us.items()):
            if us > 0:
                metrics[f"wait_us.{cause}"] = us
        gauges = cap.obs.registry.snapshot()["gauges"]
        sums: Dict[str, float] = {}
        for key, value in gauges.items():
            base = key.partition("{")[0]
            if base in _GAUGE_TOTALS:
                sums[base] = sums.get(base, 0.0) + float(value)
        metrics.update(sorted(sums.items()))
        doc["scenarios"][name] = metrics
    return doc


def _tolerance(baseline: Dict[str, Any], scenario: str, metric: str,
               default_tol: Optional[float]) -> float:
    tolerances = baseline.get("tolerances", {})
    if f"{scenario}.{metric}" in tolerances:
        return float(tolerances[f"{scenario}.{metric}"])
    if metric in tolerances:
        return float(tolerances[metric])
    if default_tol is not None:
        return default_tol
    return float(baseline.get("default_tolerance", DEFAULT_TOLERANCE))


def compare(baseline: Dict[str, Any], current: Dict[str, Any],
            default_tol: Optional[float] = None) -> List[Dict[str, Any]]:
    """Diff *current* against *baseline*; one row per (scenario, metric).

    A row is a regression when ``ok`` is False: the relative deviation
    exceeded the metric's tolerance, or the scenario/metric disappeared.
    """
    rows: List[Dict[str, Any]] = []
    current_scenarios = current.get("scenarios", {})
    for scenario, metrics in sorted(baseline.get("scenarios", {}).items()):
        got = current_scenarios.get(scenario)
        if got is None:
            rows.append({"scenario": scenario, "metric": "*", "base": None,
                         "cur": None, "rel": None, "tol": None, "ok": False,
                         "note": "scenario missing from current run"})
            continue
        for metric, base in sorted(metrics.items()):
            tol = _tolerance(baseline, scenario, metric, default_tol)
            cur = got.get(metric)
            if cur is None:
                rows.append({"scenario": scenario, "metric": metric,
                             "base": base, "cur": None, "rel": None,
                             "tol": tol, "ok": False, "note": "missing"})
                continue
            if base == 0:
                rel = abs(cur)
                ok = rel <= tol
            else:
                rel = abs(cur - base) / abs(base)
                ok = rel <= tol
            rows.append({"scenario": scenario, "metric": metric,
                         "base": base, "cur": cur, "rel": rel, "tol": tol,
                         "ok": ok, "note": ""})
    return rows


def violations(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [row for row in rows if not row["ok"]]


def report_doc(rows: List[Dict[str, Any]], fidelity: str,
               baseline_path: str) -> Dict[str, Any]:
    """Machine-readable check report (``bench check --json``): one record
    per compared metric with observed/baseline/tolerance/verdict, so CI
    can annotate failures without parsing the rendered table."""
    bad = violations(rows)
    return {
        "schema": 1,
        "fidelity": fidelity,
        "baseline": baseline_path,
        "ok": not bad,
        "violations": len(bad),
        "metrics": [
            {
                "scenario": row["scenario"],
                "metric": row["metric"],
                "observed": row["cur"],
                "baseline": row["base"],
                "rel": row["rel"],
                "tolerance": row["tol"],
                "verdict": "ok" if row["ok"] else "fail",
                "note": row["note"],
            }
            for row in rows
        ],
    }


def render_check_table(rows: List[Dict[str, Any]]) -> str:
    """Fixed-width diff table; regressions are flagged with ``FAIL``."""
    lines = [f"{'scenario':<10} {'metric':<36} {'baseline':>14} "
             f"{'current':>14} {'rel':>8} {'tol':>6}  verdict"]
    lines.append("-" * len(lines[0]))
    for row in rows:
        base = "-" if row["base"] is None else f"{row['base']:14.3f}"
        cur = "-" if row["cur"] is None else f"{row['cur']:14.3f}"
        rel = "-" if row["rel"] is None else f"{row['rel'] * 100:7.2f}%"
        tol = "-" if row["tol"] is None else f"{row['tol'] * 100:5.1f}%"
        verdict = "ok" if row["ok"] else ("FAIL " + row["note"]).strip()
        lines.append(f"{row['scenario']:<10} {row['metric']:<36} {base:>14} "
                     f"{cur:>14} {rel:>8} {tol:>6}  {verdict}")
    return "\n".join(lines)


def mode_view(baseline: Dict[str, Any], fidelity: str) -> Dict[str, Any]:
    """One fidelity mode of a (loaded) baseline, shaped for :func:`compare`:
    ``{"default_tolerance", "tolerances", "scenarios"}``."""
    return {
        "default_tolerance": baseline.get("default_tolerance",
                                          DEFAULT_TOLERANCE),
        "tolerances": baseline.get("tolerances", {}),
        "scenarios": baseline.get("modes", {}).get(fidelity, {}),
    }


def load_baseline(path: str) -> Dict[str, Any]:
    """Load a baseline, migrating schema 1 (flat ``scenarios`` = packet
    fidelity) to the schema-2 ``modes`` layout in memory."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema", 1) < 2 and "modes" not in doc:
        doc = {
            "schema": 2,
            "default_tolerance": doc.get("default_tolerance",
                                         DEFAULT_TOLERANCE),
            "tolerances": doc.get("tolerances", {}),
            "modes": {"packet": doc.get("scenarios", {})},
        }
    return doc


def write_baseline(path: str, doc: Dict[str, Any],
                   previous: Optional[Dict[str, Any]] = None) -> None:
    """Fold a :func:`collect` document into the (schema-2) baseline at
    *path*: its scenarios land under their fidelity mode, tolerances and
    modes/scenarios the collection did not re-run carry forward."""
    fidelity = doc.get("fidelity", "packet")
    out: Dict[str, Any] = {
        "schema": 2,
        "default_tolerance": doc.get("default_tolerance",
                                     DEFAULT_TOLERANCE),
        "tolerances": dict(doc.get("tolerances", {})),
        "modes": {},
    }
    if previous is not None:
        out["default_tolerance"] = previous.get(
            "default_tolerance", out["default_tolerance"])
        out["tolerances"] = dict(previous.get("tolerances", {}))
        out["modes"] = {mode: dict(section) for mode, section
                        in previous.get("modes", {}).items()}
    section = out["modes"].setdefault(fidelity, {})
    section.update(doc.get("scenarios", {}))
    with open(path, "w") as fh:
        json.dump(out, fh, indent=2, sort_keys=True)
        fh.write("\n")
