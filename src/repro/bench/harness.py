"""Experiment implementations for every evaluation artifact (§5-§6).

All functions build fresh simulated clusters, run the workload, and return
plain rows/series.  Message payloads are timing-only here (no numpy arrays
attached): functional correctness is covered by the test suite, and the
benchmarks sweep into the hundreds of megabytes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro import units
from repro.apps.dlrm import CpuDlrmBaseline, DistributedDlrm, DlrmModel
from repro.apps.vecmat import run_distributed_vecmat
from repro.baselines import F2fMpiModel, build_accl_v1_cluster, build_mpi_cluster
from repro.baselines import algorithms as mpi_alg
from repro.cclo.config_mem import CommunicatorConfig
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import FpgaCluster, build_fpga_cluster
from repro.driver import attach_drivers
from repro.platform.base import BufferLocation
from repro.resources import utilization_table
from repro.sim import all_of

KIB = units.KIB
MIB = units.MIB

COLLECTIVES = ("bcast", "scatter", "gather", "reduce", "allreduce", "alltoall")


# ---------------------------------------------------------------------------
# shared runners
# ---------------------------------------------------------------------------

def _buffers_for(cluster: FpgaCluster, opcode: str, size: int, rank: int,
                 root: int, location: BufferLocation):
    """Allocate timing-only buffers matching one collective's signature."""
    plat = cluster.nodes[rank].platform
    n = cluster.size

    def alloc(nbytes):
        return plat.allocate(nbytes, location).view()

    if opcode == "bcast":
        return None, alloc(size)
    if opcode == "scatter":
        return (alloc(n * size) if rank == root else None), alloc(size)
    if opcode == "gather":
        return alloc(size), (alloc(n * size) if rank == root else None)
    if opcode == "reduce":
        return alloc(size), (alloc(size) if rank == root else None)
    if opcode == "allreduce":
        return alloc(size), alloc(size)
    if opcode == "alltoall":
        return alloc(n * size), alloc(n * size)
    raise ValueError(f"no buffer plan for {opcode!r}")


def accl_collective_time(
    opcode: str,
    size: int,
    n_nodes: int = 8,
    protocol: str = "rdma",
    platform: str = "coyote",
    location: BufferLocation = BufferLocation.DEVICE,
    sync_protocol: Optional[str] = None,
    algorithm: Optional[str] = None,
    via_driver: bool = False,
    cclo_config=None,
    cluster_builder: Callable = build_fpga_cluster,
) -> float:
    """Run one ACCL+ collective on a fresh cluster; returns seconds.

    ``via_driver=True`` goes through the host CCL driver (H2H style:
    invocation latency + staging where the platform needs it); otherwise the
    engines are invoked directly, as FPGA kernels would (F2F style).
    """
    cluster = cluster_builder(n_nodes, protocol=protocol, platform=platform,
                              cclo_config=cclo_config)
    root = 0
    buffers = {
        rank: _buffers_for(cluster, opcode, size, rank, root, location)
        for rank in range(n_nodes)
    }
    if via_driver:
        drivers = attach_drivers(cluster)
        start = cluster.env.now
        requests = []
        for rank, drv in enumerate(drivers):
            sbuf, rbuf = buffers[rank]
            kwargs = dict(protocol=sync_protocol, algorithm=algorithm)
            if opcode == "bcast":
                req = drv.bcast(rbuf, size, root, **kwargs)
            elif opcode == "scatter":
                req = drv.scatter(sbuf, rbuf, size, root, **kwargs)
            elif opcode == "gather":
                req = drv.gather(sbuf, rbuf, size, root, **kwargs)
            elif opcode == "reduce":
                req = drv.reduce(sbuf, rbuf, size, root, **kwargs)
            elif opcode == "allreduce":
                req = drv.allreduce(sbuf, rbuf, size,
                                    protocol=sync_protocol,
                                    algorithm=algorithm)
            elif opcode == "alltoall":
                req = drv.alltoall(sbuf, rbuf, size, protocol=sync_protocol)
            else:
                raise ValueError(opcode)
            requests.append(req.event)
        cluster.env.run(until=all_of(cluster.env, requests))
        return cluster.env.now - start

    def make_args(rank):
        sbuf, rbuf = buffers[rank]
        return CollectiveArgs(
            opcode=opcode, comm_id=0, nbytes=size, root=root,
            tag=1 << 20, sbuf=sbuf, rbuf=rbuf,
            protocol=sync_protocol, algorithm=algorithm,
        )

    return cluster.run_collective(make_args)


def accl_best_protocol_time(opcode: str, size: int, **kwargs) -> float:
    """Better of eager and rendezvous, as the paper presents (Fig 10)."""
    times = []
    for sync in ("eager", "rndz"):
        times.append(accl_collective_time(opcode, size,
                                          sync_protocol=sync, **kwargs))
    return min(times)


_MPI_COLLECTIVE = {
    "bcast": lambda me, size, tag: mpi_alg.mpi_bcast(me, None, size, 0, tag),
    "scatter": lambda me, size, tag: mpi_alg.mpi_scatter(
        me, None, None, size, 0, tag),
    "gather": lambda me, size, tag: mpi_alg.mpi_gather(
        me, None, None, size, 0, tag),
    "reduce": lambda me, size, tag: mpi_alg.mpi_reduce(
        me, None, None, size, 0, tag=tag),
    "allreduce": lambda me, size, tag: mpi_alg.mpi_allreduce(
        me, None, None, size, tag=tag),
    "alltoall": lambda me, size, tag: mpi_alg.mpi_alltoall(
        me, None, None, size, tag),
}

#: PCIe staging volume per rank for the F2F-via-CPU detour of Figure 9/10.
_MPI_F2F_VOLUME = {
    "bcast": (lambda r, n, s: s if r == 0 else 0,
              lambda r, n, s: 0 if r == 0 else s),
    "scatter": (lambda r, n, s: n * s if r == 0 else 0,
                lambda r, n, s: s),
    "gather": (lambda r, n, s: s,
               lambda r, n, s: n * s if r == 0 else 0),
    "reduce": (lambda r, n, s: s,
               lambda r, n, s: s if r == 0 else 0),
    "allreduce": (lambda r, n, s: s, lambda r, n, s: s),
    "alltoall": (lambda r, n, s: n * s, lambda r, n, s: n * s),
}


def mpi_collective_time(opcode: str, size: int, n_ranks: int = 8,
                        library: str = "openmpi",
                        transport: str = "rdma") -> float:
    """Software MPI collective on host data (the H2H baseline)."""
    cluster = build_mpi_cluster(n_ranks, library=library, transport=transport)
    fn = _MPI_COLLECTIVE[opcode]
    return cluster.run_all(lambda me: fn(me, size, 0))


def mpi_f2f_collective_time(opcode: str, size: int, n_ranks: int = 8,
                            library: str = "openmpi",
                            transport: str = "rdma",
                            invocation: float = units.us(2.3)) -> float:
    """Software MPI on device data: PCIe out, collective, PCIe back (Fig 9)."""
    cluster = build_mpi_cluster(n_ranks, library=library, transport=transport)
    model = F2fMpiModel(cluster, invocation_latency=invocation)
    fn = _MPI_COLLECTIVE[opcode]
    in_fn, out_fn = _MPI_F2F_VOLUME[opcode]
    breakdown = model.run(
        lambda me: fn(me, size, 0),
        in_bytes=lambda r: in_fn(r, n_ranks, size),
        out_bytes=lambda r: out_fn(r, n_ranks, size),
    )
    return breakdown.total


# ---------------------------------------------------------------------------
# Figure 7: send/recv throughput
# ---------------------------------------------------------------------------

def _accl_p2p_time(size: int, n_msgs: int,
                   location: BufferLocation) -> float:
    cluster = build_fpga_cluster(2, protocol="rdma", platform="coyote")
    p0, p1 = (cluster.nodes[0].platform, cluster.nodes[1].platform)
    events = []
    for i in range(n_msgs):
        rbuf = p1.allocate(size, location).view()
        sbuf = p0.allocate(size, location).view()
        events.append(cluster.engine(1).call(CollectiveArgs(
            opcode="recv", nbytes=size, peer=0, tag=i, rbuf=rbuf)))
        events.append(cluster.engine(0).call(CollectiveArgs(
            opcode="send", nbytes=size, peer=1, tag=i, sbuf=sbuf)))
    start = cluster.env.now
    cluster.env.run(until=all_of(cluster.env, events))
    return cluster.env.now - start


def _mpi_p2p_time(size: int, n_msgs: int) -> float:
    cluster = build_mpi_cluster(2)

    def proc(me):
        events = []
        for i in range(n_msgs):
            if me.rank == 0:
                events.append(me.isend(None, size, dst=1, tag=i))
            else:
                events.append(me.irecv(None, size, src=0, tag=i))
        for ev in events:
            yield ev

    return cluster.run_all(proc)


def run_fig07_sendrecv_throughput(sizes=None, n_msgs: int = 4) -> List[dict]:
    """Throughput in Gb/s per transfer size, all four series of Figure 7."""
    sizes = sizes or [64 * KIB, units.MIB, 16 * MIB, 64 * MIB, 256 * MIB]
    rows = []
    for size in sizes:
        total = n_msgs * size
        rows.append({
            "size": units.pretty_size(size),
            "accl_f2f_gbps": units.to_gbps(
                total / _accl_p2p_time(size, n_msgs, BufferLocation.DEVICE)),
            "accl_h2h_gbps": units.to_gbps(
                total / _accl_p2p_time(size, n_msgs, BufferLocation.HOST)),
            "mpi_rdma_gbps": units.to_gbps(
                total / _mpi_p2p_time(size, n_msgs)),
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 8: CCLO invocation latency
# ---------------------------------------------------------------------------

def run_fig08_invocation_latency(repeats: int = 5) -> List[dict]:
    """NOP invocation latency from FPGA kernel / Coyote host / XRT host."""

    def host_nop(platform: str, protocol: str) -> float:
        cluster = build_fpga_cluster(2, protocol=protocol, platform=platform)
        driver = attach_drivers(cluster)[0]
        times = []
        for _ in range(repeats):
            req = driver.nop()
            req.wait()
            times.append(req.duration)
        return float(np.mean(times))

    def kernel_nop() -> float:
        cluster = build_fpga_cluster(2, protocol="rdma", platform="coyote")
        engine = cluster.engine(0)
        env = cluster.env
        times = []

        def proc():
            for _ in range(repeats):
                start = env.now
                yield engine.platform.invoke_from_kernel()
                yield engine.call(CollectiveArgs(opcode="nop"))
                times.append(env.now - start)

        env.run(until=env.process(proc()))
        return float(np.mean(times))

    return [
        {"caller": "FPGA kernel", "latency_us": units.to_us(kernel_nop())},
        {"caller": "Coyote host",
         "latency_us": units.to_us(host_nop("coyote", "rdma"))},
        {"caller": "XRT host",
         "latency_us": units.to_us(host_nop("vitis", "tcp"))},
    ]


# ---------------------------------------------------------------------------
# Figure 9: latency breakdown of MPI-based F2F broadcast
# ---------------------------------------------------------------------------

def run_fig09_f2f_breakdown(sizes=None, n_ranks: int = 8) -> List[dict]:
    sizes = sizes or [4 * KIB, 64 * KIB, units.MIB, 16 * MIB, 64 * MIB]
    rows = []
    for size in sizes:
        cluster = build_mpi_cluster(n_ranks)
        model = F2fMpiModel(cluster)
        breakdown = model.run(
            lambda me: mpi_alg.mpi_bcast(me, None, size, 0, 0),
            in_bytes=lambda r: size if r == 0 else 0,
            out_bytes=lambda r: 0 if r == 0 else size,
        )
        d = breakdown.as_dict()
        rows.append({
            "size": units.pretty_size(size),
            **{k: units.to_us(v) for k, v in d.items()},
        })
    return rows


# ---------------------------------------------------------------------------
# Figures 10/11: collective latency, F2F and H2H
# ---------------------------------------------------------------------------

def run_fig10_f2f_collectives(sizes=None, n_ranks: int = 8) -> Dict[str, Dict]:
    """F2F: ACCL+ RDMA on device data vs software MPI with the PCIe detour.

    Returns ``{collective: {size_label: (accl_us, mpi_us)}}``.
    """
    sizes = sizes or [KIB, 16 * KIB, 256 * KIB, 4 * MIB]
    result: Dict[str, Dict] = {}
    for opcode in COLLECTIVES:
        result[opcode] = {}
        for size in sizes:
            accl = accl_best_protocol_time(
                opcode, size, n_nodes=n_ranks,
                location=BufferLocation.DEVICE, via_driver=False,
            )
            mpi = mpi_f2f_collective_time(opcode, size, n_ranks)
            result[opcode][units.pretty_size(size)] = (
                units.to_us(accl), units.to_us(mpi))
    return result


def run_fig11_h2h_collectives(sizes=None, n_ranks: int = 8) -> Dict[str, Dict]:
    """H2H: ACCL+ as offload engine on host data vs plain software MPI."""
    sizes = sizes or [KIB, 16 * KIB, 256 * KIB, 4 * MIB]
    result: Dict[str, Dict] = {}
    for opcode in COLLECTIVES:
        result[opcode] = {}
        for size in sizes:
            accl = accl_best_protocol_time(
                opcode, size, n_nodes=n_ranks,
                location=BufferLocation.HOST, via_driver=True,
            )
            mpi = mpi_collective_time(opcode, size, n_ranks)
            result[opcode][units.pretty_size(size)] = (
                units.to_us(accl), units.to_us(mpi))
    return result


# ---------------------------------------------------------------------------
# Figure 12: reduce latency vs rank count
# ---------------------------------------------------------------------------

def run_fig12_reduce_scalability(rank_range=range(2, 9),
                                 sizes=(8 * KIB, 128 * KIB)) -> Dict[str, Dict]:
    """Latency-vs-ranks series for ACCL+ and software MPI (both sizes)."""
    series: Dict[str, Dict] = {}
    for size in sizes:
        label = units.pretty_size(size)
        series[f"accl_{label}"] = {}
        series[f"mpi_{label}"] = {}
        for n in rank_range:
            accl = accl_collective_time(
                "reduce", size, n_nodes=n,
                location=BufferLocation.DEVICE, sync_protocol="rndz",
            )
            mpi = mpi_collective_time("reduce", size, n)
            series[f"accl_{label}"][n] = units.to_us(accl)
            series[f"mpi_{label}"][n] = units.to_us(mpi)
    return series


# ---------------------------------------------------------------------------
# Figure 13: TCP on the XRT platform, vs software MPI TCP and ACCL v1
# ---------------------------------------------------------------------------

def run_fig13_tcp_xrt(sizes=None, n_ranks: int = 4,
                      opcodes=("bcast", "reduce")) -> Dict[str, Dict]:
    sizes = sizes or [4 * KIB, 64 * KIB, 512 * KIB]
    result: Dict[str, Dict] = {}
    for opcode in opcodes:
        result[opcode] = {}
        for size in sizes:
            label = units.pretty_size(size)
            accl_f2f = accl_collective_time(
                opcode, size, n_nodes=n_ranks, protocol="tcp",
                platform="vitis", location=BufferLocation.DEVICE,
            )
            accl_h2h = accl_collective_time(
                opcode, size, n_nodes=n_ranks, protocol="tcp",
                platform="vitis", location=BufferLocation.HOST,
                via_driver=True,
            )
            v1_f2f = accl_collective_time(
                opcode, size, n_nodes=n_ranks, protocol="tcp",
                platform="vitis", location=BufferLocation.DEVICE,
                cluster_builder=lambda n, **kw: build_accl_v1_cluster(n),
            )
            mpi = mpi_collective_time(opcode, size, n_ranks,
                                      library="mpich", transport="tcp")
            result[opcode][label] = {
                "accl+_f2f_us": units.to_us(accl_f2f),
                "accl+_h2h_us": units.to_us(accl_h2h),
                "accl_v1_us": units.to_us(v1_f2f),
                "mpi_tcp_us": units.to_us(mpi),
            }
    return result


# ---------------------------------------------------------------------------
# Table 1: the algorithm-selection table
# ---------------------------------------------------------------------------

def run_tab01_algorithm_table() -> List[dict]:
    """Regenerate Table 1 from the live selector."""
    from repro.cclo.config_mem import AlgorithmParams
    from repro.collectives import AlgorithmSelector

    selector = AlgorithmSelector()
    params = AlgorithmParams()
    rows = []
    comm_small = CommunicatorConfig(0, 0, list(range(4)), protocol="rdma")
    comm_large = CommunicatorConfig(0, 0, list(range(8)), protocol="rdma")
    comm_udp = CommunicatorConfig(0, 0, list(range(8)), protocol="udp")
    small, large = 2 * KIB, 256 * KIB
    for opcode in ("bcast", "reduce", "gather", "alltoall"):
        eager = selector.choose(
            CollectiveArgs(opcode=opcode, nbytes=small, protocol="eager"),
            comm_udp, params)
        rndz_small = selector.choose(
            CollectiveArgs(opcode=opcode, nbytes=small, protocol="rndz"),
            comm_small, params)
        rndz_large = selector.choose(
            CollectiveArgs(opcode=opcode, nbytes=large, protocol="rndz"),
            comm_large, params)
        rows.append({
            "collective": opcode,
            "eager": eager,
            "rndz_small": rndz_small,
            "rndz_large": rndz_large,
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 16: distributed vector-matrix multiplication
# ---------------------------------------------------------------------------

def run_fig16_vecmat(sizes=(2048, 4096, 8192),
                     rank_counts=(2, 4, 8)) -> List[dict]:
    rows = []
    for rows_cols in sizes:
        for ranks in rank_counts:
            for backend in ("accl", "mpi"):
                r = run_distributed_vecmat(rows_cols, rows_cols, ranks,
                                           backend)
                rows.append({
                    "fc_size": rows_cols,
                    "ranks": ranks,
                    "backend": backend,
                    "compute_us": units.to_us(r.compute_time),
                    "reduce_us": units.to_us(r.reduction_time),
                    "speedup": r.speedup,
                    "correct": r.result_ok,
                })
    return rows


# ---------------------------------------------------------------------------
# Figure 17: DLRM latency and throughput
# ---------------------------------------------------------------------------

def run_fig17_dlrm(n_inferences: int = 48) -> dict:
    model = DlrmModel()
    dlrm = DistributedDlrm(model)
    queries = model.make_queries(n_inferences)
    stats = dlrm.run(queries)
    reference = model.forward_batch(queries)
    cpu = CpuDlrmBaseline()
    return {
        "accl": {
            "latency_us": units.to_us(stats.mean_latency),
            "p99_us": units.to_us(stats.p99_latency),
            "throughput": stats.throughput,
            "correct": bool(np.allclose(stats.outputs, reference,
                                        rtol=1e-3, atol=1e-4)),
        },
        "cpu": [
            {"batch": b, "latency_ms": units.to_ms(lat), "throughput": thr}
            for b, lat, thr in cpu.sweep()
        ],
        "cpu_best_throughput": cpu.best_throughput(),
    }


# ---------------------------------------------------------------------------
# Table 3: resource utilization
# ---------------------------------------------------------------------------

def run_tab03_resources() -> List[dict]:
    rows = []
    for name, pct in utilization_table():
        rows.append({"component": name,
                     **{k: round(v, 1) for k, v in pct.items()}})
    return rows
