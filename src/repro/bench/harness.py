"""Experiment implementations for every evaluation artifact (§5-§6).

All functions build fresh simulated clusters, run the workload, and return
plain rows/series.  Message payloads are timing-only here (no numpy arrays
attached): functional correctness is covered by the test suite, and the
benchmarks sweep into the hundreds of megabytes.

Each artifact is expressed as a list of independent
:class:`~repro.bench.runner.SweepPoint` work items — one hermetic cluster
per point — executed through a :class:`~repro.bench.runner.SweepRunner`.
Every ``run_*`` function accepts an optional ``runner``; without one it
runs sequentially and uncached, exactly as before.  The point *kernels*
(registered with :func:`~repro.bench.runner.point_kernel`) take only
primitive parameters so they pickle into pool workers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro import units
from repro.baselines import F2fMpiModel, build_accl_v1_cluster, build_mpi_cluster
from repro.baselines import algorithms as mpi_alg
from repro.bench.runner import SweepPoint, SweepRunner, point_kernel
from repro.cclo.config_mem import CommunicatorConfig
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import FpgaCluster, build_fpga_cluster
from repro.driver import attach_drivers
from repro.platform.base import BufferLocation
from repro.resources import utilization_table
from repro.sim import all_of

KIB = units.KIB
MIB = units.MIB

COLLECTIVES = ("bcast", "scatter", "gather", "reduce", "allreduce", "alltoall")


# ---------------------------------------------------------------------------
# shared runners
# ---------------------------------------------------------------------------

def _buffers_for(cluster: FpgaCluster, opcode: str, size: int, rank: int,
                 root: int, location: BufferLocation):
    """Allocate timing-only buffers matching one collective's signature."""
    plat = cluster.nodes[rank].platform
    n = cluster.size

    def alloc(nbytes):
        return plat.allocate(nbytes, location).view()

    if opcode == "bcast":
        return None, alloc(size)
    if opcode == "scatter":
        return (alloc(n * size) if rank == root else None), alloc(size)
    if opcode == "gather":
        return alloc(size), (alloc(n * size) if rank == root else None)
    if opcode == "reduce":
        return alloc(size), (alloc(size) if rank == root else None)
    if opcode == "allreduce":
        return alloc(size), alloc(size)
    if opcode == "alltoall":
        return alloc(n * size), alloc(n * size)
    raise ValueError(f"no buffer plan for {opcode!r}")


def accl_collective_time(
    opcode: str,
    size: int,
    n_nodes: int = 8,
    protocol: str = "rdma",
    platform: str = "coyote",
    location: BufferLocation = BufferLocation.DEVICE,
    sync_protocol: Optional[str] = None,
    algorithm: Optional[str] = None,
    via_driver: bool = False,
    cclo_config=None,
    cluster_builder: Callable = build_fpga_cluster,
) -> float:
    """Run one ACCL+ collective on a fresh cluster; returns seconds.

    ``via_driver=True`` goes through the host CCL driver (H2H style:
    invocation latency + staging where the platform needs it); otherwise the
    engines are invoked directly, as FPGA kernels would (F2F style).
    """
    cluster = cluster_builder(n_nodes, protocol=protocol, platform=platform,
                              cclo_config=cclo_config)
    root = 0
    buffers = {
        rank: _buffers_for(cluster, opcode, size, rank, root, location)
        for rank in range(n_nodes)
    }
    if via_driver:
        drivers = attach_drivers(cluster)
        start = cluster.env.now
        requests = []
        for rank, drv in enumerate(drivers):
            sbuf, rbuf = buffers[rank]
            kwargs = dict(protocol=sync_protocol, algorithm=algorithm)
            if opcode == "bcast":
                req = drv.bcast(rbuf, size, root, **kwargs)
            elif opcode == "scatter":
                req = drv.scatter(sbuf, rbuf, size, root, **kwargs)
            elif opcode == "gather":
                req = drv.gather(sbuf, rbuf, size, root, **kwargs)
            elif opcode == "reduce":
                req = drv.reduce(sbuf, rbuf, size, root, **kwargs)
            elif opcode == "allreduce":
                req = drv.allreduce(sbuf, rbuf, size,
                                    protocol=sync_protocol,
                                    algorithm=algorithm)
            elif opcode == "alltoall":
                req = drv.alltoall(sbuf, rbuf, size, protocol=sync_protocol)
            else:
                raise ValueError(opcode)
            requests.append(req.event)
        cluster.env.run(until=all_of(cluster.env, requests))
        return cluster.env.now - start

    def make_args(rank):
        sbuf, rbuf = buffers[rank]
        return CollectiveArgs(
            opcode=opcode, comm_id=0, nbytes=size, root=root,
            tag=1 << 20, sbuf=sbuf, rbuf=rbuf,
            protocol=sync_protocol, algorithm=algorithm,
        )

    return cluster.run_collective(make_args)


def accl_best_protocol_time(opcode: str, size: int, **kwargs) -> float:
    """Better of eager and rendezvous, as the paper presents (Fig 10)."""
    times = []
    for sync in ("eager", "rndz"):
        times.append(accl_collective_time(opcode, size,
                                          sync_protocol=sync, **kwargs))
    return min(times)


_MPI_COLLECTIVE = {
    "bcast": lambda me, size, tag: mpi_alg.mpi_bcast(me, None, size, 0, tag),
    "scatter": lambda me, size, tag: mpi_alg.mpi_scatter(
        me, None, None, size, 0, tag),
    "gather": lambda me, size, tag: mpi_alg.mpi_gather(
        me, None, None, size, 0, tag),
    "reduce": lambda me, size, tag: mpi_alg.mpi_reduce(
        me, None, None, size, 0, tag=tag),
    "allreduce": lambda me, size, tag: mpi_alg.mpi_allreduce(
        me, None, None, size, tag=tag),
    "alltoall": lambda me, size, tag: mpi_alg.mpi_alltoall(
        me, None, None, size, tag),
}

#: PCIe staging volume per rank for the F2F-via-CPU detour of Figure 9/10.
_MPI_F2F_VOLUME = {
    "bcast": (lambda r, n, s: s if r == 0 else 0,
              lambda r, n, s: 0 if r == 0 else s),
    "scatter": (lambda r, n, s: n * s if r == 0 else 0,
                lambda r, n, s: s),
    "gather": (lambda r, n, s: s,
               lambda r, n, s: n * s if r == 0 else 0),
    "reduce": (lambda r, n, s: s,
               lambda r, n, s: s if r == 0 else 0),
    "allreduce": (lambda r, n, s: s, lambda r, n, s: s),
    "alltoall": (lambda r, n, s: n * s, lambda r, n, s: n * s),
}


def mpi_collective_time(opcode: str, size: int, n_ranks: int = 8,
                        library: str = "openmpi",
                        transport: str = "rdma") -> float:
    """Software MPI collective on host data (the H2H baseline)."""
    cluster = build_mpi_cluster(n_ranks, library=library, transport=transport)
    fn = _MPI_COLLECTIVE[opcode]
    return cluster.run_all(lambda me: fn(me, size, 0))


def mpi_f2f_collective_time(opcode: str, size: int, n_ranks: int = 8,
                            library: str = "openmpi",
                            transport: str = "rdma",
                            invocation: float = units.us(2.3)) -> float:
    """Software MPI on device data: PCIe out, collective, PCIe back (Fig 9)."""
    cluster = build_mpi_cluster(n_ranks, library=library, transport=transport)
    model = F2fMpiModel(cluster, invocation_latency=invocation)
    fn = _MPI_COLLECTIVE[opcode]
    in_fn, out_fn = _MPI_F2F_VOLUME[opcode]
    breakdown = model.run(
        lambda me: fn(me, size, 0),
        in_bytes=lambda r: in_fn(r, n_ranks, size),
        out_bytes=lambda r: out_fn(r, n_ranks, size),
    )
    return breakdown.total


# ---------------------------------------------------------------------------
# sweep-point kernels (picklable: primitive parameters only)
# ---------------------------------------------------------------------------

@point_kernel("accl_collective")
def _kernel_accl_collective(opcode: str, size: int, n_nodes: int = 8,
                            protocol: str = "rdma", platform: str = "coyote",
                            location: str = "device",
                            sync_protocol: Optional[str] = None,
                            algorithm: Optional[str] = None,
                            via_driver: bool = False,
                            engine: str = "accl+") -> float:
    builder = (build_fpga_cluster if engine == "accl+"
               else (lambda n, **kw: build_accl_v1_cluster(n)))
    return accl_collective_time(
        opcode, size, n_nodes=n_nodes, protocol=protocol, platform=platform,
        location=BufferLocation(location), sync_protocol=sync_protocol,
        algorithm=algorithm, via_driver=via_driver, cluster_builder=builder)


@point_kernel("accl_best_protocol")
def _kernel_accl_best_protocol(opcode: str, size: int, n_nodes: int = 8,
                               protocol: str = "rdma",
                               platform: str = "coyote",
                               location: str = "device",
                               via_driver: bool = False) -> float:
    return accl_best_protocol_time(
        opcode, size, n_nodes=n_nodes, protocol=protocol, platform=platform,
        location=BufferLocation(location), via_driver=via_driver)


@point_kernel("mpi_collective")
def _kernel_mpi_collective(opcode: str, size: int, n_ranks: int = 8,
                           library: str = "openmpi",
                           transport: str = "rdma") -> float:
    return mpi_collective_time(opcode, size, n_ranks,
                               library=library, transport=transport)


@point_kernel("mpi_f2f_collective")
def _kernel_mpi_f2f_collective(opcode: str, size: int,
                               n_ranks: int = 8) -> float:
    return mpi_f2f_collective_time(opcode, size, n_ranks)


@point_kernel("accl_p2p")
def _kernel_accl_p2p(size: int, n_msgs: int, location: str) -> float:
    return _accl_p2p_time(size, n_msgs, BufferLocation(location))


@point_kernel("mpi_p2p")
def _kernel_mpi_p2p(size: int, n_msgs: int) -> float:
    return _mpi_p2p_time(size, n_msgs)


@point_kernel("fig08_host_nop")
def _kernel_fig08_host_nop(platform: str, protocol: str,
                           repeats: int) -> float:
    cluster = build_fpga_cluster(2, protocol=protocol, platform=platform)
    driver = attach_drivers(cluster)[0]
    times = []
    for _ in range(repeats):
        req = driver.nop()
        req.wait()
        times.append(req.duration)
    return float(np.mean(times))


@point_kernel("fig08_kernel_nop")
def _kernel_fig08_kernel_nop(repeats: int) -> float:
    cluster = build_fpga_cluster(2, protocol="rdma", platform="coyote")
    engine = cluster.engine(0)
    env = cluster.env
    times = []

    def proc():
        for _ in range(repeats):
            start = env.now
            yield engine.platform.invoke_from_kernel()
            yield engine.call(CollectiveArgs(opcode="nop"))
            times.append(env.now - start)

    env.run(until=env.process(proc()))
    return float(np.mean(times))


@point_kernel("fig09_breakdown")
def _kernel_fig09_breakdown(size: int, n_ranks: int) -> Dict[str, float]:
    cluster = build_mpi_cluster(n_ranks)
    model = F2fMpiModel(cluster)
    breakdown = model.run(
        lambda me: mpi_alg.mpi_bcast(me, None, size, 0, 0),
        in_bytes=lambda r: size if r == 0 else 0,
        out_bytes=lambda r: 0 if r == 0 else size,
    )
    return dict(breakdown.as_dict())


@point_kernel("vecmat")
def _kernel_vecmat(fc_size: int, ranks: int, backend: str) -> dict:
    from repro.apps.vecmat import run_distributed_vecmat

    r = run_distributed_vecmat(fc_size, fc_size, ranks, backend)
    return {
        "fc_size": fc_size,
        "ranks": ranks,
        "backend": backend,
        "compute_us": units.to_us(r.compute_time),
        "reduce_us": units.to_us(r.reduction_time),
        "speedup": float(r.speedup),
        "correct": bool(r.result_ok),
    }


@point_kernel("dlrm")
def _kernel_dlrm(n_inferences: int) -> dict:
    from repro.apps.dlrm import CpuDlrmBaseline, DistributedDlrm, DlrmModel

    model = DlrmModel()
    dlrm = DistributedDlrm(model)
    queries = model.make_queries(n_inferences)
    stats = dlrm.run(queries)
    reference = model.forward_batch(queries)
    cpu = CpuDlrmBaseline()
    return {
        "accl": {
            "latency_us": units.to_us(stats.mean_latency),
            "p99_us": units.to_us(stats.p99_latency),
            "throughput": float(stats.throughput),
            "correct": bool(np.allclose(stats.outputs, reference,
                                        rtol=1e-3, atol=1e-4)),
        },
        "cpu": [
            {"batch": int(b), "latency_ms": units.to_ms(lat),
             "throughput": float(thr)}
            for b, lat, thr in cpu.sweep()
        ],
        "cpu_best_throughput": float(cpu.best_throughput()),
    }


@point_kernel("tab01")
def _kernel_tab01() -> List[dict]:
    from repro.cclo.config_mem import AlgorithmParams
    from repro.collectives import AlgorithmSelector

    selector = AlgorithmSelector()
    params = AlgorithmParams()
    rows = []
    comm_small = CommunicatorConfig(0, 0, list(range(4)), protocol="rdma")
    comm_large = CommunicatorConfig(0, 0, list(range(8)), protocol="rdma")
    comm_udp = CommunicatorConfig(0, 0, list(range(8)), protocol="udp")
    small, large = 2 * KIB, 256 * KIB
    for opcode in ("bcast", "reduce", "gather", "alltoall"):
        eager = selector.choose(
            CollectiveArgs(opcode=opcode, nbytes=small, protocol="eager"),
            comm_udp, params)
        rndz_small = selector.choose(
            CollectiveArgs(opcode=opcode, nbytes=small, protocol="rndz"),
            comm_small, params)
        rndz_large = selector.choose(
            CollectiveArgs(opcode=opcode, nbytes=large, protocol="rndz"),
            comm_large, params)
        rows.append({
            "collective": opcode,
            "eager": eager,
            "rndz_small": rndz_small,
            "rndz_large": rndz_large,
        })
    return rows


@point_kernel("tab02")
def _kernel_tab02() -> List[dict]:
    from repro.apps.dlrm import DlrmConfig

    config = DlrmConfig()
    return [{
        "Tables": config.num_tables,
        "Concat Vec Len": config.concat_len,
        "FC Layers": str(config.fc_dims),
        "Embed Size": f"{config.embed_bytes / 1e9:.0f}GB",
    }]


@point_kernel("tab03")
def _kernel_tab03() -> List[dict]:
    rows = []
    for name, pct in utilization_table():
        rows.append({"component": name,
                     **{k: round(v, 1) for k, v in pct.items()}})
    return rows


# ---------------------------------------------------------------------------
# Figure 7: send/recv throughput
# ---------------------------------------------------------------------------

def _accl_p2p_time(size: int, n_msgs: int,
                   location: BufferLocation) -> float:
    cluster = build_fpga_cluster(2, protocol="rdma", platform="coyote")
    p0, p1 = (cluster.nodes[0].platform, cluster.nodes[1].platform)
    events = []
    for i in range(n_msgs):
        rbuf = p1.allocate(size, location).view()
        sbuf = p0.allocate(size, location).view()
        events.append(cluster.engine(1).call(CollectiveArgs(
            opcode="recv", nbytes=size, peer=0, tag=i, rbuf=rbuf)))
        events.append(cluster.engine(0).call(CollectiveArgs(
            opcode="send", nbytes=size, peer=1, tag=i, sbuf=sbuf)))
    start = cluster.env.now
    cluster.env.run(until=all_of(cluster.env, events))
    return cluster.env.now - start


def _mpi_p2p_time(size: int, n_msgs: int) -> float:
    cluster = build_mpi_cluster(2)

    def proc(me):
        events = []
        for i in range(n_msgs):
            if me.rank == 0:
                events.append(me.isend(None, size, dst=1, tag=i))
            else:
                events.append(me.irecv(None, size, src=0, tag=i))
        for ev in events:
            yield ev

    return cluster.run_all(proc)


def run_fig07_sendrecv_throughput(sizes=None, n_msgs: int = 4,
                                  runner: Optional[SweepRunner] = None,
                                  ) -> List[dict]:
    """Throughput in Gb/s per transfer size, all four series of Figure 7."""
    sizes = sizes or [64 * KIB, units.MIB, 16 * MIB, 64 * MIB, 256 * MIB]
    runner = runner or SweepRunner()
    points = []
    for size in sizes:
        points += [
            SweepPoint.make("fig07", "accl_p2p", size=size, n_msgs=n_msgs,
                            location="device"),
            SweepPoint.make("fig07", "accl_p2p", size=size, n_msgs=n_msgs,
                            location="host"),
            SweepPoint.make("fig07", "mpi_p2p", size=size, n_msgs=n_msgs),
        ]
    times = runner.run(points)
    rows = []
    for i, size in enumerate(sizes):
        f2f, h2h, mpi = times[3 * i:3 * i + 3]
        total = n_msgs * size
        rows.append({
            "size": units.pretty_size(size),
            "accl_f2f_gbps": units.to_gbps(total / f2f),
            "accl_h2h_gbps": units.to_gbps(total / h2h),
            "mpi_rdma_gbps": units.to_gbps(total / mpi),
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 8: CCLO invocation latency
# ---------------------------------------------------------------------------

def run_fig08_invocation_latency(repeats: int = 5,
                                 runner: Optional[SweepRunner] = None,
                                 ) -> List[dict]:
    """NOP invocation latency from FPGA kernel / Coyote host / XRT host."""
    runner = runner or SweepRunner()
    points = [
        SweepPoint.make("fig08", "fig08_kernel_nop", repeats=repeats),
        SweepPoint.make("fig08", "fig08_host_nop", platform="coyote",
                        protocol="rdma", repeats=repeats),
        SweepPoint.make("fig08", "fig08_host_nop", platform="vitis",
                        protocol="tcp", repeats=repeats),
    ]
    kernel, coyote, xrt = runner.run(points)
    return [
        {"caller": "FPGA kernel", "latency_us": units.to_us(kernel)},
        {"caller": "Coyote host", "latency_us": units.to_us(coyote)},
        {"caller": "XRT host", "latency_us": units.to_us(xrt)},
    ]


# ---------------------------------------------------------------------------
# Figure 9: latency breakdown of MPI-based F2F broadcast
# ---------------------------------------------------------------------------

def run_fig09_f2f_breakdown(sizes=None, n_ranks: int = 8,
                            runner: Optional[SweepRunner] = None,
                            ) -> List[dict]:
    sizes = sizes or [4 * KIB, 64 * KIB, units.MIB, 16 * MIB, 64 * MIB]
    runner = runner or SweepRunner()
    points = [SweepPoint.make("fig09", "fig09_breakdown",
                              size=size, n_ranks=n_ranks)
              for size in sizes]
    breakdowns = runner.run(points)
    rows = []
    for size, d in zip(sizes, breakdowns):
        rows.append({
            "size": units.pretty_size(size),
            **{k: units.to_us(v) for k, v in d.items()},
        })
    return rows


# ---------------------------------------------------------------------------
# Figures 10/11: collective latency, F2F and H2H
# ---------------------------------------------------------------------------

def run_fig10_f2f_collectives(sizes=None, n_ranks: int = 8,
                              runner: Optional[SweepRunner] = None,
                              ) -> Dict[str, Dict]:
    """F2F: ACCL+ RDMA on device data vs software MPI with the PCIe detour.

    Returns ``{collective: {size_label: (accl_us, mpi_us)}}``.
    """
    sizes = sizes or [KIB, 16 * KIB, 256 * KIB, 4 * MIB]
    runner = runner or SweepRunner()
    grid = [(opcode, size) for opcode in COLLECTIVES for size in sizes]
    points = []
    for opcode, size in grid:
        points += [
            SweepPoint.make("fig10", "accl_best_protocol", opcode=opcode,
                            size=size, n_nodes=n_ranks, location="device",
                            via_driver=False),
            SweepPoint.make("fig10", "mpi_f2f_collective", opcode=opcode,
                            size=size, n_ranks=n_ranks),
        ]
    times = runner.run(points)
    result: Dict[str, Dict] = {opcode: {} for opcode in COLLECTIVES}
    for i, (opcode, size) in enumerate(grid):
        accl, mpi = times[2 * i:2 * i + 2]
        result[opcode][units.pretty_size(size)] = (
            units.to_us(accl), units.to_us(mpi))
    return result


def run_fig11_h2h_collectives(sizes=None, n_ranks: int = 8,
                              runner: Optional[SweepRunner] = None,
                              ) -> Dict[str, Dict]:
    """H2H: ACCL+ as offload engine on host data vs plain software MPI."""
    sizes = sizes or [KIB, 16 * KIB, 256 * KIB, 4 * MIB]
    runner = runner or SweepRunner()
    grid = [(opcode, size) for opcode in COLLECTIVES for size in sizes]
    points = []
    for opcode, size in grid:
        points += [
            SweepPoint.make("fig11", "accl_best_protocol", opcode=opcode,
                            size=size, n_nodes=n_ranks, location="host",
                            via_driver=True),
            SweepPoint.make("fig11", "mpi_collective", opcode=opcode,
                            size=size, n_ranks=n_ranks),
        ]
    times = runner.run(points)
    result: Dict[str, Dict] = {opcode: {} for opcode in COLLECTIVES}
    for i, (opcode, size) in enumerate(grid):
        accl, mpi = times[2 * i:2 * i + 2]
        result[opcode][units.pretty_size(size)] = (
            units.to_us(accl), units.to_us(mpi))
    return result


# ---------------------------------------------------------------------------
# Figure 12: reduce latency vs rank count
# ---------------------------------------------------------------------------

def run_fig12_reduce_scalability(rank_range=range(2, 9),
                                 sizes=(8 * KIB, 128 * KIB),
                                 runner: Optional[SweepRunner] = None,
                                 ) -> Dict[str, Dict]:
    """Latency-vs-ranks series for ACCL+ and software MPI (both sizes)."""
    ranks = list(rank_range)
    runner = runner or SweepRunner()
    grid = [(size, n) for size in sizes for n in ranks]
    points = []
    for size, n in grid:
        points += [
            SweepPoint.make("fig12", "accl_collective", opcode="reduce",
                            size=size, n_nodes=n, location="device",
                            sync_protocol="rndz"),
            SweepPoint.make("fig12", "mpi_collective", opcode="reduce",
                            size=size, n_ranks=n),
        ]
    times = runner.run(points)
    series: Dict[str, Dict] = {}
    for size in sizes:
        label = units.pretty_size(size)
        series[f"accl_{label}"] = {}
        series[f"mpi_{label}"] = {}
    for i, (size, n) in enumerate(grid):
        accl, mpi = times[2 * i:2 * i + 2]
        label = units.pretty_size(size)
        series[f"accl_{label}"][n] = units.to_us(accl)
        series[f"mpi_{label}"][n] = units.to_us(mpi)
    return series


# ---------------------------------------------------------------------------
# Figure 13: TCP on the XRT platform, vs software MPI TCP and ACCL v1
# ---------------------------------------------------------------------------

def run_fig13_tcp_xrt(sizes=None, n_ranks: int = 4,
                      opcodes=("bcast", "reduce"),
                      runner: Optional[SweepRunner] = None,
                      ) -> Dict[str, Dict]:
    sizes = sizes or [4 * KIB, 64 * KIB, 512 * KIB]
    runner = runner or SweepRunner()
    grid = [(opcode, size) for opcode in opcodes for size in sizes]
    points = []
    for opcode, size in grid:
        points += [
            SweepPoint.make("fig13", "accl_collective", opcode=opcode,
                            size=size, n_nodes=n_ranks, protocol="tcp",
                            platform="vitis", location="device"),
            SweepPoint.make("fig13", "accl_collective", opcode=opcode,
                            size=size, n_nodes=n_ranks, protocol="tcp",
                            platform="vitis", location="host",
                            via_driver=True),
            SweepPoint.make("fig13", "accl_collective", opcode=opcode,
                            size=size, n_nodes=n_ranks, protocol="tcp",
                            platform="vitis", location="device",
                            engine="accl_v1"),
            SweepPoint.make("fig13", "mpi_collective", opcode=opcode,
                            size=size, n_ranks=n_ranks, library="mpich",
                            transport="tcp"),
        ]
    times = runner.run(points)
    result: Dict[str, Dict] = {opcode: {} for opcode in opcodes}
    for i, (opcode, size) in enumerate(grid):
        accl_f2f, accl_h2h, v1_f2f, mpi = times[4 * i:4 * i + 4]
        result[opcode][units.pretty_size(size)] = {
            "accl+_f2f_us": units.to_us(accl_f2f),
            "accl+_h2h_us": units.to_us(accl_h2h),
            "accl_v1_us": units.to_us(v1_f2f),
            "mpi_tcp_us": units.to_us(mpi),
        }
    return result


# ---------------------------------------------------------------------------
# Table 1: the algorithm-selection table
# ---------------------------------------------------------------------------

def run_tab01_algorithm_table(runner: Optional[SweepRunner] = None,
                              ) -> List[dict]:
    """Regenerate Table 1 from the live selector."""
    runner = runner or SweepRunner()
    return runner.run_one(SweepPoint.make("tab01", "tab01"))


# ---------------------------------------------------------------------------
# Table 2: parameters of the target recommendation model
# ---------------------------------------------------------------------------

def run_tab02_dlrm_config(runner: Optional[SweepRunner] = None) -> List[dict]:
    """Regenerate Table 2 (the DLRM model parameters, DESIGN.md §4)."""
    runner = runner or SweepRunner()
    return runner.run_one(SweepPoint.make("tab02", "tab02"))


# ---------------------------------------------------------------------------
# Figure 16: distributed vector-matrix multiplication
# ---------------------------------------------------------------------------

def run_fig16_vecmat(sizes=(2048, 4096, 8192),
                     rank_counts=(2, 4, 8),
                     runner: Optional[SweepRunner] = None) -> List[dict]:
    runner = runner or SweepRunner()
    points = [
        SweepPoint.make("fig16", "vecmat", fc_size=fc_size, ranks=ranks,
                        backend=backend)
        for fc_size in sizes
        for ranks in rank_counts
        for backend in ("accl", "mpi")
    ]
    return runner.run(points)


# ---------------------------------------------------------------------------
# Figure 17: DLRM latency and throughput
# ---------------------------------------------------------------------------

def run_fig17_dlrm(n_inferences: int = 48,
                   runner: Optional[SweepRunner] = None) -> dict:
    runner = runner or SweepRunner()
    return runner.run_one(
        SweepPoint.make("fig17", "dlrm", n_inferences=n_inferences))


# ---------------------------------------------------------------------------
# Figure X: collective completion time vs cluster size (scale study)
# ---------------------------------------------------------------------------

def scale_topology_factory(fabric: str, n_nodes: int) -> Callable:
    """Factory for the smallest *fabric* instance holding ``n_nodes`` hosts.

    ``fattree`` picks the smallest even ``k`` with ``k^3/4 >= n_nodes``;
    ``leafspine`` uses 16-port leaves under 4 spines; ``dragonfly`` doubles
    the group radix until the palmtree-wired maximum fits.
    """
    from repro.network.topology import (DragonflyTopology, FatTreeTopology,
                                        LeafSpineTopology)

    if fabric == "fattree":
        k = 2
        while k ** 3 // 4 < n_nodes:
            k += 2
        return lambda env: FatTreeTopology(env, k=k)
    if fabric == "leafspine":
        return lambda env: LeafSpineTopology(env, ports_per_leaf=16,
                                             n_spines=4)
    if fabric == "dragonfly":
        a, p, h = 4, 4, 2
        while a * p * (a * h + 1) < n_nodes:
            a, h = a * 2, h * 2
        return lambda env: DragonflyTopology(
            env, routers_per_group=a, hosts_per_router=p,
            global_links_per_router=h)
    raise ValueError(f"unknown fabric {fabric!r}")


@point_kernel("scale_collective")
def _kernel_scale_collective(opcode: str, size: int, n_nodes: int,
                             algorithm: Optional[str] = None,
                             fabric: str = "fattree",
                             sync_protocol: str = "rndz") -> float:
    factory = scale_topology_factory(fabric, n_nodes)
    return accl_collective_time(
        opcode, size, n_nodes=n_nodes, sync_protocol=sync_protocol,
        algorithm=algorithm,
        cluster_builder=lambda n, **kw: build_fpga_cluster(
            n, topology_factory=factory, peering="lazy", **kw))


#: (collective, algorithm) pairs of the scale study; ``None`` = selector.
SCALE_GRID = (
    ("allreduce", "ring"),
    ("allreduce", "reduce_bcast"),
    ("bcast", None),
)


def run_figX_scale(node_counts=(16, 64, 256), size: int = 16 * MIB,
                   fabric: str = "fattree",
                   runner: Optional[SweepRunner] = None) -> List[dict]:
    """Collective completion time vs cluster size on a large fabric.

    One hermetic fat-tree cluster per point (lazy RDMA peering), swept over
    nodes x collective x algorithm.  Message sizes sit above the flow-mode
    fast-forward floor for the whole-message algorithms, so this is the
    artifact that exercises cluster scale in both fidelity modes.
    """
    runner = runner or SweepRunner()
    grid = [(n, opcode, algorithm)
            for n in node_counts
            for opcode, algorithm in SCALE_GRID]
    points = [
        SweepPoint.make("figX_scale", "scale_collective", opcode=opcode,
                        size=size, n_nodes=n, algorithm=algorithm,
                        fabric=fabric)
        for n, opcode, algorithm in grid
    ]
    times = runner.run(points)
    rows = []
    for (n, opcode, algorithm), t in zip(grid, times):
        rows.append({
            "nodes": n,
            "collective": opcode,
            "algorithm": algorithm or "auto",
            "size": units.pretty_size(size),
            "time_us": units.to_us(t),
            "busbw_gbps": units.to_gbps(size / t),
        })
    return rows


# ---------------------------------------------------------------------------
# Table 3: resource utilization
# ---------------------------------------------------------------------------

def run_tab03_resources(runner: Optional[SweepRunner] = None) -> List[dict]:
    runner = runner or SweepRunner()
    return runner.run_one(SweepPoint.make("tab03", "tab03"))
