"""Fidelity validation harness (``bench validate-fidelity``).

Flow-level fast-forward (:mod:`repro.network.fidelity`) is only admissible
if it is *invisible* in the results: every evaluation artifact must
reproduce its packet-fidelity numbers within a tight per-artifact
tolerance.  This module replays artifacts twice — once per fidelity, cold
(no cache), sequential — and recursively diffs the two result trees.

Tolerances are per artifact and deliberately asymmetric:

- artifacts with no multi-segment network traffic (the tables, fig08's
  NOP invocations) must be **bit-identical** — a nonzero deviation there
  means the flow machinery engaged where it has no business engaging;
- wire-bound artifacts allow a small relative tolerance covering the two
  documented approximations (bulk retransmission-buffer charging on TCP,
  collapsed cut-through landings on RDMA WRITE bursts).

Exit status is nonzero on any violation, so CI can gate on it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.bench.cache import jsonable
from repro.network.fidelity import fidelity_override
from repro.sim.kernel import Environment

#: maximum allowed relative deviation, flow vs packet, per artifact.
#: 0.0 means bit-identical.
TOLERANCES: Dict[str, float] = {
    "fig07": 1e-3,   # p2p: idle paths exact; the n_msgs=4 contended point
                     # carries a one-sub-burst fallback-boundary residue
    "fig08": 0.0,    # NOP invocations never segment
    "fig09": 2e-3,   # bcast breakdown (PCIe legs exact, collective approx)
    "fig10": 5e-3,   # F2F collectives (RDMA landing collapse)
    "fig11": 1e-2,   # H2H collectives: PCIe-staged chunks add a handshake
                     # per chunk, each worth one control-slotting residue
    "fig12": 5e-3,   # reduce scalability
    "fig13": 1e-2,   # TCP: bulk retx-buffer charging is the loosest model
    "fig16": 5e-3,   # vecmat: analytic compute + reduce
    "fig17": 5e-3,   # DLRM pipeline
    "figX_scale": 1e-2,  # large-fabric collectives: 16 MiB messages sit
                         # above the flow fast-forward floor, so the
                         # whole-message algorithms take the analytic path
    "tab01": 0.0,    # pure selector table
    "tab02": 0.0,    # static config table
    "tab03": 0.0,    # static resource table
}

#: ``--quick`` overrides: the size/scale extremes only, sized for a CI
#: smoke job (small = latency-dominated, large = bandwidth-dominated).
QUICK_KWARGS: Dict[str, Dict[str, Any]] = {
    "fig07": {"sizes": [64 * units.KIB, 256 * units.MIB]},
    "fig09": {"sizes": [4 * units.KIB, 64 * units.MIB]},
    "fig10": {"sizes": [16 * units.KIB, 4 * units.MIB]},
    "fig11": {"sizes": [16 * units.KIB, 4 * units.MIB]},
    "fig12": {"rank_range": [2, 8]},
    "fig13": {"sizes": [16 * units.KIB, 16 * units.MIB]},
    "fig16": {"sizes": [4096], "rank_counts": [2, 8]},
    "fig17": {"n_inferences": 8},
    "figX_scale": {"node_counts": [16, 64]},
}


def artifact_functions() -> Dict[str, Callable]:
    """Every artifact, including the tables (superset of the profiler's)."""
    from repro.bench import harness
    from repro.bench.profile import _artifact_functions

    functions = dict(_artifact_functions())
    functions["tab01"] = harness.run_tab01_algorithm_table
    functions["tab02"] = harness.run_tab02_dlrm_config
    functions["tab03"] = harness.run_tab03_resources
    return functions


def _compare(a: Any, b: Any, rtol: float, path: str,
             violations: List[str], stats: Dict[str, float]) -> None:
    """Recursive structural diff; numeric leaves compare relatively."""
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            violations.append(
                f"{path}: key mismatch {sorted(set(a) ^ set(b))}")
            return
        for key in a:
            _compare(a[key], b[key], rtol, f"{path}.{key}",
                     violations, stats)
        return
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            violations.append(f"{path}: length {len(a)} != {len(b)}")
            return
        for i, (av, bv) in enumerate(zip(a, b)):
            _compare(av, bv, rtol, f"{path}[{i}]", violations, stats)
        return
    # bool is an int subclass: test it before the numeric branch so
    # correctness flags never pass on mere closeness.
    if isinstance(a, bool) or isinstance(b, bool):
        if a is not b:
            violations.append(f"{path}: {a!r} != {b!r}")
        return
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        stats["leaves"] += 1
        scale = max(abs(a), abs(b))
        if scale < 1e-12:
            return
        rel = abs(a - b) / scale
        if rel > stats["max_rel"]:
            stats["max_rel"] = rel
            stats["max_rel_path"] = path
        if rel > rtol:
            violations.append(
                f"{path}: packet={a!r} flow={b!r} rel={rel:.2e} "
                f"(tol {rtol:.0e})")
        return
    if a != b:
        violations.append(f"{path}: {a!r} != {b!r}")


def _run_fidelity(fn: Callable, kwargs: Dict[str, Any],
                  fidelity: str) -> Tuple[Any, int, int]:
    """One cold, sequential artifact run at *fidelity*."""
    from repro.bench.runner import SweepRunner

    with fidelity_override(fidelity):
        runner = SweepRunner(jobs=1, cache=None)
        events0 = Environment.total_events_processed
        ff0 = Environment.total_events_fast_forwarded
        value = fn(runner=runner, **kwargs)
    return (jsonable(value),
            Environment.total_events_processed - events0,
            Environment.total_events_fast_forwarded - ff0)


def validate_artifact(name: str, quick: bool = False) -> Dict[str, Any]:
    """Replay *name* at both fidelities and diff the result trees."""
    functions = artifact_functions()
    if name not in functions:
        raise KeyError(
            f"unknown artifact {name!r}; validatable: "
            f"{', '.join(sorted(functions))}")
    rtol = TOLERANCES[name]
    kwargs = dict(QUICK_KWARGS.get(name, {})) if quick else {}
    packet, events_packet, _ = _run_fidelity(functions[name], kwargs,
                                             "packet")
    flow, events_flow, ff_flow = _run_fidelity(functions[name], kwargs,
                                               "flow")
    violations: List[str] = []
    stats: Dict[str, Any] = {"leaves": 0, "max_rel": 0.0,
                             "max_rel_path": ""}
    _compare(packet, flow, rtol, name, violations, stats)
    return {
        "artifact": name,
        "quick": quick,
        "tolerance": rtol,
        "leaves": stats["leaves"],
        "max_rel": stats["max_rel"],
        "max_rel_path": stats["max_rel_path"],
        "events_packet": events_packet,
        "events_flow": events_flow,
        "events_fast_forwarded": ff_flow,
        "violations": violations,
        "ok": not violations,
    }


def run_validation(names: Optional[Sequence[str]] = None,
                   quick: bool = False) -> List[Dict[str, Any]]:
    """Validate *names* (default: every artifact) in sorted order."""
    functions = artifact_functions()
    targets = sorted(names) if names else sorted(functions)
    unknown = [n for n in targets if n not in functions]
    if unknown:
        raise KeyError(
            f"unknown artifacts: {', '.join(unknown)}; validatable: "
            f"{', '.join(sorted(functions))}")
    return [validate_artifact(name, quick=quick) for name in targets]


def explain_divergence(name: str, top: int = 5) -> Dict[str, Any]:
    """Attribute packet-vs-flow divergence of a *traced* scenario per op,
    per attribution bucket, and per link (``--explain``).

    Replays the artifact's traced scenario (:mod:`repro.obs.capture`) once
    per fidelity, aligns the collectives by position (the replay is
    deterministic, so op ids match), and diffs the critical-path bucket
    totals of :func:`repro.obs.export.attribute_op`.  The synthetic
    ``wire:burst`` spans make the wire bucket attributable to individual
    links in *both* modes, so the per-link table names the hop where the
    analytic model and the per-segment simulation disagree most.
    """
    from repro.obs import capture
    from repro.obs.export import attribute_op

    if name not in capture.traceable_artifacts():
        raise KeyError(
            f"--explain needs a traced scenario; available: "
            f"{', '.join(capture.traceable_artifacts())}")

    def _reports(mode: str):
        with fidelity_override(mode):
            cap = capture.trace_artifact(name)
            return [attribute_op(cap.tracer, op) for op in cap.op_ids]

    reps_packet = _reports("packet")
    reps_flow = _reports("flow")
    rows: List[Dict[str, Any]] = []
    links: Dict[str, List[float]] = {}
    wall_packet = sum(r["wall_s"] for r in reps_packet)
    wall_flow = sum(r["wall_s"] for r in reps_flow)
    for rp, rf in zip(reps_packet, reps_flow):
        for bucket in sorted(set(rp["totals"]) | set(rf["totals"])):
            p_us = rp["totals"].get(bucket, 0.0) * 1e6
            f_us = rf["totals"].get(bucket, 0.0) * 1e6
            if p_us or f_us:
                rows.append({
                    "op": rp["op_id"], "name": rp["name"], "bucket": bucket,
                    "packet_us": p_us, "flow_us": f_us,
                    "delta_us": f_us - p_us,
                })
        for rep, idx in ((rp, 0), (rf, 1)):
            for seg in rep["segments"]:
                if seg["bucket"] == "wire" and seg["component"]:
                    links.setdefault(seg["component"], [0.0, 0.0])
                    links[seg["component"]][idx] += seg["dur_s"] * 1e6
    rows.sort(key=lambda r: (-abs(r["delta_us"]), r["op"], r["bucket"]))
    link_rows = sorted(
        ({"link": link, "packet_us": p, "flow_us": f, "delta_us": f - p}
         for link, (p, f) in links.items()),
        key=lambda r: (-abs(r["delta_us"]), r["link"]))
    return {
        "artifact": name,
        "ops": len(reps_packet),
        "wall_packet_us": wall_packet * 1e6,
        "wall_flow_us": wall_flow * 1e6,
        "wall_delta_us": (wall_flow - wall_packet) * 1e6,
        "rows": rows[:top],
        "links": link_rows[:top],
        "top": rows[0] if rows else None,
    }


def render_explanation(report: Dict[str, Any]) -> str:
    """Human-readable ``--explain`` attribution."""
    lines = [
        f"divergence attribution: {report['artifact']} "
        f"({report['ops']} traced ops)",
        f"  wall: packet {report['wall_packet_us']:.3f}us  "
        f"flow {report['wall_flow_us']:.3f}us  "
        f"delta {report['wall_delta_us']:+.3f}us",
    ]
    top = report["top"]
    if top is None:
        lines.append("  no attributable divergence (no nonzero buckets)")
        return "\n".join(lines)
    lines.append(
        f"  top contributor: op {top['op']} ({top['name']}) "
        f"bucket {top['bucket']}: packet {top['packet_us']:.3f}us vs "
        f"flow {top['flow_us']:.3f}us ({top['delta_us']:+.3f}us)")
    lines.append("  per-op buckets (largest |delta| first):")
    for row in report["rows"]:
        lines.append(
            f"    op {row['op']:>3} {row['bucket']:<22} "
            f"packet {row['packet_us']:>12.3f}us  "
            f"flow {row['flow_us']:>12.3f}us  {row['delta_us']:>+10.3f}us")
    if report["links"]:
        lines.append("  per-link critical-path wire time:")
        for row in report["links"]:
            lines.append(
                f"    {row['link']:<26} "
                f"packet {row['packet_us']:>12.3f}us  "
                f"flow {row['flow_us']:>12.3f}us  "
                f"{row['delta_us']:>+10.3f}us")
    return "\n".join(lines)


def render_validation(reports: List[Dict[str, Any]]) -> str:
    """Fixed-width summary table plus any violation details."""
    lines = [f"{'artifact':<9} {'tol':>7} {'max_rel':>10} {'leaves':>7} "
             f"{'ev_packet':>10} {'ev_flow':>9} {'ff':>9}  verdict"]
    lines.append("-" * len(lines[0]))
    for rep in reports:
        verdict = "ok" if rep["ok"] else f"FAIL ({len(rep['violations'])})"
        lines.append(
            f"{rep['artifact']:<9} {rep['tolerance']:>7.0e} "
            f"{rep['max_rel']:>10.2e} {rep['leaves']:>7} "
            f"{rep['events_packet']:>10} {rep['events_flow']:>9} "
            f"{rep['events_fast_forwarded']:>9}  {verdict}")
    for rep in reports:
        for violation in rep["violations"][:20]:
            lines.append(f"  {violation}")
        extra = len(rep["violations"]) - 20
        if extra > 0:
            lines.append(f"  ... and {extra} more in {rep['artifact']}")
    return "\n".join(lines)
