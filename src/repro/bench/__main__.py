"""CLI: regenerate evaluation artifacts without pytest.

Usage::

    python -m repro.bench list
    python -m repro.bench fig07 fig08 tab03
    python -m repro.bench all
"""

from __future__ import annotations

import sys

from repro.bench import formats, harness


def _fig07():
    rows = harness.run_fig07_sendrecv_throughput()
    return formats.format_rows(
        rows, ["size", "accl_f2f_gbps", "accl_h2h_gbps", "mpi_rdma_gbps"],
        title="Figure 7 — send/recv throughput (Gb/s)")


def _fig08():
    rows = harness.run_fig08_invocation_latency()
    return formats.format_rows(rows, ["caller", "latency_us"],
                               title="Figure 8 — invocation latency (us)")


def _fig09():
    rows = harness.run_fig09_f2f_breakdown()
    return formats.format_rows(
        rows, ["size", "pcie_in", "collective", "pcie_out", "invocation",
               "total"],
        title="Figure 9 — MPI F2F broadcast breakdown (us)")


def _collective_table(result, title):
    rows = []
    for opcode, by_size in result.items():
        for size_label, (accl, mpi) in by_size.items():
            rows.append({"collective": opcode, "size": size_label,
                         "accl_us": accl, "mpi_us": mpi,
                         "ratio": accl / mpi})
    return formats.format_rows(
        rows, ["collective", "size", "accl_us", "mpi_us", "ratio"],
        title=title)


def _fig10():
    return _collective_table(harness.run_fig10_f2f_collectives(),
                             "Figure 10 — F2F collectives, 8 ranks (us)")


def _fig11():
    return _collective_table(harness.run_fig11_h2h_collectives(),
                             "Figure 11 — H2H collectives, 8 ranks (us)")


def _fig12():
    series = harness.run_fig12_reduce_scalability()
    return formats.format_series(
        series, "ranks", title="Figure 12 — reduce latency vs ranks (us)")


def _fig13():
    result = harness.run_fig13_tcp_xrt()
    rows = []
    for opcode, by_size in result.items():
        for size_label, vals in by_size.items():
            rows.append({"collective": opcode, "size": size_label, **vals})
    return formats.format_rows(
        rows, ["collective", "size", "accl+_f2f_us", "accl_v1_us",
               "mpi_tcp_us", "accl+_h2h_us"],
        title="Figure 13 — TCP on XRT, 4 ranks (us)")


def _fig16():
    rows = harness.run_fig16_vecmat()
    return formats.format_rows(
        rows, ["fc_size", "ranks", "backend", "compute_us", "reduce_us",
               "speedup", "correct"],
        title="Figure 16 — distributed vector-matrix multiplication")


def _fig17():
    result = harness.run_fig17_dlrm()
    parts = [formats.format_rows(
        result["cpu"], ["batch", "latency_ms", "throughput"],
        title="Figure 17 — CPU baseline")]
    accl = result["accl"]
    parts.append(formats.format_rows(
        [accl], ["latency_us", "p99_us", "throughput", "correct"],
        title="Figure 17 — ACCL+ DLRM on 10 FPGAs"))
    return "\n\n".join(parts)


def _tab01():
    rows = harness.run_tab01_algorithm_table()
    return formats.format_rows(
        rows, ["collective", "eager", "rndz_small", "rndz_large"],
        title="Table 1 — algorithm selection")


def _tab03():
    rows = harness.run_tab03_resources()
    return formats.format_rows(
        rows, ["component", "CLB kLUT", "DSP", "BRAM", "URAM"],
        title="Table 3 — resource utilization (% of U55C)")


ARTIFACTS = {
    "fig07": _fig07, "fig08": _fig08, "fig09": _fig09, "fig10": _fig10,
    "fig11": _fig11, "fig12": _fig12, "fig13": _fig13, "fig16": _fig16,
    "fig17": _fig17, "tab01": _tab01, "tab03": _tab03,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "list"):
        print(__doc__.strip())
        print("\navailable artifacts:", ", ".join(sorted(ARTIFACTS)))
        return 0
    names = sorted(ARTIFACTS) if argv == ["all"] else argv
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        print(f"unknown artifacts: {', '.join(unknown)}", file=sys.stderr)
        print("available:", ", ".join(sorted(ARTIFACTS)), file=sys.stderr)
        return 2
    for name in names:
        print(ARTIFACTS[name]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
