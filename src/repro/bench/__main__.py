"""CLI: regenerate evaluation artifacts without pytest.

Usage::

    python -m repro.bench list
    python -m repro.bench fig07 fig08 tab03
    python -m repro.bench all --jobs 8
    python -m repro.bench all --no-cache --json BENCH_results.json
    python -m repro.bench figX_scale --quick --shard 0/2 --json s0.json
    python -m repro.bench merge s0.json s1.json --quick
    python -m repro.bench profile fig07 --quick
    python -m repro.bench profile fig08 --quick --obs
    python -m repro.bench profile scale --memory --per-node
    python -m repro.bench profile kernel
    python -m repro.bench trace fig08 --trace-out trace.json
    python -m repro.bench critpath fig07 --flamegraph-out flame.txt
    python -m repro.bench critpath figX_scale --per-node \\
        --arg n_nodes=256 --arg slow_link=fpga17.down
    python -m repro.bench check
    python -m repro.bench check fig07 --update
    python -m repro.bench check --fidelity flow --json check_report.json
    python -m repro.bench diff BENCH_ledger.json new_ledger.json --html d.html
    python -m repro.bench dashboard fig07 --out fig07_dashboard.html
    python -m repro.bench validate-fidelity fig07 --explain

Options::

    --jobs N      fan sweep points out over N worker processes (default 1,
                  the fully sequential path); results are row-for-row
                  identical at any N
    --cache DIR   on-disk result cache directory (default .bench_cache);
                  points are keyed by (artifact, parameters, calibration)
                  so a warm re-run only re-renders tables
    --no-cache    disable the cache for this run
    --json OUT    write the per-point trajectory (wall-clock, simulated
                  time, event counts) to OUT; ``all`` writes
                  BENCH_results.json by default.  A per-op latency ledger
                  (histograms keyed by artifact/collective/size/algorithm/
                  nprocs/fidelity; see ``bench diff``) is persisted to a
                  sibling ``*_ledger.json``, and its summary stats (op
                  count, p50/p99 per artifact) land in the trajectory's
                  ``ledger`` section
    --profile-out PATH
                  run under cProfile and dump pstats to PATH
                  (inspect with ``python -m pstats PATH``)
    --quick       artifact mode: reduced figX_scale slice (CI-sized); other
                  artifacts run at full size
    --shard I/N   execute only the sweep points whose cache key hashes to
                  shard I of N (deterministic partition); out-of-shard
                  points are skipped, the trajectory records per-point
                  values, and ``bench merge`` later combines the shards

``merge`` mode::

    merge SHARD.json [SHARD.json ...]
                  import the executed points of sharded trajectory files
                  into the result cache, then re-run the artifacts they
                  cover (every point a cache hit) and render the complete
                  tables — row-identical to an unsharded run

``profile`` mode (see :mod:`repro.bench.profile`)::

    profile <artifact>|kernel|scale
                               events/sec + ns/event for one artifact, the
                               kernel microbenchmark suite, or the
                               cluster-scale profile (1024-node fat-tree
                               build + flow-fidelity allreduce)
    --quick                    reduced sweep sized for a CI smoke job
    --memory                   attach tracemalloc, report current/peak
    --per-node                 scale profile: report construction bytes per
                               node (tracemalloc delta across the cluster
                               build / node count) and fold the scale block
                               into BENCH_results.json's perf section
    --obs                      also run with observability enabled; report
                               the instrumentation overhead and, for traced
                               artifacts, a phase-breakdown table

``trace`` mode (see :mod:`repro.obs.capture`)::

    trace <artifact>           replay the artifact's representative scenario
                               with span tracing on; print per-collective
                               phase breakdowns (uC / DMP / POE / wire)
    --trace-out PATH           write Chrome trace-event JSON — open the file
                               at https://ui.perfetto.dev
    --metrics-out PATH         write the metrics registry as CSV
    --json OUT                 write the per-op phase breakdowns as JSON
    --flamegraph-out PATH      write collapsed-stack flamegraph lines
    --arg KEY=VALUE            pass a scenario kwarg (repeatable); e.g.
                               ``--arg n_nodes=64 --arg slow_link=fpga5.down``
                               throttles matching links on figX_scale

``critpath`` mode (see :mod:`repro.obs.critpath`)::

    critpath <artifact>        replay the artifact's traced scenario and
                               print each collective's critical path with
                               per-wait-cause totals; the cause totals
                               reconcile exactly against the phase buckets
                               and the op's wall sim-time
    --per-node                 instead of per-op paths, aggregate busy /
                               blocked / critical-path time per node and
                               per link, rank the top-k slowest and flag
                               z-score stragglers (find the slow node in a
                               256-node fabric)
    --json OUT                 write the critical-path reports as JSON
                               (plus the per-node report with --per-node)
    --flamegraph-out PATH      write collapsed-stack flamegraph lines
    --arg KEY=VALUE            scenario kwargs, as in trace mode

``check`` mode (see :mod:`repro.bench.check`)::

    check [scenario ...]       replay the traced scenarios and diff their
                               metrics/perf snapshot against the committed
                               baseline; exit 1 on any regression
    --baseline PATH            baseline file (default:
                               benchmarks/obs_baseline.json)
    --update                   write the current collection as the new
                               baseline instead of diffing
    --tolerance X              override the default relative tolerance
    --fidelity MODE            collect and compare under MODE
                               (``packet``/``flow``; default ``packet``);
                               the baseline stores one section per mode
    --json OUT                 write a machine-readable report (per-metric
                               observed/baseline/tolerance/verdict); on a
                               failure the causal diff of the failing
                               scenario's wait/phase metrics also prints

``diff`` mode (see :mod:`repro.obs.diff`)::

    diff <a.json> <b.json>     compare two saved runs — op ledgers
                               (``BENCH_ledger.json``) or trace/critpath
                               JSONs — and print a delta table ranked by
                               regression magnitude, each row attributed
                               to the wait-cause/phase buckets that moved;
                               identical runs report zero deltas
    --json OUT                 write the full diff document
    --html OUT                 write the ranked table as a standalone page

``dashboard`` mode (see :mod:`repro.obs.dashboard`)::

    dashboard <artifact>       replay the artifact's traced scenario with
                               tracing + continuous telemetry snapshots
                               on, and render one self-contained HTML
                               report: metric time-series, per-collective
                               phase/wait-cause breakdowns, the fidelity
                               decision log and a span flamegraph — no
                               external assets, openable offline
    --out PATH                 output file (default
                               ``<artifact>_dashboard.html``)
    --fidelity MODE            render under ``packet`` or ``flow``
                               (default: the active ``$REPRO_FIDELITY``)
    --diff RUN.json            diff the saved ledger/trace RUN.json against
                               this run and embed the ranked delta table
                               as a "Differential vs baseline" section
    --arg KEY=VALUE            scenario kwargs, as in trace mode

``validate-fidelity`` mode (see :mod:`repro.bench.validate`)::

    validate-fidelity [artifact ...]
                               replay artifacts at packet AND flow fidelity
                               (cold, sequential) and diff the result trees
                               against per-artifact tolerances; exit 1 on
                               any deviation out of tolerance
    --quick                    size/scale extremes only, CI-sized
    --json OUT                 write the per-artifact reports as JSON
    --explain                  instead of the tolerance diff, replay the
                               named traced artifact(s) in both modes and
                               attribute the packet-vs-flow divergence per
                               op and per link (names the top contributor)

``profile`` extras::

    --update-baseline          after profiling, fold the report into
                               benchmarks/perf_baseline.json under the
                               active fidelity mode (symmetric with
                               ``check --update``)
"""

from __future__ import annotations

import argparse
import cProfile
import json
import sys
import time

from repro.bench import formats, harness
from repro.bench.cache import ResultCache
from repro.bench.runner import ShardIncomplete, SweepRunner

DEFAULT_CACHE_DIR = ".bench_cache"
DEFAULT_JSON_OUT = "BENCH_results.json"


def _fig07(runner, quick=False):
    rows = harness.run_fig07_sendrecv_throughput(runner=runner)
    return formats.format_rows(
        rows, ["size", "accl_f2f_gbps", "accl_h2h_gbps", "mpi_rdma_gbps"],
        title="Figure 7 — send/recv throughput (Gb/s)")


def _fig08(runner, quick=False):
    rows = harness.run_fig08_invocation_latency(runner=runner)
    return formats.format_rows(rows, ["caller", "latency_us"],
                               title="Figure 8 — invocation latency (us)")


def _fig09(runner, quick=False):
    rows = harness.run_fig09_f2f_breakdown(runner=runner)
    return formats.format_rows(
        rows, ["size", "pcie_in", "collective", "pcie_out", "invocation",
               "total"],
        title="Figure 9 — MPI F2F broadcast breakdown (us)")


def _collective_table(result, title):
    rows = []
    for opcode, by_size in result.items():
        for size_label, (accl, mpi) in by_size.items():
            rows.append({"collective": opcode, "size": size_label,
                         "accl_us": accl, "mpi_us": mpi,
                         "ratio": accl / mpi})
    return formats.format_rows(
        rows, ["collective", "size", "accl_us", "mpi_us", "ratio"],
        title=title)


def _fig10(runner, quick=False):
    return _collective_table(harness.run_fig10_f2f_collectives(runner=runner),
                             "Figure 10 — F2F collectives, 8 ranks (us)")


def _fig11(runner, quick=False):
    return _collective_table(harness.run_fig11_h2h_collectives(runner=runner),
                             "Figure 11 — H2H collectives, 8 ranks (us)")


def _fig12(runner, quick=False):
    series = harness.run_fig12_reduce_scalability(runner=runner)
    return formats.format_series(
        series, "ranks", title="Figure 12 — reduce latency vs ranks (us)")


def _fig13(runner, quick=False):
    result = harness.run_fig13_tcp_xrt(runner=runner)
    rows = []
    for opcode, by_size in result.items():
        for size_label, vals in by_size.items():
            rows.append({"collective": opcode, "size": size_label, **vals})
    return formats.format_rows(
        rows, ["collective", "size", "accl+_f2f_us", "accl_v1_us",
               "mpi_tcp_us", "accl+_h2h_us"],
        title="Figure 13 — TCP on XRT, 4 ranks (us)")


def _fig16(runner, quick=False):
    rows = harness.run_fig16_vecmat(runner=runner)
    return formats.format_rows(
        rows, ["fc_size", "ranks", "backend", "compute_us", "reduce_us",
               "speedup", "correct"],
        title="Figure 16 — distributed vector-matrix multiplication")


def _fig17(runner, quick=False):
    result = harness.run_fig17_dlrm(runner=runner)
    parts = [formats.format_rows(
        result["cpu"], ["batch", "latency_ms", "throughput"],
        title="Figure 17 — CPU baseline")]
    accl = result["accl"]
    parts.append(formats.format_rows(
        [accl], ["latency_us", "p99_us", "throughput", "correct"],
        title="Figure 17 — ACCL+ DLRM on 10 FPGAs"))
    return "\n\n".join(parts)


def _tab01(runner, quick=False):
    rows = harness.run_tab01_algorithm_table(runner=runner)
    return formats.format_rows(
        rows, ["collective", "eager", "rndz_small", "rndz_large"],
        title="Table 1 — algorithm selection")


def _tab02(runner, quick=False):
    rows = harness.run_tab02_dlrm_config(runner=runner)
    return formats.format_rows(
        rows, ["Tables", "Concat Vec Len", "FC Layers", "Embed Size"],
        title="Table 2 — target recommendation model")


def _tab03(runner, quick=False):
    rows = harness.run_tab03_resources(runner=runner)
    return formats.format_rows(
        rows, ["component", "CLB kLUT", "DSP", "BRAM", "URAM"],
        title="Table 3 — resource utilization (% of U55C)")


#: ``--quick`` slice of the scale study: two small node counts at a size
#: below the flow fast-forward floor — seconds of wall clock, CI-sized.
FIGX_QUICK_KWARGS = {"node_counts": (8, 16), "size": 2 * 1024 * 1024}


def _figX_scale(runner, quick=False):
    kwargs = dict(FIGX_QUICK_KWARGS) if quick else {}
    rows = harness.run_figX_scale(runner=runner, **kwargs)
    return formats.format_rows(
        rows, ["nodes", "collective", "algorithm", "size", "time_us",
               "busbw_gbps"],
        title="Figure X — collective completion vs cluster size (fat-tree)")


ARTIFACTS = {
    "fig07": _fig07, "fig08": _fig08, "fig09": _fig09, "fig10": _fig10,
    "fig11": _fig11, "fig12": _fig12, "fig13": _fig13, "fig16": _fig16,
    "fig17": _fig17, "figX_scale": _figX_scale,
    "tab01": _tab01, "tab02": _tab02, "tab03": _tab03,
}


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", add_help=True,
        description="Regenerate evaluation artifacts.")
    parser.add_argument("names", nargs="*",
                        help="artifact names, 'all', 'list', or "
                             "'profile <artifact>|kernel'")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for the sweep (default: 1)")
    parser.add_argument("--cache", default=DEFAULT_CACHE_DIR, metavar="DIR",
                        help="result cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable result caching for this run")
    parser.add_argument("--json", dest="json_out", nargs="?",
                        const=DEFAULT_JSON_OUT, default=None, metavar="OUT",
                        help="write the per-point trajectory to OUT "
                             f"(default when given: {DEFAULT_JSON_OUT})")
    parser.add_argument("--profile-out", default=None, metavar="PATH",
                        help="run under cProfile; dump pstats to PATH")
    parser.add_argument("--shard", default=None, metavar="I/N",
                        help="execute only the points whose cache key "
                             "hashes to shard I of N; combine the shard "
                             "trajectories with 'merge'")
    parser.add_argument("--quick", action="store_true",
                        help="profile mode / figX_scale: reduced, "
                             "CI-sized sweep")
    parser.add_argument("--memory", action="store_true",
                        help="profile mode: attach tracemalloc")
    parser.add_argument("--per-node", action="store_true",
                        help="profile scale: report construction bytes per "
                             "node and record the scale block in "
                             f"{DEFAULT_JSON_OUT}; critpath mode: per-node/"
                             "per-link outlier attribution with z-score "
                             "straggler flagging")
    parser.add_argument("--arg", action="append", dest="scenario_args",
                        default=None, metavar="KEY=VALUE",
                        help="trace/critpath/dashboard mode: pass a scenario "
                             "kwarg (repeatable), e.g. --arg n_nodes=256 "
                             "--arg slow_link=fpga5.down")
    parser.add_argument("--html", dest="html_out", default=None,
                        metavar="PATH",
                        help="diff mode: write the ranked delta table as a "
                             "standalone HTML page")
    parser.add_argument("--diff", dest="diff_path", default=None,
                        metavar="PATH",
                        help="dashboard mode: diff this saved ledger/trace "
                             "JSON against the rendered run and embed the "
                             "ranked delta table as a section")
    parser.add_argument("--obs", action="store_true",
                        help="profile mode: measure observability overhead")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="trace mode: write Chrome trace JSON to PATH")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="trace mode: write the metrics registry CSV")
    parser.add_argument("--flamegraph-out", default=None, metavar="PATH",
                        help="trace/critpath mode: write collapsed-stack "
                             "flamegraph lines to PATH")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="check mode: baseline file (default: "
                             "benchmarks/obs_baseline.json)")
    parser.add_argument("--update", action="store_true",
                        help="check mode: rewrite the baseline from this run")
    parser.add_argument("--tolerance", type=float, default=None, metavar="X",
                        help="check mode: override the default relative "
                             "tolerance")
    parser.add_argument("--update-baseline", action="store_true",
                        help="profile mode: record this report in "
                             "benchmarks/perf_baseline.json under the "
                             "active fidelity")
    parser.add_argument("--fidelity", choices=("packet", "flow"),
                        default=None, metavar="MODE",
                        help="check/dashboard mode: run under MODE "
                             "(packet or flow)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="dashboard mode: output HTML file (default: "
                             "<artifact>_dashboard.html)")
    parser.add_argument("--explain", action="store_true",
                        help="validate-fidelity mode: attribute the "
                             "packet-vs-flow divergence per op and link")
    return parser


def _perf_history(json_out: str) -> list:
    """Carry the perf history of previous runs of *json_out* forward, so
    the committed trajectory keeps its own before/after trail.

    Every run appends its own entry before writing (see ``main``); files
    written before that convention hold only their totals, so fold those
    in once (deduplicated) when upgrading.
    """
    try:
        with open(json_out) as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        return []
    history = list(previous.get("perf", {}).get("history", []))
    last = history[-1] if history else {}
    if "fidelity" not in last:
        # Pre-convention file: its own run lives only in totals; fold it
        # in once.  Self-appended entries always carry a fidelity tag.
        totals = previous.get("totals", {})
        wall = totals.get("wall_s", 0.0)
        events = totals.get("events", 0)
        if wall and events:
            history.append({
                "wall_s": wall,
                "events": events,
                "events_per_s": events / wall,
                "jobs": previous.get("jobs"),
            })
    return history


DEFAULT_PERF_BASELINE = "benchmarks/perf_baseline.json"


def _update_perf_baseline(report: dict, path: str) -> str:
    """Fold *report* into the committed perf baseline under the active
    fidelity mode (and artifact name), preserving the other entries."""
    from repro.network.fidelity import default_fidelity

    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        doc = {"schema": 2, "modes": {}}
    doc.setdefault("schema", 2)
    modes = doc.setdefault("modes", {})
    fidelity = default_fidelity()
    slot = modes.setdefault(fidelity, {})
    name = report.get("artifact", "kernel")
    slot[name] = {
        key: report[key]
        for key in ("wall_s", "events", "events_ff", "events_per_s",
                    "ns_per_event", "quick", "points", "microbenchmarks")
        if key in report
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return fidelity


def _profile_main(args) -> int:
    from repro.bench import profile as profile_mod

    if len(args.names) != 2:
        print("usage: python -m repro.bench profile <artifact>|kernel|scale "
              "[--quick] [--memory] [--per-node] [--profile-out PATH] "
              "[--json OUT] [--update-baseline]",
              file=sys.stderr)
        return 2
    try:
        report = profile_mod.profile_artifact(
            args.names[1], quick=args.quick,
            profile_out=args.profile_out, memory=args.memory,
            obs=args.obs, per_node=args.per_node)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(profile_mod.render_report(report))
    if report.get("artifact") == "scale" and args.per_node:
        recorded = profile_mod.record_scale_block(report, DEFAULT_JSON_OUT)
        if recorded:
            print(f"recorded scale block in perf section of "
                  f"{DEFAULT_JSON_OUT}", file=sys.stderr)
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote profile report to {args.json_out}", file=sys.stderr)
    if args.update_baseline:
        path = args.baseline or DEFAULT_PERF_BASELINE
        fidelity = _update_perf_baseline(report, path)
        print(f"updated {path} [{fidelity}/{args.names[1]}]",
              file=sys.stderr)
    return 0


def _validate_main(args) -> int:
    from repro.bench import validate as validate_mod

    if args.explain:
        names = args.names[1:]
        if not names:
            from repro.obs import capture

            print("usage: python -m repro.bench validate-fidelity "
                  "<artifact> --explain [--json OUT]", file=sys.stderr)
            print("explainable:",
                  ", ".join(capture.traceable_artifacts()), file=sys.stderr)
            return 2
        reports = []
        for name in names:
            try:
                report = validate_mod.explain_divergence(name)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 2
            print(validate_mod.render_explanation(report))
            print()
            reports.append(report)
        if args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump({"schema": 1, "explanations": reports}, fh,
                          indent=2, sort_keys=True)
            print(f"wrote {len(reports)} divergence explanations to "
                  f"{args.json_out}", file=sys.stderr)
        return 0

    names = args.names[1:] or None
    try:
        reports = validate_mod.run_validation(names, quick=args.quick)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(validate_mod.render_validation(reports))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump({"schema": 1, "reports": reports}, fh, indent=2,
                      sort_keys=True)
        print(f"wrote {len(reports)} validation reports to {args.json_out}",
              file=sys.stderr)
    bad = [r for r in reports if not r["ok"]]
    if bad:
        print(f"FIDELITY MISMATCH: {len(bad)} artifact(s) out of "
              f"tolerance: {', '.join(r['artifact'] for r in bad)}",
              file=sys.stderr)
        return 1
    total_ff = sum(r["events_fast_forwarded"] for r in reports)
    print(f"validate-fidelity ok: {len(reports)} artifact(s), "
          f"{total_ff} events fast-forwarded within tolerance")
    return 0


def _scenario_kwargs(pairs) -> dict:
    """Parse repeated ``--arg key=value`` into scenario kwargs; values
    that parse as int/float are coerced, everything else stays a string."""
    kwargs: dict = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--arg wants KEY=VALUE, got {pair!r}")
        for cast in (int, float):
            try:
                value = cast(value)
                break
            except ValueError:
                continue
        kwargs[key] = value
    return kwargs


def _warn_dropped(cap) -> None:
    """Satellite of the incomplete-attribution fix: dropped spans no
    longer vanish silently — every CLI consumer says so."""
    dropped = cap.tracer.spans_dropped
    if dropped:
        print(f"warning: {dropped} span(s) dropped at ring-buffer "
              "capacity — attribution totals are INCOMPLETE (raise the "
              "tracer capacity or shrink the scenario)", file=sys.stderr)


def _trace_main(args) -> int:
    from repro.obs import capture
    from repro.obs.export import (metrics_to_csv, render_phase_table,
                                  write_chrome_trace)

    if len(args.names) != 2:
        print("usage: python -m repro.bench trace <artifact> "
              "[--trace-out PATH] [--metrics-out PATH] [--arg KEY=VALUE]",
              file=sys.stderr)
        print("traceable:", ", ".join(capture.traceable_artifacts()),
              file=sys.stderr)
        return 2
    try:
        cap = capture.trace_artifact(args.names[1],
                                     **_scenario_kwargs(args.scenario_args))
    except (KeyError, ValueError, TypeError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    _warn_dropped(cap)

    print(f"trace {cap.artifact}: {cap.description}")
    summary = cap.obs.summary()
    print(f"  {summary['spans']} spans over {len(cap.op_ids)} collectives, "
          f"{summary['metrics']} metrics "
          f"(unclosed={summary['unclosed_spans']}, "
          f"dropped={summary['events_dropped']}+"
          f"{summary['spans_dropped']})")
    print()
    print(render_phase_table(cap.breakdowns()))
    if args.trace_out:
        n = write_chrome_trace(cap.tracer, args.trace_out)
        print(f"wrote {n} Chrome trace events to {args.trace_out} "
              "(open at https://ui.perfetto.dev)", file=sys.stderr)
    if args.metrics_out:
        n = metrics_to_csv(cap.obs.registry, args.metrics_out)
        print(f"wrote {n} metric rows to {args.metrics_out}",
              file=sys.stderr)
    if args.json_out:
        doc = {"artifact": cap.artifact, "description": cap.description,
               "summary": summary, "ops": cap.breakdowns()}
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote {len(doc['ops'])} per-op breakdowns to "
              f"{args.json_out}", file=sys.stderr)
    if args.flamegraph_out:
        from repro.obs.critpath import write_flamegraph

        n = write_flamegraph(cap.tracer, args.flamegraph_out, cap.op_ids)
        print(f"wrote {n} collapsed stacks to {args.flamegraph_out}",
              file=sys.stderr)
    return 0


def _critpath_main(args) -> int:
    from repro.obs import capture
    from repro.obs.critpath import (critical_path, per_node_report,
                                    render_critpath, render_per_node,
                                    write_flamegraph)

    if len(args.names) != 2:
        print("usage: python -m repro.bench critpath <artifact> "
              "[--per-node] [--json OUT] [--flamegraph-out PATH] "
              "[--arg KEY=VALUE]", file=sys.stderr)
        print("traceable:", ", ".join(capture.traceable_artifacts()),
              file=sys.stderr)
        return 2
    try:
        cap = capture.trace_artifact(args.names[1],
                                     **_scenario_kwargs(args.scenario_args))
    except (KeyError, ValueError, TypeError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    _warn_dropped(cap)

    print(f"critpath {cap.artifact}: {cap.description}")
    print()
    reports = [critical_path(cap.tracer, op) for op in cap.op_ids]
    per_node = None
    if args.per_node:
        per_node = per_node_report(cap.tracer, cap.op_ids)
        print(render_per_node(per_node))
        print()
    else:
        for report in reports:
            print(render_critpath(report))
            print()
    if args.json_out:
        doc = {"artifact": cap.artifact, "description": cap.description,
               "ops": reports}
        if per_node is not None:
            doc["per_node"] = per_node
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote {len(reports)} critical-path reports to "
              f"{args.json_out}", file=sys.stderr)
    if args.flamegraph_out:
        n = write_flamegraph(cap.tracer, args.flamegraph_out, cap.op_ids)
        print(f"wrote {n} collapsed stacks to {args.flamegraph_out}",
              file=sys.stderr)
    return 0


def _check_main(args) -> int:
    from repro.bench import check as check_mod

    baseline_path = args.baseline or check_mod.DEFAULT_BASELINE
    scenarios = args.names[1:] or None
    fidelity = args.fidelity or "packet"
    current = check_mod.collect(scenarios, fidelity=fidelity)
    if args.update:
        previous = None
        try:
            previous = check_mod.load_baseline(baseline_path)
        except (OSError, ValueError):
            pass
        check_mod.write_baseline(baseline_path, current, previous)
        n = len(current["scenarios"])
        print(f"wrote baseline for {n} scenario(s) [{fidelity}] to "
              f"{baseline_path}")
        return 0
    try:
        doc = check_mod.load_baseline(baseline_path)
    except OSError:
        print(f"no baseline at {baseline_path}; create one with "
              "`python -m repro.bench check --update "
              f"--fidelity {fidelity}`", file=sys.stderr)
        return 2
    baseline = check_mod.mode_view(doc, fidelity)
    if not baseline["scenarios"]:
        print(f"baseline at {baseline_path} has no '{fidelity}' section; "
              "create one with `python -m repro.bench check --update "
              f"--fidelity {fidelity}`", file=sys.stderr)
        return 2
    if scenarios:
        baseline["scenarios"] = {
            name: metrics
            for name, metrics in baseline["scenarios"].items()
            if name in set(scenarios)
        }
    rows = check_mod.compare(baseline, current, default_tol=args.tolerance)
    print(check_mod.render_check_table(rows))
    if args.json_out:
        report = check_mod.report_doc(rows, fidelity, baseline_path)
        with open(args.json_out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote check report ({len(rows)} metrics) to "
              f"{args.json_out}", file=sys.stderr)
    bad = check_mod.violations(rows)
    if bad:
        from repro.obs.diff import render_check_attribution

        print("causal attribution of failing scenario(s):", file=sys.stderr)
        for scenario in sorted({row["scenario"] for row in bad}):
            base_m = baseline["scenarios"].get(scenario) or {}
            cur_m = current["scenarios"].get(scenario) or {}
            print(render_check_attribution(scenario, base_m, cur_m),
                  file=sys.stderr)
        print(f"REGRESSION: {len(bad)} metric(s) out of tolerance "
              f"[{fidelity}] (baseline: {baseline_path})", file=sys.stderr)
        return 1
    print(f"check ok: {len(rows)} metrics within tolerance "
          f"[{fidelity}] (baseline: {baseline_path})")
    return 0


def _diff_main(args) -> int:
    """``bench diff <a> <b>``: ranked regression deltas between two runs."""
    from repro.obs.diff import diff_files, render_diff, render_diff_html

    paths = args.names[1:]
    if len(paths) != 2:
        print("usage: python -m repro.bench diff <a.json> <b.json> "
              "[--json OUT] [--html OUT]  (a/b: saved ledgers or "
              "trace/critpath JSONs)", file=sys.stderr)
        return 2
    try:
        doc = diff_files(paths[0], paths[1])
    except (OSError, ValueError) as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    print(render_diff(doc))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote diff ({len(doc['rows'])} deltas) to {args.json_out}",
              file=sys.stderr)
    if args.html_out:
        with open(args.html_out, "w") as fh:
            fh.write(render_diff_html(doc, standalone=True))
        print(f"wrote diff HTML to {args.html_out}", file=sys.stderr)
    return 0


def _dashboard_main(args) -> int:
    from repro import units
    from repro.network.fidelity import default_fidelity, fidelity_override
    from repro.obs import capture
    from repro.obs.dashboard import render_dashboard

    if len(args.names) != 2:
        print("usage: python -m repro.bench dashboard <artifact> "
              "[--out PATH] [--fidelity MODE] [--diff RUN.json] "
              "[--arg KEY=VALUE]", file=sys.stderr)
        print("traceable:", ", ".join(capture.traceable_artifacts()),
              file=sys.stderr)
        return 2
    name = args.names[1]
    fidelity = args.fidelity or default_fidelity()
    try:
        with fidelity_override(fidelity):
            cap = capture.trace_artifact(
                name, telemetry=units.us(10),
                **_scenario_kwargs(args.scenario_args))
    except (KeyError, ValueError, TypeError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    diff_doc = None
    if args.diff_path:
        from repro.obs.diff import diff_runs, load_run, normalize_run

        try:
            base = load_run(args.diff_path)
        except (OSError, ValueError) as exc:
            print(f"--diff: {exc}", file=sys.stderr)
            return 2
        # Shape the current run like the baseline so entry keys line up:
        # trace docs key ops by name#occurrence, ledgers by population.
        if base["kind"] == "ledger":
            cur_doc = cap.ledger(fidelity=fidelity).snapshot()
        else:
            cur_doc = {"artifact": cap.artifact, "ops": cap.breakdowns()}
        cur = normalize_run(cur_doc, label=f"{name} (this run)")
        rows = diff_runs(base, cur)
        diff_doc = {"schema": 1, "a": args.diff_path,
                    "b": f"{name} (this run)", "kind": base["kind"],
                    "entries_a": len(base["entries"]),
                    "entries_b": len(cur["entries"]),
                    "rows": rows, "identical": not rows}
    html = render_dashboard(cap, fidelity=fidelity, diff_doc=diff_doc)
    out = args.out or f"{name}_dashboard.html"
    with open(out, "w") as fh:
        fh.write(html)
    summary = cap.obs.summary()
    print(f"dashboard {cap.artifact} [{fidelity}]: {summary['spans']} spans "
          f"over {len(cap.op_ids)} collectives, "
          f"{summary.get('telemetry_samples', 0)} telemetry samples -> "
          f"{out} ({len(html) / 1024:.0f} KiB, self-contained)")
    return 0


#: record fields a shard trajectory point carries into the result cache
_MERGE_FIELDS = ("wall_s", "sim_s", "events", "events_ff", "dropped",
                 "snapshots", "snap_dropped")


def _merge_main(args) -> int:
    """Combine sharded trajectory JSONs into the complete artifacts."""
    shard_files = args.names[1:]
    if not shard_files:
        print("usage: python -m repro.bench merge SHARD.json [SHARD.json "
              "...] [--cache DIR] [--json OUT] [--quick]", file=sys.stderr)
        return 2
    if args.no_cache:
        print("merge needs a result cache to import shard records into; "
              "drop --no-cache", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache)
    artifacts: list = []
    imported = skipped = 0
    for path in shard_files:
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"cannot read shard trajectory {path}: {exc}",
                  file=sys.stderr)
            return 2
        if doc.get("shard") is None:
            print(f"warning: {path} was not written by a --shard run; "
                  "importing its points anyway", file=sys.stderr)
        for name, art in doc.get("artifacts", {}).items():
            if name not in artifacts:
                artifacts.append(name)
            for point in art.get("points", []):
                if point.get("skipped"):
                    skipped += 1
                    continue
                if "value" not in point:
                    print(f"warning: {path}: point without a recorded "
                          "value (trajectory predates shard support?); "
                          "it will re-execute", file=sys.stderr)
                    continue
                record = {"value": point["value"]}
                record.update({field: point.get(field, 0)
                               for field in _MERGE_FIELDS})
                cache.put(point["key"], record)
                imported += 1
    print(f"merge: imported {imported} executed point(s) from "
          f"{len(shard_files)} shard file(s) ({skipped} skipped entries); "
          f"re-rendering {', '.join(artifacts)}", file=sys.stderr)
    sub = list(artifacts)
    sub += ["--cache", args.cache, "--jobs", str(args.jobs)]
    if args.quick:
        sub.append("--quick")
    if args.json_out:
        sub += ["--json", args.json_out]
    return main(sub)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    args = _parser().parse_args(argv)
    if not args.names or args.names[0] == "list":
        print(__doc__.strip())
        print("\navailable artifacts:", ", ".join(sorted(ARTIFACTS)))
        return 0
    if args.names[0] == "profile":
        return _profile_main(args)
    if args.names[0] == "trace":
        return _trace_main(args)
    if args.names[0] == "critpath":
        return _critpath_main(args)
    if args.names[0] == "check":
        return _check_main(args)
    if args.names[0] == "diff":
        return _diff_main(args)
    if args.names[0] == "dashboard":
        return _dashboard_main(args)
    if args.names[0] == "validate-fidelity":
        return _validate_main(args)
    if args.names[0] == "merge":
        return _merge_main(args)
    run_all = args.names == ["all"]
    names = sorted(ARTIFACTS) if run_all else args.names
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        print(f"unknown artifacts: {', '.join(unknown)}", file=sys.stderr)
        print("available:", ", ".join(sorted(ARTIFACTS)), file=sys.stderr)
        return 2

    shard = None
    if args.shard:
        try:
            index, count = (int(part) for part in args.shard.split("/"))
            shard = (index, count)
            if not 0 <= index < count:
                raise ValueError
        except ValueError:
            print(f"--shard wants I/N with 0 <= I < N, got {args.shard!r}",
                  file=sys.stderr)
            return 2

    cache = None if args.no_cache else ResultCache(args.cache)
    runner = SweepRunner(jobs=args.jobs, cache=cache, shard=shard)
    profiler = cProfile.Profile() if args.profile_out else None
    incomplete: list = []
    start = time.perf_counter()
    if profiler:
        profiler.enable()
    try:
        for name in names:
            try:
                print(ARTIFACTS[name](runner, quick=args.quick))
            except ShardIncomplete as exc:
                incomplete.append(name)
                print(f"[shard {shard[0]}/{shard[1]}] {name}: partial — "
                      f"{exc.skipped} point(s) belong to other shards; "
                      "combine the shard trajectories with "
                      "`python -m repro.bench merge`")
            print()
    finally:
        runner.close()
        if profiler:
            profiler.disable()
            profiler.dump_stats(args.profile_out)
    wall = time.perf_counter() - start
    if profiler:
        print(f"pstats written to {args.profile_out} "
              f"(inspect: python -m pstats {args.profile_out})",
              file=sys.stderr)

    json_out = args.json_out or (DEFAULT_JSON_OUT if run_all else None)
    if shard is not None and json_out is None:
        # A shard run's only durable product is its trajectory; always
        # write one so `bench merge` has something to combine.
        json_out = f"BENCH_shard{shard[0]}of{shard[1]}.json"
    if json_out:
        from repro.bench.profile import perf_section
        from repro.obs.ledger import ledger_path_for

        history = _perf_history(json_out)
        trajectory = runner.trajectory(include_values=shard is not None)
        ledger = runner.ledger()
        trajectory["ledger"] = ledger.summary()
        trajectory["cli"] = {
            "artifacts": names,
            "wall_s": wall,
            "cache_hits": 0 if cache is None else cache.hits,
            "cache_misses": 0 if cache is None else cache.misses,
        }
        perf = perf_section(runner.records, wall)
        # Every run appends itself, so the committed trajectory carries
        # its own before/after perf trail across PRs.
        history.append({
            "wall_s": wall,
            "events": perf["events"],
            "events_ff": perf["events_ff"],
            "events_per_s": perf["events_per_s"],
            "fidelity": perf["fidelity"],
            "jobs": args.jobs,
        })
        perf["history"] = history[-10:]
        trajectory["perf"] = perf
        with open(json_out, "w") as fh:
            json.dump(trajectory, fh, indent=2, sort_keys=True)
        print(f"wrote trajectory for {len(runner.records)} points "
              f"to {json_out}", file=sys.stderr)
        if ledger.ops:
            ledger_out = ledger_path_for(json_out)
            ledger.save(ledger_out)
            print(f"wrote op ledger ({ledger.ops} ops, "
                  f"{len(ledger.entries)} entries) to {ledger_out}",
                  file=sys.stderr)
    if run_all:
        events = sum(r.events for r in runner.records if not r.cached)
        events_ff = sum(r.events_ff for r in runner.records if not r.cached)
        run_wall = sum(r.wall_s for r in runner.records if not r.cached)
        equivalent = events + events_ff
        rate = equivalent / run_wall / 1e3 if run_wall > 0 else 0.0
        cached_n = sum(1 for r in runner.records if r.cached)
        # Sum per-point drop counts: the class-wide Tracer.total_dropped is
        # per-process and undercounts when points ran in pool workers.
        dropped = sum(r.dropped for r in runner.records)
        snap_dropped = sum(r.snap_dropped for r in runner.records)
        ff_note = f" (+{events_ff} fast-forwarded)" if events_ff else ""
        print(f"all: {len(runner.records)} points ({cached_n} cached), "
              f"{events} events{ff_note} in {wall:.2f}s — "
              f"{rate:.1f}k events/s, "
              f"tracer.dropped={dropped}, "
              f"snapshots.dropped={snap_dropped}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
