"""On-disk memoization for benchmark sweep points.

Every sweep point (one hermetic simulated cluster run) is cached under a
content-addressed key: a SHA-256 over the artifact name, the point's kernel
and parameters, and a *calibration fingerprint* covering the simulator's
timing constants.  The fingerprint hashes both the default
:class:`~repro.cclo.config_mem.CcloConfig` (the calibrated hardware
constants) and the source of every non-bench ``repro`` module, so touching
the timing model invalidates stale results automatically while formatting
changes in ``repro.bench`` itself do not.

Cache entries are single JSON files named by key, written atomically, so
concurrent sweep processes sharing one cache directory never corrupt it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

#: bump to invalidate every cache entry on incompatible record changes
CACHE_SCHEMA = 1

_FINGERPRINT: Optional[str] = None


def jsonable(value: Any) -> Any:
    """Recursively convert *value* into plain JSON-serializable types.

    Handles the numpy scalars/bools that leak out of harness rows and the
    tuples used for series keys.  Dict keys are stringified (JSON has no
    integer keys); assemblers that need integer x-values convert back.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def _source_digest() -> str:
    """Hash of every ``repro`` source file outside ``repro.bench``."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if rel.parts and rel.parts[0] == "bench":
            continue
        digest.update(str(rel).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def calibration_fingerprint() -> str:
    """Stable hash of the simulator's calibration (constants + source)."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        from dataclasses import asdict

        from repro.cclo.config_mem import CcloConfig

        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "cclo_config": jsonable(asdict(CcloConfig())),
                "source": _source_digest(),
            },
            sort_keys=True,
        )
        _FINGERPRINT = hashlib.sha256(payload.encode()).hexdigest()
    return _FINGERPRINT


def point_key(artifact: str, kernel: str, params: Dict[str, Any]) -> str:
    """Content-addressed key for one sweep point.

    The network fidelity mode is part of the key (read per call, not
    memoized with the calibration fingerprint): packet- and flow-mode runs
    of the same point may differ within tolerance, so they must never share
    a cache entry.
    """
    from repro.network.fidelity import default_fidelity

    payload = json.dumps(
        {
            "artifact": artifact,
            "kernel": kernel,
            "params": jsonable(params),
            "calibration": calibration_fingerprint(),
            "fidelity": default_fidelity(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """A directory of ``<key>.json`` records with atomic writes."""

    def __init__(self, root: str = ".bench_cache"):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record for *key*, or ``None`` on a miss."""
        try:
            with open(self._path(key)) as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(jsonable(record), fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                path.unlink()
                removed += 1
        return removed

    def __repr__(self) -> str:
        return (f"<ResultCache {str(self.root)!r} {len(self)} entries "
                f"hits={self.hits} misses={self.misses}>")
