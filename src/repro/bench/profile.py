"""Profiling harness: kernel microbenchmarks and artifact profiles.

The simulator's cost is almost entirely the discrete-event kernel, so the
first-class performance metric is **events per second of wall clock** (and
its inverse, ns/event).  This module measures it three ways:

- *microbenchmarks* — synthetic workloads that isolate one kernel path
  (sleep fast path, scheduled callbacks, a full collective through the
  whole CCLO/network stack);
- *artifact profiles* — run a real evaluation artifact (``fig07`` …)
  under the events/sec meter, optionally with :mod:`cProfile` and
  :mod:`tracemalloc` attached;
- the ``perf`` section of ``BENCH_results.json`` — written by
  ``python -m repro.bench all`` via :func:`perf_section`.

CLI::

    python -m repro.bench profile fig07            # full artifact profile
    python -m repro.bench profile fig07 --quick    # reduced sweep, CI-sized
    python -m repro.bench profile kernel           # microbenchmarks only
    python -m repro.bench profile fig16 --profile-out fig16.pstats --memory
"""

from __future__ import annotations

import cProfile
import time
import tracemalloc
from typing import Any, Callable, Dict, List, Optional

from repro import units
from repro.sim.kernel import Environment

#: synthetic events per microbenchmark run (``--quick`` divides by 10)
_MICRO_EVENTS = 200_000
#: collectives per op-throughput run (``--quick`` divides by 4)
_MICRO_OPS = 24


# ---------------------------------------------------------------------------
# events/sec meter
# ---------------------------------------------------------------------------

def measure(fn: Callable[[], Any], label: str = "run") -> Dict[str, Any]:
    """Run *fn* and report wall time against the kernel's event counters.

    ``events_per_s``/``ns_per_event`` use the class-wide counters on
    :class:`~repro.sim.kernel.Environment`, so everything the callable
    simulates — across any number of environments — is accounted.
    """
    events0 = Environment.total_events_processed
    ff0 = Environment.total_events_fast_forwarded
    sim0 = Environment.total_sim_time
    start = time.perf_counter()
    value = fn()
    wall = time.perf_counter() - start
    events = Environment.total_events_processed - events0
    events_ff = Environment.total_events_fast_forwarded - ff0
    # Rates are quoted in packet-equivalent events: segments a flow-fidelity
    # run fast-forwards analytically count as retired work (in packet mode
    # events_ff is 0 and this reduces to the plain rate).
    equivalent = events + events_ff
    report = {
        "label": label,
        "wall_s": wall,
        "events": events,
        "events_ff": events_ff,
        "sim_s": Environment.total_sim_time - sim0,
        "events_per_s": equivalent / wall if wall > 0 else 0.0,
        "ns_per_event": wall / equivalent * 1e9 if equivalent else 0.0,
    }
    return {"report": report, "value": value}


# ---------------------------------------------------------------------------
# microbenchmarks
# ---------------------------------------------------------------------------

def bench_sleep_path(n_events: int = _MICRO_EVENTS) -> Dict[str, Any]:
    """Process sleep fast path: N ``yield <float>`` resumptions."""
    env = Environment()
    n_procs = 4
    per_proc = n_events // n_procs

    def ticker():
        for _ in range(per_proc):
            yield 1e-6

    def run():
        for _ in range(n_procs):
            env.process(ticker())
        env.run()

    return measure(run, "sleep-path")["report"]


def bench_timeout_events(n_events: int = _MICRO_EVENTS) -> Dict[str, Any]:
    """Classic event objects: N ``yield env.timeout(dt)`` resumptions."""
    env = Environment()
    n_procs = 4
    per_proc = n_events // n_procs

    def ticker():
        for _ in range(per_proc):
            yield env.timeout(1e-6)

    def run():
        for _ in range(n_procs):
            env.process(ticker())
        env.run()

    return measure(run, "timeout-events")["report"]


def bench_scheduled_callbacks(n_events: int = _MICRO_EVENTS) -> Dict[str, Any]:
    """Bare callback chain: each fire reschedules itself."""
    env = Environment()
    remaining = [n_events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            env.schedule_callback(1e-6, tick)

    def run():
        env.schedule_callback(0.0, tick)
        env.run()

    return measure(run, "scheduled-callbacks")["report"]


def bench_collective_ops(ops: int = _MICRO_OPS) -> Dict[str, Any]:
    """Full-stack allreduce throughput: cluster build + 4-rank collective,
    measured in collective ops per second of wall clock."""
    from repro.bench.harness import accl_collective_time

    def run():
        for _ in range(ops):
            accl_collective_time("allreduce", 4 * units.KIB, n_nodes=4)

    report = measure(run, "collective-ops")["report"]
    report["ops"] = ops
    report["ops_per_s"] = ops / report["wall_s"] if report["wall_s"] else 0.0
    return report


def run_microbenchmarks(quick: bool = False) -> List[Dict[str, Any]]:
    """All kernel microbenchmarks; ``quick`` shrinks them ~10x for CI."""
    n = _MICRO_EVENTS // 10 if quick else _MICRO_EVENTS
    ops = _MICRO_OPS // 4 if quick else _MICRO_OPS
    return [
        bench_sleep_path(n),
        bench_timeout_events(n),
        bench_scheduled_callbacks(n),
        bench_collective_ops(ops),
    ]


# ---------------------------------------------------------------------------
# artifact profiles
# ---------------------------------------------------------------------------

#: ``--quick`` keyword overrides per artifact: small enough for a CI smoke
#: run, large enough that the events/sec figure is stable (~100k events).
_QUICK_KWARGS: Dict[str, Dict[str, Any]] = {
    "fig07": {"sizes": [64 * units.KIB, units.MIB, 16 * units.MIB]},
    "fig16": {"sizes": (2048, 4096)},
    "figX_scale": {"node_counts": (8, 16), "size": 2 * units.MIB},
}


def _artifact_functions() -> Dict[str, Callable]:
    from repro.bench import harness

    return {
        "fig07": harness.run_fig07_sendrecv_throughput,
        "fig08": harness.run_fig08_invocation_latency,
        "fig09": harness.run_fig09_f2f_breakdown,
        "fig10": harness.run_fig10_f2f_collectives,
        "fig11": harness.run_fig11_h2h_collectives,
        "fig12": harness.run_fig12_reduce_scalability,
        "fig13": harness.run_fig13_tcp_xrt,
        "fig16": harness.run_fig16_vecmat,
        "fig17": harness.run_fig17_dlrm,
        "figX_scale": harness.run_figX_scale,
    }


# ---------------------------------------------------------------------------
# cluster-scale profile (``profile scale``)
# ---------------------------------------------------------------------------

#: the headline scale configuration: a 1024-host fat-tree (k=16)
SCALE_NODES = 1024
#: allreduce payload for the scale run — above the flow-mode fast-forward
#: admission floor, so the collective exercises the analytic path
SCALE_ALLREDUCE_BYTES = 16 * units.MIB


def profile_scale(nodes: int = SCALE_NODES, fabric: str = "fattree",
                  quick: bool = False, memory: bool = True,
                  per_node: bool = False) -> Dict[str, Any]:
    """Construction footprint + one flow-fidelity allreduce at scale.

    Builds a ``nodes``-host large fabric under ``tracemalloc`` (the
    construction cost the memory-lean refactor targets), then runs one
    16 MiB ``reduce_bcast`` allreduce across all hosts at flow fidelity.
    ``per_node`` adds the ``bytes_per_node`` figure that ``bench profile
    --memory --per-node`` commits to the perf section of
    ``BENCH_results.json``.
    """
    from repro.bench.harness import accl_collective_time, \
        scale_topology_factory
    from repro.cluster import build_fpga_cluster
    from repro.network.fidelity import fidelity_override

    if quick:
        nodes = min(nodes, 128)
    factory = scale_topology_factory(fabric, nodes)

    def builder(n, **kw):
        return build_fpga_cluster(n, topology_factory=factory,
                                  peering="lazy", **kw)

    tracemalloc.start()
    base, _ = tracemalloc.get_traced_memory()
    t0 = time.perf_counter()
    cluster = builder(nodes, protocol="rdma", platform="coyote")
    build_s = time.perf_counter() - t0
    built, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    build_bytes = built - base
    del cluster

    with fidelity_override("flow"):
        measured = measure(
            lambda: accl_collective_time(
                "allreduce", SCALE_ALLREDUCE_BYTES, n_nodes=nodes,
                sync_protocol="rndz", algorithm="reduce_bcast",
                cluster_builder=builder),
            f"scale-allreduce-{nodes}")
    allreduce = measured["report"]
    allreduce.update(size=SCALE_ALLREDUCE_BYTES, algorithm="reduce_bcast",
                     fidelity="flow", time_s=measured["value"])

    report: Dict[str, Any] = {
        "artifact": "scale",
        "quick": quick,
        "nodes": nodes,
        "fabric": fabric,
        "build_s": build_s,
        "build_bytes": build_bytes,
        "allreduce": allreduce,
    }
    if per_node:
        report["bytes_per_node"] = build_bytes / nodes
    return report


def record_scale_block(report: Dict[str, Any],
                       json_out: str = "BENCH_results.json") -> bool:
    """Fold a scale profile into *json_out*'s ``perf`` section.

    Returns False (and writes nothing) when the trajectory file does not
    exist yet — the scale block rides on a previously generated
    ``BENCH_results.json``, it never creates one.
    """
    import json

    try:
        with open(json_out) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return False
    perf = doc.setdefault("perf", {})
    perf["scale"] = {
        key: report[key]
        for key in ("nodes", "fabric", "build_s", "build_bytes",
                    "bytes_per_node", "allreduce")
        if key in report
    }
    with open(json_out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return True


def profile_artifact(
    name: str,
    quick: bool = False,
    profile_out: Optional[str] = None,
    memory: bool = False,
    obs: bool = False,
    per_node: bool = False,
) -> Dict[str, Any]:
    """Profile one artifact (or ``"kernel"`` for microbenchmarks only).

    Returns a report dict with the events/sec metrics, plus optional
    ``memory`` (tracemalloc current/peak) and ``profile_out`` (pstats dump
    path) entries.  With ``obs=True`` the artifact runs a second time with
    the observability layer enabled, and the report gains an ``obs`` block:
    instrumented events/sec, overhead vs the plain run, collected
    metric/span counts, and — for artifacts with a traced scenario — a
    per-collective phase breakdown.
    """
    from repro.bench.runner import SweepRunner

    if name == "kernel":
        return {"artifact": "kernel", "quick": quick,
                "microbenchmarks": run_microbenchmarks(quick)}
    if name == "scale":
        return profile_scale(quick=quick, per_node=per_node)

    functions = _artifact_functions()
    if name not in functions:
        raise KeyError(
            f"unknown artifact {name!r}; profileable: "
            f"{', '.join(sorted(functions))}, kernel, scale")
    kwargs = dict(_QUICK_KWARGS.get(name, {})) if quick else {}
    runner = SweepRunner(jobs=1, cache=None)  # profiling wants cold points

    profiler = cProfile.Profile() if profile_out else None
    if memory:
        tracemalloc.start()
    if profiler:
        profiler.enable()
    try:
        measured = measure(
            lambda: functions[name](runner=runner, **kwargs), name)
    finally:
        if profiler:
            profiler.disable()
        if memory:
            mem_current, mem_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()

    report = measured["report"]
    report.update(artifact=name, quick=quick, points=len(runner.records))
    if memory:
        report["memory"] = {"current_bytes": mem_current,
                            "peak_bytes": mem_peak}
    if profiler:
        profiler.dump_stats(profile_out)
        report["profile_out"] = profile_out
    if obs:
        report["obs"] = _measure_obs_overhead(name, functions[name], kwargs,
                                              report)
    return report


#: metrics-snapshot cadence for the telemetry overhead pass (sim-seconds);
#: 50 sim-us matches a serving-style scrape resolution — frequent enough
#: to ramp-profile the quick sweeps, coarse enough that the quoted cost
#: reflects steady-state sampling rather than degenerate oversampling.
_OBS_TELEMETRY_CADENCE = units.us(50)


def _measure_obs_overhead(name: str, fn, kwargs: Dict[str, Any],
                          baseline: Dict[str, Any]) -> Dict[str, Any]:
    """Re-run *fn* with observability enabled; quantify the cost.

    Two instrumented passes isolate the two cost sources: spans only
    (record-only tracing, no extra heap events), then spans + continuous
    telemetry snapshots.  The baseline (disabled) run has already happened
    — that order keeps the disabled path the one any warm-up effects favor
    *against*, so the reported overheads are if anything pessimistic.
    """
    from repro.bench.runner import SweepRunner
    from repro.obs import capture
    from repro.obs import runtime as obs_runtime

    bundle = obs_runtime.enable()
    try:
        runner = SweepRunner(jobs=1, cache=None)
        measured = measure(lambda: fn(runner=runner, **kwargs),
                           f"{name}+obs")
        summary = bundle.summary()
    finally:
        obs_runtime.disable()

    enabled = measured["report"]
    base_rate = baseline["events_per_s"]
    obs_rate = enabled["events_per_s"]
    block = {
        "events_per_s": obs_rate,
        "ns_per_event": enabled["ns_per_event"],
        "wall_s": enabled["wall_s"],
        "events": enabled["events"],
        "overhead_pct": ((base_rate / obs_rate - 1.0) * 100.0
                         if obs_rate > 0 else 0.0),
        "summary": summary,
    }

    # Third pass: spans + telemetry.  Snapshot overhead is quoted against
    # the span-only run so the two costs are separable in the report.
    bundle = obs_runtime.enable(telemetry_cadence=_OBS_TELEMETRY_CADENCE)
    try:
        runner = SweepRunner(jobs=1, cache=None)
        measured = measure(lambda: fn(runner=runner, **kwargs),
                           f"{name}+obs+telemetry")
        tm_summary = bundle.summary()
    finally:
        obs_runtime.disable()
    telemetry = measured["report"]
    tm_rate = telemetry["events_per_s"]
    snapshots = tm_summary.get("telemetry_samples", 0)
    snap_dropped = tm_summary.get("telemetry_dropped", 0)
    for rec in runner.records:
        snapshots += getattr(rec, "snapshots", 0)
        snap_dropped += getattr(rec, "snap_dropped", 0)
    block["telemetry"] = {
        "cadence_s": _OBS_TELEMETRY_CADENCE,
        "events_per_s": tm_rate,
        "wall_s": telemetry["wall_s"],
        "snapshots": snapshots,
        "snapshots_dropped": snap_dropped,
        "overhead_pct": ((obs_rate / tm_rate - 1.0) * 100.0
                         if tm_rate > 0 else 0.0),
    }
    if name in capture.traceable_artifacts():
        cap = capture.trace_artifact(name)
        block["breakdowns"] = cap.breakdowns()
    return block


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------

def perf_section(records, wall_s: float) -> Dict[str, Any]:
    """The ``perf`` block of ``BENCH_results.json`` for a finished sweep."""
    from repro.network.fidelity import default_fidelity

    events = sum(r.events for r in records if not r.cached)
    events_ff = sum(r.events_ff for r in records if not r.cached)
    run_wall = sum(r.wall_s for r in records if not r.cached)
    equivalent = events + events_ff
    return {
        "wall_s": wall_s,
        "fidelity": default_fidelity(),
        "events": events,
        "events_ff": events_ff,
        "events_per_s": equivalent / run_wall if run_wall > 0 else 0.0,
        "ns_per_event": run_wall / equivalent * 1e9 if equivalent else 0.0,
    }


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`profile_artifact` report."""
    lines = []
    if report.get("artifact") == "scale":
        nodes = report["nodes"]
        lines.append(
            f"scale ({report['fabric']}, {nodes} nodes"
            + (", --quick" if report.get("quick") else "") + ")")
        lines.append(
            f"  cluster build: {report['build_s']:.2f}s, "
            f"{report['build_bytes'] / 2**20:.1f} MiB tracemalloc delta")
        if "bytes_per_node" in report:
            lines.append(
                f"  bytes/node: {report['bytes_per_node'] / 1024:.1f} KiB")
        ar = report["allreduce"]
        equivalent = ar["events"] + ar["events_ff"]
        lines.append(
            f"  allreduce {units.pretty_size(ar['size'])} "
            f"({ar['algorithm']}, fidelity={ar['fidelity']}): "
            f"sim {ar['time_s'] * 1e3:.2f} ms in {ar['wall_s']:.1f}s wall, "
            f"{equivalent} events ({ar['events_ff']} fast-forwarded), "
            f"{ar['events_per_s'] / 1e3:.1f}k events/s")
        return "\n".join(lines)
    micro = report.get("microbenchmarks")
    if micro is not None:
        lines.append("kernel microbenchmarks"
                     + (" (--quick)" if report.get("quick") else ""))
        for row in micro:
            line = (f"  {row['label']:<20} {row['events']:>9} events in "
                    f"{row['wall_s']:.3f}s = {row['events_per_s']/1e3:8.1f}k "
                    f"ev/s ({row['ns_per_event']:.0f} ns/event)")
            if "ops_per_s" in row:
                line += f", {row['ops_per_s']:.1f} collective-op/s"
            lines.append(line)
        return "\n".join(lines)

    lines.append(
        f"{report['artifact']}"
        + (" (--quick)" if report.get("quick") else "")
        + f": {report['points']} points, {report['events']} events in "
        f"{report['wall_s']:.2f}s wall / {report['sim_s']:.4f}s simulated")
    rate_line = (f"  {report['events_per_s']/1e3:.1f}k events/s, "
                 f"{report['ns_per_event']:.0f} ns/event")
    if report.get("events_ff"):
        rate_line += (f" (incl. {report['events_ff']} fast-forwarded, "
                      f"fidelity=flow)")
    lines.append(rate_line)
    mem = report.get("memory")
    if mem:
        lines.append(f"  tracemalloc peak {mem['peak_bytes']/1e6:.1f} MB "
                     f"(current {mem['current_bytes']/1e6:.1f} MB)")
    if report.get("profile_out"):
        lines.append(f"  pstats written to {report['profile_out']} "
                     f"(inspect: python -m pstats {report['profile_out']})")
    obs = report.get("obs")
    if obs:
        lines.append(
            f"  with observability: {obs['events_per_s']/1e3:.1f}k events/s "
            f"({obs['ns_per_event']:.0f} ns/event) — "
            f"{obs['overhead_pct']:+.1f}% overhead")
        summary = obs.get("summary", {})
        lines.append(
            f"    collected {summary.get('metrics', 0)} metrics; "
            f"dropped events={summary.get('events_dropped', 0)} "
            f"spans={summary.get('spans_dropped', 0)}")
        telemetry = obs.get("telemetry")
        if telemetry:
            lines.append(
                f"  with telemetry snapshots "
                f"(every {telemetry['cadence_s'] * 1e6:.0f} sim-us): "
                f"{telemetry['events_per_s']/1e3:.1f}k events/s — "
                f"{telemetry['overhead_pct']:+.1f}% on top of spans "
                f"({telemetry['snapshots']} snapshots, "
                f"{telemetry['snapshots_dropped']} dropped)")
        if obs.get("breakdowns"):
            from repro.obs.export import render_phase_table

            lines.append("  phase breakdown (traced scenario):")
            lines.extend("    " + ln for ln in
                         render_phase_table(obs["breakdowns"]).splitlines())
    return "\n".join(lines)
