"""Parallel, cached execution of benchmark sweeps.

Every evaluation artifact decomposes into independent :class:`SweepPoint`
work items — one hermetic simulated cluster per point — so a sweep
parallelizes trivially across a :class:`~concurrent.futures.ProcessPoolExecutor`.
:class:`SweepRunner` fans points out (``jobs > 1``), memoizes results
through :class:`~repro.bench.cache.ResultCache`, and records per-point
wall-clock, simulated time and event counts for the ``BENCH_results.json``
trajectory artifact.

Point *kernels* are plain functions registered under a string name with
:func:`point_kernel`; a point carries only its kernel name plus primitive
parameters, so it pickles cleanly into worker processes.  Workers import
:mod:`repro.bench.harness` lazily to (re-)populate the registry.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench.cache import ResultCache, point_key

#: kernel-name -> callable; populated by :func:`point_kernel` decorators
#: when :mod:`repro.bench.harness` is imported.
KERNELS: Dict[str, Callable] = {}


def point_kernel(name: str) -> Callable[[Callable], Callable]:
    """Register a picklable sweep kernel under *name*."""

    def decorate(fn: Callable) -> Callable:
        KERNELS[name] = fn
        return fn

    return decorate


def _global_obs():
    from repro.obs.runtime import get_global

    return get_global()


def _worker_warmup() -> None:
    """Pool initializer: pay per-process start-up cost once per worker.

    Importing the harness pulls in numpy and every artifact module
    (populating :data:`KERNELS`), and the calibration fingerprint hashes
    the whole source tree; both are memoized per process.  Without this
    initializer each worker paid those costs inside its first
    :func:`execute_point` call — and because a fresh pool used to be
    created per ``run()`` call, once per *artifact* per worker, which is
    the multi-job slowdown recorded in the BENCH_results.json history.
    """
    import repro.bench.harness  # noqa: F401 — populates KERNELS, loads numpy
    from repro.bench.cache import calibration_fingerprint

    calibration_fingerprint()


class ShardIncomplete(Exception):
    """A sharded run skipped points owned by other shards.

    Raised by :meth:`SweepRunner.run` after executing (and caching) every
    point this shard owns, so callers know the artifact cannot be
    assembled from this shard alone; ``bench merge`` combines the shards'
    trajectory JSONs into the full artifact.
    """

    def __init__(self, artifact: str, skipped: int):
        self.artifact = artifact
        self.skipped = skipped
        super().__init__(
            f"{artifact}: {skipped} point(s) belong to other shards"
        )


def shard_of(key: str, n_shards: int) -> int:
    """Deterministic shard owner of a cache key (content-addressed, so the
    partition is stable across processes, hosts and orderings)."""
    return int(key[:8], 16) % n_shards


@dataclass(frozen=True)
class SweepPoint:
    """One independent unit of benchmark work (one simulated cluster)."""

    artifact: str
    kernel: str
    params: tuple  # sorted ((name, value), ...) — hashable and stable

    @classmethod
    def make(cls, artifact: str, kernel: str, **params: Any) -> "SweepPoint":
        return cls(artifact, kernel, tuple(sorted(params.items())))

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def key(self) -> str:
        return point_key(self.artifact, self.kernel, self.kwargs())


@dataclass
class PointResult:
    """A point's value plus its execution metadata."""

    point: SweepPoint
    value: Any
    wall_s: float   # wall-clock of the producing run (not of a cache read)
    sim_s: float    # simulated seconds advanced while computing the point
    events: int     # discrete events processed while computing the point
    cached: bool
    #: events elided by flow-level fast-forward (0 in packet fidelity);
    #: ``events + events_ff`` is the packet-equivalent work retired.
    events_ff: int = 0
    key: Optional[str] = None
    #: trace events this point's tracers evicted (ring-buffer truncation).
    #: Measured per run — class-wide ``Tracer.total_dropped`` undercounts in
    #: pooled sweeps because each worker process has its own copy.
    dropped: int = 0
    #: telemetry samples this point's session took / evicted (0 when
    #: telemetry was off for the run).
    snapshots: int = 0
    snap_dropped: int = 0
    #: True when a sharded run left this point to another shard (value is
    #: None and no execution metadata was recorded).
    skipped: bool = False


def execute_point(point: SweepPoint) -> Dict[str, Any]:
    """Run one point and measure it.  Top-level so it pickles to workers."""
    import repro.bench.harness  # noqa: F401 — populates KERNELS on import
    from repro.obs import runtime as obs_runtime
    from repro.sim.kernel import Environment
    from repro.trace import Tracer

    fn = KERNELS[point.kernel]
    events0 = Environment.total_events_processed
    ff0 = Environment.total_events_fast_forwarded
    sim0 = Environment.total_sim_time
    dropped0 = Tracer.total_dropped
    obs_snapshot = None
    telemetry_snapshot = None
    snapshots = snap_dropped = 0
    start = time.perf_counter()
    if obs_runtime.is_enabled():
        # Per-point bundle: the snapshot shipped back covers exactly this
        # point, so the parent can merge worker metrics without double
        # counting (each point builds its own hermetic clusters).  The
        # telemetry cadence (if any) is inherited from the enabled global;
        # the point's series is tagged with its key so merged series stay
        # attributable.
        with obs_runtime.scoped(
                telemetry_source=point.key()) as point_obs:
            value = fn(**point.kwargs())
        obs_snapshot = point_obs.registry.snapshot()
        if point_obs.telemetry is not None:
            telemetry_snapshot = point_obs.telemetry.snapshot()
            snapshots = point_obs.telemetry.samples_taken
            snap_dropped = point_obs.telemetry.dropped
    else:
        value = fn(**point.kwargs())
    out = {
        "value": value,
        "wall_s": time.perf_counter() - start,
        "sim_s": Environment.total_sim_time - sim0,
        "events": Environment.total_events_processed - events0,
        "events_ff": Environment.total_events_fast_forwarded - ff0,
        "dropped": Tracer.total_dropped - dropped0,
        "snapshots": snapshots,
        "snap_dropped": snap_dropped,
    }
    if obs_snapshot is not None:
        out["obs"] = obs_snapshot
    if telemetry_snapshot is not None:
        out["telemetry"] = telemetry_snapshot
    return out


class SweepRunner:
    """Executes point lists: fan-out, memoization, metadata accounting.

    ``jobs=1`` runs points inline (the fully sequential, easily debuggable
    path); ``jobs>1`` dispatches cache misses to a process pool.  The pool
    is created once per runner (warm workers via :func:`_worker_warmup`)
    and reused across ``run()`` calls, so a multi-artifact sweep pays
    worker start-up once, not once per artifact.  Results always come back
    in point order, so figure assembly is independent of scheduling and a
    parallel sweep is row-for-row identical to a sequential one.

    ``shard=(i, n)`` restricts execution to the points whose cache key
    hashes to shard *i* of *n* (:func:`shard_of`).  Out-of-shard points
    are still served from the cache when possible; if any remain unserved
    after this shard's own points have executed (and been cached),
    :class:`ShardIncomplete` is raised — ``bench merge`` later combines
    the shards' result JSONs into the complete artifact.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 shard: Optional[tuple] = None):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        if shard is not None:
            index, count = shard
            if not 0 <= index < count:
                raise ValueError(f"shard index {index} outside 0..{count - 1}")
        self.shard = shard
        self.records: List[PointResult] = []
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_worker_warmup)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(self, points: Sequence[SweepPoint]) -> List[Any]:
        """Execute *points*; returns their values in point order."""
        results: List[Optional[PointResult]] = [None] * len(points)
        pending: List[tuple] = []
        skipped: List[tuple] = []
        for i, point in enumerate(points):
            key = (point.key()
                   if self.cache is not None or self.shard is not None
                   else None)
            record = self.cache.get(key) if self.cache is not None else None
            if record is not None:
                results[i] = PointResult(
                    point=point, value=record["value"],
                    wall_s=record.get("wall_s", 0.0),
                    sim_s=record.get("sim_s", 0.0),
                    events=record.get("events", 0),
                    events_ff=record.get("events_ff", 0),
                    dropped=record.get("dropped", 0),
                    snapshots=record.get("snapshots", 0),
                    snap_dropped=record.get("snap_dropped", 0),
                    cached=True, key=key,
                )
            elif (self.shard is not None
                    and shard_of(key, self.shard[1]) != self.shard[0]):
                skipped.append((i, point, key))
            else:
                pending.append((i, point, key))

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                outputs = [execute_point(point) for _, point, _ in pending]
            else:
                workers = min(self.jobs, len(pending))
                # Batch points per pickling round-trip; map() preserves
                # input order, which the assemblers rely on.
                chunk = max(1, len(pending) // (workers * 4))
                outputs = list(self._ensure_pool().map(
                    execute_point, [point for _, point, _ in pending],
                    chunksize=chunk))
            for (i, point, key), out in zip(pending, outputs):
                # Metric and telemetry snapshots fold into the parent's live
                # bundle and are never cached: the cache key ignores
                # observability state, so a disabled run must be able to
                # reuse the entry.
                obs_snapshot = out.pop("obs", None)
                telemetry_snapshot = out.pop("telemetry", None)
                if obs_snapshot is not None or telemetry_snapshot is not None:
                    parent_obs = _global_obs()
                    if parent_obs is not None:
                        if obs_snapshot is not None:
                            parent_obs.registry.merge(obs_snapshot)
                        if (telemetry_snapshot is not None
                                and parent_obs.telemetry is not None):
                            parent_obs.telemetry.merge(telemetry_snapshot)
                results[i] = PointResult(point=point, cached=False, key=key,
                                         **out)
                if self.cache is not None:
                    self.cache.put(key, out)

        for i, point, key in skipped:
            results[i] = PointResult(
                point=point, value=None, wall_s=0.0, sim_s=0.0,
                events=0, cached=False, key=key, skipped=True,
            )

        self.records.extend(results)  # type: ignore[arg-type]
        if skipped:
            # Raised *after* this shard's own points executed and were
            # cached: the shard's work product (cache entries + trajectory
            # records) is complete even though the artifact is not.
            raise ShardIncomplete(points[0].artifact if points else "?",
                                  len(skipped))
        return [r.value for r in results]  # type: ignore[union-attr]

    def run_one(self, point: SweepPoint) -> Any:
        """Convenience for single-point artifacts (tables, DLRM)."""
        return self.run([point])[0]

    def ledger(self, fidelity: Optional[str] = None):
        """The run's per-op latency ledger (:class:`repro.obs.ledger.
        OpLedger`): one histogram observation per collective sweep point.
        Cached/sharded/merged records carry the same values as fresh ones,
        so any execution plan yields an identical ledger."""
        from repro.obs.ledger import ledger_from_records

        return ledger_from_records(self.records, fidelity=fidelity)

    def trajectory(self, include_values: bool = False) -> Dict[str, Any]:
        """The machine-readable run summary (``BENCH_results.json``).

        ``include_values=True`` (sharded runs) additionally records each
        point's raw kernel value and skip flag, so ``bench merge`` can
        re-import the executed points into a result cache.
        """
        artifacts: Dict[str, Any] = {}
        for rec in self.records:
            art = artifacts.setdefault(rec.point.artifact, {
                "points": [], "wall_s": 0.0, "sim_s": 0.0,
                "events": 0, "events_ff": 0, "dropped": 0,
                "snapshots": 0, "snap_dropped": 0,
                "cached_points": 0, "skipped_points": 0,
            })
            entry = {
                "kernel": rec.point.kernel,
                "params": rec.point.kwargs(),
                "key": rec.key,
                "wall_s": rec.wall_s,
                "sim_s": rec.sim_s,
                "events": rec.events,
                "events_ff": rec.events_ff,
                "dropped": rec.dropped,
                "snapshots": rec.snapshots,
                "snap_dropped": rec.snap_dropped,
                "cached": rec.cached,
            }
            if include_values:
                entry["value"] = rec.value
                entry["skipped"] = rec.skipped
            art["points"].append(entry)
            art["skipped_points"] += int(rec.skipped)
            art["wall_s"] += rec.wall_s
            art["sim_s"] += rec.sim_s
            art["events"] += rec.events
            art["events_ff"] += rec.events_ff
            art["dropped"] += rec.dropped
            art["snapshots"] += rec.snapshots
            art["snap_dropped"] += rec.snap_dropped
            art["cached_points"] += int(rec.cached)
        totals = {
            "points": len(self.records),
            "cached_points": sum(a["cached_points"]
                                 for a in artifacts.values()),
            "skipped_points": sum(a["skipped_points"]
                                  for a in artifacts.values()),
            "wall_s": sum(a["wall_s"] for a in artifacts.values()),
            "sim_s": sum(a["sim_s"] for a in artifacts.values()),
            "events": sum(a["events"] for a in artifacts.values()),
            "events_ff": sum(a["events_ff"] for a in artifacts.values()),
            "dropped": sum(a["dropped"] for a in artifacts.values()),
            "snapshots": sum(a["snapshots"] for a in artifacts.values()),
            "snap_dropped": sum(a["snap_dropped"]
                                for a in artifacts.values()),
        }
        return {
            "schema": 1,
            "jobs": self.jobs,
            "shard": (None if self.shard is None else list(self.shard)),
            "cache": (None if self.cache is None else str(self.cache.root)),
            "totals": totals,
            "artifacts": artifacts,
        }
