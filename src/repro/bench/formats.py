"""Plain-text rendering of benchmark results."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_rows(rows: Sequence[dict], columns: Sequence[str],
                title: str = "") -> str:
    """Render dict rows as an aligned text table."""
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            text = f"{value:.4g}" if isinstance(value, float) else str(value)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append("  ".join(
            cell.ljust(widths[c]) for cell, c in zip(cells, columns)
        ))
    return "\n".join(lines)


def format_series(series: Dict[str, Dict], x_label: str,
                  y_format: str = "{:.2f}", title: str = "") -> str:
    """Render ``{series_name: {x: y}}`` as one table, x values as rows."""
    xs = sorted({x for ys in series.values() for x in ys})
    names = list(series)
    rows = []
    for x in xs:
        row = {x_label: x}
        for name in names:
            y = series[name].get(x)
            row[name] = "-" if y is None else y_format.format(y)
        rows.append(row)
    return format_rows(rows, [x_label, *names], title=title)
