"""Benchmark harness: regenerates every table and figure of the evaluation.

Each ``run_*`` function in :mod:`repro.bench.harness` reproduces one paper
artifact.  Internally an artifact is a list of independent
:class:`~repro.bench.runner.SweepPoint` items executed by a
:class:`~repro.bench.runner.SweepRunner` — optionally fanned out over a
process pool (``jobs``) and memoized on disk
(:class:`~repro.bench.cache.ResultCache`).  :mod:`repro.bench.formats`
renders the returned rows/series as the text tables the benchmarks print.
The pytest-benchmark targets live in ``benchmarks/`` at the repository
root; ``python -m repro.bench`` is the standalone CLI.
"""

from repro.bench.cache import ResultCache, calibration_fingerprint, point_key
from repro.bench.formats import format_rows, format_series
from repro.bench.harness import (
    run_fig07_sendrecv_throughput,
    run_fig08_invocation_latency,
    run_fig09_f2f_breakdown,
    run_fig10_f2f_collectives,
    run_fig11_h2h_collectives,
    run_fig12_reduce_scalability,
    run_fig13_tcp_xrt,
    run_fig16_vecmat,
    run_fig17_dlrm,
    run_tab01_algorithm_table,
    run_tab02_dlrm_config,
    run_tab03_resources,
)
from repro.bench.runner import PointResult, SweepPoint, SweepRunner

__all__ = [
    "run_fig07_sendrecv_throughput",
    "run_fig08_invocation_latency",
    "run_fig09_f2f_breakdown",
    "run_fig10_f2f_collectives",
    "run_fig11_h2h_collectives",
    "run_fig12_reduce_scalability",
    "run_fig13_tcp_xrt",
    "run_fig16_vecmat",
    "run_fig17_dlrm",
    "run_tab01_algorithm_table",
    "run_tab02_dlrm_config",
    "run_tab03_resources",
    "format_rows",
    "format_series",
    "SweepPoint",
    "SweepRunner",
    "PointResult",
    "ResultCache",
    "point_key",
    "calibration_fingerprint",
]
