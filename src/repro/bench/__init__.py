"""Benchmark harness: regenerates every table and figure of the evaluation.

Each ``run_*`` function in :mod:`repro.bench.harness` reproduces one paper
artifact and returns structured rows; :mod:`repro.bench.formats` renders
them as the text tables the benchmarks print.  The pytest-benchmark targets
live in ``benchmarks/`` at the repository root.
"""

from repro.bench.harness import (
    run_fig07_sendrecv_throughput,
    run_fig08_invocation_latency,
    run_fig09_f2f_breakdown,
    run_fig10_f2f_collectives,
    run_fig11_h2h_collectives,
    run_fig12_reduce_scalability,
    run_fig13_tcp_xrt,
    run_fig16_vecmat,
    run_fig17_dlrm,
    run_tab01_algorithm_table,
    run_tab03_resources,
)
from repro.bench.formats import format_rows, format_series

__all__ = [
    "run_fig07_sendrecv_throughput",
    "run_fig08_invocation_latency",
    "run_fig09_f2f_breakdown",
    "run_fig10_f2f_collectives",
    "run_fig11_h2h_collectives",
    "run_fig12_reduce_scalability",
    "run_fig13_tcp_xrt",
    "run_fig16_vecmat",
    "run_fig17_dlrm",
    "run_tab01_algorithm_table",
    "run_tab03_resources",
    "format_rows",
    "format_series",
]
