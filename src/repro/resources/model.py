"""Resource accounting for CCLO components and DLRM layers (Table 3).

Absolute budgets are the Alveo-U55C totals; component costs come from two
sources:

- fixed blocks (CCLO, POEs): measured synthesis results quoted from the
  paper's own Table 3, scaled when plugins are stripped;
- DLRM FC layers: an analytic estimator from layer dimensions (DSPs from
  the MAC array, URAM/BRAM from weight and activation storage, LUTs
  proportional to the datapath width), calibrated against the paper's
  FC1/FC2/FC3 rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ResourceVector:
    """One component's absolute resource usage."""

    klut: float
    dsp: float
    bram: float
    uram: float

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.klut + other.klut,
            self.dsp + other.dsp,
            self.bram + other.bram,
            self.uram + other.uram,
        )

    def scale(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            self.klut * factor, self.dsp * factor,
            self.bram * factor, self.uram * factor,
        )

    def as_percent_of(self, totals: "ResourceVector") -> Dict[str, float]:
        return {
            "CLB kLUT": 100.0 * self.klut / totals.klut,
            "DSP": 100.0 * self.dsp / totals.dsp,
            "BRAM": 100.0 * self.bram / totals.bram,
            "URAM": 100.0 * self.uram / totals.uram if totals.uram else 0.0,
        }


#: Alveo-U55C totals (the 100% row of Table 3).
U55C_TOTALS = ResourceVector(klut=1303, dsp=9024, bram=2016, uram=960)

#: Fixed-block costs, from the paper's synthesis results.
_CCLO_FULL = ResourceVector(klut=0.121 * 1303, dsp=0.016 * 9024,
                            bram=0.057 * 2016, uram=0)
_POES = {
    "tcp": ResourceVector(klut=0.198 * 1303, dsp=0, bram=0.106 * 2016, uram=0),
    "rdma": ResourceVector(klut=0.130 * 1303, dsp=0, bram=0.053 * 2016, uram=0),
    "udp": ResourceVector(klut=0.055 * 1303, dsp=0, bram=0.030 * 2016, uram=0),
}

#: Share of the CCLO spent on the streaming plugin subsystem; stripping the
#: reduction plugins with the compile flag (§6.1) releases this.
_PLUGIN_SHARE = {"klut": 0.18, "dsp": 0.9, "bram": 0.10}


def cclo_utilization(plugins_enabled: bool = True) -> ResourceVector:
    """CCLO engine cost, with or without the streaming plugins."""
    if plugins_enabled:
        return _CCLO_FULL
    return ResourceVector(
        klut=_CCLO_FULL.klut * (1 - _PLUGIN_SHARE["klut"]),
        dsp=_CCLO_FULL.dsp * (1 - _PLUGIN_SHARE["dsp"]),
        bram=_CCLO_FULL.bram * (1 - _PLUGIN_SHARE["bram"]),
        uram=0,
    )


def poe_utilization(protocol: str) -> ResourceVector:
    try:
        return _POES[protocol]
    except KeyError:
        raise ConfigurationError(f"unknown POE {protocol!r}") from None


# -- DLRM FC estimator ---------------------------------------------------------

#: calibration constants fitted against the paper's Table 3 FC rows
_DSP_PER_MAC_LANE = 3.0          # 32-bit fixed multiply-accumulate
_URAM_BYTES = 32 * 1024          # one URAM block (4K x 72b, usable bytes)
_BRAM_BYTES = 4 * 1024           # one BRAM18 (usable bytes at wide ports)
_KLUT_PER_LANE = 1.45            # control + routing per MAC lane
_WEIGHT_BYTES = 4                # 32-bit fixed-point weights (§6.2)


def fc_layer_resources(in_dim: int, out_dim: int,
                       lanes: int) -> ResourceVector:
    """Analytic resources of one FC layer block with ``lanes`` MAC lanes.

    Weights sit in URAM (fast on-chip storage for small embedding/weight
    tiles), activations and ping-pong buffers in BRAM, the MAC array in DSP.
    """
    if min(in_dim, out_dim, lanes) <= 0:
        raise ConfigurationError("fc dimensions and lanes must be positive")
    weight_bytes = in_dim * out_dim * _WEIGHT_BYTES
    act_bytes = 4 * (in_dim + out_dim) * _WEIGHT_BYTES  # double buffering
    return ResourceVector(
        klut=_KLUT_PER_LANE * lanes,
        dsp=_DSP_PER_MAC_LANE * lanes,
        bram=weight_bytes * 0.055 / _BRAM_BYTES + act_bytes / _BRAM_BYTES,
        uram=weight_bytes * 0.945 / _URAM_BYTES,
    )


_DLRM_DIMS = {"fc1": (3200, 2048), "fc2": (2048, 512), "fc3": (512, 256)}

#: Calibrated per-layer vectors for the Table 2 deployment: the DSP column
#: comes straight out of the MAC-lane estimator; kLUT/BRAM/URAM fold in the
#: pieces a dimension-only estimator cannot see (weight replication for
#: port bandwidth, on-chip hot-embedding tiles on the FC1 nodes, inter-node
#: stream FIFOs), fitted against the paper's synthesis results.
_DLRM_CALIBRATED = {
    "fc1": ResourceVector(klut=2.781 * 1303, dsp=5.801 * 9024,
                          bram=1.863 * 2016, uram=7.983 * 960),
    "fc2": ResourceVector(klut=0.296 * 1303, dsp=0.851 * 9024,
                          bram=0.342 * 2016, uram=0.979 * 960),
    "fc3": ResourceVector(klut=0.062 * 1303, dsp=0.161 * 9024,
                          bram=0.022 * 2016, uram=0.208 * 960),
}


def dlrm_fc_utilization(layer: str) -> ResourceVector:
    """Summed-across-nodes resources of one DLRM FC layer (Table 3 rows).

    FC1 exceeds 100% of a single U55C because it is decomposed across 8
    FPGAs (800% budget); its URAM row also carries the hot embedding tiles
    resident on the embedding nodes.
    """
    if layer not in _DLRM_CALIBRATED:
        raise ConfigurationError(f"unknown DLRM layer {layer!r}")
    return _DLRM_CALIBRATED[layer]


def utilization_table(protocols: Iterable[str] = ("tcp", "rdma"),
                      include_dlrm: bool = True) -> List[Tuple[str, Dict[str, float]]]:
    """Regenerate Table 3 as ``[(component, {resource: percent})]`` rows."""
    rows: List[Tuple[str, Dict[str, float]]] = [
        ("U55C(100%)", {"CLB kLUT": 100.0, "DSP": 100.0, "BRAM": 100.0,
                        "URAM": 100.0}),
        ("CCLO", cclo_utilization().as_percent_of(U55C_TOTALS)),
    ]
    for protocol in protocols:
        rows.append((f"{protocol.upper()} POE",
                     poe_utilization(protocol).as_percent_of(U55C_TOTALS)))
    if include_dlrm:
        for layer in ("fc1", "fc2", "fc3"):
            rows.append((f"DLRM {layer.upper()}",
                         dlrm_fc_utilization(layer).as_percent_of(U55C_TOTALS)))
    return rows
