"""FPGA resource-utilization model (Table 3)."""

from repro.resources.model import (
    ResourceVector,
    U55C_TOTALS,
    cclo_utilization,
    dlrm_fc_utilization,
    poe_utilization,
    utilization_table,
)

__all__ = [
    "ResourceVector",
    "U55C_TOTALS",
    "cclo_utilization",
    "poe_utilization",
    "dlrm_fc_utilization",
    "utilization_table",
]
