"""FPGA development platforms (§4.2).

A platform defines how buffers are allocated and moved and how the CCLO is
invoked.  The driver layers generic :class:`BaseBuffer` / :class:`BasePlatform`
types which are specialized here:

- :class:`CoyotePlatform` -- shared virtual memory: a TLB translates CCLO
  accesses to host or device memory; no staging; ~2.3 us host invocation.
- :class:`VitisPlatform` -- partitioned memory (XRT): host buffers must be
  *staged* through XDMA before/after collectives; ~80 us host invocation.
- :class:`SimPlatform` -- the functional-simulation platform (the paper's
  ZMQ-based flow): zero hardware latencies, for debugging and development.
"""

from repro.platform.base import BaseBuffer, BasePlatform, BufferLocation, BufferView
from repro.platform.coyote import CoyoteBuffer, CoyotePlatform, Tlb
from repro.platform.vitis import VitisBuffer, VitisPlatform
from repro.platform.simplatform import SimBuffer, SimPlatform

__all__ = [
    "BaseBuffer",
    "BasePlatform",
    "BufferLocation",
    "BufferView",
    "CoyoteBuffer",
    "CoyotePlatform",
    "Tlb",
    "VitisBuffer",
    "VitisPlatform",
    "SimBuffer",
    "SimPlatform",
]
