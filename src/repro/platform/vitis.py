"""Vitis/XRT: the partitioned-memory platform (§4.2 "Integration with Vitis").

Vitis "implements a partitioned memory model": FPGA kernels (and the CCLO)
can only reach FPGA memory; host data must be explicitly migrated — *staged*
— across PCIe by the XRT-controlled XDMA engine before and after collectives.
The paper calls out two penalties measured in the evaluation:

- **staging** dominates H2H collectives on XRT (Fig 13's host-vs-device gap);
- **invocation latency** through XRT is "significantly higher" than through
  Coyote, "as it is not intended for fine-grained data movement" (Fig 8).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PlatformError
from repro.memory import Memory, PcieLink, hbm_stack, host_dram
from repro.platform.base import BaseBuffer, BasePlatform, BufferLocation
from repro.sim import Environment, Event
from repro import units


class VitisBuffer(BaseBuffer):
    """An XRT buffer object (``xrt::bo`` analogue).

    A host-located VitisBuffer has a *shadow* allocation in device memory:
    staging copies bounce through it, mirroring XRT's host-pointer +
    device-buffer pairing.
    """

    def __init__(self, platform: "VitisPlatform", nbytes: int,
                 location: BufferLocation, array: Optional[np.ndarray] = None):
        super().__init__(platform, nbytes, location, array)
        if location is BufferLocation.DEVICE:
            self._allocation = platform.device_memory.allocate(nbytes)
            self._shadow = None
        else:
            self._allocation = platform.host_memory.allocate(nbytes)
            self._shadow = platform.device_memory.allocate(nbytes)
        self.staged = location is BufferLocation.DEVICE

    def free(self) -> None:
        super().free()
        if self._shadow is not None:
            self._shadow.memory.free(self._shadow)


class VitisPlatform(BasePlatform):
    """Commodity XRT platform: HBM device memory behind an XDMA IP core."""

    name = "vitis"
    # XRT kernel start + completion polling round trip: Fig 8 "XRT host".
    host_invocation_latency = units.us(80)
    kernel_invocation_latency = units.ns(80)

    def __init__(
        self,
        env: Environment,
        host_memory: Optional[Memory] = None,
        device_memory: Optional[Memory] = None,
        pcie: Optional[PcieLink] = None,
    ):
        super().__init__(env)
        self.host_memory = host_memory or host_dram(env, name="xrt.dram")
        self.device_memory = device_memory or hbm_stack(env, name="xrt.hbm")
        self.pcie = pcie or PcieLink(env, name="xrt.xdma")
        self.stagings = 0

    def allocate(self, nbytes, location=BufferLocation.DEVICE, array=None):
        return VitisBuffer(self, nbytes, location, array)

    def device_access(self, buffer: BaseBuffer, nbytes: int,
                      direction: str) -> Event:
        if buffer.platform is not self:
            raise PlatformError("buffer belongs to a different platform")
        if nbytes > buffer.nbytes:
            raise PlatformError(
                f"access of {nbytes}B exceeds buffer of {buffer.nbytes}B"
            )
        if (buffer.location is BufferLocation.HOST and not buffer.staged
                and direction == "read"):
            # Writes are fine: they land in the device shadow and stage_out
            # migrates them home.  Reads need the data migrated first.
            raise PlatformError(
                "partitioned memory: host buffer must be staged to device "
                "memory before the CCLO can read it (call stage_in)"
            )
        return self.env.timeout(self.device_memory.access_delay(nbytes))

    def requires_staging(self, buffer: BaseBuffer) -> bool:
        return buffer.location is BufferLocation.HOST

    def stage_in(self, buffer: BaseBuffer) -> Event:
        """Host -> device migration through XDMA (before the collective)."""
        if buffer.location is BufferLocation.DEVICE:
            return self.env.timeout(0.0)
        self.stagings += 1
        read = self.host_memory.access_delay(buffer.nbytes)
        dma = self.pcie.dma_h2d_delay(buffer.nbytes)
        write = self.device_memory.access_delay(buffer.nbytes)
        buffer.staged = True
        return self.env.timeout(max(read, dma, write))

    def stage_out(self, buffer: BaseBuffer) -> Event:
        """Device -> host migration through XDMA (after the collective)."""
        if buffer.location is BufferLocation.DEVICE:
            return self.env.timeout(0.0)
        self.stagings += 1
        read = self.device_memory.access_delay(buffer.nbytes)
        dma = self.pcie.dma_d2h_delay(buffer.nbytes)
        write = self.host_memory.access_delay(buffer.nbytes)
        buffer.staged = False
        return self.env.timeout(max(read, dma, write))
