"""The functional-simulation platform (§4.2 "Simulation Platform").

The paper ships a ZMQ-based simulation platform so applications can be
debugged without hardware: "a stand-alone simulated FPGA node is compiled to
include memory and one ACCL+ CCLO Engine" and the host driver connects to it
through dedicated buffer and device abstractions.

In this reproduction the *whole build* is a simulator already, so the
SimPlatform's job is the same as the paper's: a frictionless functional
target — infinite-bandwidth memory, zero invocation cost — against which
collective logic can be validated independently of timing artifacts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PlatformError
from repro.memory.model import Memory
from repro.platform.base import BaseBuffer, BasePlatform, BufferLocation
from repro.sim import Environment, Event
from repro import units


class SimBuffer(BaseBuffer):
    """Buffer in the simulated node's flat memory."""

    def __init__(self, platform: "SimPlatform", nbytes: int,
                 location: BufferLocation, array: Optional[np.ndarray] = None):
        super().__init__(platform, nbytes, location, array)
        self._allocation = platform.memory.allocate(nbytes)


class SimPlatform(BasePlatform):
    """Functional target: correct semantics, negligible timing."""

    name = "sim"
    host_invocation_latency = 0.0
    kernel_invocation_latency = 0.0

    def __init__(self, env: Environment, capacity: int = 64 * units.GIB):
        super().__init__(env)
        self.memory = Memory(
            env, capacity=capacity, bandwidth=1e15, name="sim.mem"
        )

    def allocate(self, nbytes, location=BufferLocation.DEVICE, array=None):
        return SimBuffer(self, nbytes, location, array)

    def device_access(self, buffer: BaseBuffer, nbytes: int,
                      direction: str) -> Event:
        if buffer.platform is not self:
            raise PlatformError("buffer belongs to a different platform")
        if nbytes > buffer.nbytes:
            raise PlatformError(
                f"access of {nbytes}B exceeds buffer of {buffer.nbytes}B"
            )
        return self.env.timeout(0.0)
