"""Coyote: the shared-virtual-memory platform (§4.2 "Integration with Coyote").

Coyote gives the FPGA kernel a unified, virtualized view of host and device
memory: a software-populated TLB translates kernel memory requests and routes
them to host DMA (over PCIe) or device DMA (HBM/DDR).  Consequences modeled
here, each of which shows up in the evaluation:

- **F2F ≈ H2H** (Figs 7/10/11): a CCLO access to a host buffer rides PCIe at
  ~13 GB/s — still faster than the 12.5 GB/s network, so host- and
  device-resident data perform alike.
- **Page faults hurt**: an unmapped page interrupts the CPU; the CCL driver
  (CoyoteBuffer) therefore *eagerly maps* pages at buffer creation.
- **Invocation is cheap** (Fig 8): one PCIe write + one PCIe read, ~2.3 us.
- The ACCL+ integration widened the TLB associativity and the number of
  streaming interfaces; we expose the TLB capacity as a parameter.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.errors import PlatformError
from repro.memory import Memory, PcieLink, hbm_stack, host_dram
from repro.platform.base import BaseBuffer, BasePlatform, BufferLocation
from repro.sim import Environment, Event
from repro import units


class Tlb:
    """Software-populated translation cache for the FPGA memory manager."""

    PAGE_BYTES = 2 * units.MIB  # Coyote uses hugepages

    def __init__(
        self,
        env: Environment,
        entries: int = 1024,
        lookup_latency: float = units.ns(8),
        fault_penalty: float = units.us(20),
    ):
        self.env = env
        self.entries = entries
        self.lookup_latency = lookup_latency
        self.fault_penalty = fault_penalty
        self._mapped: Set[int] = set()
        self._lru: list = []
        self.hits = 0
        self.faults = 0

    def map_page(self, page: int) -> None:
        """Eagerly install a translation (driver-side, free of charge)."""
        if page in self._mapped:
            return
        if len(self._mapped) >= self.entries:
            victim = self._lru.pop(0)
            self._mapped.discard(victim)
        self._mapped.add(page)
        self._lru.append(page)

    def map_range(self, start_page: int, n_pages: int) -> None:
        for page in range(start_page, start_page + n_pages):
            self.map_page(page)

    def translate(self, page: int) -> float:
        """Return the latency of translating *page*, faulting if unmapped."""
        if page in self._mapped:
            self.hits += 1
            return self.lookup_latency
        self.faults += 1
        self.map_page(page)
        return self.lookup_latency + self.fault_penalty

    def __repr__(self) -> str:
        return f"<Tlb {len(self._mapped)}/{self.entries} faults={self.faults}>"


class CoyoteBuffer(BaseBuffer):
    """Buffer with eagerly-mapped pages (the paper's CoyoteBuffer class).

    "the CCL driver, specifically the CoyoteBuffer class, eagerly maps pages
    to the Coyote TLBs when instantiating buffers" — pass ``eager_map=False``
    to reproduce the page-fault penalty that motivates this (first touch
    interrupts the CPU; see the TLB ablation benchmark).
    """

    def __init__(self, platform: "CoyotePlatform", nbytes: int,
                 location: BufferLocation, array: Optional[np.ndarray] = None,
                 eager_map: bool = True):
        super().__init__(platform, nbytes, location, array)
        memory = (
            platform.device_memory
            if location is BufferLocation.DEVICE
            else platform.host_memory
        )
        self._allocation = memory.allocate(nbytes)
        first_page = self._allocation.offset // Tlb.PAGE_BYTES
        last_page = (self._allocation.end - 1) // Tlb.PAGE_BYTES
        self.pages = (first_page, last_page - first_page + 1)
        if eager_map:
            platform.tlb.map_range(*self.pages)


class CoyotePlatform(BasePlatform):
    """Shared virtual memory over host DRAM + device HBM, joined by PCIe."""

    name = "coyote"
    # One PCIe posted write (doorbell) + one read (ack): Fig 8 "cyt host".
    host_invocation_latency = units.us(2.3)
    # Kernel command lands in an on-fabric FIFO: ~20 cycles @250 MHz.
    kernel_invocation_latency = units.ns(80)

    def __init__(
        self,
        env: Environment,
        host_memory: Optional[Memory] = None,
        device_memory: Optional[Memory] = None,
        pcie: Optional[PcieLink] = None,
        tlb_entries: int = 1024,
    ):
        super().__init__(env)
        self.host_memory = host_memory or host_dram(env, name="cyt.dram")
        self.device_memory = device_memory or hbm_stack(env, name="cyt.hbm")
        self.pcie = pcie or PcieLink(env, name="cyt.pcie")
        self.tlb = Tlb(env, entries=tlb_entries)

    def allocate(self, nbytes, location=BufferLocation.DEVICE, array=None,
                 eager_map: bool = True):
        return CoyoteBuffer(self, nbytes, location, array,
                            eager_map=eager_map)

    def device_access(self, buffer: BaseBuffer, nbytes: int,
                      direction: str) -> Event:
        """Route a CCLO access through the TLB to the right memory."""
        if buffer.platform is not self:
            raise PlatformError("buffer belongs to a different platform")
        if nbytes > buffer.nbytes:
            raise PlatformError(
                f"access of {nbytes}B exceeds buffer of {buffer.nbytes}B"
            )
        # Touch every page the access spans: a lazily-mapped buffer faults
        # once per page, an eagerly-mapped one pays only lookups.
        first_page, n_pages = buffer.pages
        pages_touched = min(
            n_pages, max(1, -(-nbytes // Tlb.PAGE_BYTES))
        )
        translate = sum(
            self.tlb.translate(first_page + i) for i in range(pages_touched)
        )
        if buffer.location is BufferLocation.DEVICE:
            mem_delay = self.device_memory.access_delay(nbytes)
            return self.env.timeout(translate + mem_delay)
        # Host memory: the access crosses PCIe and touches DRAM; both pipes
        # are charged, completion follows the slower one.
        dram_delay = self.host_memory.access_delay(nbytes)
        if direction == "read":
            pcie_delay = self.pcie.dma_h2d_delay(nbytes)  # host -> FPGA
        else:
            pcie_delay = self.pcie.dma_d2h_delay(nbytes)  # FPGA -> host
        return self.env.timeout(translate + max(dram_delay, pcie_delay))

    def requires_staging(self, buffer: BaseBuffer) -> bool:
        return False  # unified memory: the CCLO reaches host pages directly
