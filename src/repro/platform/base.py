"""Platform abstraction: BaseBuffer and BasePlatform.

The host CCL driver "layers the APIs on top of generic class types, such as
BaseBuffer for memory allocation and data movement between host and FPGA,
and BaseDevice for CCLO invocation.  These are specialized to individual
platforms through class inheritance" (§4.2).  Here :class:`BasePlatform`
plays the BaseDevice role as well, since invocation and data movement always
come from the same platform runtime.

Buffers carry an optional numpy array so collectives move *real* values
end-to-end; the timing side charges the owning memory's port and, when the
access crosses PCIe, the PCIe pipes.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, PlatformError
from repro.memory.model import Allocation, Memory
from repro.sim import Environment, Event


class BufferLocation(enum.Enum):
    HOST = "host"
    DEVICE = "device"


class BaseBuffer:
    """A registered communication buffer.

    Args:
        platform: owning platform.
        nbytes: buffer size.
        location: where the backing pages live.
        array: optional numpy array wrapped by this buffer (its ``nbytes``
            must match); collectives read and write it functionally.
    """

    def __init__(
        self,
        platform: "BasePlatform",
        nbytes: int,
        location: BufferLocation,
        array: Optional[np.ndarray] = None,
    ):
        if array is not None and array.nbytes != nbytes:
            raise ConfigurationError(
                f"array of {array.nbytes}B does not match buffer size {nbytes}B"
            )
        self.platform = platform
        self.nbytes = nbytes
        self.location = location
        self.array = array
        self._allocation: Optional[Allocation] = None
        self._freed = False

    @property
    def memory(self) -> Memory:
        """The physical memory backing this buffer."""
        if self._allocation is None:
            raise PlatformError("buffer has no backing allocation")
        return self._allocation.memory

    def free(self) -> None:
        if self._freed:
            raise PlatformError("double free of buffer")
        self._freed = True
        if self._allocation is not None:
            self._allocation.memory.free(self._allocation)

    # -- CCLO-side access (device datapath) --------------------------------

    def device_read(self, nbytes: Optional[int] = None) -> Event:
        """CCLO reads *nbytes* from this buffer (device datapath)."""
        return self.platform.device_access(self, nbytes or self.nbytes, "read")

    def device_write(self, nbytes: Optional[int] = None) -> Event:
        """CCLO writes *nbytes* into this buffer (device datapath)."""
        return self.platform.device_access(self, nbytes or self.nbytes, "write")

    def view(self, offset_bytes: int = 0,
             nbytes: Optional[int] = None) -> "BufferView":
        """A sub-range of this buffer (collectives chunk buffers this way)."""
        return BufferView(self, offset_bytes, nbytes)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.nbytes}B {self.location.value}>"
        )


class BufferView:
    """A byte range inside a :class:`BaseBuffer`.

    Firmware works exclusively in views, so chunked algorithms (ring reduce,
    recursive doubling) address sub-ranges without re-registering memory.
    The numpy side is sliced by element so functional payloads stay aligned
    with the byte range.
    """

    def __init__(self, buffer: BaseBuffer, offset_bytes: int = 0,
                 nbytes: Optional[int] = None):
        nbytes = buffer.nbytes - offset_bytes if nbytes is None else nbytes
        if offset_bytes < 0 or nbytes < 0 or offset_bytes + nbytes > buffer.nbytes:
            raise ConfigurationError(
                f"view [{offset_bytes}, {offset_bytes + nbytes}) outside "
                f"buffer of {buffer.nbytes}B"
            )
        self.buffer = buffer
        self.offset = offset_bytes
        self.nbytes = nbytes

    @property
    def array(self) -> Optional[np.ndarray]:
        """The numpy slice covered by this view (None for timing-only)."""
        whole = self.buffer.array
        if whole is None:
            return None
        itemsize = whole.itemsize
        if self.offset % itemsize or self.nbytes % itemsize:
            raise ConfigurationError(
                f"view [{self.offset}, +{self.nbytes}) not aligned to "
                f"dtype {whole.dtype} ({itemsize}B items)"
            )
        start = self.offset // itemsize
        stop = start + self.nbytes // itemsize
        flat = whole.reshape(-1)
        return flat[start:stop]

    def set_array(self, values: np.ndarray) -> None:
        """Write functional payload into the viewed range.

        Writing a whole view of an array-less buffer materializes the array
        (scratch buffers acquire their dtype from the first payload staged
        into them); partial writes into array-less buffers are timing-only.
        """
        if self.buffer.array is None:
            if self.offset == 0 and self.nbytes == self.buffer.nbytes:
                self.buffer.array = np.array(values).reshape(-1).copy()
            return
        target = self.array
        target[...] = values.reshape(-1)

    def device_read(self, nbytes: Optional[int] = None) -> Event:
        return self.buffer.platform.device_access(
            self.buffer, nbytes if nbytes is not None else self.nbytes, "read"
        )

    def device_write(self, nbytes: Optional[int] = None) -> Event:
        return self.buffer.platform.device_access(
            self.buffer, nbytes if nbytes is not None else self.nbytes, "write"
        )

    def view(self, offset_bytes: int = 0,
             nbytes: Optional[int] = None) -> "BufferView":
        """A sub-view, relative to this view's own range."""
        nbytes = self.nbytes - offset_bytes if nbytes is None else nbytes
        return BufferView(self.buffer, self.offset + offset_bytes, nbytes)

    def __repr__(self) -> str:
        return f"<BufferView +{self.offset} {self.nbytes}B of {self.buffer!r}>"


class BasePlatform:
    """Common platform services; subclasses define memory routing/staging.

    Subclass contract:

    - :meth:`allocate` creates a platform-specific buffer;
    - :meth:`device_access` routes a CCLO access to the right memory/PCIe
      pipes and returns a completion event;
    - :attr:`host_invocation_latency` / :attr:`kernel_invocation_latency`
      calibrate Figure 8;
    - :meth:`requires_staging` says whether host-resident data must be
      migrated before the CCLO can touch it (Vitis yes, Coyote no).
    """

    name = "base"
    host_invocation_latency = 0.0
    kernel_invocation_latency = 0.0

    def __init__(self, env: Environment):
        self.env = env

    # -- memory -----------------------------------------------------------

    def allocate(
        self,
        nbytes: int,
        location: BufferLocation = BufferLocation.DEVICE,
        array: Optional[np.ndarray] = None,
    ) -> BaseBuffer:
        raise NotImplementedError

    def wrap(self, array: np.ndarray,
             location: BufferLocation = BufferLocation.DEVICE) -> BaseBuffer:
        """Wrap a numpy array in a registered buffer (the paper's buffer
        class "can wrap normal C++ arrays")."""
        return self.allocate(array.nbytes, location, array=array)

    def device_access(self, buffer: BaseBuffer, nbytes: int,
                      direction: str) -> Event:
        raise NotImplementedError

    def requires_staging(self, buffer: BaseBuffer) -> bool:
        return False

    def stage_in(self, buffer: BaseBuffer) -> Event:
        """Migrate a host buffer into device memory (no-op by default)."""
        return self.env.timeout(0.0)

    def stage_out(self, buffer: BaseBuffer) -> Event:
        """Migrate a device buffer back to host memory (no-op by default)."""
        return self.env.timeout(0.0)

    # -- invocation ---------------------------------------------------------

    def invoke_from_host(self) -> Event:
        """Cost of the host driver kicking the CCLO and reading back the ack."""
        return self.env.timeout(self.host_invocation_latency)

    def invoke_from_kernel(self) -> Event:
        """Cost of an on-fabric kernel command into the CCLO FIFO."""
        return self.env.timeout(self.kernel_invocation_latency)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"
