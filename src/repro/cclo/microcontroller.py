"""Embedded micro-controller: firmware-driven collective control (§4.4.1).

"The uC firmware implements different collective algorithms and different
synchronization protocols...  the uC provides the high flexibility to
implement different collective algorithms by updating the firmware without
the need to refactorize the whole design and re-synthesize."

In this reproduction a *firmware* is a Python generator registered in a
:class:`FirmwareRegistry` — installing a new collective at runtime is the
analogue of a firmware update (no "re-synthesis" of the engine).  The uC is
a slow sequential core: every coarse control step serializes through a
shared uC-time pipe, while the data movements it launches run in parallel
hardware (DMP, Tx/Rx).  FIFO command queues allow multiple in-flight
commands, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

import numpy as np

from repro.errors import CcloError, CollectiveError
from repro.sim import BandwidthResource, Channel, Environment, Event, all_of
from repro.cclo.config_mem import CommunicatorConfig, ConfigMemory
from repro.cclo.dmp import Microcode, Slot
from repro.cclo.messages import BufferDescriptor, MsgType, Signature


@dataclass
class CollectiveArgs:
    """Arguments of one CCLO command (the MMIO call payload)."""

    opcode: str
    comm_id: int = 0
    nbytes: int = 0
    root: int = 0
    peer: int = -1        # dst rank for send, src rank for recv
    tag: int = 0
    func: str = "sum"     # reduction plugin function
    sbuf: Any = None      # BufferView (source)
    rbuf: Any = None      # BufferView (result)
    from_stream: bool = False
    to_stream: bool = False
    algorithm: Optional[str] = None  # force a specific algorithm
    protocol: Optional[str] = None   # force "eager" or "rndz"
    extra: dict = field(default_factory=dict)
    #: observability correlation id; assigned by the driver (or the uC for
    #: engine-direct calls) when a SpanTracer is attached, -1 otherwise.
    op_id: int = -1


FirmwareFn = Callable[["FirmwareContext", CollectiveArgs], Generator]


class FirmwareRegistry:
    """Opcode/algorithm -> firmware function table (the uC program store).

    A registry may *layer* over a shared read-only parent (the stock
    firmware load-out): lookups fall through to the parent, while
    ``register``/``update`` always write the local table.  Every node in a
    large cluster then carries only its own runtime registrations instead
    of a private copy of the full stock table.
    """

    __slots__ = ("_table", "_parent")

    def __init__(self, parent: Optional["FirmwareRegistry"] = None):
        self._table: Dict[tuple, FirmwareFn] = {}
        self._parent = parent

    def register(self, opcode: str, algorithm: str, fn: FirmwareFn) -> None:
        key = (opcode, algorithm)
        if key in self:
            raise CcloError(f"firmware for {key} already loaded")
        self._table[key] = fn

    def update(self, opcode: str, algorithm: str, fn: FirmwareFn) -> None:
        """Hot-swap firmware (the no-resynthesis flexibility claim)."""
        self._table[(opcode, algorithm)] = fn

    def lookup(self, opcode: str, algorithm: str) -> FirmwareFn:
        key = (opcode, algorithm)
        fn = self._table.get(key)
        if fn is None and self._parent is not None:
            fn = self._parent._table.get(key)
        if fn is None:
            raise CcloError(
                f"no firmware for opcode {opcode!r} algorithm {algorithm!r}"
            )
        return fn

    def algorithms_for(self, opcode: str) -> list:
        keys = set(self._table)
        if self._parent is not None:
            keys.update(self._parent._table)
        return sorted(alg for (op, alg) in keys if op == opcode)

    def __contains__(self, key: tuple) -> bool:
        if key in self._table:
            return True
        return self._parent is not None and key in self._parent._table


class FirmwareContext:
    """Primitives available to collective firmware.

    Every primitive that *launches* data movement returns an event so the
    firmware can overlap operations (issue all sends, then wait).  Control
    steps charge the shared uC-time pipe, modeling the sequential core.
    """

    def __init__(self, uc: "MicroController", args: CollectiveArgs):
        self.uc = uc
        self.engine = uc.engine
        self.env = uc.env
        self.args = args
        self.comm: CommunicatorConfig = uc.config_mem.communicator(args.comm_id)
        self._tag_base = args.tag

    # -- identity helpers ------------------------------------------------------

    @property
    def rank(self) -> int:
        return self.comm.local_rank

    @property
    def size(self) -> int:
        return self.comm.size

    def tag(self, phase: int = 0) -> int:
        """Derive per-phase tags so concurrent phases never cross-match."""
        return self._tag_base + phase

    # -- uC costs ----------------------------------------------------------------

    def cost(self, instructions: int = 1) -> float:
        """Charge sequential uC time for *instructions* coarse steps.

        Returns a plain delay for the firmware to ``yield`` — the kernel's
        allocation-free sleep path.
        """
        span_complete = self.engine._span_complete
        if span_complete is None:
            return self.uc.charge(instructions)
        # Record-only split of the charge: the pipe backlog before our
        # instructions start is a uc_dispatch wait (another command holds
        # the sequential core), the rest is our own execution.
        queued_until = self.uc._uc_time.busy_until()
        delay = self.uc.charge(instructions)
        if delay > 0:
            now = self.env.now
            comp = f"{self.engine.name}.uc"
            if queued_until > now:
                span_complete(comp, "wait:uc_dispatch", now, queued_until,
                              phase="wait", op_id=self.args.op_id,
                              cause="uc_dispatch")
            span_complete(comp, "step", queued_until, now + delay,
                          phase="uc", op_id=self.args.op_id)
        return delay

    def _wait_span(self, t0: float, cause: str, **detail) -> None:
        """Record a blocking interval ``[t0, now]`` with its cause."""
        span_complete = self.engine._span_complete
        if span_complete is None:
            return
        now = self.env.now
        if now > t0:
            span_complete(f"{self.engine.name}.uc", f"wait:{cause}", t0, now,
                          phase="wait", op_id=self.args.op_id, cause=cause,
                          **detail)

    def _issue(self, mc: Microcode) -> Event:
        """Issue DMP microcode stamped with this command's op id."""
        mc.op_id = self.args.op_id
        return self.engine.dmp.issue(mc)

    # -- protocol selection --------------------------------------------------------

    def protocol_for(self, nbytes: int) -> str:
        """Eager/rendezvous decision for one message."""
        if self.args.protocol is not None:
            return self.args.protocol
        if self.comm.protocol != "rdma":
            return "eager"  # TCP/UDP have no WRITE verb for rendezvous
        params = self.uc.config_mem.params
        return "eager" if nbytes <= params.eager_max_bytes else "rndz"

    # -- point-to-point primitives ----------------------------------------------------

    def send(self, dst_rank: int, source: Any, nbytes: int, tag: int,
             protocol: Optional[str] = None,
             codec: Optional[str] = None) -> Event:
        """Send *nbytes* to *dst_rank*; source is a view or ``None``+stream.

        ``codec="fp16"`` compresses fp32 payloads to half the wire bytes
        through the unary streaming plugin (eager protocol only).
        """
        protocol = self._codec_protocol(codec, protocol, nbytes)
        return self.env.process(
            self._send_proc(dst_rank, source, nbytes, tag, protocol, codec),
            name=f"uc{self.rank}.send",
        )

    def recv(self, src_rank: int, dest: Any, nbytes: int, tag: int,
             protocol: Optional[str] = None,
             codec: Optional[str] = None) -> Event:
        """Receive *nbytes* from *src_rank* into a view or the kernel stream."""
        protocol = self._codec_protocol(codec, protocol, nbytes)
        return self.env.process(
            self._recv_proc(src_rank, dest, nbytes, tag, protocol, codec),
            name=f"uc{self.rank}.recv",
        )

    def _codec_protocol(self, codec: Optional[str], protocol: Optional[str],
                        nbytes: int) -> str:
        if codec is None:
            return protocol or self.protocol_for(nbytes)
        if codec != "fp16":
            raise CollectiveError(f"unknown wire codec {codec!r}")
        if (protocol or self.args.protocol) == "rndz":
            raise CollectiveError(
                "wire codecs run in the eager datapath; rendezvous WRITEs "
                "bypass the streaming plugins"
            )
        return "eager"

    def recv_reduce(self, src_rank: int, acc: Any, nbytes: int, tag: int,
                    func: str, protocol: Optional[str] = None) -> Event:
        """Receive and fold into *acc* through the binary plugin."""
        protocol = protocol or self.protocol_for(nbytes)
        return self.env.process(
            self._recv_reduce_proc(src_rank, acc, nbytes, tag, func, protocol),
            name=f"uc{self.rank}.recv_reduce",
        )

    def copy(self, src_view: Any, dst_view: Any, nbytes: int) -> Event:
        """Local memory-to-memory copy through the data plane."""
        mc = Microcode(
            nbytes=nbytes,
            op0=Slot.memory(src_view),
            res=Slot.memory(dst_view),
        )
        return self._issue(mc)

    def reduce_local(self, func: str, a_view: Any, b_view: Any,
                     dst_view: Any, nbytes: int) -> Event:
        """dst = a (op) b, all local, through the plugin."""
        mc = Microcode(
            nbytes=nbytes,
            op0=Slot.memory(a_view),
            op1=Slot.memory(b_view),
            res=Slot.memory(dst_view),
            func=func,
        )
        return self._issue(mc)

    def stream_to_memory(self, dst_view: Any, nbytes: int) -> Event:
        """Drain the kernel stream into memory (staging for MPI-like ops)."""
        mc = Microcode(
            nbytes=nbytes, op0=Slot.stream(), res=Slot.memory(dst_view)
        )
        return self._issue(mc)

    def memory_to_stream(self, src_view: Any, nbytes: int) -> Event:
        mc = Microcode(
            nbytes=nbytes, op0=Slot.memory(src_view), res=Slot.stream()
        )
        return self._issue(mc)

    def wait_all(self, events) -> Event:
        return all_of(self.env, list(events))

    # -- internals ----------------------------------------------------------------------

    def _source_slot(self, source: Any, nbytes: int) -> Slot:
        if nbytes == 0:
            return Slot.immediate(None)  # pure synchronization message
        if source is None:
            return Slot.stream()
        return Slot.memory(source)

    def _dest_slot(self, dest: Any, nbytes: int) -> Slot:
        if nbytes == 0:
            return Slot.none()
        if dest is None:
            return Slot.stream()
        return Slot.memory(dest)

    def _send_proc(self, dst_rank: int, source: Any, nbytes: int, tag: int,
                   protocol: str, codec: Optional[str] = None):
        if dst_rank == self.rank:
            raise CollectiveError("send to self is not a network operation")
        yield self.cost()
        dest_addr = self.comm.address_of(dst_rank)
        if protocol == "rndz":
            # Wait for the receiver's buffer-address resolution (arrow 3).
            t_wait = self.env.now
            init_sig = yield self.engine.rx.rndz_init.wait(
                (self.args.comm_id, dst_rank, tag)
            )
            self._wait_span(t_wait, "rendezvous", peer=dst_rank, side="send")
            descriptor = init_sig.payload_meta
            signature = Signature(
                comm_id=self.args.comm_id, src_rank=self.rank,
                dst_rank=dst_rank, msg_type=MsgType.RNDZ_MSG,
                nbytes=nbytes, tag=tag, op_id=self.args.op_id,
            )
            mc = Microcode(
                nbytes=nbytes,
                op0=self._source_slot(source, nbytes),
                res=Slot.tx_write(signature, dest_addr, descriptor),
            )
        else:
            wire_bytes = nbytes // 2 if codec == "fp16" else nbytes
            signature = Signature(
                comm_id=self.args.comm_id, src_rank=self.rank,
                dst_rank=dst_rank, msg_type=MsgType.EAGER,
                nbytes=wire_bytes, tag=tag, op_id=self.args.op_id,
            )
            mc = Microcode(
                nbytes=nbytes,
                op0=self._source_slot(source, nbytes),
                res=Slot.tx_eager(signature, dest_addr),
                func="to_fp16" if codec == "fp16" else None,
            )
        yield self._issue(mc)

    def _recv_proc(self, src_rank: int, dest: Any, nbytes: int, tag: int,
                   protocol: str, codec: Optional[str] = None):
        if src_rank == self.rank:
            raise CollectiveError("recv from self is not a network operation")
        yield self.cost()
        if protocol == "rndz":
            yield from self._recv_rndz(src_rank, dest, nbytes, tag)
        else:
            mc = Microcode(
                nbytes=nbytes,
                op0=Slot.rx_eager(self.args.comm_id, src_rank, tag),
                res=self._dest_slot(dest, nbytes),
                func="from_fp16" if codec == "fp16" else None,
            )
            yield self._issue(mc)

    def _recv_rndz(self, src_rank: int, dest: Any, nbytes: int, tag: int):
        """Rendezvous receive: resolve the buffer, await WRITE + DONE."""
        target_id = self.engine.register_rndz_target(dest, nbytes)
        descriptor = BufferDescriptor(
            node_addr=self.engine.address, target_id=target_id,
            nbytes=nbytes, op_id=self.args.op_id,
        )
        init = Signature(
            comm_id=self.args.comm_id, src_rank=self.rank, dst_rank=src_rank,
            msg_type=MsgType.RNDZ_INIT, nbytes=0, tag=tag,
            payload_meta=descriptor, op_id=self.args.op_id,
        )
        # uC issues the Tx control with the result address (arrow 2).
        yield self.engine.tx.send_control(
            init, self.comm.address_of(src_rank)
        )
        t_wait = self.env.now
        yield self.engine.rx.rndz_done.wait(
            (self.args.comm_id, src_rank, tag)
        )
        entry = self.engine.claim_rndz_target(target_id)
        yield entry["written"]
        self._wait_span(t_wait, "rendezvous", peer=src_rank, side="recv")
        return entry.get("data")

    def _recv_reduce_proc(self, src_rank: int, acc: Any, nbytes: int,
                          tag: int, func: str, protocol: str):
        if src_rank == self.rank:
            raise CollectiveError("recv from self is not a network operation")
        yield self.cost()
        if protocol == "rndz":
            # Data lands in a scratch region via WRITE; then fold locally.
            scratch = self.engine.scratch_alloc(nbytes)
            try:
                data = yield self.env.process(
                    self._recv_rndz(src_rank, scratch.view(), nbytes, tag)
                )
                if data is not None:
                    # Expose the landed payload to the local reduce below.
                    scratch.array = np.asarray(data).reshape(-1)
                mc = Microcode(
                    nbytes=nbytes,
                    op0=Slot.memory(scratch.view()),
                    op1=Slot.memory(acc),
                    res=Slot.memory(acc),
                    func=func,
                )
                yield self._issue(mc)
            finally:
                self.engine.scratch_free(scratch)
        else:
            mc = Microcode(
                nbytes=nbytes,
                op0=Slot.rx_eager(self.args.comm_id, src_rank, tag),
                op1=Slot.memory(acc),
                res=Slot.memory(acc),
                func=func,
            )
            yield self._issue(mc)


class MicroController:
    """Sequential command dispatcher over the firmware registry."""

    def __init__(self, env: Environment, config_mem: ConfigMemory, engine,
                 registry: Optional[FirmwareRegistry] = None,
                 name: str = "uc"):
        self.env = env
        self.config_mem = config_mem
        self.config = config_mem.config
        self.engine = engine
        self.registry = registry or FirmwareRegistry()
        self.name = name
        self.commands = Channel(env, name=f"{name}.cmds")
        # Sequential core: firmware steps across all in-flight commands
        # serialize through this pipe (1 "byte" == 1 instruction).
        self._uc_time = BandwidthResource(
            env,
            rate_bytes_per_s=self.config.clock_hz / self.config.uc_instr_cycles,
            name=f"{name}.time",
        )
        self.commands_executed = 0
        env.process(self._dispatch_loop(), name=f"{name}.loop")

    def charge(self, instructions: int = 1) -> float:
        """Reserve sequential uC execution time; returns a yieldable delay."""
        done = self._uc_time.reserve(instructions)
        return done - self.env.now

    def call(self, args: CollectiveArgs) -> Event:
        """Enqueue a command; the event fires when its firmware finishes."""
        completion = Event(self.env)
        self.commands.try_put((args, completion, self.env.now))
        return completion

    def _dispatch_loop(self):
        dispatch_instrs = max(
            1, self.config.uc_dispatch_cycles // self.config.uc_instr_cycles
        )
        engine = self.engine
        while True:
            args, completion, enq_t = yield self.commands.get()
            # Everything between enqueue and the start of our dispatch
            # charge is serialization behind other commands: time spent in
            # the FIFO plus the uC-time pipe's existing backlog.
            queued_until = self._uc_time.busy_until()
            yield self.charge(dispatch_instrs)
            self.engine.trace("uc", "dispatch", opcode=args.opcode,
                              nbytes=args.nbytes, tag=args.tag)
            self.commands_executed += 1
            # Engine-direct calls bypass the driver; open the op's root
            # collective span here so phase attribution still has a frame.
            root_sid = -1
            if engine._span_tracer is not None:
                if args.op_id < 0:
                    args.op_id = engine.next_op_id()
                    root_sid = engine._span_begin(
                        enq_t, f"{engine.name}.uc",
                        f"collective:{args.opcode}", phase="collective",
                        op_id=args.op_id, nbytes=args.nbytes)
                if queued_until > enq_t:
                    engine.span_complete(
                        "uc", "wait:uc_dispatch", enq_t, queued_until,
                        phase="wait", op_id=args.op_id, cause="uc_dispatch",
                        opcode=args.opcode)
                engine.span_complete("uc", "dispatch", queued_until,
                                     self.env.now, phase="uc",
                                     op_id=args.op_id, opcode=args.opcode)
            if args.opcode == "nop":
                engine.span_end(root_sid)
                completion.succeed(None)
                continue
            fn = self._resolve_firmware(args)
            ctx = FirmwareContext(self, args)
            fw = self.env.process(
                fn(ctx, args), name=f"{self.name}.{args.opcode}"
            )
            fw.add_callback(self._complete_cb(completion, root_sid, engine))

    def _resolve_firmware(self, args: CollectiveArgs) -> FirmwareFn:
        algorithm = args.algorithm
        if algorithm is None:
            comm = self.config_mem.communicator(args.comm_id)
            algorithm = self.engine.selector.choose(
                args, comm, self.config_mem.params
            )
            args.algorithm = algorithm
        return self.registry.lookup(args.opcode, algorithm)

    @staticmethod
    def _complete_cb(completion: Event, root_sid: int = -1, engine=None):
        def cb(fw_event: Event):
            if root_sid >= 0:
                engine.span_end(root_sid)
            if fw_event.ok:
                completion.succeed(fw_event.value)
            else:
                fw_event.defuse()
                completion.fail(fw_event.value)

        return cb

    def register_metrics(self, registry, **labels) -> None:
        """Callback gauges over the uC's live counters (zero hot-path cost)."""
        registry.gauge("uc_commands_executed",
                       fn=lambda: float(self.commands_executed), **labels)
        self._uc_time.register_metrics(registry, name="uc_pipe", **labels)
