"""The CCLO-internal network on chip (§4.4.2).

"All the data streams internal to the CCLO can be routed in packets based on
the dest field that comes along with the data."

The NoC is the shared internal datapath: every stream between blocks
(memory <-> plugin <-> Tx/Rx <-> kernel streams) crosses it, so it is where
the 64 B/cycle clock-rate ceiling binds.  Routing is dest-field based over a
registered port table; a transfer charges the shared stream bandwidth plus a
per-hop pipeline latency.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import CcloError
from repro.sim import BandwidthResource, Environment, Event
from repro.cclo.config_mem import CcloConfig


class NoC:
    """Dest-routed internal stream fabric of one CCLO instance."""

    def __init__(self, env: Environment, config: CcloConfig, name: str = "noc"):
        self.env = env
        self.config = config
        self.name = name
        self._stream = BandwidthResource(
            env, config.datapath_rate, name=f"{name}.stream"
        )
        self._ports: Dict[str, int] = {}
        self.transfers = 0

    def register_port(self, port: str) -> int:
        """Register a block's stream port; returns its dest field value."""
        if port in self._ports:
            raise CcloError(f"NoC port {port!r} already registered")
        dest = len(self._ports)
        self._ports[port] = dest
        return dest

    def dest_of(self, port: str) -> int:
        try:
            return self._ports[port]
        except KeyError:
            raise CcloError(f"unknown NoC port {port!r}") from None

    @property
    def bytes_routed(self) -> int:
        return self._stream.bytes_moved

    def route(self, src_port: str, dst_port: str, nbytes: int) -> Event:
        """Move *nbytes* from one block to another through the crossbar."""
        # Validating both ports catches wiring mistakes at simulation time
        # the way elaboration would in hardware.
        self.dest_of(src_port)
        self.dest_of(dst_port)
        if nbytes < 0:
            raise CcloError(f"negative NoC transfer: {nbytes}")
        self.transfers += 1
        hop = self.config.cycles(self.config.noc_hop_cycles)
        done = self._stream.reserve(nbytes) + hop
        return self.env.timeout(done - self.env.now, value=nbytes)

    def route_time(self, nbytes: int) -> float:
        """Analytic cost of a route if issued now."""
        return (
            self._stream.occupancy_delay(nbytes)
            + self.config.cycles(self.config.noc_hop_cycles)
        )

    def __repr__(self) -> str:
        return f"<NoC {self.name!r} ports={list(self._ports)}>"
