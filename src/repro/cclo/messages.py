"""The ACCL+ lightweight message protocol (§4.4.2).

"Each message consists of a signature and a payload...  The signature
contains the rank IDs of the message, message type, source and destination,
message length, tag, a sequence number which is used to keep track of the
order of the messages and other meta information."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

SIGNATURE_BYTES = 64
"""Wire size of the signature header prepended by the Tx system."""

ANY_TAG = -1
"""Wildcard tag for matching."""


class MsgType(enum.Enum):
    """Message types carried in the signature."""

    EAGER = "eager"          # eager payload, lands in an Rx buffer
    RNDZ_INIT = "rndz_init"  # receiver -> sender: result buffer resolved
    RNDZ_MSG = "rndz_msg"    # the rendezvous payload (RDMA WRITE)
    RNDZ_DONE = "rndz_done"  # sender -> receiver: WRITE completed
    STREAM = "stream"        # payload destined to a kernel stream


@dataclass
class Signature:
    """Per-message header inserted by the Tx system, parsed by Rx."""

    comm_id: int
    src_rank: int
    dst_rank: int
    msg_type: MsgType
    nbytes: int
    tag: int = 0
    seqno: int = 0
    payload_meta: Any = None  # e.g. a BufferDescriptor for RNDZ_INIT
    #: observability correlation id of the issuing collective (-1 = untraced)
    op_id: int = -1

    def match_key(self) -> tuple:
        """Key the receive side matches on: (comm, source, tag)."""
        return (self.comm_id, self.src_rank, self.tag)

    def __repr__(self) -> str:
        return (
            f"<Sig {self.msg_type.value} c{self.comm_id} "
            f"r{self.src_rank}->r{self.dst_rank} {self.nbytes}B tag={self.tag}>"
        )


@dataclass
class BufferDescriptor:
    """Names a registered destination buffer for one-sided WRITEs.

    Carried inside RNDZ_INIT so the sender's RDMA WRITE can target the
    receiver's result buffer directly (zero copy on the passive side).
    """

    node_addr: int
    target_id: int
    nbytes: int
    #: observability correlation id of the receiving collective; rides the
    #: descriptor so the WRITE's wire time attributes to the recv it feeds.
    op_id: int = -1

    def __repr__(self) -> str:
        return f"<BufDesc node={self.node_addr} id={self.target_id} {self.nbytes}B>"
