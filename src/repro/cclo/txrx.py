"""Tx and Rx systems: the CCLO's data-plane frontends (§4.4.2).

"The Tx and Rx systems are responsible for packetizing and depacketizing the
signature along with user payload, and they issue commands to interact with
the POEs.  The command issuing, signature insertion, and parsing processes
can vary for different synchronization protocols.  Both the Rx and Tx
systems incorporate a finite state machine to respond appropriately to these
variations."
"""

from __future__ import annotations

from typing import Any

from repro.errors import CcloError
from repro.protocols.base import BasePoe, MessageHeader
from repro.protocols.rdma import RdmaPoe
from repro.sim import Environment, Event
from repro.cclo.config_mem import CcloConfig
from repro.cclo.match import MatchTable
from repro.cclo.messages import (
    BufferDescriptor,
    MsgType,
    Signature,
    SIGNATURE_BYTES,
)
from repro.cclo.rbm import RxBufManager


class TxSystem:
    """Packetizes signatures onto POE streams and drives send-side verbs."""

    def __init__(self, env: Environment, config: CcloConfig, poe: BasePoe,
                 name: str = "tx"):
        self.env = env
        self.config = config
        self.poe = poe
        self.name = name
        self.messages_sent = 0

    def _fsm(self) -> float:
        # Yielded directly by the send processes: a plain float takes the
        # kernel's allocation-free sleep path.
        return self.config.cycles(self.config.txrx_fsm_cycles)

    def send_eager(self, signature: Signature, dest_addr: int,
                   data: Any = None, pace: Any = None) -> Event:
        """EAGER_MSG / STREAM: signature header + payload via SEND path."""
        return self.env.process(
            self._send_eager(signature, dest_addr, data, pace),
            name=f"{self.name}.eager",
        )

    def _send_eager(self, signature: Signature, dest_addr: int, data: Any,
                    pace: Any = None):
        yield self._fsm()
        self.messages_sent += 1
        yield self.poe.send_message(
            dest_addr,
            signature.nbytes + SIGNATURE_BYTES,
            meta=signature,
            data=data,
            pace=pace,
        )
        return signature

    def send_control(self, signature: Signature, dest_addr: int) -> Event:
        """Small control message (RNDZ_INIT / RNDZ_DONE) via two-sided SEND."""
        return self.env.process(
            self._send_control(signature, dest_addr),
            name=f"{self.name}.ctrl",
        )

    def _send_control(self, signature: Signature, dest_addr: int):
        yield self._fsm()
        self.messages_sent += 1
        yield self.poe.send_message(dest_addr, SIGNATURE_BYTES, meta=signature)
        return signature

    def send_write(self, signature: Signature, dest_addr: int,
                   descriptor: BufferDescriptor, data: Any = None,
                   pace: Any = None) -> Event:
        """RNDZ_MSG: one-sided RDMA WRITE, then RNDZ_DONE via SEND.

        The returned event fires once the DONE has been handed to the wire
        — the paper's "Once the RDMA WRITE is complete, the Tx System issues
        an RDZV_DONE message with RDMA SEND".
        """
        if not isinstance(self.poe, RdmaPoe):
            raise CcloError(
                "rendezvous WRITE path requires the RDMA POE; "
                f"this CCLO is built with {self.poe.protocol_name!r}"
            )
        return self.env.process(
            self._send_write(signature, dest_addr, descriptor, data, pace),
            name=f"{self.name}.write",
        )

    def _send_write(self, signature: Signature, dest_addr: int,
                    descriptor: BufferDescriptor, data: Any,
                    pace: Any = None):
        yield self._fsm()
        self.messages_sent += 1
        yield self.poe.post_write(
            dest_addr, signature.nbytes, remote_descriptor=descriptor,
            data=data, pace=pace,
        )
        done_sig = Signature(
            comm_id=signature.comm_id,
            src_rank=signature.src_rank,
            dst_rank=signature.dst_rank,
            msg_type=MsgType.RNDZ_DONE,
            nbytes=0,
            tag=signature.tag,
            seqno=signature.seqno,
            op_id=signature.op_id,
        )
        yield self.poe.send_message(dest_addr, SIGNATURE_BYTES, meta=done_sig)
        return signature

    def register_metrics(self, registry, **labels) -> None:
        registry.gauge("tx_messages_sent",
                       fn=lambda: float(self.messages_sent), **labels)


class RxSystem:
    """Parses inbound signatures and routes them to RBM / uC / streams."""

    def __init__(
        self,
        env: Environment,
        config: CcloConfig,
        rbm: RxBufManager,
        name: str = "rx",
    ):
        self.env = env
        self.config = config
        self.rbm = rbm
        self.name = name
        #: RNDZ_INIT notifications for the uC send path (paper's arrow 3)
        self.rndz_init = MatchTable(env, name=f"{name}.rndz_init")
        #: RNDZ_DONE notifications completing rendezvous receives
        self.rndz_done = MatchTable(env, name=f"{name}.rndz_done")
        #: completed STREAM-type messages for stream-destined receives
        self.stream_msgs = MatchTable(env, name=f"{name}.stream")
        self.messages_received = 0
        #: ACCL-v1 hook: set by the engine to the uC's charge function so
        #: per-packet receive work serializes through the micro-processor.
        self.uc_charge = None
        #: the uC-time pipe behind ``uc_charge`` (for wait attribution)
        self.uc_pipe = None
        # Span hook (None = disabled): bound by the engine's attach_tracer.
        self._span_complete = None
        self._trace_node = name

    def handle(self, header: MessageHeader, data: Any) -> None:
        """POE delivery callback: depacketize and dispatch by message type."""
        signature = header.meta
        if not isinstance(signature, Signature):
            raise CcloError(
                f"{self.name}: inbound message without an ACCL+ signature "
                f"(meta={signature!r})"
            )
        self.messages_received += 1
        fsm = self.config.cycles(self.config.txrx_fsm_cycles)
        if self.config.uc_rx_instr_per_kib and self.uc_charge is not None:
            # ACCL-v1 configuration: the uC assembles inbound packets itself,
            # so receive handling serializes through the slow sequential core.
            instructions = max(
                1,
                (signature.nbytes // 1024) * self.config.uc_rx_instr_per_kib,
            )

            def uc_handled():
                yield fsm
                span_complete = self._span_complete
                if span_complete is not None and self.uc_pipe is not None:
                    t_q = self.env.now
                    queued_until = self.uc_pipe.busy_until()
                    yield self.uc_charge(instructions)
                    now = self.env.now
                    comp = f"{self._trace_node}.rx"
                    if queued_until > t_q:
                        span_complete(comp, "wait:uc_dispatch", t_q,
                                      queued_until, phase="wait",
                                      op_id=signature.op_id,
                                      cause="uc_dispatch")
                    if now > queued_until:
                        span_complete(comp, "uc_rx", queued_until, now,
                                      phase="uc", op_id=signature.op_id,
                                      nbytes=signature.nbytes)
                else:
                    yield self.uc_charge(instructions)
                self._dispatch(signature, data)

            self.env.process(uc_handled(), name=f"{self.name}.uc_rx")
        else:
            self.env.schedule_callback(fsm, self._dispatch, signature, data)

    def _dispatch(self, signature: Signature, data: Any) -> None:
        kind = signature.msg_type
        if kind is MsgType.EAGER:
            self.rbm.handle_incoming(signature, data)
        elif kind is MsgType.STREAM:
            self.stream_msgs.post(signature.match_key(), (signature, data))
        elif kind is MsgType.RNDZ_INIT:
            self.rndz_init.post(signature.match_key(), signature)
        elif kind is MsgType.RNDZ_DONE:
            self.rndz_done.post(signature.match_key(), signature)
        else:
            raise CcloError(f"{self.name}: unhandled message type {kind}")

    def register_metrics(self, registry, **labels) -> None:
        registry.gauge("rx_messages_received",
                       fn=lambda: float(self.messages_received), **labels)
