"""The CCLO engine: ACCL+'s collective offload engine (§4.4).

Architecture mirrors Figure 5 of the paper:

- **control plane** (flexible): :class:`MicroController` running swappable
  firmware, a :class:`DataMovementProcessor` executing 3-slot microcode, and
  an :class:`RxBufManager` for eager-protocol buffering — states live in
  :class:`ConfigMemory` (host-visible).
- **data plane** (parallel): :class:`TxSystem` / :class:`RxSystem`
  packetizing the lightweight message :class:`Signature`, an internal
  :class:`NoC` for dest-routed streams, and streaming :class:`PluginRegistry`
  arithmetic for in-flight reductions.

:class:`CcloEngine` composes the blocks on top of a platform and a POE.
"""

from repro.cclo.messages import (
    BufferDescriptor,
    MsgType,
    Signature,
    SIGNATURE_BYTES,
)
from repro.cclo.config_mem import CcloConfig, CommunicatorConfig, ConfigMemory
from repro.cclo.match import MatchTable
from repro.cclo.plugins import PluginRegistry
from repro.cclo.noc import NoC
from repro.cclo.rbm import RxBufManager, RxRecord
from repro.cclo.txrx import RxSystem, TxSystem
from repro.cclo.dmp import DataMovementProcessor, Microcode, Slot, SlotKind
from repro.cclo.microcontroller import (
    CollectiveArgs,
    FirmwareContext,
    FirmwareRegistry,
    MicroController,
)
from repro.cclo.engine import CcloEngine

__all__ = [
    "BufferDescriptor",
    "MsgType",
    "Signature",
    "SIGNATURE_BYTES",
    "CcloConfig",
    "CommunicatorConfig",
    "ConfigMemory",
    "MatchTable",
    "PluginRegistry",
    "NoC",
    "RxBufManager",
    "RxRecord",
    "RxSystem",
    "TxSystem",
    "DataMovementProcessor",
    "Microcode",
    "Slot",
    "SlotKind",
    "CollectiveArgs",
    "FirmwareContext",
    "FirmwareRegistry",
    "MicroController",
    "CcloEngine",
]
