"""CCLO configuration memory (§4.4.1).

"The uC, DMP, and RBM store states in a small configuration memory
implemented as FPGA BRAM.  The configuration memory is also accessible by
the CPU through MMIO and includes information about the communicator, e.g.,
session or queue pair IDs, pool of allocated Rx buffers."

Runtime-tunable algorithm parameters also live here — "the tuning of the
algorithms for specific collectives can be done at runtime by setting
configuration parameters to the CCLO engine" (§4.4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro import units


@dataclass
class CcloConfig:
    """Compile-time-equivalent hardware parameters of one CCLO instance."""

    clock_hz: float = 250e6
    datapath_bytes_per_cycle: int = 64
    #: uC cycles to accept a command and dispatch firmware.  ACCL+'s uC
    #: issues only coarse-grained commands with FIFO-decoupled hardware
    #: blocks doing the real work, so dispatch stays lean (the v1 engine,
    #: which does per-packet work on the uC, overrides these upward).
    uc_dispatch_cycles: int = 150
    #: uC cycles per coarse firmware control step
    uc_instr_cycles: int = 50
    #: DMP pipeline fill per microcode
    dmp_pipeline_cycles: int = 60
    #: Tx/Rx FSM handling per message
    txrx_fsm_cycles: int = 40
    #: NoC hop latency in cycles
    noc_hop_cycles: int = 8
    #: eager Rx buffer pool
    rx_pool_bytes: int = 64 * units.MIB
    rx_max_messages: int = 256
    #: streaming plugins compiled in ("sum", "max", ... or empty to strip);
    #: the fp16 pair implements the wire codec (unary compression, §4.4.2)
    plugins: tuple = ("sum", "max", "min", "prod", "to_fp16", "from_fp16")
    #: maximum concurrently executing microcodes in the DMP
    dmp_parallel_slots: int = 4
    #: ACCL-v1 mode: uC instructions charged per KiB of inbound payload
    #: (packet assembling on the micro-processor instead of the RBM).
    #: 0 = ACCL+ behaviour (RBM offload, no uC involvement per packet).
    uc_rx_instr_per_kib: int = 0
    #: Payload fidelity: ``"functional"`` moves real numpy payloads through
    #: the data plane (collective results are verifiable); ``"counted"``
    #: moves byte-counts only — every copy/materialization is elided while
    #: all timing charges stay byte-identical.  Throughput/latency sweeps
    #: that never check payload contents can run counted.
    payload_mode: str = "functional"

    def __post_init__(self):
        if self.payload_mode not in ("functional", "counted"):
            raise ConfigurationError(
                f"unknown payload_mode {self.payload_mode!r}; "
                "expected 'functional' or 'counted'"
            )

    def cycles(self, n: int) -> float:
        """n clock cycles in seconds at this instance's clock."""
        return n / self.clock_hz

    @classmethod
    def functional(cls) -> "CcloConfig":
        """The paper's *functional* simulation level: validate collective
        logic with negligible hardware latencies (vs the default calibrated
        'cycle-approximate' level)."""
        return cls(
            clock_hz=1e12,
            uc_dispatch_cycles=1,
            uc_instr_cycles=1,
            dmp_pipeline_cycles=0,
            txrx_fsm_cycles=0,
            noc_hop_cycles=0,
        )

    @property
    def datapath_rate(self) -> float:
        """Internal stream bandwidth in bytes/s (64 B/cycle at the clock)."""
        return self.datapath_bytes_per_cycle * self.clock_hz


@dataclass
class CommunicatorConfig:
    """One communicator: the rank -> fabric address map plus session ids."""

    comm_id: int
    local_rank: int
    addresses: List[int]  # rank -> endpoint address
    protocol: str = "rdma"  # "rdma" | "tcp" | "udp"
    session_ids: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        if not 0 <= self.local_rank < len(self.addresses):
            raise ConfigurationError(
                f"local rank {self.local_rank} outside communicator of "
                f"size {len(self.addresses)}"
            )
        if len(set(self.addresses)) != len(self.addresses):
            raise ConfigurationError("duplicate addresses in communicator")
        if self.protocol not in ("rdma", "tcp", "udp"):
            raise ConfigurationError(f"unknown protocol {self.protocol!r}")

    @property
    def size(self) -> int:
        return len(self.addresses)

    def address_of(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise ConfigurationError(
                f"rank {rank} outside communicator of size {self.size}"
            )
        return self.addresses[rank]


@dataclass
class AlgorithmParams:
    """Runtime-settable thresholds steering algorithm selection (Table 1)."""

    #: below this, rendezvous bcast keeps one-to-all; above, recursive doubling
    bcast_one_to_all_max_ranks: int = 4
    #: below this byte count, reduce/gather use all-to-one; above, binary tree
    tree_threshold_bytes: int = 64 * units.KIB
    #: eager/rendezvous switch for RDMA point-to-point.  Kept below 8 KiB so
    #: the Fig 12 operating points (8 KB -> all-to-one, 128 KB -> binary
    #: tree) run in rendezvous mode, as in the paper.
    eager_max_bytes: int = 4 * units.KIB


class ConfigMemory:
    """BRAM-resident state shared by uC, DMP and RBM; MMIO-visible."""

    def __init__(self, config: Optional[CcloConfig] = None):
        self.config = config or CcloConfig()
        self.communicators: Dict[int, CommunicatorConfig] = {}
        self.params = AlgorithmParams()

    def add_communicator(self, comm: CommunicatorConfig) -> None:
        if comm.comm_id in self.communicators:
            raise ConfigurationError(
                f"communicator {comm.comm_id} already configured"
            )
        self.communicators[comm.comm_id] = comm

    def communicator(self, comm_id: int) -> CommunicatorConfig:
        try:
            return self.communicators[comm_id]
        except KeyError:
            raise ConfigurationError(
                f"communicator {comm_id} not configured"
            ) from None
