"""Streaming plugins: in-flight unary/binary operators (§4.4.2).

"Binary operations are typically utilized to implement reductions — sum,
max, etc.  Unary operators may implement compression or encryption.  Each of
the plug-ins is a streaming kernel and may implement more than one function,
in which case the control plane will specify the desired function by setting
the dest field of the plugin input stream."

Plugins are *compile-time* selections: a CCLO built without the reduction
plugin cannot execute reduce (and saves the resources — the DLRM use case
strips it from non-reducing nodes with a compilation flag, §6.1).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

import numpy as np

from repro.errors import CcloError

_BINARY_FUNCTIONS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": np.maximum,
    "min": np.minimum,
}

_UNARY_FUNCTIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "identity": lambda a: a,
    "negate": lambda a: -a,
    # A toy "compression" codec: downcast to float16 and back; exercises the
    # unary plugin path the paper mentions for compression/encryption.
    "compress_fp16": lambda a: a.astype(np.float16).astype(a.dtype),
    # The wire codec pair: fp32 payloads travel as fp16, halving wire bytes
    # at the cost of precision (see FirmwareContext.send(codec="fp16")).
    "to_fp16": lambda a: np.asarray(a).astype(np.float16),
    "from_fp16": lambda a: np.asarray(a).astype(np.float32),
}


class PluginRegistry:
    """The set of streaming operators compiled into one CCLO instance."""

    def __init__(self, enabled: Iterable[str] = ("sum", "max", "min", "prod")):
        self.enabled = tuple(enabled)
        unknown = [
            f for f in self.enabled
            if f not in _BINARY_FUNCTIONS and f not in _UNARY_FUNCTIONS
        ]
        if unknown:
            raise CcloError(f"unknown plugin functions: {unknown}")
        self.invocations = 0

    def has(self, func: str) -> bool:
        return func in self.enabled

    def apply_binary(self, func: str, a: Optional[np.ndarray],
                     b: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """Apply a binary operator to two in-flight streams.

        Either operand may be ``None`` (timing-only simulation without a
        functional payload); the result is then ``None`` too.
        """
        if func not in _BINARY_FUNCTIONS:
            raise CcloError(f"{func!r} is not a binary plugin function")
        if func not in self.enabled:
            raise CcloError(
                f"plugin {func!r} not compiled into this CCLO "
                f"(enabled: {list(self.enabled)})"
            )
        self.invocations += 1
        if a is None or b is None:
            return None
        return _BINARY_FUNCTIONS[func](a, b)

    def apply_unary(self, func: str, a: Optional[np.ndarray]) -> Optional[np.ndarray]:
        if func not in _UNARY_FUNCTIONS:
            raise CcloError(f"{func!r} is not a unary plugin function")
        if func not in self.enabled:
            raise CcloError(
                f"plugin {func!r} not compiled into this CCLO "
                f"(enabled: {list(self.enabled)})"
            )
        self.invocations += 1
        if a is None:
            return None
        return _UNARY_FUNCTIONS[func](a)

    @staticmethod
    def known_functions() -> Dict[str, str]:
        """Map of every implementable function to its arity."""
        table = {name: "binary" for name in _BINARY_FUNCTIONS}
        table.update({name: "unary" for name in _UNARY_FUNCTIONS})
        return table

    def __repr__(self) -> str:
        return f"<PluginRegistry {list(self.enabled)}>"
