"""Rx Buffer Manager: temporary buffering for the eager protocol (§4.4.1).

"Upon the notifications of incoming messages from the network, RBM retrieves
a list of available Rx buffers from the configuration memory and then it
issues memory requests to store the message in the selected Rx buffer...
The RBM also stores relevant metadata (source ID, tag, Rx buffer address) to
be used by the DMP."

Pool capacity is finite: when no Rx space is available, inbound eager
messages stall behind the pool (the hardware equivalent is transport-level
back-pressure), which is the eager protocol's scalability hazard the
rendezvous protocol exists to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import CcloError
from repro.memory.model import Memory
from repro.sim import Environment, Event
from repro.sim.resources import TokenBucket
from repro.cclo.config_mem import CcloConfig
from repro.cclo.match import MatchTable
from repro.cclo.messages import Signature


@dataclass
class RxRecord:
    """Metadata of one buffered eager message."""

    signature: Signature
    data: Any = None
    released: bool = field(default=False, repr=False)

    @property
    def nbytes(self) -> int:
        return self.signature.nbytes


class RxBufManager:
    """Allocates Rx buffers, reassembles messages, answers DMP queries."""

    def __init__(
        self,
        env: Environment,
        config: CcloConfig,
        memory: Memory,
        name: str = "rbm",
    ):
        self.env = env
        self.config = config
        self.memory = memory
        self.name = name
        # The pool itself is carved out of FPGA memory once, up front.
        self._arena = memory.allocate(config.rx_pool_bytes)
        self._space = TokenBucket(env, config.rx_pool_bytes, name=f"{name}.space")
        self._slots = TokenBucket(env, config.rx_max_messages, name=f"{name}.slots")
        self._arrivals = MatchTable(env, name=f"{name}.arrivals")
        self.messages_buffered = 0
        self.bytes_buffered = 0
        self.high_watermark = 0
        # Span hook (None = disabled): bound by the engine's attach_tracer.
        self._span_complete = None

    @property
    def free_bytes(self) -> int:
        return self._space.available

    def handle_incoming(self, signature: Signature, data: Any) -> Event:
        """Buffer an inbound eager message; fires when it is queryable."""
        if signature.nbytes > self.config.rx_pool_bytes:
            raise CcloError(
                f"{self.name}: eager message of {signature.nbytes}B exceeds "
                f"the whole Rx pool ({self.config.rx_pool_bytes}B); use the "
                "rendezvous protocol for messages this large"
            )
        return self.env.process(
            self._store(signature, data), name=f"{self.name}.store"
        )

    def _store(self, signature: Signature, data: Any):
        reserve = max(1, signature.nbytes)
        t_q = self.env.now
        yield self._slots.take(1)
        yield self._space.take(reserve)
        span_complete = self._span_complete
        if span_complete is not None and self.env.now > t_q:
            # Pool exhaustion stalled this inbound eager message — the
            # back-pressure the rendezvous protocol exists to avoid.
            span_complete(self.name, "wait:rx_pool", t_q, self.env.now,
                          phase="wait", op_id=signature.op_id,
                          cause="rx_pool", nbytes=signature.nbytes)
        # Stage the payload into the selected Rx buffer (memory write).
        if signature.nbytes > 0:
            yield self.memory.write(signature.nbytes)
        record = RxRecord(signature=signature, data=data)
        self.messages_buffered += 1
        self.bytes_buffered += signature.nbytes
        in_use = self.config.rx_pool_bytes - self._space.available
        self.high_watermark = max(self.high_watermark, in_use)
        self._arrivals.post(signature.match_key(), record)
        return record

    def await_message(self, comm_id: int, src_rank: int, tag: int) -> Event:
        """DMP query: event yielding the matching :class:`RxRecord`."""
        return self._arrivals.wait((comm_id, src_rank, tag))

    def read_payload(self, record: RxRecord) -> Event:
        """Charge the memory read that moves the payload out of the pool."""
        if record.nbytes == 0:
            return self.env.timeout(0.0)
        return self.memory.read(record.nbytes)

    def release(self, record: RxRecord) -> None:
        """Return the record's buffer to the pool."""
        if record.released:
            raise CcloError(f"{self.name}: double release of Rx buffer")
        record.released = True
        self._space.give(max(1, record.nbytes))
        self._slots.give(1)

    def register_metrics(self, registry, **labels) -> None:
        """Expose pool occupancy and throughput as callback gauges."""
        registry.gauge("rbm_messages_buffered",
                       fn=lambda: float(self.messages_buffered), **labels)
        registry.gauge("rbm_bytes_buffered",
                       fn=lambda: float(self.bytes_buffered), **labels)
        registry.gauge("rbm_high_watermark",
                       fn=lambda: float(self.high_watermark), **labels)
        registry.gauge("rbm_free_bytes",
                       fn=lambda: float(self.free_bytes), **labels)
        self._space.register_metrics(registry, name="rbm_space", **labels)
        self._slots.register_metrics(registry, name="rbm_slots", **labels)

    def __repr__(self) -> str:
        return (
            f"<RxBufManager {self.name!r} free={self.free_bytes}"
            f"/{self.config.rx_pool_bytes}B>"
        )
