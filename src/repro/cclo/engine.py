"""CcloEngine: composition of the CCLO blocks on a platform + POE (§4.4).

"The CCLO Engine orchestrates the collective data movement through a set of
standardized CCLO interfaces.  The CCLO accepts communication requests from
the host or application kernels, communicates with the protocol offload
engine, manages buffers in FPGA memory, and manages data streams from other
kernels."

One engine instance lives on one simulated FPGA.  Host-side drivers talk to
:meth:`call`; FPGA kernels talk to the same interface through
:class:`repro.driver.streaming.KernelInterface` plus the two kernel data
channels.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

import numpy as np

from repro.errors import CcloError
from repro.platform.base import BasePlatform, BufferLocation
from repro.protocols.base import BasePoe, MessageHeader
from repro.protocols.rdma import RdmaPoe
from repro.sim import Channel, Environment, Event, all_of
from repro.cclo.config_mem import CcloConfig, CommunicatorConfig, ConfigMemory
from repro.cclo.dmp import DataMovementProcessor
from repro.cclo.microcontroller import (
    CollectiveArgs,
    FirmwareRegistry,
    MicroController,
)
from repro.cclo.noc import NoC
from repro.cclo.plugins import PluginRegistry
from repro.cclo.rbm import RxBufManager
from repro.cclo.txrx import RxSystem, TxSystem


_SELECTOR = None


def _default_selector():
    """Shared stateless selection policy (one instance per process)."""
    global _SELECTOR
    if _SELECTOR is None:
        from repro.collectives import AlgorithmSelector

        _SELECTOR = AlgorithmSelector()
    return _SELECTOR


class CcloEngine:
    """One collective offload engine instance."""

    def __init__(
        self,
        env: Environment,
        platform: BasePlatform,
        poe: BasePoe,
        config: Optional[CcloConfig] = None,
        name: str = "cclo",
    ):
        self.env = env
        self.platform = platform
        self.poe = poe
        self.name = name
        self.config_mem = ConfigMemory(config)
        cfg = self.config_mem.config

        self.plugins = PluginRegistry(cfg.plugins)
        self.noc = NoC(env, cfg, name=f"{name}.noc")
        for port in ("memory", "plugin", "tx", "rx", "kernel"):
            self.noc.register_port(port)

        device_memory = getattr(platform, "device_memory", None)
        if device_memory is None:
            device_memory = platform.memory  # SimPlatform's flat memory
        self.device_memory = device_memory
        self.rbm = RxBufManager(env, cfg, device_memory, name=f"{name}.rbm")
        self.tx = TxSystem(env, cfg, poe, name=f"{name}.tx")
        self.rx = RxSystem(env, cfg, self.rbm, name=f"{name}.rx")
        poe.on_message(self.rx.handle)
        if isinstance(poe, RdmaPoe):
            poe.set_memory_writer(self._rndz_memory_write)
            poe.set_segment_writer(self._rndz_segment_landing)

        self.dmp = DataMovementProcessor(env, cfg, self, name=f"{name}.dmp")

        # Default firmware + selection policy (Table 1); users may register
        # additional collectives against ``self.uc.registry`` at runtime.
        # The stock table and the (stateless) selector are process-wide
        # shared objects; each node's registry is a thin overlay so runtime
        # registrations stay per-engine.
        from repro.collectives.registry import default_firmware_registry

        self.selector = _default_selector()
        registry = FirmwareRegistry(parent=default_firmware_registry())
        self.uc = MicroController(
            env, self.config_mem, self, registry, name=f"{name}.uc"
        )
        self.rx.uc_charge = self.uc.charge
        self.rx.uc_pipe = self.uc._uc_time

        #: kernel -> CCLO data stream (items: ``(nbytes, data)``)
        self.kernel_data_in = Channel(env, capacity=64, name=f"{name}.k_in")
        #: CCLO -> kernel data stream
        self.kernel_data_out = Channel(env, capacity=64, name=f"{name}.k_out")

        self._rndz_targets: Dict[int, dict] = {}
        self._target_ids = itertools.count(1)
        self.tracer = None
        # Cached span-tracer entry points (None while no SpanTracer is
        # attached).  Hot paths test these attributes directly, so the
        # disabled cost is one None check.
        self._span_tracer = None
        self._span_begin = None
        self._span_end = None
        self._span_complete = None

    # -- tracing ------------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Record uC/DMP/Tx/Rx events into *tracer* (see repro.trace).

        A :class:`repro.obs.spans.SpanTracer` additionally activates span
        instrumentation (duck-typed on ``span_begin``): the uC, DMP and POE
        emit structured phase spans carrying per-collective op ids.
        """
        self.tracer = tracer
        if hasattr(tracer, "span_begin"):
            self._span_tracer = tracer
            self._span_begin = tracer.span_begin
            self._span_end = tracer.span_end
            self._span_complete = tracer.span_complete
        else:
            self._span_tracer = None
            self._span_begin = None
            self._span_end = None
            self._span_complete = None
        # Sub-blocks with their own blocking sites get the raw hook; they
        # carry node-qualified component names already.
        self.rbm._span_complete = self._span_complete
        self.rx._span_complete = self._span_complete
        self.rx._trace_node = self.name
        bind = getattr(self.poe, "bind_tracer", None)
        if bind is not None:
            bind(self._span_tracer, self.name)

    def trace(self, component: str, event: str, **detail) -> None:
        if self.tracer is not None:
            self.tracer.record(self.env.now, f"{self.name}.{component}",
                               event, **detail)

    def next_op_id(self) -> int:
        """Allocate a collective op id, or -1 while spans are disabled."""
        if self._span_tracer is None:
            return -1
        return self._span_tracer.next_op_id()

    def span_begin(self, component: str, name: str, phase: str = "other",
                   op_id: int = -1, parent: int = -1, **detail) -> int:
        """Open a span on this node's *component* track; -1 when disabled."""
        if self._span_begin is None:
            return -1
        return self._span_begin(self.env.now, f"{self.name}.{component}",
                                name, phase=phase, op_id=op_id,
                                parent=parent, **detail)

    def span_end(self, sid: int, **detail) -> None:
        if self._span_end is not None and sid >= 0:
            self._span_end(self.env.now, sid, **detail)

    def span_complete(self, component: str, name: str, t0: float, t1: float,
                      phase: str = "other", op_id: int = -1,
                      **detail) -> None:
        if self._span_complete is not None:
            self._span_complete(f"{self.name}.{component}", name, t0, t1,
                                phase=phase, op_id=op_id, **detail)

    def register_metrics(self, registry) -> None:
        """Register every sub-block's counters as callback gauges."""
        self.uc.register_metrics(registry, node=self.name)
        self.dmp.register_metrics(registry, node=self.name)
        self.tx.register_metrics(registry, node=self.name)
        self.rx.register_metrics(registry, node=self.name)
        self.rbm.register_metrics(registry, node=self.name)
        poe_register = getattr(self.poe, "register_metrics", None)
        if poe_register is not None:
            poe_register(registry, node=self.name)

    # -- identity -----------------------------------------------------------

    @property
    def address(self) -> int:
        """Fabric address of this engine's network port."""
        return self.poe.address

    @property
    def config(self) -> CcloConfig:
        return self.config_mem.config

    # -- configuration ---------------------------------------------------------

    def add_communicator(self, comm: CommunicatorConfig) -> None:
        self.config_mem.add_communicator(comm)

    # -- command interface ----------------------------------------------------------

    def call(self, args: CollectiveArgs) -> Event:
        """Submit a command (from host driver or kernel adapter)."""
        return self.uc.call(args)

    # -- rendezvous target registry ---------------------------------------------------

    def register_rndz_target(self, dest: Any, nbytes: int) -> int:
        """Pin a receive destination for an inbound one-sided WRITE.

        ``dest`` is a BufferView, or ``None`` for the kernel stream (the
        compile-time "streaming into the application kernel" datapath).
        """
        target_id = next(self._target_ids)
        self._rndz_targets[target_id] = {
            "view": dest,
            "nbytes": nbytes,
            "written": Event(self.env),
            "data": None,
            "landings": [],
        }
        return target_id

    def claim_rndz_target(self, target_id: int) -> dict:
        try:
            return self._rndz_targets.pop(target_id)
        except KeyError:
            raise CcloError(
                f"{self.name}: rendezvous target {target_id} unknown or "
                "already claimed"
            ) from None

    def _rndz_memory_write(self, header: MessageHeader, data: Any) -> Event:
        """Passive-side WRITE: data bypasses the CCLO into memory/stream."""
        descriptor = header.meta
        entry = self._rndz_targets.get(descriptor.target_id)
        if entry is None:
            raise CcloError(
                f"{self.name}: WRITE targets unknown descriptor {descriptor}"
            )
        return self.env.process(
            self._rndz_write_proc(entry, header.nbytes, data),
            name=f"{self.name}.rndz_write",
        )

    def _rndz_segment_landing(self, header: MessageHeader, nbytes: int) -> None:
        """Cut-through landing: charge memory per WRITE segment on arrival."""
        descriptor = header.meta
        entry = self._rndz_targets.get(descriptor.target_id)
        if entry is not None and entry["view"] is not None:
            entry["landings"].append(entry["view"].device_write(nbytes))

    def _rndz_write_proc(self, entry: dict, nbytes: int, data: Any):
        view = entry["view"]
        entry["data"] = data
        if view is None:
            # Stream-destined WRITE: route to the kernel stream port.
            yield self.noc.route("rx", "kernel", nbytes)
            yield self.kernel_data_out.put((nbytes, data))
        elif entry["landings"]:
            # Segments landed as they arrived; drain the last of them.
            yield all_of(self.env, entry["landings"])
            if data is not None:
                view.set_array(np.asarray(data))
        else:
            yield view.device_write(nbytes)
            if data is not None:
                view.set_array(np.asarray(data))
        entry["written"].succeed(nbytes)

    # -- scratch memory (temporaries for rendezvous reductions) -------------------------

    def scratch_alloc(self, nbytes: int):
        """Allocate a temporary device buffer for intermediate data."""
        return self.platform.allocate(nbytes, BufferLocation.DEVICE)

    def scratch_free(self, buffer) -> None:
        buffer.free()

    def __repr__(self) -> str:
        return f"<CcloEngine {self.name!r} addr={self.address}>"
