"""Keyed rendezvous between producers and consumers of notifications.

Both sides of the matching problem appear throughout the CCLO: the RBM holds
arrived-message metadata for the DMP to claim; the Rx system queues
RNDZ_INIT/RNDZ_DONE notifications for the uC.  :class:`MatchTable` is the
shared primitive: ``post(key, value)`` meets ``wait(key)`` in FIFO order,
whichever side arrives first.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Deque, Dict, Hashable

from repro.sim import Environment, Event


class MatchTable:
    """FIFO match of posted values and waiting events per key."""

    def __init__(self, env: Environment, name: str = "match"):
        self.env = env
        self.name = name
        self._values: Dict[Hashable, Deque[Any]] = defaultdict(deque)
        self._waiters: Dict[Hashable, Deque[Event]] = defaultdict(deque)

    def post(self, key: Hashable, value: Any) -> None:
        """Make *value* available under *key*; wakes the oldest waiter."""
        waiters = self._waiters.get(key)
        if waiters:
            waiters.popleft().succeed(value)
            if not waiters:
                del self._waiters[key]
        else:
            self._values[key].append(value)

    def wait(self, key: Hashable) -> Event:
        """Event that succeeds with the next value posted under *key*."""
        values = self._values.get(key)
        ev = Event(self.env)
        if values:
            ev.succeed(values.popleft())
            if not values:
                del self._values[key]
        else:
            self._waiters[key].append(ev)
        return ev

    def pending(self, key: Hashable) -> int:
        """Number of un-consumed values under *key*."""
        return len(self._values.get(key, ()))

    def waiting(self, key: Hashable) -> int:
        """Number of waiters blocked on *key*."""
        return len(self._waiters.get(key, ()))

    def __repr__(self) -> str:
        return (
            f"<MatchTable {self.name!r} values={sum(map(len, self._values.values()))} "
            f"waiters={sum(map(len, self._waiters.values()))}>"
        )
