"""CPU cost model for GEMV with a cache hierarchy.

GEMV is memory-bound: every weight is touched once per call, so the time is
dominated by where the matrix partition *resides* — L2, L3 or DRAM.  This is
exactly the mechanism behind Figure 16's super-linear speedups: "the weight
matrix partitions fitting into either L2 (8 MB) or L3 (128 MB) caches on the
CPU after partitioning, whereas the entire matrix did not fit in caches
during single-node execution."

Cache *pollution* models the other Figure 16 effect: a reduction executed on
the CPU (software MPI) streams its buffers through the same caches and
evicts part of the matrix, so the next GEMV re-faults those bytes from the
next level.  ACCL+ keeps "all intermediate reduction data structures" in
FPGA memory and avoids this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro import units


@dataclass(frozen=True)
class CpuSpec:
    """EPYC-class core running a SIMD GEMV (Eigen)."""

    l2_bytes: int = 8 * units.MIB       # paper: 8 MB
    l3_bytes: int = 128 * units.MIB     # paper: 128 MB
    l2_bw: float = 250e9                # bytes/s streaming from L2
    l3_bw: float = 110e9                # bytes/s streaming from L3
    dram_bw: float = 22e9               # bytes/s streaming from DRAM
    flops: float = 80e9                 # peak SIMD FLOP/s, one heavy core
    call_overhead: float = units.us(2)  # function call + loop setup

    def residency(self, working_set_bytes: int) -> str:
        if working_set_bytes <= self.l2_bytes:
            return "l2"
        if working_set_bytes <= self.l3_bytes:
            return "l3"
        return "dram"

    def bandwidth(self, level: str) -> float:
        return {"l2": self.l2_bw, "l3": self.l3_bw, "dram": self.dram_bw}[level]

    def next_level(self, level: str) -> str:
        return {"l2": "l3", "l3": "dram", "dram": "dram"}[level]


def gemv_time(
    spec: CpuSpec,
    rows: int,
    cols: int,
    dtype_bytes: int = 4,
    polluted_bytes: int = 0,
) -> float:
    """One y = W @ x with W of ``rows x cols``, steady-state resident.

    ``polluted_bytes`` of the matrix have been evicted since the previous
    call and stream from the next memory level.
    """
    if rows <= 0 or cols <= 0:
        raise ConfigurationError("matrix dimensions must be positive")
    matrix_bytes = rows * cols * dtype_bytes
    vectors_bytes = (rows + cols) * dtype_bytes
    level = spec.residency(matrix_bytes + vectors_bytes)
    refault = min(max(0, polluted_bytes), matrix_bytes)

    resident_time = (matrix_bytes - refault) / spec.bandwidth(level)
    refault_time = refault / spec.bandwidth(spec.next_level(level))
    compute_time = 2.0 * rows * cols / spec.flops
    return spec.call_overhead + max(compute_time,
                                    resident_time + refault_time)
