"""Functional side of the distributed GEMV: numpy partials and checks."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: problem instances keyed by ``(rows, cols, seed)``.  A Figure 16 sweep
#: visits the same (rows, cols) grid once per rank count and backend, so
#: regenerating the weights dominated the sweep's wall time; the cached
#: arrays are marked read-only so one point cannot contaminate another.
_PROBLEM_CACHE: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}


def partition_columns(matrix: np.ndarray, parts: int) -> List[np.ndarray]:
    """Column-wise partition (the §6.2 strategy): each rank gets a block of
    columns and the matching slice of the input vector.

    The blocks are *views* — BLAS takes the strided GEMV directly, and
    copying a rank's share of a 256 MB weight matrix per sweep point cost
    more wall time than every simulated reduction combined."""
    if matrix.ndim != 2:
        raise ConfigurationError("expected a 2-D weight matrix")
    if not 1 <= parts <= matrix.shape[1]:
        raise ConfigurationError(
            f"cannot split {matrix.shape[1]} columns into {parts} parts"
        )
    return np.array_split(matrix, parts, axis=1)


def partition_vector(vector: np.ndarray, parts: int) -> List[np.ndarray]:
    return np.array_split(vector, parts)


def partial_gemv(matrix_block: np.ndarray,
                 vector_chunk: np.ndarray) -> np.ndarray:
    """One rank's contribution: a full-length partial output vector."""
    if matrix_block.shape[1] != vector_chunk.shape[0]:
        raise ConfigurationError(
            f"block of {matrix_block.shape[1]} columns cannot multiply a "
            f"chunk of {vector_chunk.shape[0]} elements"
        )
    return matrix_block @ vector_chunk


def reference_gemv(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    return matrix @ vector


def make_problem(rows: int, cols: int,
                 seed: int = 7) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic (weights, input) for a problem size; memoized.

    The weights are generated directly in float32 (no float64 intermediate
    + ``astype`` round-trip) and returned as read-only arrays; callers that
    need to mutate them must copy.
    """
    key = (rows, cols, seed)
    cached = _PROBLEM_CACHE.get(key)
    if cached is None:
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((rows, cols), dtype=np.float32)
        vector = rng.standard_normal(cols, dtype=np.float32)
        matrix.setflags(write=False)
        vector.setflags(write=False)
        cached = (matrix, vector)
        _PROBLEM_CACHE[key] = cached
    return cached
