"""Distributed FC-layer execution: CPU GEMV + reduce offload (Figure 16).

The experiment of §6.2: the weight matrix is partitioned column-wise over R
CPU ranks; each rank computes a full-length partial product; partials are
summed to the root with a reduce — through ACCL+ (H2H over Coyote RDMA) or
through software MPI.  Computation and communication are *not* overlapped,
as in the paper.

The GEMV itself is an analytic CPU-cache model (:mod:`.cpu_model`); the
reductions run through the full respective communication stacks.  Functional
values flow end-to-end and are checked against ``W @ x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro import units
from repro.apps.vecmat.compute import (
    make_problem,
    partial_gemv,
    partition_columns,
    partition_vector,
)
from repro.apps.vecmat.cpu_model import CpuSpec, gemv_time
from repro.baselines.algorithms import mpi_reduce
from repro.baselines.mpi import build_mpi_cluster
from repro.cluster import build_fpga_cluster
from repro.driver import attach_drivers
from repro.sim import all_of

#: host-side memcpy bandwidth for the Eigen-buffer -> ACCL+-buffer copy the
#: paper calls out as an un-optimized overhead ("which can be eliminated
#: with further optimization"), plus the per-copy driver call
_MEMCPY_BW = 18e9
_COPY_CALL_OVERHEAD = units.us(5)

#: cache pollution of a CPU-side reduction: the MPI progress engine,
#: protocol structures and per-child bounce/temporary buffers stream through
#: the caches every iteration (fixed library footprint + per-message factor)
_MPI_POLLUTION_FIXED = 1 * units.MIB
_MPI_POLLUTION_FACTOR = 4.0
#: ACCL+ keeps reduction state in FPGA memory; the CPU only touches the
#: staging copy and a small driver footprint
_ACCL_POLLUTION_FIXED = 64 * units.KIB
_ACCL_POLLUTION_FACTOR = 1.0

#: reference products keyed like the problem cache: the same ``W @ x`` is
#: checked against once per rank count and backend in a Figure 16 sweep.
_EXPECTED_CACHE: dict = {}

#: per-rank partial products and column widths keyed by
#: ``(rows, cols, seed, ranks)``: both backends of a point recompute the
#: same partition + GEMV, and the 256 MB weight matrix need not even be
#: partitioned on a hit.  The cached partials are read-only — collectives
#: only read send buffers, and a regression that wrote into one would
#: raise instead of silently contaminating later points.
_PARTIALS_CACHE: dict = {}


def _expected_product(matrix: np.ndarray, vector: np.ndarray,
                      key: tuple) -> np.ndarray:
    expected = _EXPECTED_CACHE.get(key)
    if expected is None:
        expected = matrix @ vector
        expected.setflags(write=False)
        _EXPECTED_CACHE[key] = expected
    return expected


def _partials_for(matrix: np.ndarray, vector: np.ndarray, ranks: int,
                  key: tuple):
    """``(column widths per rank, partial products per rank)``, memoized."""
    cached = _PARTIALS_CACHE.get(key)
    if cached is None:
        blocks = partition_columns(matrix, ranks)
        chunks = partition_vector(vector, ranks)
        partials = [partial_gemv(blocks[r], chunks[r]) for r in range(ranks)]
        for p in partials:
            p.setflags(write=False)
        cached = (tuple(block.shape[1] for block in blocks), partials)
        _PARTIALS_CACHE[key] = cached
    return cached


@dataclass
class VecMatResult:
    """One Figure 16 bar: timings for a (size, ranks, backend) point."""

    rows: int
    cols: int
    ranks: int
    backend: str
    compute_time: float
    reduction_time: float
    single_node_time: float
    result_ok: bool

    @property
    def total_time(self) -> float:
        return self.compute_time + self.reduction_time

    @property
    def speedup(self) -> float:
        return self.single_node_time / self.total_time


def run_single_node(rows: int, cols: int,
                    spec: Optional[CpuSpec] = None) -> float:
    """Baseline: the whole GEMV on one rank, no communication."""
    spec = spec or CpuSpec()
    return gemv_time(spec, rows, cols)


def _accl_reduction_time(partials: list, out: np.ndarray, ranks: int) -> float:
    """Reduce partial vectors via ACCL+ H2H (Coyote RDMA), plus staging
    copies between application buffers and ACCL+ buffers."""
    nbytes = partials[0].nbytes
    cluster = build_fpga_cluster(ranks, protocol="rdma", platform="coyote")
    drivers = attach_drivers(cluster)
    rbuf = drivers[0].wrap(np.zeros_like(partials[0]))
    requests = [
        drv.reduce(drv.wrap(partials[r]), rbuf if r == 0 else None,
                   nbytes, root=0, func="sum")
        for r, drv in enumerate(drivers)
    ]
    start = cluster.env.now
    cluster.env.run(until=all_of(cluster.env,
                                 [req.event for req in requests]))
    elapsed = cluster.env.now - start
    np.copyto(out, rbuf.array)
    # The Eigen-result -> ACCL+-buffer copy (paper: removable with further
    # optimization) and the result copy back at the root.
    copy_time = 2 * (_COPY_CALL_OVERHEAD + nbytes / _MEMCPY_BW)
    return elapsed + copy_time


def _mpi_reduction_time(partials: list, out: np.ndarray, ranks: int) -> float:
    nbytes = partials[0].nbytes
    cluster = build_mpi_cluster(ranks, library="openmpi", transport="rdma")
    recv = np.zeros_like(partials[0])
    elapsed = cluster.run_all(lambda me: mpi_reduce(
        me, partials[me.rank], recv if me.rank == 0 else None,
        nbytes, root=0, func="sum", tag=0,
    ))
    np.copyto(out, recv)
    return elapsed


def run_distributed_vecmat(
    rows: int,
    cols: int,
    ranks: int,
    backend: str = "accl",
    spec: Optional[CpuSpec] = None,
    seed: int = 7,
) -> VecMatResult:
    """One experiment point of Figure 16."""
    if backend not in ("accl", "mpi"):
        raise ConfigurationError(f"unknown backend {backend!r}")
    spec = spec or CpuSpec()
    matrix, vector = make_problem(rows, cols, seed=seed)
    col_widths, partials = _partials_for(matrix, vector, ranks,
                                         (rows, cols, seed, ranks))

    # Compute phase: ranks run in parallel; steady-state GEMV time with the
    # pollution left behind by the previous iteration's reduction.
    out_bytes = rows * 4
    if backend == "accl":
        pollution = _ACCL_POLLUTION_FIXED + _ACCL_POLLUTION_FACTOR * out_bytes
    else:
        pollution = _MPI_POLLUTION_FIXED + _MPI_POLLUTION_FACTOR * out_bytes
    compute_time = max(
        gemv_time(spec, rows, width, polluted_bytes=int(pollution))
        for width in col_widths
    )

    result = np.zeros(rows, dtype=np.float32)
    if backend == "accl":
        reduction_time = _accl_reduction_time(partials, result, ranks)
    else:
        reduction_time = _mpi_reduction_time(partials, result, ranks)

    expected = _expected_product(matrix, vector, (rows, cols, seed))
    result_ok = bool(np.allclose(result, expected, rtol=1e-2, atol=1e-3))
    return VecMatResult(
        rows=rows, cols=cols, ranks=ranks, backend=backend,
        compute_time=compute_time, reduction_time=reduction_time,
        single_node_time=run_single_node(rows, cols, spec),
        result_ok=result_ok,
    )
