"""Distributed vector-matrix multiplication (§6.2, Figure 16).

An FC-layer workload runs on CPU ranks (Eigen-style GEMV); the partial rank
products are summed with a reduce collective — either offloaded to ACCL+
(FPGA-side reduction, host data over Coyote) or executed by software MPI.
"""

from repro.apps.vecmat.cpu_model import CpuSpec, gemv_time
from repro.apps.vecmat.compute import partial_gemv, partition_columns
from repro.apps.vecmat.distributed import (
    VecMatResult,
    run_distributed_vecmat,
    run_single_node,
)

__all__ = [
    "CpuSpec",
    "gemv_time",
    "partition_columns",
    "partial_gemv",
    "VecMatResult",
    "run_distributed_vecmat",
    "run_single_node",
]
