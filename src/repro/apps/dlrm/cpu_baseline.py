"""CPU DLRM baseline: TensorFlow-Serving on a Xeon 8259CL (§6.2).

An analytic cost model of the paper's CPU comparison point (Intel Xeon
Platinum 8259CL @ 2.50 GHz, 32 vCPU, SIMD, 256 GB DRAM, TF-Serving):

- a fixed serving overhead per request batch (RPC, graph dispatch);
- embedding lookups are random DRAM accesses, bounded by the memory-level
  parallelism the cores can sustain;
- FC layers run as batched GEMM whose efficiency ramps with batch size
  (small batches leave the SIMD units starved — the reason CPU serving
  needs large batches, and large batches are what inflate latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.apps.dlrm.model import DlrmConfig
from repro import units


@dataclass(frozen=True)
class CpuDlrmBaseline:
    """Latency/throughput model for batched CPU inference."""

    config: DlrmConfig = DlrmConfig()
    serving_overhead: float = units.ms(2.0)   # TF-Serving request handling
    dram_latency: float = units.ns(110)       # one random access
    mlp_parallelism: int = 8                  # in-flight misses sustained
    peak_flops: float = 150e9                 # effective TF GEMM throughput
    gemm_ramp_batch: int = 32                 # batch at which GEMM is ~50%

    def embedding_time(self, batch: int) -> float:
        """Random-access phase: batch * num_tables dependent DRAM misses."""
        lookups = batch * self.config.num_tables
        return lookups * self.dram_latency / self.mlp_parallelism

    def fc_time(self, batch: int) -> float:
        dims = [self.config.concat_len, *self.config.fc_dims]
        flops = batch * sum(2 * a * b for a, b in zip(dims, dims[1:]))
        efficiency = batch / (batch + self.gemm_ramp_batch)
        return flops / (self.peak_flops * efficiency)

    def latency(self, batch: int) -> float:
        """End-to-end latency of one batch."""
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        return (self.serving_overhead + self.embedding_time(batch)
                + self.fc_time(batch))

    def throughput(self, batch: int) -> float:
        """Inferences/second at the given batch size."""
        return batch / self.latency(batch)

    def best_throughput(self, max_batch: int = 4096) -> float:
        """Throughput at the best batch size up to *max_batch*."""
        batch = 1
        best = 0.0
        while batch <= max_batch:
            best = max(best, self.throughput(batch))
            batch *= 2
        return best

    def sweep(self, batches=(1, 4, 16, 64, 256, 1024)) -> list:
        """(batch, latency, throughput) rows for the Figure 17 curves."""
        return [(b, self.latency(b), self.throughput(b)) for b in batches]
