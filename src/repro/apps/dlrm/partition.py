"""Checkerboard decomposition and the 10-node placement plan (Figs 14-15).

FC1 (3200 -> 2048) is cut into a 2 x 4 checkerboard: 4 column partitions
(one per embedding node, matching its 800-element concat chunk) by 2 row
partitions (output halves).  Nodes 0-3 hold the embeddings plus the row-0
blocks; nodes 4-7 hold the row-1 blocks; node 8 runs FC2 after reducing the
partial FC1 results; node 9 runs FC3 and the final processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.apps.dlrm.model import DlrmConfig, DlrmModel


@dataclass(frozen=True)
class DlrmPlan:
    """Placement of the Figure 15 pipeline on a 10-node cluster."""

    col_parts: int = 4
    row_parts: int = 2

    @property
    def n_nodes(self) -> int:
        return self.col_parts * self.row_parts + 2  # + FC2 node + FC3 node

    @property
    def embed_nodes(self) -> List[int]:
        """Nodes holding embeddings and the row-0 FC1 blocks."""
        return list(range(self.col_parts))

    @property
    def fc1_partner_nodes(self) -> List[int]:
        """Nodes computing the remaining FC1 row blocks for each column."""
        return list(range(self.col_parts, 2 * self.col_parts))

    @property
    def fc2_node(self) -> int:
        return 2 * self.col_parts

    @property
    def fc3_node(self) -> int:
        return 2 * self.col_parts + 1

    @property
    def reduce_group(self) -> List[int]:
        """Nodes participating in the FC1 reduction (paper: nodes 5-9)."""
        return [*self.fc1_partner_nodes, self.fc2_node]

    def partner_of(self, embed_node: int) -> int:
        return embed_node + self.col_parts

    def tables_for(self, embed_node: int, config: DlrmConfig) -> range:
        per_node, rem = divmod(config.num_tables, self.col_parts)
        if rem:
            raise ConfigurationError(
                f"{config.num_tables} tables do not split evenly over "
                f"{self.col_parts} embedding nodes"
            )
        return range(embed_node * per_node, (embed_node + 1) * per_node)

    def chunk_len(self, config: DlrmConfig) -> int:
        """Concat-vector elements produced per embedding node (800)."""
        return config.concat_len // self.col_parts

    def row_len(self, config: DlrmConfig) -> int:
        """FC1 output elements per row partition (1024)."""
        fc1_out = config.fc_dims[0]
        if fc1_out % self.row_parts:
            raise ConfigurationError(
                f"FC1 output {fc1_out} does not split over "
                f"{self.row_parts} row partitions"
            )
        return fc1_out // self.row_parts


class PartitionedWeights:
    """FC1 checkerboard blocks plus the FC2/FC3 weights, from one model."""

    def __init__(self, model: DlrmModel, plan: DlrmPlan = DlrmPlan()):
        self.model = model
        self.plan = plan
        config = model.config
        w1 = model.weights[0]
        rows = plan.row_len(config)
        cols = plan.chunk_len(config)
        #: blocks[row][col] = W1[row*rows:(row+1)*rows, col*cols:(col+1)*cols]
        self.fc1_blocks: List[List[np.ndarray]] = [
            [
                np.ascontiguousarray(
                    w1[r * rows:(r + 1) * rows, c * cols:(c + 1) * cols]
                )
                for c in range(plan.col_parts)
            ]
            for r in range(plan.row_parts)
        ]
        self.fc2 = model.weights[1]
        self.fc3 = model.weights[2]

    def check_decomposition(self, x: np.ndarray) -> np.ndarray:
        """Verify Figure 14: summing block partials reproduces W1 @ x."""
        plan, config = self.plan, self.model.config
        cols = plan.chunk_len(config)
        full = np.zeros(config.fc_dims[0], dtype=x.dtype)
        for c in range(plan.col_parts):
            chunk = x[c * cols:(c + 1) * cols]
            partial = np.concatenate(
                [self.fc1_blocks[r][c] @ chunk for r in range(plan.row_parts)]
            )
            full += partial
        return full
