"""The DLRM model: Table 2 configuration and a single-node reference.

The paper's embedding layer is 50 GB of proprietary industrial data — per
the substitution rule, embeddings here are *procedural*: a deterministic,
vectorized function of (table, row) that materializes any row on demand
without storing the tables.  This preserves what the evaluation exercises —
random-access lookup volume, vector widths, arithmetic — while remaining
runnable on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DlrmConfig:
    """Table 2: the target recommendation model."""

    num_tables: int = 100
    embed_dim: int = 32
    fc_dims: Tuple[int, int, int] = (2048, 512, 256)
    rows_per_table: int = 4_194_304  # ~50 GB of fp32 embeddings in total
    dtype: type = np.float32

    def __post_init__(self):
        if self.num_tables <= 0 or self.embed_dim <= 0:
            raise ConfigurationError("tables and embed_dim must be positive")

    @property
    def concat_len(self) -> int:
        """Concatenated embedding vector length (Table 2: 3200)."""
        return self.num_tables * self.embed_dim

    @property
    def embed_bytes(self) -> int:
        """Total embedding storage (Table 2: ~50 GB)."""
        return (self.num_tables * self.rows_per_table * self.embed_dim
                * np.dtype(self.dtype).itemsize)


def embedding_vectors(config: DlrmConfig, tables: np.ndarray,
                      rows: np.ndarray) -> np.ndarray:
    """Procedural embedding rows for (table, row) pairs, shape (n, dim).

    Deterministic and smooth: each element is a bounded trigonometric
    function of a per-row phase, so values are reproducible anywhere without
    materializing the 50 GB of tables.
    """
    tables = np.asarray(tables, dtype=np.int64)
    rows = np.asarray(rows, dtype=np.int64)
    if tables.shape != rows.shape:
        raise ConfigurationError("tables and rows must align")
    if np.any(rows < 0) or np.any(rows >= config.rows_per_table):
        raise ConfigurationError("row index out of table bounds")
    # Low-discrepancy phases from a Weyl sequence per (table, row).
    phase = ((tables * 2654435761 + rows * 40503 + 12345) % (1 << 31))
    phase = phase.astype(np.float64) / (1 << 31)
    dims = np.arange(1, config.embed_dim + 1, dtype=np.float64)
    values = np.sin(2.0 * np.pi * np.outer(phase, dims) + 0.1 * dims)
    return (0.25 * values).astype(config.dtype)


class DlrmModel:
    """Reference (single-node) DLRM: lookup -> concat -> FC1..FC3 -> CTR."""

    def __init__(self, config: DlrmConfig = DlrmConfig(), seed: int = 2024):
        self.config = config
        rng = np.random.default_rng(seed)
        dims = [config.concat_len, *config.fc_dims]
        self.weights = []
        for fan_in, fan_out in zip(dims, dims[1:]):
            scale = 1.0 / np.sqrt(fan_in)
            self.weights.append(
                (rng.standard_normal((fan_out, fan_in)) * scale)
                .astype(config.dtype)
            )

    @property
    def flops_per_inference(self) -> int:
        return sum(2 * w.shape[0] * w.shape[1] for w in self.weights)

    def make_queries(self, n: int, seed: int = 99) -> np.ndarray:
        """Random lookup indices, shape (n, num_tables)."""
        rng = np.random.default_rng(seed)
        return rng.integers(0, self.config.rows_per_table,
                            size=(n, self.config.num_tables))

    def embed(self, indices: np.ndarray) -> np.ndarray:
        """Concatenated embedding vector for one query (num_tables ids)."""
        tables = np.arange(self.config.num_tables)
        vectors = embedding_vectors(self.config, tables, indices)
        return vectors.reshape(-1)

    def forward(self, indices: np.ndarray) -> float:
        """One inference; returns the predicted click-through rate."""
        x = self.embed(indices)
        w1, w2, w3 = self.weights
        h1 = np.maximum(w1 @ x, 0.0)
        h2 = np.maximum(w2 @ h1, 0.0)
        h3 = w3 @ h2
        return float(1.0 / (1.0 + np.exp(-np.mean(h3))))

    def forward_batch(self, queries: np.ndarray) -> np.ndarray:
        """Batched inference, shape (n,) of CTRs.

        One embedding materialization over the flattened (query, table)
        pairs and three batched matmuls — numerically the per-query
        :meth:`forward` pipeline, minus the Python-loop overhead that
        dominates it (one BLAS call per layer instead of one per query).
        """
        queries = np.asarray(queries)
        if queries.ndim == 1:
            queries = queries[None, :]
        n, num_tables = queries.shape
        tables = np.broadcast_to(
            np.arange(num_tables), (n, num_tables)).reshape(-1)
        vectors = embedding_vectors(self.config, tables, queries.reshape(-1))
        x = vectors.reshape(n, self.config.concat_len)
        w1, w2, w3 = self.weights
        h1 = np.maximum(x @ w1.T, 0.0)
        h2 = np.maximum(h1 @ w2.T, 0.0)
        h3 = h2 @ w3.T
        return 1.0 / (1.0 + np.exp(-h3.mean(axis=1)))
