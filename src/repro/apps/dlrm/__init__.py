"""Distributed DLRM inference on an FPGA cluster (§6, Figures 14-17).

The industrial model of Table 2 (100 embedding tables, 50 GB, concat vector
3200, FC stack 2048/512/256) does not fit one FPGA's HBM, so embedding
lookup and FC1 are decomposed across nodes with checkerboard block
decomposition (Figure 14), pipelined as in Figure 15, with every inter-node
transfer running over ACCL+ streaming collectives.
"""

from repro.apps.dlrm.model import DlrmConfig, DlrmModel, embedding_vectors
from repro.apps.dlrm.partition import DlrmPlan, PartitionedWeights
from repro.apps.dlrm.pipeline import DistributedDlrm, DlrmRunStats
from repro.apps.dlrm.cpu_baseline import CpuDlrmBaseline

__all__ = [
    "DlrmConfig",
    "DlrmModel",
    "embedding_vectors",
    "DlrmPlan",
    "PartitionedWeights",
    "DistributedDlrm",
    "DlrmRunStats",
    "CpuDlrmBaseline",
]
