"""The decomposed, pipelined distributed DLRM on 10 FPGAs (Figure 15).

Ten kernel processes run on a simulated 10-node cluster (TCP backend on the
XRT platform at 115 MHz, the paper's deployment):

- nodes 0-3: embedding lookup (25 tables each) + the row-0 FC1 block of
  their column; stream the 3.2 KB concat chunk and the 4 KB partial result
  to their column partner;
- nodes 4-7: the row-1 FC1 blocks; concatenate both row halves into an 8 KB
  per-column partial and contribute it to the reduction;
- node 8: reduction root (the "reduction spanning nodes 5 to 9" with 8 KB
  messages) + ReLU + FC2;
- node 9: FC3 + final processing (CTR).

Every inter-node transfer uses the ACCL+ streaming collective API; nodes
that do not reduce never instantiate the reduction plugin path.  Inference
admission is credit-based (a finite pipeline depth), so reported latency is
the steady-state service latency, not open-loop queueing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.apps.dlrm.model import DlrmModel, embedding_vectors
from repro.apps.dlrm.partition import DlrmPlan, PartitionedWeights
from repro.cclo.config_mem import CcloConfig
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster import build_fpga_cluster
from repro.driver.streaming import KernelInterface
from repro.platform.base import BufferLocation
from repro.sim import Channel, Environment, all_of
from repro.sim.resources import TokenBucket
from repro import units

#: MAC lanes per node, mirroring the paper's per-layer resource scaling
_FC1_LANES_PER_NODE = 2048
_FC2_LANES = 2560
_FC3_LANES = 484

#: random-access latency of a batch of parallel HBM lookups
_LOOKUP_LATENCY = units.ns(400)

#: reduce tag window base (collective tag space)
_REDUCE_TAG_BASE = 1 << 20


@dataclass
class DlrmRunStats:
    """Result of one pipelined run."""

    outputs: np.ndarray          # CTR per inference
    latencies: List[float]       # admission -> completion, seconds
    elapsed: float               # first admission -> last completion
    n_inferences: int

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies))

    @property
    def p99_latency(self) -> float:
        return float(np.percentile(self.latencies, 99))

    @property
    def throughput(self) -> float:
        """Sustained inferences/second."""
        return self.n_inferences / self.elapsed


class DistributedDlrm:
    """Builds the 10-node pipeline and runs inference streams through it."""

    def __init__(
        self,
        model: Optional[DlrmModel] = None,
        plan: DlrmPlan = DlrmPlan(),
        clock_hz: float = 115e6,
        pipeline_depth: int = 8,
    ):
        self.model = model or DlrmModel()
        self.plan = plan
        self.config = self.model.config
        self.weights = PartitionedWeights(self.model, plan)
        self.pipeline_depth = pipeline_depth
        if plan.row_parts != 2:
            raise ConfigurationError(
                "this pipeline implements the Figure 15 two-row checkerboard"
            )
        # The paper's deployment is 10 nodes (4x2 FC1 grid + FC2 + FC3);
        # other column widths support the §6.1 resource-scaling study
        # ("increasing the allocation of FPGAs for different layers based on
        # their computational load").
        # The paper's DLRM deployment: TCP backend from XRT, 115 MHz
        # "due to the design complexity".
        self.cluster = build_fpga_cluster(
            plan.n_nodes, protocol="tcp", platform="vitis",
            cclo_config=CcloConfig(clock_hz=clock_hz),
        )
        self.cluster.add_subcommunicator(1, plan.reduce_group)
        self.env: Environment = self.cluster.env
        self._clock = clock_hz

    # -- stage timing -----------------------------------------------------

    def _fc1_block_time(self) -> float:
        macs = self.plan.chunk_len(self.config) * self.plan.row_len(self.config)
        return macs / _FC1_LANES_PER_NODE / self._clock

    def _fc2_time(self) -> float:
        macs = self.config.fc_dims[0] * self.config.fc_dims[1]
        return macs / _FC2_LANES / self._clock

    def _fc3_time(self) -> float:
        macs = self.config.fc_dims[1] * self.config.fc_dims[2]
        return macs / _FC3_LANES / self._clock

    # -- node kernels ------------------------------------------------------

    def _embed_kernel(self, col: int, queries: np.ndarray, state: dict):
        """Lookup + chunk shipping stage; FC1 row-0 compute is a separate
        dataflow stage (:meth:`_embed_fc1_stage`) fed through a FIFO."""
        plan, config = self.plan, self.config
        node = plan.embed_nodes[col]
        engine = self.cluster.engine(node)
        ki = KernelInterface(engine)
        partner = plan.partner_of(node)
        tables = np.array(plan.tables_for(node, config))
        chunk_bytes = plan.chunk_len(config) * 4
        credits: TokenBucket = state["credits"][col]
        to_fc1: Channel = state["embed_fifo"][col]

        for i in range(len(queries)):
            yield credits.take(1)
            if col == 0:
                state["admitted"][i] = self.env.now
            # Parallel random-access lookups from HBM: 25 rows of 128 B.
            yield self.env.timeout(_LOOKUP_LATENCY)
            yield engine.device_memory.read(len(tables) * config.embed_dim * 4)
            rows = queries[i][tables]
            chunk = embedding_vectors(config, tables, rows).reshape(-1)
            # Ship the chunk first so the partner's FC1 overlaps ours.
            yield from ki.send(chunk_bytes, partner, tag=i * 8)
            yield from ki.push(chunk)
            yield from ki.finalize()
            yield to_fc1.put((i, chunk))

    def _embed_fc1_stage(self, col: int, n: int, state: dict):
        """FC1 row-0 block compute + partial shipping (dataflow stage 2)."""
        plan = self.plan
        node = plan.embed_nodes[col]
        engine = self.cluster.engine(node)
        ki = KernelInterface(engine)
        partner = plan.partner_of(node)
        block0 = self.weights.fc1_blocks[0][col]
        fc1_time = self._fc1_block_time()
        from_lookup: Channel = state["embed_fifo"][col]

        for _ in range(n):
            i, chunk = yield from_lookup.get()
            yield self.env.timeout(fc1_time)
            partial0 = block0 @ chunk
            yield from ki.send(partial0.nbytes, partner, tag=i * 8 + 1)
            yield from ki.push(partial0)
            yield from ki.finalize()

    def _partner_chunk_stage(self, col: int, n: int, state: dict):
        """Streaming front-end: pull concat chunks off the wire into the
        local FIFO so the FC1 compute stage never waits on the network."""
        plan, config = self.plan, self.config
        node = plan.fc1_partner_nodes[col]
        engine = self.cluster.engine(node)
        ki = KernelInterface(engine)
        src = plan.embed_nodes[col]
        chunk_bytes = plan.chunk_len(config) * 4
        chunk_fifo: Channel = state["chunk_fifo"][col]

        for i in range(n):
            yield from ki.recv(chunk_bytes, src, tag=i * 8)
            _, chunk = yield from ki.pull()
            yield from ki.finalize()
            yield chunk_fifo.put((i, np.asarray(chunk).reshape(-1)))

    def _partner_kernel(self, col: int, n: int, state: dict):
        """Row-1 FC1 compute; hands merged column partials to the
        contributor stage through a FIFO."""
        plan, config = self.plan, self.config
        node = plan.fc1_partner_nodes[col]
        engine = self.cluster.engine(node)
        src = plan.embed_nodes[col]
        block1 = self.weights.fc1_blocks[1][col]
        row_bytes = plan.row_len(config) * 4
        fc1_time = self._fc1_block_time()
        chunk_fifo: Channel = state["chunk_fifo"][col]
        to_reduce: Channel = state["partner_fifo"][col]

        # Row-0 partials land in a rotating window of device buffers through
        # MPI-like receives pre-posted ahead, so their transfer overlaps the
        # row-1 compute below.
        platform = self.cluster.nodes[node].platform
        window = 4
        p0_bufs = [
            platform.wrap(np.zeros(plan.row_len(config), np.float32),
                          BufferLocation.DEVICE)
            for _ in range(window)
        ]

        def post_p0(i):
            return engine.call(CollectiveArgs(
                opcode="recv", comm_id=0, nbytes=row_bytes, peer=src,
                tag=i * 8 + 1, rbuf=p0_bufs[i % window].view(),
            ))

        p0_pending = [post_p0(i) for i in range(min(window, n))]
        for i in range(n):
            _, chunk = yield chunk_fifo.get()
            yield self.env.timeout(fc1_time)
            partial1 = block1 @ chunk
            yield p0_pending[i]
            partial0 = p0_bufs[i % window].array.copy()
            if i + window < n:
                p0_pending.append(post_p0(i + window))
            full_partial = np.concatenate([partial0, partial1])
            yield to_reduce.put((i, full_partial))

    def _partner_reduce_stage(self, col: int, n: int, state: dict):
        """Contribute the 8 KB column partial to the reduction (comm 1)."""
        plan, config = self.plan, self.config
        node = plan.fc1_partner_nodes[col]
        engine = self.cluster.engine(node)
        full_bytes = config.fc_dims[0] * 4
        sub_rank_root = len(plan.reduce_group) - 1
        from_fc1: Channel = state["partner_fifo"][col]

        for _ in range(n):
            i, full_partial = yield from_fc1.get()
            done = engine.call(CollectiveArgs(
                opcode="reduce", comm_id=1, nbytes=full_bytes,
                root=sub_rank_root, tag=_REDUCE_TAG_BASE + i * 1024,
                func="sum", from_stream=True, algorithm="all_to_one",
            ))
            yield engine.kernel_data_in.put((full_bytes, full_partial))
            yield done

    def _fc2_kernel(self, n: int):
        """Reduction root + FC2.  Reductions for a window of inferences are
        issued ahead into per-slot accumulation buffers, so successive
        folds pipeline through the engine's DMP."""
        plan, config = self.plan, self.config
        node = plan.fc2_node
        engine = self.cluster.engine(node)
        ki = KernelInterface(engine)
        full_elems = config.fc_dims[0]
        full_bytes = full_elems * 4
        sub_rank_root = len(plan.reduce_group) - 1
        platform = self.cluster.nodes[node].platform
        window = min(4, max(1, n))
        accs = [platform.wrap(np.zeros(full_elems, np.float32),
                              BufferLocation.DEVICE) for _ in range(window)]
        fc2_time = self._fc2_time()
        w2 = self.weights.fc2

        def issue(i):
            # Root without a contribution of its own: the partners' four
            # partials are the whole sum (§6.1's reduction root).
            return engine.call(CollectiveArgs(
                opcode="reduce", comm_id=1, nbytes=full_bytes,
                root=sub_rank_root, tag=_REDUCE_TAG_BASE + i * 1024,
                func="sum", rbuf=accs[i % window].view(),
                algorithm="all_to_one",
            ))

        pending = [issue(i) for i in range(min(window, n))]
        for i in range(n):
            yield pending[i]
            h1 = np.maximum(accs[i % window].array.copy(), 0.0)
            if i + window < n:
                pending.append(issue(i + window))
            yield self.env.timeout(fc2_time)
            h2 = np.maximum(w2 @ h1, 0.0)
            yield from ki.send(h2.nbytes, plan.fc3_node, tag=i * 8 + 2)
            yield from ki.push(h2)
            yield from ki.finalize()

    def _fc3_kernel(self, n: int, state: dict):
        plan, config = self.plan, self.config
        node = plan.fc3_node
        engine = self.cluster.engine(node)
        ki = KernelInterface(engine)
        h2_bytes = config.fc_dims[1] * 4
        fc3_time = self._fc3_time()
        w3 = self.weights.fc3

        for i in range(n):
            yield from ki.recv(h2_bytes, plan.fc2_node, tag=i * 8 + 2)
            _, h2 = yield from ki.pull()
            yield from ki.finalize()
            yield self.env.timeout(fc3_time)
            h3 = w3 @ np.asarray(h2).reshape(-1)
            state["outputs"][i] = 1.0 / (1.0 + np.exp(-np.mean(h3)))
            state["completed"][i] = self.env.now
            for bucket in state["credits"]:
                bucket.give(1)

    # -- orchestration ---------------------------------------------------------

    def run(self, queries: np.ndarray) -> DlrmRunStats:
        """Stream ``queries`` through the pipeline; returns run statistics."""
        n = len(queries)
        if n == 0:
            raise ConfigurationError("need at least one query")
        state = {
            "outputs": np.zeros(n),
            "admitted": np.zeros(n),
            "completed": np.zeros(n),
            "credits": [
                TokenBucket(self.env, self.pipeline_depth,
                            name=f"dlrm.credit{c}")
                for c in range(self.plan.col_parts)
            ],
            "embed_fifo": [
                Channel(self.env, capacity=4, name=f"dlrm.e{c}")
                for c in range(self.plan.col_parts)
            ],
            "partner_fifo": [
                Channel(self.env, capacity=4, name=f"dlrm.p{c}")
                for c in range(self.plan.col_parts)
            ],
            "chunk_fifo": [
                Channel(self.env, capacity=4, name=f"dlrm.c{c}")
                for c in range(self.plan.col_parts)
            ],
        }
        start = self.env.now
        processes = []
        for col in range(self.plan.col_parts):
            processes.append(self.env.process(
                self._embed_kernel(col, queries, state), name=f"embed{col}"))
            processes.append(self.env.process(
                self._embed_fc1_stage(col, n, state), name=f"efc1{col}"))
            processes.append(self.env.process(
                self._partner_chunk_stage(col, n, state), name=f"pcs{col}"))
            processes.append(self.env.process(
                self._partner_kernel(col, n, state), name=f"fc1p{col}"))
            processes.append(self.env.process(
                self._partner_reduce_stage(col, n, state), name=f"red{col}"))
        processes.append(self.env.process(self._fc2_kernel(n), name="fc2"))
        processes.append(self.env.process(self._fc3_kernel(n, state),
                                          name="fc3"))
        self.env.run(until=all_of(self.env, processes))
        latencies = list(state["completed"] - state["admitted"])
        return DlrmRunStats(
            outputs=state["outputs"],
            latencies=latencies,
            elapsed=self.env.now - start,
            n_inferences=n,
        )
