"""The paper's two use cases (§6).

- :mod:`repro.apps.vecmat` -- distributed FC-layer execution on CPUs with
  ACCL+ as collective offload engine (Figure 16).
- :mod:`repro.apps.dlrm` -- fully FPGA-based distributed deep-learning
  recommendation inference on 10 FPGAs (Figures 14-17, Table 2).
"""
