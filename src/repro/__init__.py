"""ACCL+ reproduction: an FPGA-based collective engine, simulated in Python.

This package reproduces *ACCL+: an FPGA-Based Collective Engine for
Distributed Applications* (He et al., OSDI 2024).  The hardware artifact is
substituted by a discrete-event simulation faithful to the paper's
architecture; see ``DESIGN.md`` at the repository root for the full inventory
and the per-experiment index.

Layering (bottom to top):

- :mod:`repro.sim` -- discrete-event kernel (from scratch, simpy-like).
- :mod:`repro.network` -- 100 Gb/s links, switch, packet fabric.
- :mod:`repro.memory` -- HBM/DDR/host memory and PCIe models.
- :mod:`repro.protocols` -- UDP / TCP / RDMA protocol offload engines.
- :mod:`repro.platform` -- Coyote, Vitis/XRT and simulation platforms.
- :mod:`repro.cclo` -- the collective offload engine (uC, DMP, RBM, Tx/Rx).
- :mod:`repro.collectives` -- collective firmware and algorithm selection.
- :mod:`repro.driver` -- host CCL driver: MPI-like and streaming APIs.
- :mod:`repro.cluster` -- cluster construction helpers.
- :mod:`repro.baselines` -- software MPI and ACCL-v1 comparators.
- :mod:`repro.apps` -- the paper's two use cases (GEMV, DLRM).
- :mod:`repro.resources` -- FPGA resource-utilization model (Table 3).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
