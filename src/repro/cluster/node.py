"""One FPGA node: platform + POE + CCLO engine on a fabric endpoint."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cclo.engine import CcloEngine
from repro.network.endpoint import Endpoint
from repro.platform.base import BasePlatform
from repro.protocols.base import BasePoe


@dataclass
class FpgaNode:
    """Composition record for one simulated FPGA card."""

    rank: int
    endpoint: Endpoint
    platform: BasePlatform
    poe: BasePoe
    engine: CcloEngine

    @property
    def address(self) -> int:
        return self.endpoint.address

    def __repr__(self) -> str:
        return f"<FpgaNode rank={self.rank} addr={self.address}>"
